// Ablation: concurrent traversals — the paper's *first* motivation for
// asynchrony: "as an online database system, our system needs to support
// concurrent graph traversals. The interferences among traversals easily
// create stragglers". K clients issue 6-step traversals from different
// sources simultaneously; we report the makespan (all K complete).
#include <thread>

#include "bench/bench_util.h"

using namespace gt;
using namespace gt::bench;

namespace {

double Makespan(engine::Cluster* cluster, const std::vector<lang::TraversalPlan>& plans,
                engine::EngineMode mode) {
  Stopwatch watch;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (size_t i = 0; i < plans.size(); i++) {
    threads.emplace_back([&, i] {
      auto client = cluster->NewClient();
      engine::RunOptions opts;
      opts.mode = mode;
      opts.coordinator = static_cast<engine::ServerId>(i % cluster->num_servers());
      if (!client->Run(plans[i], opts).ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "concurrent bench: %d traversals failed\n", failures.load());
    std::abort();
  }
  return watch.ElapsedMillis();
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Ablation: concurrent traversals, 6-step RMAT-1, 8 servers",
              "makespan of K simultaneous traversals, Sync-GT vs GraphTrek");

  BenchConfig cfg;
  ParseBenchArgs(argc, argv, &cfg);
  graph::Catalog catalog;
  graph::RefGraph g = BuildRmat1(&catalog, cfg);

  std::printf("%-14s %12s %12s %10s\n", "concurrency", "Sync-GT", "GraphTrek", "speedup");
  const std::vector<uint32_t> sweep =
      g_smoke ? std::vector<uint32_t>{2u} : std::vector<uint32_t>{1u, 2u, 4u, 8u};
  for (uint32_t k : sweep) {
    BenchCluster cluster(ServersOrSmoke(8), cfg, &catalog, g);
    std::vector<lang::TraversalPlan> plans;
    for (uint32_t i = 0; i < k; i++) {
      plans.push_back(HopPlan(&catalog, kBenchSource + i * 13, 6));
    }
    const double sync_ms = Makespan(cluster.get(), plans, engine::EngineMode::kSync);
    const double gt_ms = Makespan(cluster.get(), plans, engine::EngineMode::kGraphTrek);
    std::printf("%-14u %9.1f ms %9.1f ms %9.2fx\n", k, sync_ms, gt_ms, sync_ms / gt_ms);
    std::fflush(stdout);
  }
  std::printf("\npaper motivation: interference among concurrent traversals creates\n"
              "stragglers that synchronous barriers amplify.\n");
  return 0;
}
