// Ablation: where does the sync/async crossover sit as the storage device
// gets faster? (DESIGN.md item 4.) The paper's engines are disk-bound; on a
// fast device the barrier cost shrinks relative to I/O and the async
// advantage should narrow.
#include "bench/bench_util.h"

using namespace gt;
using namespace gt::bench;

int main(int argc, char** argv) {
  PrintHeader("Ablation: device-latency sweep, 8-step RMAT-1, 16 servers",
              "Sync-GT vs GraphTrek as the per-access device cost varies");

  graph::Catalog catalog;
  BenchConfig base;
  ParseBenchArgs(argc, argv, &base);
  graph::RefGraph g = BuildRmat1(&catalog, base);
  const auto plan = HopPlan(&catalog, kBenchSource, 8);

  std::printf("%-14s %12s %12s %10s\n", "access_us", "Sync-GT", "GraphTrek", "speedup");
  const std::vector<uint32_t> sweep =
      g_smoke ? std::vector<uint32_t>{25u}
              : std::vector<uint32_t>{0u, 25u, 50u, 100u, 200u, 400u};
  for (uint32_t access_us : sweep) {
    BenchConfig cfg = base;
    cfg.access_latency_us = access_us;
    BenchCluster cluster(ServersOrSmoke(16), cfg, &catalog, g);
    const double sync_ms = cluster.Run(plan, engine::EngineMode::kSync);
    const double gt_ms = cluster.Run(plan, engine::EngineMode::kGraphTrek);
    std::printf("%-14u %9.1f ms %9.1f ms %9.2fx\n", access_us, sync_ms, gt_ms,
                sync_ms / gt_ms);
    std::fflush(stdout);
  }
  return 0;
}
