// Ablation: the GraphTrek optimizations, one at a time (DESIGN.md items 1-2).
// 8-step RMAT-1 traversal on 16 servers:
//   - full GraphTrek (cache + merge + smallest-step-first)
//   - merging off
//   - priority scheduling off (FIFO)
//   - both off (cache only)
//   - Async-GT (nothing)
// Also sweeps the traversal-affiliate cache capacity to show the eviction
// policy degrades gracefully.
#include "bench/bench_util.h"

using namespace gt;
using namespace gt::bench;

namespace {

// I/O-path knobs (PR 6): each defaults to on and can be ablated
// independently of the scheduling knobs above.
struct IoPathKnobs {
  size_t adjacency_cache_bytes = 16 << 20;  // 0 = cache off
  bool batched_multiget = true;
  bool arena_scratch = true;
};

double RunConfigured(const graph::RefGraph& g, graph::Catalog* catalog,
                     const lang::TraversalPlan& plan, const BenchConfig& cfg,
                     uint32_t servers, bool merging, bool priority,
                     size_t cache_capacity, engine::EngineMode mode,
                     const IoPathKnobs& io = {}) {
  engine::ClusterConfig ccfg;
  ccfg.num_servers = servers;
  ccfg.workers_per_server = cfg.workers_per_server;
  ccfg.device.access_latency_us = cfg.access_latency_us;
  ccfg.device.per_kib_us = cfg.per_kib_us;
  ccfg.net.latency_us = cfg.net_latency_us;
  ccfg.exec_timeout_ms = 600000;
  ccfg.graphtrek_merging = merging;
  ccfg.graphtrek_priority_sched = priority;
  ccfg.cache_capacity = cache_capacity;
  ccfg.adjacency_cache_bytes = io.adjacency_cache_bytes;
  ccfg.batched_multiget = io.batched_multiget;
  ccfg.arena_scratch = io.arena_scratch;
  auto cluster = engine::Cluster::Create(ccfg);
  if (!cluster.ok()) std::abort();
  (*cluster)->catalog()->CopyFrom(*catalog);
  if (!(*cluster)->Load(g).ok()) std::abort();
  auto result = (*cluster)->Run(plan, mode);
  if (!result.ok()) std::abort();
  return result->elapsed_ms;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Ablation: GraphTrek optimizations, 8-step RMAT-1, 16 servers",
              "traversal-affiliate cache / execution merging / priority scheduling");

  BenchConfig cfg;
  ParseBenchArgs(argc, argv, &cfg);
  graph::Catalog catalog;
  graph::RefGraph g = BuildRmat1(&catalog, cfg);
  const auto plan = HopPlan(&catalog, kBenchSource, 8);
  const uint32_t servers = ServersOrSmoke(16);
  const size_t big_cache = 1 << 20;

  struct Variant {
    const char* name;
    bool merging, priority;
    engine::EngineMode mode;
  };
  const Variant variants[] = {
      {"GraphTrek (full)", true, true, engine::EngineMode::kGraphTrek},
      {"  - merging off", false, true, engine::EngineMode::kGraphTrek},
      {"  - sched FIFO", true, false, engine::EngineMode::kGraphTrek},
      {"  - merge+sched off", false, false, engine::EngineMode::kGraphTrek},
      {"Async-GT (no opts)", true, true, engine::EngineMode::kAsyncPlain},
      {"Sync-GT", true, true, engine::EngineMode::kSync},
  };
  std::printf("%-22s %12s\n", "variant", "elapsed");
  for (const auto& v : variants) {
    const double ms = RunConfigured(g, &catalog, plan, cfg, servers, v.merging,
                                    v.priority, big_cache, v.mode);
    std::printf("%-22s %9.1f ms\n", v.name, ms);
    std::fflush(stdout);
  }

  std::printf("\ncache-capacity sweep (GraphTrek, entries):\n");
  std::printf("%-12s %12s\n", "capacity", "elapsed");
  const std::vector<size_t> capacities =
      g_smoke ? std::vector<size_t>{64ul, 1ul << 20}
              : std::vector<size_t>{64ul, 256ul, 1024ul, 4096ul, 1ul << 20};
  for (size_t capacity : capacities) {
    const double ms = RunConfigured(g, &catalog, plan, cfg, servers, true, true,
                                    capacity, engine::EngineMode::kGraphTrek);
    std::printf("%-12zu %9.1f ms\n", capacity, ms);
    std::fflush(stdout);
  }

  // I/O-path ablation (DESIGN.md "Adjacency cache & batched frontier I/O"):
  // the three hot-path optimizations below are orthogonal to the scheduling
  // knobs above and to each other; each row disables exactly one (last row:
  // all three) while the traversal semantics stay bit-identical.
  std::printf("\nI/O-path ablation (GraphTrek, merge+priority on):\n");
  struct IoVariant {
    const char* name;
    IoPathKnobs io;
  };
  IoVariant io_variants[] = {
      {"full I/O path", {}},
      {"  - adj cache off", {}},
      {"  - batched MultiGet off", {}},
      {"  - arena scratch off", {}},
      {"  - all three off", {}},
  };
  io_variants[1].io.adjacency_cache_bytes = 0;
  io_variants[2].io.batched_multiget = false;
  io_variants[3].io.arena_scratch = false;
  io_variants[4].io = {0, false, false};
  std::printf("%-26s %12s\n", "variant", "elapsed");
  for (const auto& v : io_variants) {
    const double ms =
        RunConfigured(g, &catalog, plan, cfg, servers, true, true, big_cache,
                      engine::EngineMode::kGraphTrek, v.io);
    std::printf("%-26s %9.1f ms\n", v.name, ms);
    std::fflush(stdout);
  }
  return 0;
}
