// Ablation: worker-pool width per server (DESIGN.md item 3). The worker
// count is the server's parallel I/O depth; both engines gain from more
// workers, but the async engine can also overlap steps.
#include "bench/bench_util.h"

using namespace gt;
using namespace gt::bench;

int main(int argc, char** argv) {
  PrintHeader("Ablation: workers per server, 8-step RMAT-1, 8 servers",
              "Sync-GT vs GraphTrek at varying per-server I/O parallelism");

  graph::Catalog catalog;
  BenchConfig base;
  ParseBenchArgs(argc, argv, &base);
  graph::RefGraph g = BuildRmat1(&catalog, base);
  const auto plan = HopPlan(&catalog, kBenchSource, 8);

  std::printf("%-10s %12s %12s\n", "workers", "Sync-GT", "GraphTrek");
  const std::vector<uint32_t> sweep =
      g_smoke ? std::vector<uint32_t>{2u} : std::vector<uint32_t>{1u, 2u, 4u, 8u};
  for (uint32_t workers : sweep) {
    BenchConfig cfg = base;
    cfg.workers_per_server = workers;
    BenchCluster cluster(ServersOrSmoke(8), cfg, &catalog, g);
    const double sync_ms = cluster.Run(plan, engine::EngineMode::kSync);
    const double gt_ms = cluster.Run(plan, engine::EngineMode::kGraphTrek);
    std::printf("%-10u %9.1f ms %9.1f ms\n", workers, sync_ms, gt_ms);
    std::fflush(stdout);
  }
  return 0;
}
