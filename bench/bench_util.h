// Shared helpers for the paper-reproduction benches. Every bench binary in
// this directory regenerates one table or figure from the evaluation
// section; this header standardizes the workload (the "RMAT-1 bench graph"),
// the simulated device/network costs, and the run/timing plumbing.
//
// Scaling note: the paper runs 2^20 vertices on 2-32 physical nodes with
// real disks; this repo runs everything on one machine with a simulated
// per-access device cost, so the graph is scaled down (default 2^12
// vertices, out-degree 8). The claims under test are relative: engine
// orderings, scaling trends and crossovers, not absolute seconds.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/engine/cluster.h"
#include "src/gen/rmat.h"
#include "src/lang/gtravel.h"

namespace gt::bench {

struct BenchConfig {
  uint32_t rmat_scale = 11;       // 2^scale vertices
  uint32_t rmat_degree = 6;
  uint32_t attr_bytes = 64;
  uint32_t access_latency_us = 800;  // simulated device cost per cold access
  uint32_t warm_latency_us = 200;    // block-cache hit (re-read within a travel)
  uint32_t per_kib_us = 5;
  double tail_prob = 0.02;           // heavy-tail cold accesses (disk/GPFS tails)
  uint32_t tail_mult = 12;
  uint32_t net_latency_us = 20;      // simulated fabric latency
  uint32_t workers_per_server = 2;
  uint64_t seed = 20150901;
  uint32_t runs = 2;                 // timed repetitions averaged per cell

  // Wrap the cluster fabric in a FaultInjectingTransport (seeded); the bench
  // then configures per-link faults via cluster->fault_transport().
  bool net_faults = false;
  uint64_t net_fault_seed = 42;

  // Enable the statistics-driven plan rewriter on every coordinator (see
  // src/lang/planner.h). Off by default so existing benches keep measuring
  // the unrewritten plans; table3_planner stands up one cluster each way.
  bool planner = false;
};

// Set by ParseBenchArgs when the binary runs with --smoke: shrink the
// workload so every fig/table binary finishes in seconds. The ctest
// bench_smoke_* gates run every bench this way so the reproduction
// harness itself cannot silently rot.
inline bool g_smoke = false;

inline void ParseBenchArgs(int argc, char** argv, BenchConfig* cfg) {
  for (int i = 1; i < argc; i++) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      g_smoke = true;
      cfg->rmat_scale = 7;
      cfg->runs = 1;
      cfg->access_latency_us = 40;
      cfg->warm_latency_us = 10;
      cfg->per_kib_us = 0;
      cfg->tail_prob = 0.0;
      cfg->net_latency_us = 5;
    } else {
      std::fprintf(stderr, "bench: unknown flag '%s' (supported: --smoke)\n",
                   argv[i]);
      std::exit(2);
    }
  }
}

// Sweep/size helpers honouring --smoke.
inline uint32_t ServersOrSmoke(uint32_t full) { return g_smoke ? 2u : full; }

inline std::vector<uint32_t> ServerSweep(std::vector<uint32_t> full) {
  if (g_smoke) return {2u};
  return full;
}

// Process-wide total of one counter family, read from the metrics registry
// (sums every label set plus collector-backed instances).
inline uint64_t MetricTotal(const std::string& name) {
  return static_cast<uint64_t>(metrics::Registry::Default()->Sum(name));
}

// Transport traffic report from the registry's gt_rpc_* families: one
// summary line plus the busiest links by messages sent. Replaces the
// transport's old hand-rolled stats formatter.
inline void PrintRpcStats(size_t top_n) {
  std::printf("  rpc: sent=%llu recv=%llu dropped=%llu reconnects=%llu "
              "send_failures=%llu\n",
              static_cast<unsigned long long>(MetricTotal("gt_rpc_messages_sent_total")),
              static_cast<unsigned long long>(MetricTotal("gt_rpc_messages_received_total")),
              static_cast<unsigned long long>(MetricTotal("gt_rpc_messages_dropped_total")),
              static_cast<unsigned long long>(MetricTotal("gt_rpc_reconnects_total")),
              static_cast<unsigned long long>(MetricTotal("gt_rpc_send_failures_total")));

  struct Link {
    double sent = 0;
    double bytes = 0;
    double delayed = 0;
  };
  std::map<std::pair<std::string, std::string>, Link> links;
  for (const auto& s : metrics::Registry::Default()->Collect("gt_rpc_link_")) {
    std::string src, dst;
    for (const auto& [k, v] : s.labels) {
      if (k == "src") src = v;
      if (k == "dst") dst = v;
    }
    Link& l = links[{src, dst}];
    if (s.name == "gt_rpc_link_messages_sent_total") l.sent += s.value;
    if (s.name == "gt_rpc_link_bytes_sent_total") l.bytes += s.value;
    if (s.name == "gt_rpc_link_delayed_total") l.delayed += s.value;
  }
  std::vector<std::pair<std::pair<std::string, std::string>, Link>> rows(
      links.begin(), links.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second.sent > b.second.sent; });
  if (rows.size() > top_n) rows.resize(top_n);
  for (const auto& [key, l] : rows) {
    std::printf("  link %s->%s: sent=%.0f bytes=%.0f%s\n", key.first.c_str(),
                key.second.c_str(), l.sent, l.bytes,
                l.delayed > 0 ? (" delayed=" + std::to_string(static_cast<uint64_t>(
                                                   l.delayed)))
                                    .c_str()
                              : "");
  }
}

// Builds the RMAT-1-style bench graph once (shareable across clusters).
inline graph::RefGraph BuildRmat1(graph::Catalog* catalog, const BenchConfig& cfg) {
  gen::RmatConfig rcfg;
  rcfg.scale = cfg.rmat_scale;
  rcfg.avg_degree = cfg.rmat_degree;
  rcfg.attr_bytes = cfg.attr_bytes;
  rcfg.a = 0.45;
  rcfg.b = 0.15;
  rcfg.c = 0.15;
  rcfg.d = 0.25;
  rcfg.seed = cfg.seed;
  gen::RmatGenerator rmat(rcfg);
  return rmat.Build(catalog, "node", "link");
}

// Stands up a cluster with `servers` backends and loads `g` into it.
// The catalog must be the one the graph was generated against; label ids are
// re-interned identically because the cluster shares that catalog object via
// copy-through-Load (ids are already resolved inside the RefGraph).
class BenchCluster {
 public:
  BenchCluster(uint32_t servers, const BenchConfig& cfg, graph::Catalog* catalog,
               const graph::RefGraph& g) {
    engine::ClusterConfig ccfg;
    ccfg.num_servers = servers;
    ccfg.workers_per_server = cfg.workers_per_server;
    ccfg.device.access_latency_us = cfg.access_latency_us;
    ccfg.device.warm_latency_us = cfg.warm_latency_us;
    ccfg.device.per_kib_us = cfg.per_kib_us;
    ccfg.device.tail_prob = cfg.tail_prob;
    ccfg.device.tail_mult = cfg.tail_mult;
    ccfg.net.latency_us = cfg.net_latency_us;
    ccfg.net_faults = cfg.net_faults;
    ccfg.net_fault_seed = cfg.net_fault_seed;
    ccfg.planner = cfg.planner;
    ccfg.exec_timeout_ms = 600000;  // benches must never trip failure detection
    auto cluster = engine::Cluster::Create(ccfg);
    if (!cluster.ok()) {
      std::fprintf(stderr, "bench: cluster create failed: %s\n",
                   cluster.status().ToString().c_str());
      std::abort();
    }
    cluster_ = std::move(*cluster);
    external_catalog_ = catalog;
    // The cluster's own catalog must agree with the ids baked into the
    // generated graph (deployments replicate this metadata to servers).
    cluster_->catalog()->CopyFrom(*catalog);
    if (auto s = cluster_->Load(g); !s.ok()) {
      std::fprintf(stderr, "bench: load failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }

  engine::Cluster* get() { return cluster_.get(); }
  graph::Catalog* catalog() { return external_catalog_; }

  // Runs and returns elapsed milliseconds (aborts on error).
  double Run(const lang::TraversalPlan& plan, engine::EngineMode mode) {
    auto result = cluster_->Run(plan, mode);
    if (!result.ok()) {
      std::fprintf(stderr, "bench: %s run failed: %s\n", engine::EngineModeName(mode),
                   result.status().ToString().c_str());
      std::abort();
    }
    return result->elapsed_ms;
  }

  // Mean of `runs` timed repetitions (tail latencies make single runs noisy).
  double RunAveraged(const lang::TraversalPlan& plan, engine::EngineMode mode,
                     uint32_t runs) {
    double total = 0;
    for (uint32_t i = 0; i < runs; i++) total += Run(plan, mode);
    return total / static_cast<double>(runs == 0 ? 1 : runs);
  }

 private:
  std::unique_ptr<engine::Cluster> cluster_;
  graph::Catalog* external_catalog_ = nullptr;
};

// N-hop plan over the RMAT "link" edges from one source vertex.
inline lang::TraversalPlan HopPlan(graph::Catalog* catalog, graph::VertexId source,
                                   uint32_t steps) {
  lang::GTravel travel(catalog);
  travel.v({source});
  for (uint32_t i = 0; i < steps; i++) travel.e("link");
  auto plan = travel.Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "bench: plan build failed: %s\n",
                 plan.status().ToString().c_str());
    std::abort();
  }
  return *plan;
}

// The same "randomly selected vertex" across benches: a low-id vertex, which
// on RMAT-1 parameters is well-connected.
constexpr graph::VertexId kBenchSource = 3;

inline void PrintHeader(const char* title, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("%s\n", description);
  std::printf("==============================================================\n");
}

}  // namespace gt::bench
