// Figure 10 reproduction: 8-step graph traversal on RMAT-1, Sync-GT vs
// GraphTrek across 2-32 servers. Claim shape: ~24% improvement at 32
// servers vs ~5% at 2 servers — deeper traversals amplify the win.
#include "bench/fig_step_scaling.h"

int main(int argc, char** argv) {
  return gt::bench::RunStepScalingFigure(
      argc, argv, "Figure 10: 8-step traversal on RMAT-1", 8,
      "~24% improvement over Sync-GT at 32 servers vs ~5% at 2 servers");
}
