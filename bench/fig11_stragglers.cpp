// Figure 11 reproduction: "Performance comparison with simulated external
// stragglers" — 8-step RMAT-1 traversal with fixed delays injected into
// individual vertex accesses: the paper inserts 50 ms x 500 accesses on one
// of three selected servers at steps 1, 3 and 7 (round-robin), and reports
// the average of three runs.
//
// Scaled here to 5 ms x 50 accesses (the graph is ~256x smaller).
// Claim shape: GraphTrek's advantage grows sharply under interference
// (paper: ~2x at 32 servers) because it never idles at a global barrier and
// its scheduling/merging lets straggling servers catch up.
//
// Interference is injected at both layers: device-level stragglers via the
// StragglerInjector (slow disk) and network-level congestion via the
// FaultInjectingTransport decorator (every link into a straggling server
// carries extra delay + jitter). Per-link transport metrics are printed per
// cluster size so the congested links are visible in the output.
#include "bench/bench_util.h"

using namespace gt;
using namespace gt::bench;

namespace {

void InstallStragglers(engine::Cluster* cluster, uint32_t servers) {
  // Three selected servers; one straggler (round-robin) per chosen step.
  const uint32_t chosen[3] = {0, servers / 3, (2 * servers) / 3};
  const int steps[3] = {1, 3, 7};
  for (int i = 0; i < 3; i++) {
    cluster->straggler()->AddRule(engine::StragglerRule{
        .server_id = chosen[i % 3], .step = steps[i], .delay_us = 5000, .max_hits = 50});
  }
  // Network-side interference: traffic into a straggling server rides a
  // congested link (fixed delay + jitter), modelled by the fault decorator.
  rpc::FaultInjectingTransport* faults = cluster->fault_transport();
  faults->ClearAllFaults();
  for (int i = 0; i < 3; i++) {
    rpc::LinkFault congested;
    congested.delay_us = 200;
    congested.jitter_us = 100;
    faults->SetLinkFault(rpc::kAnyEndpoint, chosen[i], congested);
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Figure 11: 8-step traversal with simulated external stragglers",
              "avg of 3 runs; 5ms x 50 delayed accesses at steps 1/3/7 (scaled)");

  BenchConfig cfg;
  cfg.net_faults = true;  // run the whole bench through the fault decorator
  ParseBenchArgs(argc, argv, &cfg);
  graph::Catalog catalog;
  graph::RefGraph g = BuildRmat1(&catalog, cfg);
  const auto plan = HopPlan(&catalog, kBenchSource, 8);
  const int reps = g_smoke ? 1 : 3;

  std::printf("%-8s %12s %12s %10s\n", "servers", "Sync-GT", "GraphTrek", "speedup");
  for (uint32_t servers : ServerSweep({2u, 4u, 8u, 16u, 32u})) {
    BenchCluster cluster(servers, cfg, &catalog, g);
    double sync_total = 0, gt_total = 0;
    for (int run = 0; run < reps; run++) {
      cluster.get()->straggler()->ClearRules();
      InstallStragglers(cluster.get(), servers);
      sync_total += cluster.Run(plan, engine::EngineMode::kSync);
      cluster.get()->straggler()->ClearRules();
      InstallStragglers(cluster.get(), servers);
      gt_total += cluster.Run(plan, engine::EngineMode::kGraphTrek);
    }
    cluster.get()->straggler()->ClearRules();
    const double sync_ms = sync_total / reps;
    const double gt_ms = gt_total / reps;
    std::printf("%-8u %9.1f ms %9.1f ms %9.2fx\n", servers, sync_ms, gt_ms,
                sync_ms / gt_ms);
    // Per-link traffic (congested links stand out) from the metrics
    // registry: only this cluster's transports are registered while it is
    // alive, so the scrape is scoped to the current sweep point.
    PrintRpcStats(/*top_n=*/6);
    std::fflush(stdout);
  }
  std::printf("\npaper: obvious advantage for GraphTrek (2x with 32 servers)\n");
  return 0;
}
