// Figure 7 reproduction: "Statistics collected from an 8-step traversal on
// 32 servers" — per-server real I/O visits, combined visits (execution
// merging) and redundant visits (traversal-affiliate cache), collected from
// the instrumented GraphTrek engine.
//
// Claim shape: redundant visits dominate received requests; combined visits
// concentrate on the servers holding high-degree vertices, which would
// otherwise straggle.
#include <algorithm>

#include "bench/bench_util.h"

using namespace gt;
using namespace gt::bench;

int main() {
  PrintHeader("Figure 7: per-server visit statistics, 8-step traversal, 32 servers",
              "GraphTrek engine instrumentation (received = redundant+combined+real)");

  BenchConfig cfg;
  graph::Catalog catalog;
  graph::RefGraph g = BuildRmat1(&catalog, cfg);
  const auto plan = HopPlan(&catalog, kBenchSource, 8);

  const uint32_t servers = 32;
  BenchCluster cluster(servers, cfg, &catalog, g);
  cluster.get()->ResetStats();
  cluster.Run(plan, engine::EngineMode::kGraphTrek);

  struct Row {
    uint32_t server;
    engine::VisitStats::Snapshot snap;
  };
  std::vector<Row> rows;
  for (uint32_t s = 0; s < servers; s++) {
    rows.push_back({s, cluster.get()->server(s)->visit_stats().Read()});
  }
  // The paper reorders servers for presentation; sort by real I/O.
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.snap.real_io > b.snap.real_io; });

  std::printf("%-6s %10s %10s %10s %10s\n", "rank", "received", "real_io", "combined",
              "redundant");
  uint64_t tot_recv = 0, tot_io = 0, tot_comb = 0, tot_red = 0;
  for (size_t i = 0; i < rows.size(); i++) {
    const auto& s = rows[i].snap;
    std::printf("%-6zu %10llu %10llu %10llu %10llu\n", i + 1,
                static_cast<unsigned long long>(s.received),
                static_cast<unsigned long long>(s.real_io),
                static_cast<unsigned long long>(s.combined),
                static_cast<unsigned long long>(s.redundant));
    tot_recv += s.received;
    tot_io += s.real_io;
    tot_comb += s.combined;
    tot_red += s.redundant;
  }
  std::printf("%-6s %10llu %10llu %10llu %10llu\n", "total",
              static_cast<unsigned long long>(tot_recv),
              static_cast<unsigned long long>(tot_io),
              static_cast<unsigned long long>(tot_comb),
              static_cast<unsigned long long>(tot_red));
  std::printf("\nredundant/received = %.1f%% (paper: redundant visits dominate)\n",
              100.0 * static_cast<double>(tot_red) / static_cast<double>(tot_recv));
  std::printf("accounting identity holds: %s\n",
              tot_recv == tot_io + tot_comb + tot_red ? "yes" : "NO");
  return 0;
}
