// Figure 7 reproduction: "Statistics collected from an 8-step traversal on
// 32 servers" — per-server real I/O visits, combined visits (execution
// merging) and redundant visits (traversal-affiliate cache), collected from
// the instrumented GraphTrek engine.
//
// Claim shape: redundant visits dominate received requests; combined visits
// concentrate on the servers holding high-degree vertices, which would
// otherwise straggle.
#include <algorithm>

#include "bench/bench_util.h"

using namespace gt;
using namespace gt::bench;

int main(int argc, char** argv) {
  PrintHeader("Figure 7: per-server visit statistics, 8-step traversal, 32 servers",
              "GraphTrek engine instrumentation (received = redundant+combined+real)");

  BenchConfig cfg;
  ParseBenchArgs(argc, argv, &cfg);
  graph::Catalog catalog;
  graph::RefGraph g = BuildRmat1(&catalog, cfg);
  const auto plan = HopPlan(&catalog, kBenchSource, 8);

  const uint32_t servers = ServersOrSmoke(32);
  BenchCluster cluster(servers, cfg, &catalog, g);
  cluster.get()->ResetStats();
  cluster.Run(plan, engine::EngineMode::kGraphTrek);

  // Per-server figures come from the metrics registry (each BackendServer
  // registers an exposition collector labelled server="s<N>"), not from
  // poking the engine internals directly.
  struct Row {
    uint64_t received = 0, redundant = 0, combined = 0, real_io = 0;
  };
  std::map<std::string, Row> by_server;
  for (const auto& s : metrics::Registry::Default()->Collect("gt_engine_visits_")) {
    std::string server;
    for (const auto& [k, v] : s.labels) {
      if (k == "server") server = v;
    }
    Row& r = by_server[server];
    const uint64_t v = static_cast<uint64_t>(s.value);
    if (s.name == "gt_engine_visits_received_total") r.received = v;
    if (s.name == "gt_engine_visits_redundant_total") r.redundant = v;
    if (s.name == "gt_engine_visits_combined_total") r.combined = v;
    if (s.name == "gt_engine_visits_real_io_total") r.real_io = v;
  }
  std::vector<Row> rows;
  for (const auto& [server, row] : by_server) rows.push_back(row);
  // The paper reorders servers for presentation; sort by real I/O.
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.real_io > b.real_io; });

  std::printf("%-6s %10s %10s %10s %10s\n", "rank", "received", "real_io", "combined",
              "redundant");
  uint64_t tot_recv = 0, tot_io = 0, tot_comb = 0, tot_red = 0;
  for (size_t i = 0; i < rows.size(); i++) {
    const Row& s = rows[i];
    std::printf("%-6zu %10llu %10llu %10llu %10llu\n", i + 1,
                static_cast<unsigned long long>(s.received),
                static_cast<unsigned long long>(s.real_io),
                static_cast<unsigned long long>(s.combined),
                static_cast<unsigned long long>(s.redundant));
    tot_recv += s.received;
    tot_io += s.real_io;
    tot_comb += s.combined;
    tot_red += s.redundant;
  }
  std::printf("%-6s %10llu %10llu %10llu %10llu\n", "total",
              static_cast<unsigned long long>(tot_recv),
              static_cast<unsigned long long>(tot_io),
              static_cast<unsigned long long>(tot_comb),
              static_cast<unsigned long long>(tot_red));
  std::printf("\nredundant/received = %.1f%% (paper: redundant visits dominate)\n",
              100.0 * static_cast<double>(tot_red) / static_cast<double>(tot_recv));
  std::printf("accounting identity holds: %s\n",
              tot_recv == tot_io + tot_comb + tot_red ? "yes" : "NO");
  return 0;
}
