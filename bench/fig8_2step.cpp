// Figure 8 reproduction: 2-step graph traversal on RMAT-1, Sync-GT vs
// GraphTrek across 2-32 servers. Claim shape: with few steps and few
// servers, the synchronous engine can win (short traversals give the
// asynchronous engine little to optimize).
#include "bench/fig_step_scaling.h"

int main(int argc, char** argv) {
  return gt::bench::RunStepScalingFigure(
      argc, argv, "Figure 8: 2-step traversal on RMAT-1", 2,
      "with smaller steps and fewer servers Sync-GT actually performs better");
}
