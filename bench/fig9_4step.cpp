// Figure 9 reproduction: 4-step graph traversal on RMAT-1, Sync-GT vs
// GraphTrek across 2-32 servers. Claim shape: GraphTrek's relative
// performance improves as servers (and straggler potential) grow.
#include "bench/fig_step_scaling.h"

int main(int argc, char** argv) {
  return gt::bench::RunStepScalingFigure(
      argc, argv, "Figure 9: 4-step traversal on RMAT-1", 4,
      "GraphTrek's relative performance improves with more servers");
}
