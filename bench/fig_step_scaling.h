// Shared driver for Figures 8/9/10: N-step traversal on RMAT-1, Sync-GT vs
// GraphTrek across 2-32 servers.
#pragma once

#include "bench/bench_util.h"

namespace gt::bench {

inline int RunStepScalingFigure(int argc, char** argv, const char* title,
                                uint32_t steps, const char* paper_note) {
  PrintHeader(title, "elapsed ms, Sync-GT vs GraphTrek (scaled-down graph)");

  BenchConfig cfg;
  ParseBenchArgs(argc, argv, &cfg);
  graph::Catalog catalog;
  graph::RefGraph g = BuildRmat1(&catalog, cfg);
  const auto plan = HopPlan(&catalog, kBenchSource, steps);

  std::printf("%-8s %12s %12s %10s\n", "servers", "Sync-GT", "GraphTrek", "speedup");
  for (uint32_t servers : ServerSweep({2u, 4u, 8u, 16u, 32u})) {
    BenchCluster cluster(servers, cfg, &catalog, g);
    const double sync_ms = cluster.RunAveraged(plan, engine::EngineMode::kSync, cfg.runs);
    const double gt_ms = cluster.RunAveraged(plan, engine::EngineMode::kGraphTrek, cfg.runs);
    std::printf("%-8u %9.1f ms %9.1f ms %9.2fx\n", servers, sync_ms, gt_ms,
                sync_ms / gt_ms);
    std::fflush(stdout);
  }
  std::printf("\npaper: %s\n", paper_note);
  return 0;
}

}  // namespace gt::bench
