// Mixed read/write workload (PR 9): a Darshan-style metadata stream ingested
// live through the mutation RPCs while the suspicious-user audit query runs
// continuously against it. Before per-travel snapshot pinning this workload
// had no defined answer — every audit raced the ingest and could observe a
// torn graph; now each audit sees exactly the graph at its pin point, which
// makes two cheap-but-sharp correctness gates possible in a *bench*:
//
//   monotone   - the stream is insert-only, so successive audits (whose pin
//                points advance monotonically) must return non-decreasing
//                result sets: any dip is a torn read.
//   final      - once ingest completes, all three engines must return exactly
//                the reference evaluator's answer on the full graph.
//
// Reported: ingest throughput (mutations/sec), audit throughput + mean
// latency while ingest runs, and the kv snapshot accounting (pins taken /
// released / compaction versions preserved for a pin). Persists BENCH_9.json.
//
//   load_mutate [--smoke] [--json FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/gen/darshan.h"

namespace gt::bench {
namespace {

// One flat op of the precomputed ingest stream: vertices first, then edges,
// so every edge lands with both endpoints present (kPutEdge validates).
struct IngestOp {
  enum Kind { kVertex, kEdge } kind = kVertex;
  graph::VertexId src = 0;
  graph::VertexId dst = 0;
  std::string label;
  engine::NamedProps props;
};

std::vector<IngestOp> FlattenDarshan(const graph::RefGraph& g,
                                     graph::Catalog* catalog) {
  auto name_of = [&](graph::Catalog::Id id) {
    auto name = catalog->Name(id);
    if (!name.ok()) {
      std::fprintf(stderr, "load_mutate: unknown catalog id %u\n", id);
      std::abort();
    }
    return *name;
  };
  auto named_props = [&](const graph::PropMap& props) {
    engine::NamedProps out;
    for (const auto& [k, v] : props) out.emplace_back(name_of(k), v);
    return out;
  };

  std::vector<IngestOp> ops;
  for (const auto& [vid, rec] : g.vertices()) {
    IngestOp op;
    op.kind = IngestOp::kVertex;
    op.src = vid;
    op.label = name_of(rec.label);
    op.props = named_props(rec.props);
    ops.push_back(std::move(op));
  }
  const size_t vertex_ops = ops.size();
  const char* kEdgeLabels[] = {"run", "hasExecutions", "exe",
                               "read", "readBy",        "write"};
  for (const auto& [vid, rec] : g.vertices()) {
    for (const char* label : kEdgeLabels) {
      for (const auto& [dst, props] : g.Edges(vid, catalog->Lookup(label))) {
        IngestOp op;
        op.kind = IngestOp::kEdge;
        op.src = vid;
        op.dst = dst;
        op.label = label;
        op.props = named_props(props);
        ops.push_back(std::move(op));
      }
    }
  }
  std::printf("stream: %zu vertex + %zu edge mutations\n", vertex_ops,
              ops.size() - vertex_ops);
  return ops;
}

}  // namespace
}  // namespace gt::bench

int main(int argc, char** argv) {
  using namespace gt;
  using namespace gt::bench;

  // Peel off --json before the shared parser (it rejects unknown flags).
  std::string json_path = "BENCH_9.json";
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  BenchConfig cfg;
  ParseBenchArgs(static_cast<int>(rest.size()), rest.data(), &cfg);

  PrintHeader("load_mutate: streaming ingest racing the audit query",
              "Darshan trickle through the mutation RPCs + continuous "
              "suspicious-user audits; per-travel snapshot pins make every "
              "audit answer exact (monotone + final-equality gates)");

  const uint32_t servers = ServersOrSmoke(4);
  engine::ClusterConfig ccfg;
  ccfg.num_servers = servers;
  ccfg.workers_per_server = cfg.workers_per_server;
  ccfg.device.access_latency_us = cfg.access_latency_us;
  ccfg.device.warm_latency_us = cfg.warm_latency_us;
  ccfg.device.per_kib_us = cfg.per_kib_us;
  ccfg.device.tail_prob = cfg.tail_prob;
  ccfg.device.tail_mult = cfg.tail_mult;
  ccfg.net.latency_us = cfg.net_latency_us;
  ccfg.exec_timeout_ms = 600000;  // load phases must not trip failure detection
  auto cluster_or = engine::Cluster::Create(ccfg);
  if (!cluster_or.ok()) {
    std::fprintf(stderr, "load_mutate: cluster create failed: %s\n",
                 cluster_or.status().ToString().c_str());
    return 1;
  }
  engine::Cluster* cluster = cluster_or->get();

  // Generate against the cluster's own catalog: the stream carries names,
  // but the audit plan and the reference evaluator need the shared ids.
  graph::Catalog* catalog = cluster->catalog();
  gen::DarshanConfig dcfg;
  dcfg.users = g_smoke ? 4 : 16;
  dcfg.jobs_per_user_max = g_smoke ? 4 : 12;
  dcfg.execs_per_job_max = g_smoke ? 3 : 6;
  dcfg.files = g_smoke ? 256 : 2048;
  dcfg.seed = 2013;
  gen::DarshanGenerator generator(dcfg);
  const graph::RefGraph g = generator.Build(catalog);
  const std::vector<IngestOp> stream = FlattenDarshan(g, catalog);

  // The Table III audit shape, anchored at one user.
  auto plan = lang::GTravel(catalog)
                  .v({generator.UserVid(1)})
                  .e("run")
                  .ea("ts", lang::FilterOp::kRange,
                      {graph::PropValue(dcfg.ts_begin), graph::PropValue(dcfg.ts_end)})
                  .e("hasExecutions")
                  .e("write")
                  .e("readBy")
                  .e("write")
                  .rtn()
                  .Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "load_mutate: plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  // Ingest pool: vertices fan out across threads, one barrier, then edges —
  // the only ordering kPutEdge's endpoint validation needs.
  const uint32_t ingest_threads = g_smoke ? 2 : 4;
  const size_t vertex_ops =
      static_cast<size_t>(std::count_if(stream.begin(), stream.end(), [](const IngestOp& op) {
        return op.kind == IngestOp::kVertex;
      }));
  std::atomic<uint64_t> ingest_failures{0};
  std::atomic<bool> ingest_done{false};
  Stopwatch ingest_wall;
  std::thread ingest([&] {
    auto run_range = [&](size_t begin, size_t end) {
      std::vector<std::thread> pool;
      for (uint32_t t = 0; t < ingest_threads; t++) {
        pool.emplace_back([&, t]() {
          auto client = cluster->NewClient();
          for (size_t i = begin + t; i < end; i += ingest_threads) {
            const IngestOp& op = stream[i];
            const Status s =
                op.kind == IngestOp::kVertex
                    ? client->PutVertex(op.src, op.label, op.props)
                    : client->PutEdge(op.src, op.label, op.dst, op.props);
            if (!s.ok()) ingest_failures.fetch_add(1);
          }
        });
      }
      for (auto& th : pool) th.join();
    };
    run_range(0, vertex_ops);            // all vertices...
    run_range(vertex_ops, stream.size());  // ...then all edges
    ingest_done.store(true);
  });

  // Auditor: serial audits (cycling the three engines) for as long as ingest
  // runs. Serial ⇒ each audit's pin points strictly follow the previous
  // audit's, and the stream is insert-only ⇒ result sets must only grow.
  constexpr engine::EngineMode kModes[] = {engine::EngineMode::kGraphTrek,
                                           engine::EngineMode::kSync,
                                           engine::EngineMode::kAsyncPlain};
  auto auditor = cluster->NewClient();
  uint64_t audits = 0, audit_failures = 0;
  double audit_ms_total = 0;
  size_t prev_count = 0;
  bool monotone = true;
  while (!ingest_done.load()) {
    engine::RunOptions opts;
    opts.mode = kModes[audits % 3];
    auto result = auditor->Run(*plan, opts);
    if (!result.ok()) {
      audit_failures++;
      continue;
    }
    audits++;
    audit_ms_total += result->elapsed_ms;
    if (result->vids.size() < prev_count) {
      std::fprintf(stderr,
                   "load_mutate: TORN READ: audit %" PRIu64 " (%s) returned %zu "
                   "results after an earlier audit returned %zu\n",
                   audits, engine::EngineModeName(opts.mode), result->vids.size(),
                   prev_count);
      monotone = false;
    }
    prev_count = std::max(prev_count, result->vids.size());
  }
  ingest.join();
  const double ingest_s = ingest_wall.ElapsedMillis() / 1000.0;
  const double ops_per_sec =
      ingest_s > 0 ? static_cast<double>(stream.size()) / ingest_s : 0;
  std::printf("ingest: %zu mutations in %.2fs  %.0f ops/s  (%" PRIu64 " failed)\n",
              stream.size(), ingest_s, ops_per_sec, ingest_failures.load());
  std::printf("audits while ingesting: %" PRIu64 " (%" PRIu64 " failed)  "
              "mean=%.2fms  monotone=%s  last_count=%zu\n",
              audits, audit_failures, audits ? audit_ms_total / audits : 0.0,
              monotone ? "yes" : "NO (torn read)", prev_count);

  // Final equality: the quiesced graph must answer exactly like the
  // reference evaluator, on every engine.
  const std::vector<graph::VertexId> oracle =
      lang::EvaluatePlanOnRefGraph(*plan, g, *catalog);
  bool final_match = true;
  for (auto mode : kModes) {
    engine::RunOptions opts;
    opts.mode = mode;
    auto result = auditor->Run(*plan, opts);
    if (!result.ok() || result->vids != oracle) {
      std::fprintf(stderr, "load_mutate: final audit mismatch on %s\n",
                   engine::EngineModeName(mode));
      final_match = false;
    }
  }
  std::printf("final audit: %zu results on all three engines, reference match=%s\n",
              oracle.size(), final_match ? "yes" : "NO");

  // Snapshot accounting straight from the kv layer: every pin released, and
  // no travel left a snapshot behind to block compaction forever. Completion
  // fans the release out asynchronously, so give stragglers a bounded drain.
  uint64_t live = 0;
  for (int spin = 0; spin < 1000; spin++) {
    live = 0;
    for (uint32_t s = 0; s < servers; s++) {
      live += cluster->store(s)->db()->NumLiveSnapshots();
    }
    if (live == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  uint64_t pins = 0, releases = 0, preserved = 0;
  for (uint32_t s = 0; s < servers; s++) {
    const kv::KvStats& st = cluster->store(s)->db()->stats();
    pins += st.snapshots_taken.load();
    releases += st.snapshots_released.load();
    preserved += st.snapshot_preserved_versions.load();
  }
  std::printf("snapshots: taken=%" PRIu64 " released=%" PRIu64
              " live_after=%" PRIu64 " compaction_preserved_versions=%" PRIu64 "\n",
              pins, releases, live, preserved);
  PrintRpcStats(3);

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"load_mutate\",\n"
                 "  \"smoke\": %s,\n"
                 "  \"servers\": %u,\n"
                 "  \"ingest\": {\"mutations\": %zu, \"wall_s\": %.3f, "
                 "\"ops_per_sec\": %.1f, \"failures\": %" PRIu64 "},\n"
                 "  \"audits\": {\"count\": %" PRIu64 ", \"failures\": %" PRIu64
                 ", \"mean_ms\": %.3f, \"monotone\": %s, \"final_results\": %zu, "
                 "\"final_match\": %s},\n"
                 "  \"snapshots\": {\"taken\": %" PRIu64 ", \"released\": %" PRIu64
                 ", \"live_after\": %" PRIu64 ", \"preserved_versions\": %" PRIu64 "}\n"
                 "}\n",
                 g_smoke ? "true" : "false", servers, stream.size(), ingest_s,
                 ops_per_sec, ingest_failures.load(), audits, audit_failures,
                 audits ? audit_ms_total / audits : 0.0, monotone ? "true" : "false",
                 oracle.size(), final_match ? "true" : "false", pins, releases, live,
                 preserved);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "load_mutate: cannot write %s\n", json_path.c_str());
    return 1;
  }

  // The smoke gate is the snapshot-isolation contract itself.
  if (!monotone || !final_match || ingest_failures.load() != 0 ||
      audit_failures != 0 || live != 0) {
    std::fprintf(stderr, "load_mutate: consistency gate FAILED\n");
    return 1;
  }
  return 0;
}
