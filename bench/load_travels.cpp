// Multi-tenant travel load generator (PR 7): drives the admission /
// deadline / cancellation front end and reports travel latency percentiles
// and throughput *from the metrics registry* (the same figures an operator
// would scrape), persisting them as BENCH_7.json.
//
// Three phases:
//   closed-loop  - T worker threads, each submit->await in a loop (classic
//                  closed system; measures saturated travels/sec + p50/p99).
//   open-loop    - the same workers paced to an aggregate target rate
//                  (arrival-driven; latency includes admission queueing).
//   lifecycle    - admission burst past the interactive class limit,
//                  client-cancelled travels, and sub-deadline travels, to
//                  exercise rejection/cancel/deadline accounting end to end.
//
//   load_travels [--smoke] [--json FILE]
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/clock.h"

namespace gt::bench {
namespace {

using engine::EngineMode;
using engine::RunOptions;
using engine::TravelClass;

// Cumulative gt_travel_duration_ms distribution, aggregated across every
// label set (server, mode), keyed by inclusive upper edge (+Inf = infinity).
std::map<double, double> DurationBuckets() {
  std::map<double, double> cum;
  for (const auto& s : metrics::Registry::Default()->Collect("gt_travel_duration_ms")) {
    if (s.name != "gt_travel_duration_ms_bucket") continue;
    double le = std::numeric_limits<double>::infinity();
    for (const auto& [k, v] : s.labels) {
      if (k == "le" && v != "+Inf") le = std::stod(v);
    }
    cum[le] += s.value;
  }
  return cum;
}

// Linear-interpolated quantile of the delta between two cumulative bucket
// snapshots. Returns 0 when the window observed nothing.
double QuantileMs(const std::map<double, double>& before,
                  const std::map<double, double>& after, double q) {
  std::map<double, double> delta;
  for (const auto& [le, v] : after) {
    auto it = before.find(le);
    delta[le] = v - (it == before.end() ? 0.0 : it->second);
  }
  if (delta.empty()) return 0.0;
  const double total = delta.rbegin()->second;  // +Inf bucket
  if (total <= 0) return 0.0;
  const double target = q * total;
  double prev_edge = 0.0, prev_cum = 0.0, last_finite = 0.0;
  for (const auto& [le, cum] : delta) {
    if (std::isinf(le)) {
      // Landed in the overflow bucket: report the largest finite edge.
      return last_finite > 0 ? last_finite : prev_edge;
    }
    last_finite = le;
    if (cum >= target) {
      const double in_bucket = cum - prev_cum;
      if (in_bucket <= 0) return le;
      return prev_edge + (le - prev_edge) * ((target - prev_cum) / in_bucket);
    }
    prev_edge = le;
    prev_cum = cum;
  }
  return last_finite;
}

struct PhaseReport {
  uint64_t travels = 0;
  uint64_t failures = 0;
  double wall_s = 0;
  double travels_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

}  // namespace
}  // namespace gt::bench

int main(int argc, char** argv) {
  using namespace gt;
  using namespace gt::bench;

  // Peel off --json before the shared parser (it rejects unknown flags).
  std::string json_path = "BENCH_7.json";
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  BenchConfig cfg;
  ParseBenchArgs(static_cast<int>(rest.size()), rest.data(), &cfg);

  PrintHeader("load_travels: multi-tenant admission/cancellation load generator",
              "closed-loop + open-loop travel load; p50/p99 and travels/sec from "
              "the metrics registry; lifecycle (reject/cancel/deadline) slice");

  const uint32_t servers = ServersOrSmoke(4);
  graph::Catalog catalog;
  const graph::RefGraph g = BuildRmat1(&catalog, cfg);

  engine::ClusterConfig ccfg;
  ccfg.num_servers = servers;
  ccfg.workers_per_server = cfg.workers_per_server;
  ccfg.device.access_latency_us = cfg.access_latency_us;
  ccfg.device.warm_latency_us = cfg.warm_latency_us;
  ccfg.device.per_kib_us = cfg.per_kib_us;
  ccfg.device.tail_prob = cfg.tail_prob;
  ccfg.device.tail_mult = cfg.tail_mult;
  ccfg.net.latency_us = cfg.net_latency_us;
  ccfg.exec_timeout_ms = 600000;  // load phases must not trip failure detection
  // Interactive is kept scarce so the lifecycle slice can overflow it; the
  // classes the load phases use are sized above their concurrency.
  ccfg.admission_limits = {{4, 64, 128}};
  auto cluster_or = engine::Cluster::Create(ccfg);
  if (!cluster_or.ok()) {
    std::fprintf(stderr, "load_travels: cluster create failed: %s\n",
                 cluster_or.status().ToString().c_str());
    return 1;
  }
  engine::Cluster* cluster = cluster_or->get();
  cluster->catalog()->CopyFrom(catalog);
  if (auto s = cluster->Load(g); !s.ok()) {
    std::fprintf(stderr, "load_travels: load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const uint32_t threads = g_smoke ? 4 : 16;
  const uint32_t travels_per_thread = g_smoke ? 8 : 60;

  // One worker body serves both phases: pace_us == 0 is closed-loop;
  // otherwise each worker schedules arrivals pace_us apart (aggregate rate
  // threads / pace_us), submitting late if the previous travel overran.
  auto run_phase = [&](uint64_t pace_us, PhaseReport* report) {
    std::atomic<uint64_t> ok_count{0}, fail_count{0};
    const auto buckets_before = DurationBuckets();
    const uint64_t completed_before = MetricTotal("gt_travel_completed_total");
    Stopwatch wall;
    std::vector<std::thread> pool;
    for (uint32_t t = 0; t < threads; t++) {
      pool.emplace_back([&, t]() {
        auto client = cluster->NewClient();
        RunOptions opts;
        opts.mode = EngineMode::kGraphTrek;
        opts.coordinator = t % servers;
        opts.priority = (t % 2) == 0 ? TravelClass::kNormal : TravelClass::kBatch;
        const uint64_t start_us = NowMicros();
        for (uint32_t k = 0; k < travels_per_thread; k++) {
          if (pace_us != 0) {
            const uint64_t due = start_us + k * pace_us;
            uint64_t now = NowMicros();
            while (now < due) {
              std::this_thread::sleep_for(std::chrono::microseconds(due - now));
              now = NowMicros();
            }
          }
          const auto plan =
              HopPlan(&catalog, (kBenchSource + t * travels_per_thread + k) % 97, 2);
          auto result = client->Run(plan, opts);
          if (result.ok()) {
            ok_count.fetch_add(1);
          } else {
            fail_count.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : pool) th.join();
    report->wall_s = wall.ElapsedMillis() / 1000.0;
    report->travels = ok_count.load();
    report->failures = fail_count.load();
    const uint64_t completed = MetricTotal("gt_travel_completed_total") - completed_before;
    report->travels_per_sec =
        report->wall_s > 0 ? static_cast<double>(completed) / report->wall_s : 0;
    const auto buckets_after = DurationBuckets();
    report->p50_ms = QuantileMs(buckets_before, buckets_after, 0.50);
    report->p99_ms = QuantileMs(buckets_before, buckets_after, 0.99);
  };

  PhaseReport closed, open;
  run_phase(0, &closed);
  std::printf("closed-loop: %" PRIu64 " travels (%" PRIu64 " failed) in %.2fs  "
              "%.1f travels/s  p50=%.2fms p99=%.2fms\n",
              closed.travels, closed.failures, closed.wall_s,
              closed.travels_per_sec, closed.p50_ms, closed.p99_ms);

  // Open loop: target ~60% of the closed-loop rate so queues stay bounded
  // but admission queueing is visible in the percentiles.
  const double target_rate = std::max(1.0, closed.travels_per_sec * 0.6);
  const uint64_t pace_us =
      static_cast<uint64_t>(1e6 * static_cast<double>(threads) / target_rate);
  run_phase(pace_us, &open);
  std::printf("open-loop (target %.1f travels/s): %" PRIu64 " travels "
              "(%" PRIu64 " failed) in %.2fs  %.1f travels/s  p50=%.2fms p99=%.2fms\n",
              target_rate, open.travels, open.failures, open.wall_s,
              open.travels_per_sec, open.p50_ms, open.p99_ms);

  // --- lifecycle slice -------------------------------------------------------
  // (a) Admission burst: 3x the interactive limit of slow 4-hop travels,
  // submitted back-to-back from separate clients. The overflow must bounce
  // with Unavailable while the admitted ones complete normally.
  uint64_t burst_admitted = 0, burst_rejected = 0, burst_other = 0;
  {
    const uint32_t burst = ccfg.admission_limits[0] * 3;
    std::vector<std::unique_ptr<engine::GraphTrekClient>> clients;
    std::vector<engine::TravelId> admitted;
    std::vector<size_t> admitted_client;
    RunOptions opts;
    opts.priority = TravelClass::kInteractive;
    for (uint32_t i = 0; i < burst; i++) {
      clients.push_back(cluster->NewClient());
      auto travel = clients.back()->Submit(
          HopPlan(&catalog, (kBenchSource + i) % 97, 4), opts);
      if (travel.ok()) {
        admitted.push_back(*travel);
        admitted_client.push_back(clients.size() - 1);
        burst_admitted++;
      } else if (travel.status().IsUnavailable()) {
        burst_rejected++;
      } else {
        burst_other++;
      }
    }
    for (size_t i = 0; i < admitted.size(); i++) {
      auto result = clients[admitted_client[i]]->Await(admitted[i], 600000);
      if (!result.ok()) burst_other++;
    }
  }
  std::printf("admission burst: admitted=%" PRIu64 " rejected=%" PRIu64
              " other=%" PRIu64 "\n",
              burst_admitted, burst_rejected, burst_other);

  // (b) Client-cancelled travels: give up almost immediately; the Await
  // timeout path fans the abort out and the travel counts as cancelled.
  uint64_t cancels_sent = 0;
  {
    auto client = cluster->NewClient();
    RunOptions opts;
    const uint32_t n = g_smoke ? 2 : 6;
    for (uint32_t i = 0; i < n; i++) {
      auto travel = client->Submit(HopPlan(&catalog, (kBenchSource + i) % 97, 4), opts);
      if (!travel.ok()) continue;
      auto result = client->Await(*travel, 1);
      if (!result.ok() && result.status().IsTimeout()) cancels_sent++;
    }
  }

  // (c) Sub-deadline travels: a deadline far below a 4-hop travel's cost;
  // the server must fail them with Timeout (no client cancel involved).
  uint64_t deadline_hits = 0;
  {
    auto client = cluster->NewClient();
    RunOptions opts;
    opts.deadline_ms = 1;
    opts.client_timeout_ms = 60000;
    const uint32_t n = g_smoke ? 2 : 6;
    for (uint32_t i = 0; i < n; i++) {
      auto result =
          client->Run(HopPlan(&catalog, (kBenchSource + 31 + i) % 97, 4), opts);
      if (!result.ok() && result.status().IsTimeout()) deadline_hits++;
    }
  }
  std::printf("lifecycle: cancels_sent=%" PRIu64 " deadline_hits=%" PRIu64 "\n",
              cancels_sent, deadline_hits);

  const uint64_t admitted_total = MetricTotal("gt_travel_admitted_total");
  const uint64_t rejected_total = MetricTotal("gt_travel_rejected_total");
  const uint64_t cancelled_total = MetricTotal("gt_travel_cancelled_total");
  const uint64_t deadline_total = MetricTotal("gt_travel_deadline_exceeded_total");
  std::printf("registry: admitted=%" PRIu64 " rejected=%" PRIu64
              " cancelled=%" PRIu64 " deadline_exceeded=%" PRIu64 "\n",
              admitted_total, rejected_total, cancelled_total, deadline_total);
  PrintRpcStats(3);

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"load_travels\",\n"
                 "  \"smoke\": %s,\n"
                 "  \"servers\": %u,\n"
                 "  \"threads\": %u,\n"
                 "  \"closed_loop\": {\"travels\": %" PRIu64 ", \"failures\": %" PRIu64
                 ", \"wall_s\": %.3f, \"travels_per_sec\": %.2f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f},\n"
                 "  \"open_loop\": {\"target_travels_per_sec\": %.2f, \"travels\": %" PRIu64
                 ", \"failures\": %" PRIu64 ", \"wall_s\": %.3f, "
                 "\"travels_per_sec\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f},\n"
                 "  \"lifecycle\": {\"admitted\": %" PRIu64 ", \"rejected\": %" PRIu64
                 ", \"cancelled\": %" PRIu64 ", \"deadline_exceeded\": %" PRIu64 "}\n"
                 "}\n",
                 g_smoke ? "true" : "false", servers, threads, closed.travels,
                 closed.failures, closed.wall_s, closed.travels_per_sec, closed.p50_ms,
                 closed.p99_ms, target_rate, open.travels, open.failures, open.wall_s,
                 open.travels_per_sec, open.p50_ms, open.p99_ms, admitted_total,
                 rejected_total, cancelled_total, deadline_total);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "load_travels: cannot write %s\n", json_path.c_str());
    return 1;
  }

  // The smoke gate fails on unexpected load-phase errors (admission
  // rejections retry inside Run(); anything surfacing here is a bug).
  if (closed.failures != 0 || open.failures != 0 || burst_other != 0) {
    std::fprintf(stderr, "load_travels: unexpected travel failures\n");
    return 1;
  }
  return 0;
}
