// Micro-benchmarks (google-benchmark) for the graph storage layer: vertex
// writes/reads, per-type edge scans, type-index scans and text export.
#include <benchmark/benchmark.h>

#include <sstream>

#include "src/common/rng.h"
#include "src/graph/graph_store.h"
#include "src/graph/text_io.h"
#include "src/gen/rmat.h"
#include "tests/test_util.h"

namespace {

using namespace gt;
using namespace gt::graph;

std::unique_ptr<GraphStore> OpenStore(const gt::testing::ScopedTempDir& dir,
                                      size_t adjacency_cache_bytes = 0) {
  GraphStoreOptions opts;
  // Default OFF here so the pre-cache benchmarks keep measuring the raw KV
  // path; the *Cached variants opt in explicitly.
  opts.adjacency_cache_bytes = adjacency_cache_bytes;
  auto store = GraphStore::Open(dir.sub("store"), opts);
  if (!store.ok()) std::abort();
  return std::move(*store);
}

void BM_GraphPutVertex(benchmark::State& state) {
  gt::testing::ScopedTempDir dir;
  auto store = OpenStore(dir);
  PropMap props;
  props.Set(1, PropValue(std::string(static_cast<size_t>(state.range(0)), 'a')));
  uint64_t vid = 0;
  for (auto _ : state) {
    VertexRecord v;
    v.id = vid++;
    v.label = 1;
    v.props = props;
    benchmark::DoNotOptimize(store->PutVertex(v));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GraphPutVertex)->Arg(64)->Arg(512);

void BM_GraphGetVertex(benchmark::State& state) {
  gt::testing::ScopedTempDir dir;
  auto store = OpenStore(dir);
  const int n = 10000;
  for (int i = 0; i < n; i++) {
    VertexRecord v;
    v.id = static_cast<VertexId>(i);
    v.label = 1;
    v.props.Set(1, PropValue(std::string(128, 'a')));
    store->PutVertex(v).ok();
  }
  store->Flush().ok();
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->GetVertex(rng.Uniform(n)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GraphGetVertex);

void BM_GraphScanEdgesByType(benchmark::State& state) {
  gt::testing::ScopedTempDir dir;
  auto store = OpenStore(dir);
  // 256 vertices x `range` edges per type x 3 types.
  const int degree = static_cast<int>(state.range(0));
  for (VertexId src = 0; src < 256; src++) {
    for (LabelId label = 0; label < 3; label++) {
      for (int e = 0; e < degree; e++) {
        EdgeRecord rec;
        rec.src = src;
        rec.label = label;
        rec.dst = static_cast<VertexId>(1000 + e);
        store->PutEdge(rec).ok();
      }
    }
  }
  store->Flush().ok();
  Rng rng(1);
  for (auto _ : state) {
    int count = 0;
    store->ScanEdges(rng.Uniform(256), 1, [&](VertexId, const PropMap&) {
      count++;
      return true;
    }).ok();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * degree);
}
BENCHMARK(BM_GraphScanEdgesByType)->Arg(8)->Arg(64);

// Same workload as BM_GraphScanEdgesByType but served from a warm adjacency
// cache: the gap between the two is the per-scan win of the CSR rows.
void BM_GraphScanEdgesCached(benchmark::State& state) {
  gt::testing::ScopedTempDir dir;
  auto store = OpenStore(dir, /*adjacency_cache_bytes=*/64 << 20);
  const int degree = static_cast<int>(state.range(0));
  for (VertexId src = 0; src < 256; src++) {
    for (LabelId label = 0; label < 3; label++) {
      for (int e = 0; e < degree; e++) {
        EdgeRecord rec;
        rec.src = src;
        rec.label = label;
        rec.dst = static_cast<VertexId>(1000 + e);
        store->PutEdge(rec).ok();
      }
    }
  }
  store->Flush().ok();
  store->WarmAdjacency().ok();
  Rng rng(1);
  for (auto _ : state) {
    int count = 0;
    store->ScanEdges(rng.Uniform(256), 1, [&](VertexId, const PropMap&) {
      count++;
      return true;
    }).ok();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * degree);
}
BENCHMARK(BM_GraphScanEdgesCached)->Arg(8)->Arg(64);

// Batched vertex lookups vs the per-key loop in BM_GraphGetVertex: one
// snapshot walk per batch instead of one per key.
void BM_GraphMultiGetVertices(benchmark::State& state) {
  gt::testing::ScopedTempDir dir;
  auto store = OpenStore(dir);
  const int n = 10000;
  for (int i = 0; i < n; i++) {
    VertexRecord v;
    v.id = static_cast<VertexId>(i);
    v.label = 1;
    v.props.Set(1, PropValue(std::string(128, 'a')));
    store->PutVertex(v).ok();
  }
  store->Flush().ok();
  const int batch = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    std::vector<GraphStore::VertexLookup> lookups(static_cast<size_t>(batch));
    for (auto& lk : lookups) lk.vid = rng.Uniform(n);
    store->MultiGetVertices(&lookups).ok();
    benchmark::DoNotOptimize(lookups.back().found);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_GraphMultiGetVertices)->Arg(16)->Arg(64);

void BM_GraphTypeIndexScan(benchmark::State& state) {
  gt::testing::ScopedTempDir dir;
  auto store = OpenStore(dir);
  for (VertexId v = 0; v < 8192; v++) {
    VertexRecord rec;
    rec.id = v;
    rec.label = static_cast<LabelId>(v % 8);
    store->PutVertex(rec).ok();
  }
  store->Flush().ok();
  for (auto _ : state) {
    int count = 0;
    store->ScanVerticesByType(3, [&](VertexId) {
      count++;
      return true;
    }).ok();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_GraphTypeIndexScan);

void BM_TextExport(benchmark::State& state) {
  Catalog catalog;
  gen::RmatConfig cfg;
  cfg.scale = 10;
  cfg.avg_degree = 4;
  cfg.attr_bytes = 32;
  gen::RmatGenerator rmat(cfg);
  RefGraph g = rmat.Build(&catalog);
  for (auto _ : state) {
    std::ostringstream out;
    ExportText(g, catalog, &out).ok();
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_TextExport)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
