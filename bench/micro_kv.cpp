// Micro-benchmarks (google-benchmark) for the embedded KV store: writes,
// point reads, prefix scans, flush and compaction. Component regression
// benches, not paper figures.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/kv/db.h"
#include "tests/test_util.h"

namespace {

using namespace gt;
using namespace gt::kv;

std::string Key(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key%012llu", static_cast<unsigned long long>(i));
  return buf;
}

void BM_KvPut(benchmark::State& state) {
  gt::testing::ScopedTempDir dir;
  auto db = DB::Open(dir.sub("db"), DBOptions{});
  const std::string value(static_cast<size_t>(state.range(0)), 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Put(Key(i++), value));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_KvPut)->Arg(64)->Arg(512)->Arg(4096);

void BM_KvGetHit(benchmark::State& state) {
  gt::testing::ScopedTempDir dir;
  auto db = DB::Open(dir.sub("db"), DBOptions{});
  const int n = 10000;
  for (int i = 0; i < n; i++) (*db)->Put(Key(i), std::string(128, 'v')).ok();
  (*db)->Flush().ok();
  Rng rng(1);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Get(Key(rng.Uniform(n)), &value));
  }
}
BENCHMARK(BM_KvGetHit);

void BM_KvGetMissBloom(benchmark::State& state) {
  gt::testing::ScopedTempDir dir;
  auto db = DB::Open(dir.sub("db"), DBOptions{});
  for (int i = 0; i < 10000; i++) (*db)->Put(Key(i), "v").ok();
  (*db)->Flush().ok();
  Rng rng(1);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Get(Key(1000000 + rng.Uniform(1000000)), &value));
  }
}
BENCHMARK(BM_KvGetMissBloom);

void BM_KvPrefixScan(benchmark::State& state) {
  gt::testing::ScopedTempDir dir;
  auto db = DB::Open(dir.sub("db"), DBOptions{});
  // 128 groups of `range` adjacent keys, like edges grouped under a vertex.
  const int group = static_cast<int>(state.range(0));
  for (int g = 0; g < 128; g++) {
    for (int i = 0; i < group; i++) {
      (*db)->Put("g" + std::to_string(1000 + g) + "/" + Key(i), std::string(64, 'e')).ok();
    }
  }
  (*db)->Flush().ok();
  Rng rng(1);
  for (auto _ : state) {
    int count = 0;
    (*db)->ScanPrefix("g" + std::to_string(1000 + rng.Uniform(128)) + "/",
                      [&](Slice, Slice) {
                        count++;
                        return true;
                      })
        .ok();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * group);
}
BENCHMARK(BM_KvPrefixScan)->Arg(8)->Arg(64);

void BM_KvCompactAll(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    gt::testing::ScopedTempDir dir;
    DBOptions opts;
    opts.background_compaction = false;
    auto db = DB::Open(dir.sub("db"), opts);
    for (int round = 0; round < 4; round++) {
      for (int i = 0; i < 2000; i++) (*db)->Put(Key(i), std::string(64, 'v')).ok();
      (*db)->Flush().ok();
    }
    state.ResumeTiming();
    (*db)->CompactAll().ok();
  }
}
BENCHMARK(BM_KvCompactAll)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
