// Micro-benchmarks (google-benchmark) for the RPC fabric and the engine's
// per-server data structures (traversal-affiliate cache, request queue).
#include <benchmark/benchmark.h>

#include "src/common/metrics.h"
#include "src/common/sync.h"
#include "src/engine/request_queue.h"
#include "src/engine/travel_cache.h"
#include "src/rpc/inproc_transport.h"
#include "src/rpc/mailbox.h"

namespace {

using namespace gt;

void BM_InprocSendDeliver(benchmark::State& state) {
  rpc::InProcTransport transport;
  std::atomic<uint64_t> delivered{0};
  transport.RegisterEndpoint(1, [&](rpc::Message&&) { delivered.fetch_add(1); }).ok();
  uint64_t sent = 0;
  for (auto _ : state) {
    rpc::Message m;
    m.type = rpc::MsgType::kPing;
    m.dst = 1;
    m.payload.assign(static_cast<size_t>(state.range(0)), 'x');
    transport.Send(std::move(m)).ok();
    sent++;
  }
  while (delivered.load() < sent) std::this_thread::yield();
  state.SetItemsProcessed(static_cast<int64_t>(sent));
}
BENCHMARK(BM_InprocSendDeliver)->Arg(64)->Arg(4096);

void BM_MailboxCallRoundTrip(benchmark::State& state) {
  rpc::InProcTransport transport;
  transport
      .RegisterEndpoint(1,
                        [&](rpc::Message&& m) {
                          rpc::Message reply;
                          reply.dst = m.src;
                          reply.rpc_id = m.rpc_id;
                          transport.Send(std::move(reply)).ok();
                        })
      .ok();
  rpc::Mailbox mailbox(&transport, rpc::kClientIdBase);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mailbox.Call(1, rpc::MsgType::kPing, "x"));
  }
}
BENCHMARK(BM_MailboxCallRoundTrip);

void BM_TravelCacheLookupInsert(benchmark::State& state) {
  engine::TravelCache cache(1 << 20);
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = cache.LookupOrInsertPending(1, static_cast<uint32_t>(i % 8), i % 100000);
    if (r.state == engine::TravelCache::State::kMiss) {
      cache.Resolve(1, static_cast<uint32_t>(i % 8), i % 100000, true);
    }
    benchmark::DoNotOptimize(r);
    i++;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TravelCacheLookupInsert);

void BM_TravelCacheEvictionChurn(benchmark::State& state) {
  engine::TravelCache cache(static_cast<size_t>(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    cache.LookupOrInsertPending(1, static_cast<uint32_t>(i % 8), i);
    cache.Resolve(1, static_cast<uint32_t>(i % 8), i, false);
    i++;
  }
  state.counters["evictions"] = static_cast<double>(cache.evictions());
}
BENCHMARK(BM_TravelCacheEvictionChurn)->Arg(1024)->Arg(65536);

void BM_RequestQueuePushPop(benchmark::State& state) {
  const bool merging = state.range(0) != 0;
  engine::RequestQueue q;
  std::vector<engine::VertexTask> batch;
  uint64_t i = 0;
  for (auto _ : state) {
    // Two tasks per vertex (distinct steps) so merging has work to do.
    q.Push(engine::VertexTask{1, 1, i % 512, 1, true, false}, true, merging);
    q.Push(engine::VertexTask{1, 2, i % 512, 2, true, false}, true, merging);
    q.PopBatch(&batch);
    if (!merging) q.PopBatch(&batch);
    i++;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_RequestQueuePushPop)->Arg(0)->Arg(1);

// Registry hot-path costs: instrumented code touches only these two
// operations, so they bound the observability overhead per event.
void BM_MetricsCounterInc(benchmark::State& state) {
  metrics::Registry registry;
  metrics::Counter* c = registry.GetCounter("bm_counter_total", {{"k", "v"}});
  for (auto _ : state) c->Inc();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  metrics::Registry registry;
  metrics::Histogram* h = registry.GetHistogram(
      "bm_latency_ms", {}, metrics::Histogram::LatencyBucketsMs());
  double v = 0.1;
  for (auto _ : state) {
    h->Observe(v);
    v = v < 8000 ? v * 1.7 : 0.1;  // walk across the bucket ladder
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHistogramObserve);

}  // namespace

BENCHMARK_MAIN();
