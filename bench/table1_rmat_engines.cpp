// Table I reproduction: "Performance comparison on RMAT-1 graph".
// 8-step graph traversal; Sync-GT vs Async-GT vs GraphTrek on 2-32 servers.
//
// Paper (seconds, 2^20 vertices, real cluster):
//   servers  Sync-GT  Async-GT  GraphTrek
//        2     47.8      63.7       45.2
//        4     28.5      33.1       22.5
//        8     17.1      20.6       13.4
//       16     10.3      12.1        8.3
//       32      7.2       7.4        5.6
// Claim shape: Async-GT is the slowest (redundant visits pay full I/O);
// GraphTrek beats Sync-GT, with a margin that grows with server count.
#include "bench/bench_util.h"

using namespace gt;
using namespace gt::bench;

int main(int argc, char** argv) {
  PrintHeader("Table I: 8-step traversal on RMAT-1, all three engines",
              "elapsed ms per engine (scaled-down graph; see DESIGN.md)");

  BenchConfig cfg;
  ParseBenchArgs(argc, argv, &cfg);
  graph::Catalog catalog;
  graph::RefGraph g = BuildRmat1(&catalog, cfg);
  const auto plan = HopPlan(&catalog, kBenchSource, 8);

  std::printf("%-8s %12s %12s %12s\n", "servers", "Sync-GT", "Async-GT", "GraphTrek");
  for (uint32_t servers : ServerSweep({2u, 4u, 8u, 16u, 32u})) {
    BenchCluster cluster(servers, cfg, &catalog, g);
    const double sync_ms = cluster.RunAveraged(plan, engine::EngineMode::kSync, cfg.runs);
    const double async_ms =
        cluster.RunAveraged(plan, engine::EngineMode::kAsyncPlain, cfg.runs);
    const double gt_ms = cluster.RunAveraged(plan, engine::EngineMode::kGraphTrek, cfg.runs);
    std::printf("%-8u %9.1f ms %9.1f ms %9.1f ms\n", servers, sync_ms, async_ms, gt_ms);
    std::fflush(stdout);
  }
  std::printf("\npaper reference (s): 2:[47.8/63.7/45.2] 4:[28.5/33.1/22.5] "
              "8:[17.1/20.6/13.4] 16:[10.3/12.1/8.3] 32:[7.2/7.4/5.6]\n");
  return 0;
}
