// Table II reproduction: "Statistics of Rich Metadata Graph".
//
// The paper imports one year of Darshan logs from Intrepid (177 users,
// 47.6K jobs, 123.4M executions, 34.6M files, 239.8M edges). We do not have
// those traces; this bench generates the synthetic Darshan-style graph at
// the benchmark scale and prints the same statistics row, plus schema and
// skew summaries demonstrating the structure matches (heterogeneous
// user/job/execution/file schema, power-law file popularity).
#include <algorithm>

#include "bench/bench_util.h"
#include "src/gen/darshan.h"

using namespace gt;
using namespace gt::bench;

int main(int argc, char** argv) {
  PrintHeader("Table II: statistics of the rich-metadata graph",
              "synthetic Darshan-style generator at bench scale (see DESIGN.md)");

  BenchConfig bcfg;
  ParseBenchArgs(argc, argv, &bcfg);
  graph::Catalog catalog;
  gen::DarshanConfig cfg;
  cfg.users = g_smoke ? 16 : 177;  // paper's user count; volume knobs scaled down
  cfg.jobs_per_user_max = g_smoke ? 8 : 64;
  cfg.execs_per_job_max = g_smoke ? 4 : 16;
  cfg.files = g_smoke ? 1024 : 16384;
  cfg.seed = 2013;
  gen::DarshanGenerator generator(cfg);
  Stopwatch watch;
  graph::RefGraph g = generator.Build(&catalog);
  const double gen_ms = watch.ElapsedMillis();
  const auto& stats = generator.stats();

  std::printf("%-12s %-10s %-14s %-10s %-10s\n", "Users", "Jobs", "Executions", "Files",
              "Edges");
  std::printf("%-12llu %-10llu %-14llu %-10llu %-10llu\n",
              static_cast<unsigned long long>(stats.users),
              static_cast<unsigned long long>(stats.jobs),
              static_cast<unsigned long long>(stats.executions),
              static_cast<unsigned long long>(stats.files),
              static_cast<unsigned long long>(stats.edges));
  std::printf("(paper, full-year Intrepid: 177 / 47600 / 123.4M / 34.6M / 239.8M)\n\n");

  // Power-law check: top-decile file popularity share.
  const auto read_by = catalog.Lookup("readBy");
  std::vector<size_t> degrees;
  degrees.reserve(cfg.files);
  for (uint32_t f = 0; f < cfg.files; f++) {
    degrees.push_back(g.Edges(generator.FileVid(f), read_by).size());
  }
  std::sort(degrees.rbegin(), degrees.rend());
  uint64_t total = 0, hot = 0;
  for (size_t i = 0; i < degrees.size(); i++) {
    total += degrees[i];
    if (i < degrees.size() / 10) hot += degrees[i];
  }
  const auto deg = g.OutDegreeStats();
  std::printf("degree: min=%llu max=%llu mean=%.2f\n",
              static_cast<unsigned long long>(deg.min),
              static_cast<unsigned long long>(deg.max), deg.mean);
  std::printf("file-popularity skew: top 10%% of files receive %.1f%% of reads "
              "(power-law, as the paper reports for the real graph)\n",
              total == 0 ? 0.0 : 100.0 * static_cast<double>(hot) / static_cast<double>(total));
  std::printf("generation time: %.1f ms, %zu vertices, %zu edges\n", gen_ms,
              g.num_vertices(), g.num_edges());
  return 0;
}
