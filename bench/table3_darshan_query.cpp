// Table III reproduction: "Performance comparison on Darshan graph".
// The suspicious-user audit query on the rich-metadata graph, 32 servers:
//
//   GTravel.v(suspectUser).e('run').ea('ts',RANGE,[ts,te])  // select jobs
//          .e('hasExecutions')                              // executions
//          .e('write')                                      // outputs
//          .e('readBy')                                     // executions
//          .e('write').rtn()                                // their outputs
//
// Paper (ms, 32 servers, real graph):  Sync-GT 3575 | Async-GT 4159 |
// GraphTrek 2839. Claim shape: GraphTrek < Sync-GT < Async-GT.
#include "bench/bench_util.h"
#include "src/gen/darshan.h"

using namespace gt;
using namespace gt::bench;

int main(int argc, char** argv) {
  PrintHeader("Table III: suspicious-user audit query on the Darshan-style graph",
              "5-hop heterogeneous traversal with rtn(), 32 servers");

  BenchConfig cfg;
  ParseBenchArgs(argc, argv, &cfg);
  graph::Catalog catalog;
  gen::DarshanConfig dcfg;
  dcfg.users = g_smoke ? 12 : 96;
  dcfg.jobs_per_user_max = g_smoke ? 8 : 48;
  dcfg.execs_per_job_max = g_smoke ? 4 : 12;
  dcfg.files = g_smoke ? 512 : 8192;
  dcfg.seed = 2013;
  gen::DarshanGenerator generator(dcfg);
  graph::RefGraph g = generator.Build(&catalog);
  std::printf("graph: %zu vertices, %zu edges\n\n", g.num_vertices(), g.num_edges());

  auto plan = lang::GTravel(&catalog)
                  .v({generator.UserVid(7)})  // the "randomized user"
                  .e("run")
                  .ea("ts", lang::FilterOp::kRange,
                      {graph::PropValue(dcfg.ts_begin), graph::PropValue(dcfg.ts_end)})
                  .e("hasExecutions")
                  .e("write")
                  .e("readBy")
                  .e("write")
                  .rtn()
                  .Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  std::printf("%-8s %12s %12s %12s\n", "servers", "Sync-GT", "Async-GT", "GraphTrek");
  for (uint32_t servers : ServerSweep({8u, 16u, 32u})) {
    BenchCluster cluster(servers, cfg, &catalog, g);
    const double sync_ms = cluster.Run(*plan, engine::EngineMode::kSync);
    const double async_ms = cluster.Run(*plan, engine::EngineMode::kAsyncPlain);
    const double gt_ms = cluster.Run(*plan, engine::EngineMode::kGraphTrek);
    std::printf("%-8u %9.1f ms %9.1f ms %9.1f ms\n", servers, sync_ms, async_ms, gt_ms);
    std::fflush(stdout);
  }
  std::printf("\npaper reference @32 servers (ms): Sync-GT 3575 | Async-GT 4159 | "
              "GraphTrek 2839\n");
  return 0;
}
