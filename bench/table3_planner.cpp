// Planner ablation on Table III-style Darshan audit queries (PR 10): the
// suspicious-user audits rewritten with the extended GTravel steps
// (count/group/path/branch/until) and run twice — once against a cluster
// with the statistics-driven planner off, once with it on — on all three
// engines. The planner's rewrites (selectivity-ordered filter lists,
// type-scan predicate pushdown, batched-vs-single fetch hints) are
// result-identical by construction, so the bench doubles as a cheap
// correctness gate: any on/off result divergence fails the run.
//
// Reported per query and engine: planner-off ms, planner-on ms, speedup.
// The headline number is the filter-heavy scan-start query, where pushdown
// keeps non-matching vertices from ever becoming root executions.
// Persists BENCH_10.json.
//
//   table3_planner [--smoke] [--json FILE]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/gen/darshan.h"

namespace gt::bench {
namespace {

struct QueryCase {
  std::string name;
  lang::TraversalPlan plan;
};

lang::TraversalPlan MustBuild(Result<lang::TraversalPlan> plan, const char* what) {
  if (!plan.ok()) {
    std::fprintf(stderr, "table3_planner: %s: %s\n", what,
                 plan.status().ToString().c_str());
    std::abort();
  }
  return *plan;
}

// The audit workload: each query leans on one of the new language steps,
// and the first two are filter-heavy enough for the planner to matter.
std::vector<QueryCase> BuildQueries(graph::Catalog* catalog,
                                    const gen::DarshanGenerator& generator) {
  const gen::DarshanConfig& dcfg = generator.config();
  std::vector<QueryCase> queries;

  // Filter-heavy scan start: "how many executions read a large file?"
  // Planner-on pushes the size predicate into the type-index scan, so only
  // matching files become root execs; planner-off roots every File vertex
  // and filters at processing time.
  queries.push_back(
      {"big_files_readby_count",
       MustBuild(lang::GTravel(catalog)
                     .v()
                     .va("type", lang::FilterOp::kEq, {graph::PropValue("File")})
                     .va("size", lang::FilterOp::kRange,
                         {graph::PropValue(int64_t{3} << 28),
                          graph::PropValue(int64_t{1} << 30)})
                     .e("readBy")
                     .count()
                     .Build(),
                 "big_files_readby_count")});

  // Filter-heavy scan start over jobs in a narrow time window, with an
  // until() terminal picking out one execution shape.
  const int64_t window = (dcfg.ts_end - dcfg.ts_begin) / 8;
  queries.push_back(
      {"job_window_until_count",
       MustBuild(lang::GTravel(catalog)
                     .v()
                     .va("type", lang::FilterOp::kEq, {graph::PropValue("Job")})
                     .va("ts", lang::FilterOp::kRange,
                         {graph::PropValue(dcfg.ts_begin),
                          graph::PropValue(dcfg.ts_begin + window)})
                     .e("hasExecutions")
                     .until("params", lang::FilterOp::kEq,
                            {graph::PropValue("-n 8")})
                     .count()
                     .Build(),
                 "job_window_until_count")});

  // The classic 5-hop suspicious-user audit, returning the full visited
  // chains instead of just the final frontier.
  queries.push_back(
      {"suspicious_user_paths",
       MustBuild(lang::GTravel(catalog)
                     .v({generator.UserVid(7)})
                     .e("run")
                     .ea("ts", lang::FilterOp::kRange,
                         {graph::PropValue(dcfg.ts_begin),
                          graph::PropValue(dcfg.ts_end)})
                     .e("hasExecutions")
                     .e("write")
                     .e("readBy")
                     .e("write")
                     .path()
                     .Build(),
                 "suspicious_user_paths")});

  // Branch across two audit depths from one user, grouped by vertex type:
  // one result mode exercise for the fork/merge + aggregation machinery.
  queries.push_back(
      {"user_reach_branch_group",
       MustBuild(lang::GTravel(catalog)
                     .v({generator.UserVid(3)})
                     .branch({lang::GTravel::Alt(catalog).e("run"),
                              lang::GTravel::Alt(catalog).e("run").e("hasExecutions")})
                     .group("type")
                     .Build(),
                 "user_reach_branch_group")});
  return queries;
}

bool SameResult(const lang::TraversalPlan& plan, const engine::TraversalResult& a,
                const engine::TraversalResult& b) {
  switch (plan.result_mode) {
    case lang::ResultMode::kCount:
      return a.count == b.count;
    case lang::ResultMode::kGroup:
      return a.groups == b.groups;
    case lang::ResultMode::kPaths:
      return a.paths == b.paths;
    case lang::ResultMode::kVertices:
      return a.vids == b.vids;
  }
  return false;
}

}  // namespace
}  // namespace gt::bench

int main(int argc, char** argv) {
  using namespace gt;
  using namespace gt::bench;

  // Peel off --json before the shared parser (it rejects unknown flags).
  std::string json_path = "BENCH_10.json";
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  BenchConfig cfg;
  ParseBenchArgs(static_cast<int>(rest.size()), rest.data(), &cfg);

  PrintHeader("table3_planner: Darshan audit queries, planner off vs on",
              "extended-GTravel audits (count/until/path/branch+group) on all "
              "three engines; the statistics-driven rewriter must be "
              "result-identical and faster on the filter-heavy scans");

  graph::Catalog catalog;
  gen::DarshanConfig dcfg;
  dcfg.users = g_smoke ? 12 : 96;
  dcfg.jobs_per_user_max = g_smoke ? 8 : 48;
  dcfg.execs_per_job_max = g_smoke ? 4 : 12;
  dcfg.files = g_smoke ? 512 : 8192;
  dcfg.seed = 2013;
  gen::DarshanGenerator generator(dcfg);
  graph::RefGraph g = generator.Build(&catalog);
  std::printf("graph: %zu vertices, %zu edges\n\n", g.num_vertices(), g.num_edges());

  const uint32_t servers = ServersOrSmoke(8);
  BenchConfig cfg_off = cfg;
  cfg_off.planner = false;
  BenchConfig cfg_on = cfg;
  cfg_on.planner = true;
  BenchCluster off(servers, cfg_off, &catalog, g);
  BenchCluster on(servers, cfg_on, &catalog, g);

  const std::vector<QueryCase> queries = BuildQueries(&catalog, generator);
  constexpr engine::EngineMode kModes[] = {engine::EngineMode::kSync,
                                           engine::EngineMode::kAsyncPlain,
                                           engine::EngineMode::kGraphTrek};

  struct Row {
    std::string query;
    const char* engine;
    double off_ms;
    double on_ms;
    bool match;
  };
  std::vector<Row> rows;
  bool all_match = true;

  std::printf("%-26s %-10s %12s %12s %9s\n", "query", "engine", "planner off",
              "planner on", "speedup");
  for (const QueryCase& q : queries) {
    for (engine::EngineMode mode : kModes) {
      // One untimed run each way for the equality gate (and cache warmup),
      // then the timed repetitions.
      auto off_result = off.get()->Run(q.plan, mode);
      auto on_result = on.get()->Run(q.plan, mode);
      if (!off_result.ok() || !on_result.ok()) {
        std::fprintf(stderr, "table3_planner: %s on %s failed: %s\n",
                     q.name.c_str(), engine::EngineModeName(mode),
                     (!off_result.ok() ? off_result.status() : on_result.status())
                         .ToString()
                         .c_str());
        return 1;
      }
      const bool match = SameResult(q.plan, *off_result, *on_result);
      if (!match) {
        std::fprintf(stderr,
                     "table3_planner: RESULT DIVERGENCE on %s (%s): planner "
                     "on/off disagree\n",
                     q.name.c_str(), engine::EngineModeName(mode));
        all_match = false;
      }
      const double off_ms = off.RunAveraged(q.plan, mode, cfg.runs);
      const double on_ms = on.RunAveraged(q.plan, mode, cfg.runs);
      std::printf("%-26s %-10s %9.1f ms %9.1f ms %8.2fx%s\n", q.name.c_str(),
                  engine::EngineModeName(mode), off_ms, on_ms,
                  on_ms > 0 ? off_ms / on_ms : 0.0, match ? "" : "  MISMATCH");
      std::fflush(stdout);
      rows.push_back({q.name, engine::EngineModeName(mode), off_ms, on_ms, match});
    }
  }
  std::printf("\n");
  PrintRpcStats(3);

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"table3_planner\",\n"
                 "  \"smoke\": %s,\n"
                 "  \"servers\": %u,\n"
                 "  \"all_match\": %s,\n"
                 "  \"rows\": [\n",
                 g_smoke ? "true" : "false", servers, all_match ? "true" : "false");
    for (size_t i = 0; i < rows.size(); i++) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"query\": \"%s\", \"engine\": \"%s\", "
                   "\"planner_off_ms\": %.3f, \"planner_on_ms\": %.3f, "
                   "\"speedup\": %.3f, \"match\": %s}%s\n",
                   r.query.c_str(), r.engine, r.off_ms, r.on_ms,
                   r.on_ms > 0 ? r.off_ms / r.on_ms : 0.0,
                   r.match ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "table3_planner: cannot write %s\n", json_path.c_str());
    return 1;
  }

  // The smoke gate is the planner's result-identity contract.
  if (!all_match) {
    std::fprintf(stderr, "table3_planner: planner identity gate FAILED\n");
    return 1;
  }
  return 0;
}
