file(REMOVE_RECURSE
  "CMakeFiles/ablation_concurrent.dir/ablation_concurrent.cpp.o"
  "CMakeFiles/ablation_concurrent.dir/ablation_concurrent.cpp.o.d"
  "ablation_concurrent"
  "ablation_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
