file(REMOVE_RECURSE
  "CMakeFiles/ablation_iolat.dir/ablation_iolat.cpp.o"
  "CMakeFiles/ablation_iolat.dir/ablation_iolat.cpp.o.d"
  "ablation_iolat"
  "ablation_iolat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iolat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
