# Empty dependencies file for ablation_iolat.
# This may be replaced when dependencies are built.
