file(REMOVE_RECURSE
  "CMakeFiles/fig10_8step.dir/fig10_8step.cpp.o"
  "CMakeFiles/fig10_8step.dir/fig10_8step.cpp.o.d"
  "fig10_8step"
  "fig10_8step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_8step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
