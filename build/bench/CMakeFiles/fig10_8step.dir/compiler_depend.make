# Empty compiler generated dependencies file for fig10_8step.
# This may be replaced when dependencies are built.
