file(REMOVE_RECURSE
  "CMakeFiles/fig11_stragglers.dir/fig11_stragglers.cpp.o"
  "CMakeFiles/fig11_stragglers.dir/fig11_stragglers.cpp.o.d"
  "fig11_stragglers"
  "fig11_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
