# Empty compiler generated dependencies file for fig11_stragglers.
# This may be replaced when dependencies are built.
