file(REMOVE_RECURSE
  "CMakeFiles/fig7_visit_stats.dir/fig7_visit_stats.cpp.o"
  "CMakeFiles/fig7_visit_stats.dir/fig7_visit_stats.cpp.o.d"
  "fig7_visit_stats"
  "fig7_visit_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_visit_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
