# Empty compiler generated dependencies file for fig7_visit_stats.
# This may be replaced when dependencies are built.
