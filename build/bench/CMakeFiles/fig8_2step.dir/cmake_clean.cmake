file(REMOVE_RECURSE
  "CMakeFiles/fig8_2step.dir/fig8_2step.cpp.o"
  "CMakeFiles/fig8_2step.dir/fig8_2step.cpp.o.d"
  "fig8_2step"
  "fig8_2step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_2step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
