# Empty dependencies file for fig8_2step.
# This may be replaced when dependencies are built.
