file(REMOVE_RECURSE
  "CMakeFiles/fig9_4step.dir/fig9_4step.cpp.o"
  "CMakeFiles/fig9_4step.dir/fig9_4step.cpp.o.d"
  "fig9_4step"
  "fig9_4step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_4step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
