# Empty dependencies file for fig9_4step.
# This may be replaced when dependencies are built.
