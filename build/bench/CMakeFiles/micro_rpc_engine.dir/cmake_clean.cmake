file(REMOVE_RECURSE
  "CMakeFiles/micro_rpc_engine.dir/micro_rpc_engine.cpp.o"
  "CMakeFiles/micro_rpc_engine.dir/micro_rpc_engine.cpp.o.d"
  "micro_rpc_engine"
  "micro_rpc_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rpc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
