# Empty dependencies file for micro_rpc_engine.
# This may be replaced when dependencies are built.
