file(REMOVE_RECURSE
  "CMakeFiles/table1_rmat_engines.dir/table1_rmat_engines.cpp.o"
  "CMakeFiles/table1_rmat_engines.dir/table1_rmat_engines.cpp.o.d"
  "table1_rmat_engines"
  "table1_rmat_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rmat_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
