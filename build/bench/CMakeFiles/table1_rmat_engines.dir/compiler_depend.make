# Empty compiler generated dependencies file for table1_rmat_engines.
# This may be replaced when dependencies are built.
