# Empty dependencies file for table2_darshan_stats.
# This may be replaced when dependencies are built.
