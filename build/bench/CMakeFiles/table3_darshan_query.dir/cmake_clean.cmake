file(REMOVE_RECURSE
  "CMakeFiles/table3_darshan_query.dir/table3_darshan_query.cpp.o"
  "CMakeFiles/table3_darshan_query.dir/table3_darshan_query.cpp.o.d"
  "table3_darshan_query"
  "table3_darshan_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_darshan_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
