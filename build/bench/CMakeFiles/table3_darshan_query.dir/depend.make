# Empty dependencies file for table3_darshan_query.
# This may be replaced when dependencies are built.
