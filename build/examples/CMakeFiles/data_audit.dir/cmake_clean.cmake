file(REMOVE_RECURSE
  "CMakeFiles/data_audit.dir/data_audit.cpp.o"
  "CMakeFiles/data_audit.dir/data_audit.cpp.o.d"
  "data_audit"
  "data_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
