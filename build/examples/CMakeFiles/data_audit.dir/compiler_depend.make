# Empty compiler generated dependencies file for data_audit.
# This may be replaced when dependencies are built.
