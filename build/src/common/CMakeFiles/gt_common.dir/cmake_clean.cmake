file(REMOVE_RECURSE
  "CMakeFiles/gt_common.dir/logging.cc.o"
  "CMakeFiles/gt_common.dir/logging.cc.o.d"
  "CMakeFiles/gt_common.dir/thread_pool.cc.o"
  "CMakeFiles/gt_common.dir/thread_pool.cc.o.d"
  "libgt_common.a"
  "libgt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
