file(REMOVE_RECURSE
  "CMakeFiles/gt_engine.dir/backend_server.cc.o"
  "CMakeFiles/gt_engine.dir/backend_server.cc.o.d"
  "CMakeFiles/gt_engine.dir/client.cc.o"
  "CMakeFiles/gt_engine.dir/client.cc.o.d"
  "CMakeFiles/gt_engine.dir/cluster.cc.o"
  "CMakeFiles/gt_engine.dir/cluster.cc.o.d"
  "libgt_engine.a"
  "libgt_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
