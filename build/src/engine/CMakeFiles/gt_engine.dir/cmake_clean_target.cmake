file(REMOVE_RECURSE
  "libgt_engine.a"
)
