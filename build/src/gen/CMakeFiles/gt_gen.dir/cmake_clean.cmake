file(REMOVE_RECURSE
  "CMakeFiles/gt_gen.dir/darshan.cc.o"
  "CMakeFiles/gt_gen.dir/darshan.cc.o.d"
  "CMakeFiles/gt_gen.dir/rmat.cc.o"
  "CMakeFiles/gt_gen.dir/rmat.cc.o.d"
  "libgt_gen.a"
  "libgt_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
