
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph_store.cc" "src/graph/CMakeFiles/gt_graph.dir/graph_store.cc.o" "gcc" "src/graph/CMakeFiles/gt_graph.dir/graph_store.cc.o.d"
  "/root/repo/src/graph/text_io.cc" "src/graph/CMakeFiles/gt_graph.dir/text_io.cc.o" "gcc" "src/graph/CMakeFiles/gt_graph.dir/text_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kv/CMakeFiles/gt_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
