# Empty dependencies file for gt_graph.
# This may be replaced when dependencies are built.
