
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/block.cc" "src/kv/CMakeFiles/gt_kv.dir/block.cc.o" "gcc" "src/kv/CMakeFiles/gt_kv.dir/block.cc.o.d"
  "/root/repo/src/kv/db.cc" "src/kv/CMakeFiles/gt_kv.dir/db.cc.o" "gcc" "src/kv/CMakeFiles/gt_kv.dir/db.cc.o.d"
  "/root/repo/src/kv/env.cc" "src/kv/CMakeFiles/gt_kv.dir/env.cc.o" "gcc" "src/kv/CMakeFiles/gt_kv.dir/env.cc.o.d"
  "/root/repo/src/kv/memtable.cc" "src/kv/CMakeFiles/gt_kv.dir/memtable.cc.o" "gcc" "src/kv/CMakeFiles/gt_kv.dir/memtable.cc.o.d"
  "/root/repo/src/kv/table.cc" "src/kv/CMakeFiles/gt_kv.dir/table.cc.o" "gcc" "src/kv/CMakeFiles/gt_kv.dir/table.cc.o.d"
  "/root/repo/src/kv/wal.cc" "src/kv/CMakeFiles/gt_kv.dir/wal.cc.o" "gcc" "src/kv/CMakeFiles/gt_kv.dir/wal.cc.o.d"
  "/root/repo/src/kv/write_batch.cc" "src/kv/CMakeFiles/gt_kv.dir/write_batch.cc.o" "gcc" "src/kv/CMakeFiles/gt_kv.dir/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
