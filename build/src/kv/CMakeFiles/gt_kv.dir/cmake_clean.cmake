file(REMOVE_RECURSE
  "CMakeFiles/gt_kv.dir/block.cc.o"
  "CMakeFiles/gt_kv.dir/block.cc.o.d"
  "CMakeFiles/gt_kv.dir/db.cc.o"
  "CMakeFiles/gt_kv.dir/db.cc.o.d"
  "CMakeFiles/gt_kv.dir/env.cc.o"
  "CMakeFiles/gt_kv.dir/env.cc.o.d"
  "CMakeFiles/gt_kv.dir/memtable.cc.o"
  "CMakeFiles/gt_kv.dir/memtable.cc.o.d"
  "CMakeFiles/gt_kv.dir/table.cc.o"
  "CMakeFiles/gt_kv.dir/table.cc.o.d"
  "CMakeFiles/gt_kv.dir/wal.cc.o"
  "CMakeFiles/gt_kv.dir/wal.cc.o.d"
  "CMakeFiles/gt_kv.dir/write_batch.cc.o"
  "CMakeFiles/gt_kv.dir/write_batch.cc.o.d"
  "libgt_kv.a"
  "libgt_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
