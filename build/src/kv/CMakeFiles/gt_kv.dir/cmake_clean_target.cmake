file(REMOVE_RECURSE
  "libgt_kv.a"
)
