# Empty dependencies file for gt_kv.
# This may be replaced when dependencies are built.
