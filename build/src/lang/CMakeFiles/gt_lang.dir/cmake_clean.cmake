file(REMOVE_RECURSE
  "CMakeFiles/gt_lang.dir/gtravel.cc.o"
  "CMakeFiles/gt_lang.dir/gtravel.cc.o.d"
  "libgt_lang.a"
  "libgt_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
