file(REMOVE_RECURSE
  "libgt_lang.a"
)
