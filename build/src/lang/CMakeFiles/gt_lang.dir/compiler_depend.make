# Empty compiler generated dependencies file for gt_lang.
# This may be replaced when dependencies are built.
