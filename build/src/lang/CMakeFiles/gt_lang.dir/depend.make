# Empty dependencies file for gt_lang.
# This may be replaced when dependencies are built.
