
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/inproc_transport.cc" "src/rpc/CMakeFiles/gt_rpc.dir/inproc_transport.cc.o" "gcc" "src/rpc/CMakeFiles/gt_rpc.dir/inproc_transport.cc.o.d"
  "/root/repo/src/rpc/mailbox.cc" "src/rpc/CMakeFiles/gt_rpc.dir/mailbox.cc.o" "gcc" "src/rpc/CMakeFiles/gt_rpc.dir/mailbox.cc.o.d"
  "/root/repo/src/rpc/tcp_transport.cc" "src/rpc/CMakeFiles/gt_rpc.dir/tcp_transport.cc.o" "gcc" "src/rpc/CMakeFiles/gt_rpc.dir/tcp_transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
