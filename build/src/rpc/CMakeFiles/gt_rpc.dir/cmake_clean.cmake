file(REMOVE_RECURSE
  "CMakeFiles/gt_rpc.dir/inproc_transport.cc.o"
  "CMakeFiles/gt_rpc.dir/inproc_transport.cc.o.d"
  "CMakeFiles/gt_rpc.dir/mailbox.cc.o"
  "CMakeFiles/gt_rpc.dir/mailbox.cc.o.d"
  "CMakeFiles/gt_rpc.dir/tcp_transport.cc.o"
  "CMakeFiles/gt_rpc.dir/tcp_transport.cc.o.d"
  "libgt_rpc.a"
  "libgt_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
