file(REMOVE_RECURSE
  "libgt_rpc.a"
)
