# Empty dependencies file for gt_rpc.
# This may be replaced when dependencies are built.
