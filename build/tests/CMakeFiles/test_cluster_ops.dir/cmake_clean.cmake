file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_ops.dir/test_cluster_ops.cc.o"
  "CMakeFiles/test_cluster_ops.dir/test_cluster_ops.cc.o.d"
  "test_cluster_ops"
  "test_cluster_ops.pdb"
  "test_cluster_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
