# Empty dependencies file for test_cluster_ops.
# This may be replaced when dependencies are built.
