file(REMOVE_RECURSE
  "CMakeFiles/test_engine_core.dir/test_engine_core.cc.o"
  "CMakeFiles/test_engine_core.dir/test_engine_core.cc.o.d"
  "test_engine_core"
  "test_engine_core.pdb"
  "test_engine_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
