# Empty dependencies file for test_engine_core.
# This may be replaced when dependencies are built.
