file(REMOVE_RECURSE
  "CMakeFiles/test_engine_extras.dir/test_engine_extras.cc.o"
  "CMakeFiles/test_engine_extras.dir/test_engine_extras.cc.o.d"
  "test_engine_extras"
  "test_engine_extras.pdb"
  "test_engine_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
