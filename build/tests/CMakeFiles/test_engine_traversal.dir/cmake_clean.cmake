file(REMOVE_RECURSE
  "CMakeFiles/test_engine_traversal.dir/test_engine_traversal.cc.o"
  "CMakeFiles/test_engine_traversal.dir/test_engine_traversal.cc.o.d"
  "test_engine_traversal"
  "test_engine_traversal.pdb"
  "test_engine_traversal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
