# Empty dependencies file for test_engine_traversal.
# This may be replaced when dependencies are built.
