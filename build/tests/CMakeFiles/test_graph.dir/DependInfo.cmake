
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/test_graph.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/test_graph.dir/test_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/gt_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/gt_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/gt_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/gt_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/gt_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
