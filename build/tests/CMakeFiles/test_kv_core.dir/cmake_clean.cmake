file(REMOVE_RECURSE
  "CMakeFiles/test_kv_core.dir/test_kv_core.cc.o"
  "CMakeFiles/test_kv_core.dir/test_kv_core.cc.o.d"
  "test_kv_core"
  "test_kv_core.pdb"
  "test_kv_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
