file(REMOVE_RECURSE
  "CMakeFiles/test_kv_db.dir/test_kv_db.cc.o"
  "CMakeFiles/test_kv_db.dir/test_kv_db.cc.o.d"
  "test_kv_db"
  "test_kv_db.pdb"
  "test_kv_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kv_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
