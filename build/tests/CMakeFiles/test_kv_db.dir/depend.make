# Empty dependencies file for test_kv_db.
# This may be replaced when dependencies are built.
