# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_kv_core[1]_include.cmake")
include("/root/repo/build/tests/test_kv_db[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_rpc_faults[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_lang[1]_include.cmake")
include("/root/repo/build/tests/test_engine_core[1]_include.cmake")
include("/root/repo/build/tests/test_engine_traversal[1]_include.cmake")
include("/root/repo/build/tests/test_engine_features[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_text_io[1]_include.cmake")
include("/root/repo/build/tests/test_engine_extras[1]_include.cmake")
include("/root/repo/build/tests/test_cluster_ops[1]_include.cmake")
