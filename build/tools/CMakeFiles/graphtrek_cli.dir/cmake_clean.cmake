file(REMOVE_RECURSE
  "CMakeFiles/graphtrek_cli.dir/graphtrek_cli.cpp.o"
  "CMakeFiles/graphtrek_cli.dir/graphtrek_cli.cpp.o.d"
  "graphtrek_cli"
  "graphtrek_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphtrek_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
