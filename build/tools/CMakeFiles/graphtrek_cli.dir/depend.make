# Empty dependencies file for graphtrek_cli.
# This may be replaced when dependencies are built.
