file(REMOVE_RECURSE
  "CMakeFiles/graphtrek_server.dir/graphtrek_server.cpp.o"
  "CMakeFiles/graphtrek_server.dir/graphtrek_server.cpp.o.d"
  "graphtrek_server"
  "graphtrek_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphtrek_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
