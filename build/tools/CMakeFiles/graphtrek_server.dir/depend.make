# Empty dependencies file for graphtrek_server.
# This may be replaced when dependencies are built.
