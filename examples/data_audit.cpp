// Data-auditing scenario (paper Section II-B1 / Table III): analyze the
// influence of a suspicious user — list the outputs of executions whose
// inputs were written by the suspect's executions — on a synthetic
// Darshan-style rich-metadata graph, with progress reporting.
//
//   build/examples/data_audit [num_servers] [num_users]
#include <cstdio>
#include <cstdlib>

#include "src/engine/cluster.h"
#include "src/gen/darshan.h"
#include "src/lang/gtravel.h"

using namespace gt;

int main(int argc, char** argv) {
  const uint32_t num_servers = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 8;
  const uint32_t num_users = argc > 2 ? static_cast<uint32_t>(atoi(argv[2])) : 48;

  engine::ClusterConfig cfg;
  cfg.num_servers = num_servers;
  cfg.device.access_latency_us = 100;
  cfg.net.latency_us = 20;
  auto cluster = engine::Cluster::Create(cfg);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }

  gen::DarshanConfig dcfg;
  dcfg.users = num_users;
  dcfg.files = 4096;
  dcfg.seed = 2013;
  gen::DarshanGenerator generator(dcfg);
  graph::RefGraph g = generator.Build((*cluster)->catalog());
  if (auto s = (*cluster)->Load(g); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto& stats = generator.stats();
  std::printf("metadata graph: %llu users, %llu jobs, %llu executions, %llu files, "
              "%llu edges on %u servers\n",
              (unsigned long long)stats.users, (unsigned long long)stats.jobs,
              (unsigned long long)stats.executions, (unsigned long long)stats.files,
              (unsigned long long)stats.edges, num_servers);

  // The paper's suspicious-user audit:
  //   v(suspect).e(run).ea(ts RANGE).e(hasExecutions).e(write).e(readBy)
  //             .e(write).rtn()
  const graph::VertexId suspect = generator.UserVid(5);
  auto plan = lang::GTravel((*cluster)->catalog())
                  .v({suspect})
                  .e("run")
                  .ea("ts", lang::FilterOp::kRange,
                      {graph::PropValue(dcfg.ts_begin), graph::PropValue(dcfg.ts_end)})
                  .e("hasExecutions")
                  .e("write")
                  .e("readBy")
                  .e("write")
                  .rtn()
                  .Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  // Submit asynchronously so we can poll traversal progress (the per-step
  // unfinished-execution counts from the coordinator's status tracing).
  auto client = (*cluster)->NewClient();
  engine::RunOptions opts;
  opts.mode = engine::EngineMode::kGraphTrek;
  auto travel = client->Submit(*plan, opts);
  if (!travel.ok()) {
    std::fprintf(stderr, "submit: %s\n", travel.status().ToString().c_str());
    return 1;
  }
  for (int i = 0; i < 20; i++) {
    auto progress = client->Progress(*travel, /*coordinator=*/0, 1000);
    if (!progress.ok()) break;  // finished (travel state cleaned up)
    std::printf("  progress: %llu executions created, %llu terminated\n",
                (unsigned long long)progress->total_created,
                (unsigned long long)progress->total_terminated);
    if (progress->total_created > 0 &&
        progress->total_created == progress->total_terminated) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  auto result = client->Await(*travel, 120000);
  if (!result.ok()) {
    std::fprintf(stderr, "await: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("audit of user %llu: %zu files potentially influenced\n",
              (unsigned long long)suspect, result->vids.size());
  for (size_t i = 0; i < result->vids.size() && i < 5; i++) {
    const auto* v = g.FindVertex(result->vids[i]);
    const auto* name =
        v != nullptr ? v->props.Find((*cluster)->catalog()->Lookup("name")) : nullptr;
    std::printf("  tainted output: %s\n",
                name != nullptr ? name->as_string().c_str() : "?");
  }

  // Cross-check against the reference evaluator.
  auto expected = lang::EvaluatePlanOnRefGraph(*plan, g, *(*cluster)->catalog());
  std::printf("reference evaluator agrees: %s\n",
              expected == result->vids ? "yes" : "NO");
  return expected == result->vids ? 0 : 1;
}
