// Interference scenario (paper Section VII-C): show how an external
// straggler (a co-located job hammering one server's disk) affects the
// synchronous engine versus GraphTrek. This is Fig. 11's methodology as a
// runnable demo: fixed delays injected into individual vertex accesses on
// one server.
//
//   build/examples/interference [num_servers]
#include <cstdio>
#include <cstdlib>

#include "src/engine/cluster.h"
#include "src/gen/rmat.h"
#include "src/lang/gtravel.h"

using namespace gt;

int main(int argc, char** argv) {
  const uint32_t num_servers = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 8;

  engine::ClusterConfig cfg;
  cfg.num_servers = num_servers;
  cfg.device.access_latency_us = 100;
  cfg.net.latency_us = 20;
  auto cluster = engine::Cluster::Create(cfg);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }

  gen::RmatConfig rcfg;
  rcfg.scale = 11;
  rcfg.avg_degree = 8;
  rcfg.attr_bytes = 64;
  gen::RmatGenerator rmat(rcfg);
  graph::RefGraph g = rmat.Build((*cluster)->catalog());
  if (auto s = (*cluster)->Load(g); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("RMAT graph: %zu vertices, %zu edges on %u servers\n", g.num_vertices(),
              g.num_edges(), num_servers);

  lang::GTravel travel((*cluster)->catalog());
  travel.v({3});
  for (int i = 0; i < 6; i++) travel.e("link");
  auto plan = travel.Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  auto run = [&](engine::EngineMode mode) {
    auto result = (*cluster)->Run(*plan, mode);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", engine::EngineModeName(mode),
                   result.status().ToString().c_str());
      exit(1);
    }
    return result->elapsed_ms;
  };

  std::printf("\nbaseline (no interference):\n");
  const double sync_base = run(engine::EngineMode::kSync);
  const double gt_base = run(engine::EngineMode::kGraphTrek);
  std::printf("  Sync-GT   %8.1f ms\n  GraphTrek %8.1f ms\n", sync_base, gt_base);

  std::printf("\nwith an external straggler on server 1 (5 ms x 60 accesses, "
              "steps 1 and 3):\n");
  auto install = [&] {
    (*cluster)->straggler()->ClearRules();
    for (int step : {1, 3}) {
      (*cluster)->straggler()->AddRule(engine::StragglerRule{
          .server_id = 1, .step = step, .delay_us = 5000, .max_hits = 30});
    }
  };
  install();
  const double sync_slow = run(engine::EngineMode::kSync);
  install();
  const double gt_slow = run(engine::EngineMode::kGraphTrek);
  (*cluster)->straggler()->ClearRules();
  std::printf("  Sync-GT   %8.1f ms  (%.2fx slower)\n", sync_slow, sync_slow / sync_base);
  std::printf("  GraphTrek %8.1f ms  (%.2fx slower)\n", gt_slow, gt_slow / gt_base);
  std::printf("\nthe asynchronous engine keeps making progress while the straggling "
              "server catches up;\nthe synchronous engine idles at every step "
              "barrier behind it.\n");
  return 0;
}
