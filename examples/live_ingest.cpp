// Online-database scenario: the paper's system "must support live updates
// (to ingest production information in real time), low-latency point
// queries ... and large-scale traversals". This example runs all three at
// once: a writer streams job/execution/file events into the cluster through
// the live-update RPCs while an auditor runs point queries and periodic
// traversals against the growing graph.
//
//   build/examples/live_ingest [num_servers] [seconds]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/engine/cluster.h"
#include "src/lang/gtravel.h"

using namespace gt;

int main(int argc, char** argv) {
  const uint32_t num_servers = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 4;
  const int seconds = argc > 2 ? atoi(argv[2]) : 3;

  engine::ClusterConfig cfg;
  cfg.num_servers = num_servers;
  auto cluster = engine::Cluster::Create(cfg);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }

  auto seed_client = (*cluster)->NewClient();
  seed_client->PutVertex(1, "User", {{"name", graph::PropValue("prod-user")}}).ok();

  // Writer: streams "job finished" events — a job vertex, its executions,
  // and the files they wrote — as they would arrive from a live scheduler.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> events{0};
  std::thread writer([&] {
    auto client = (*cluster)->NewClient();
    Rng rng(42);
    graph::VertexId next_job = 1000;
    graph::VertexId next_file = 1u << 20;
    while (!stop.load()) {
      const graph::VertexId job = next_job++;
      client->PutVertex(job, "Job", {{"ts", graph::PropValue(int64_t(NowMicros()))}}).ok();
      client->PutEdge(1, "run", job).ok();
      const uint32_t files = 1 + rng.Uniform(3);
      for (uint32_t f = 0; f < files; f++) {
        const graph::VertexId file = next_file++;
        client->PutVertex(file, "File").ok();
        client->PutEdge(job, "write", file).ok();
      }
      events.fetch_add(1 + files);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Auditor: point queries (permission-check style) plus a periodic audit
  // traversal over everything ingested so far.
  auto audit_client = (*cluster)->NewClient();
  auto plan = lang::GTravel((*cluster)->catalog()).v({1}).e("run").e("write").Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  const uint64_t deadline = NowMicros() + static_cast<uint64_t>(seconds) * 1000000;
  int audits = 0;
  while (NowMicros() < deadline) {
    // Point query: does the user still exist / what are its properties?
    auto user = audit_client->GetVertex(1);
    if (!user.ok() || user->found == 0) {
      std::fprintf(stderr, "point query failed\n");
      stop = true;
      writer.join();
      return 1;
    }

    Stopwatch watch;
    engine::RunOptions opts;
    opts.mode = engine::EngineMode::kGraphTrek;
    auto result = audit_client->Run(*plan, opts);
    if (!result.ok()) {
      std::fprintf(stderr, "audit: %s\n", result.status().ToString().c_str());
      stop = true;
      writer.join();
      return 1;
    }
    audits++;
    std::printf("audit #%d: %5zu files written so far (%.1f ms, %llu events ingested)\n",
                audits, result->vids.size(), watch.ElapsedMillis(),
                (unsigned long long)events.load());
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }
  stop = true;
  writer.join();
  std::printf("live ingest OK: %llu events, %d concurrent audits, no downtime\n",
              (unsigned long long)events.load(), audits);
  return 0;
}
