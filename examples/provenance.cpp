// Provenance scenario (paper Section II-B2, after the First Provenance
// Challenge): find the *executions* whose inputs satisfy a condition — the
// query returns intermediate (source) vertices via rtn(), not the final
// working set.
//
//   build/examples/provenance [num_servers]
#include <cstdio>
#include <cstdlib>

#include "src/engine/cluster.h"
#include "src/gen/darshan.h"
#include "src/lang/gtravel.h"

using namespace gt;

int main(int argc, char** argv) {
  const uint32_t num_servers = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 4;

  engine::ClusterConfig cfg;
  cfg.num_servers = num_servers;
  auto cluster = engine::Cluster::Create(cfg);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }

  gen::DarshanConfig dcfg;
  dcfg.users = 32;
  dcfg.files = 2048;
  dcfg.seed = 77;
  gen::DarshanGenerator generator(dcfg);
  graph::RefGraph g = generator.Build((*cluster)->catalog());
  if (auto s = (*cluster)->Load(g); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("metadata graph: %zu vertices, %zu edges on %u servers\n",
              g.num_vertices(), g.num_edges(), num_servers);

  // "Find the executions whose input files have annotation B" — here: whose
  // input is one of the hot shared datasets. The executions are the RETURN
  // value even though the traversal continues past them:
  //   v().va(type == Execution).rtn().e(read).va(name == <hot file>)
  graph::Catalog* catalog = (*cluster)->catalog();
  auto plan = lang::GTravel(catalog)
                  .v()
                  .va("type", lang::FilterOp::kEq, {graph::PropValue("Execution")})
                  .rtn()
                  .e("read")
                  .va("name", lang::FilterOp::kIn,
                      {graph::PropValue("/proj/data/file-0.dat"),
                       graph::PropValue("/proj/data/file-1.dat"),
                       graph::PropValue("/proj/data/file-2.dat")})
                  .Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  // Run it on all three engines for comparison.
  for (auto mode : {engine::EngineMode::kSync, engine::EngineMode::kAsyncPlain,
                    engine::EngineMode::kGraphTrek}) {
    auto result = (*cluster)->Run(*plan, mode);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", engine::EngineModeName(mode),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s found %4zu executions reading the hot datasets (%.2f ms)\n",
                engine::EngineModeName(mode), result->vids.size(), result->elapsed_ms);
  }

  auto expected = lang::EvaluatePlanOnRefGraph(*plan, g, *catalog);
  std::printf("reference evaluator: %zu executions\n", expected.size());
  return 0;
}
