// Quickstart: stand up a 4-server GraphTrek cluster, load a tiny metadata
// graph, and run one traversal with each engine.
//
//   build/examples/quickstart
#include <cstdio>

#include "src/engine/cluster.h"
#include "src/gen/darshan.h"
#include "src/lang/gtravel.h"

using namespace gt;

int main() {
  // 1. Create an in-process cluster of 4 backend servers. Each server owns
  //    an embedded KV store; vertex accesses charge a simulated device cost.
  engine::ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.device.access_latency_us = 50;
  cfg.net.latency_us = 20;
  auto cluster = engine::Cluster::Create(cfg);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }

  // 2. Generate and load a small synthetic rich-metadata graph
  //    (users -> jobs -> executions -> files).
  gen::DarshanConfig dcfg;
  dcfg.users = 16;
  dcfg.files = 512;
  dcfg.seed = 7;
  gen::DarshanGenerator generator(dcfg);
  graph::RefGraph g = generator.Build((*cluster)->catalog());
  if (auto s = (*cluster)->Load(g); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu vertices, %zu edges across %u servers\n", g.num_vertices(),
              g.num_edges(), (*cluster)->num_servers());

  // 3. Build a GTravel query: files read by user 0's executions (2 hops
  //    user -> job via `run`, job -> execution via `hasExecutions`, then
  //    execution -> file via `read`).
  lang::GTravel travel((*cluster)->catalog());
  auto plan = travel.v({generator.UserVid(1)})
                  .e("run")
                  .e("hasExecutions")
                  .e("read")
                  .rtn()
                  .Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  // Oracle for comparison.
  auto expected = lang::EvaluatePlanOnRefGraph(*plan, g, *(*cluster)->catalog());
  std::printf("reference evaluator: %zu result vertices\n", expected.size());

  // 4. Run with each engine; all three must agree.
  for (auto mode : {engine::EngineMode::kSync, engine::EngineMode::kAsyncPlain,
                    engine::EngineMode::kGraphTrek}) {
    auto result = (*cluster)->Run(*plan, mode);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", engine::EngineModeName(mode),
                   result.status().ToString().c_str());
      return 1;
    }
    const bool match = result->vids == expected;
    std::printf("%-10s %6zu results in %8.2f ms  (%s)\n", engine::EngineModeName(mode),
                result->vids.size(), result->elapsed_ms,
                match ? "matches oracle" : "MISMATCH");
    if (!match) return 1;
  }
  std::printf("quickstart OK\n");
  return 0;
}
