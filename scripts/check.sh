#!/usr/bin/env bash
# Full local verification matrix:
#   1. default build + ctest
#   2. GT_ANALYZE=ON with clang++ (-Werror=thread-safety)  [skipped if no clang++]
#   3. GT_SANITIZE=thread build + ctest                    [TSan]
#   4. GT_SANITIZE=address build + ctest                   [ASan+LSan]
#   5. GT_SANITIZE=undefined build + ctest                 [UBSan, fatal reports]
#   6. tools/gt_lint.py                                    [repo lint gate]
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the sanitizer legs (slowest part of the matrix)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

step() { printf '\n== %s ==\n' "$*"; }

# Configure a build dir, adding -G Ninja only when the dir is fresh: an
# existing cache keeps its generator, and a mismatched -G is a hard error.
configure() {
  local dir="$1"; shift
  local gen=()
  [[ ! -f "$dir/CMakeCache.txt" ]] && command -v ninja >/dev/null 2>&1 && gen=(-G Ninja)
  cmake -B "$dir" -S . "${gen[@]}" "$@" >/dev/null
}

# -- 1. default build + tests -------------------------------------------------
step "default build + ctest"
configure build
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

# Crash-fault-injection gate: run the kill-point sweeps explicitly so a
# filter or discovery problem can never silently drop them from the matrix.
step "crash-fault-injection sweep (test_kv_crash)"
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'Crash(Sweep|Recovery|FaultEnv)Test'

# Cross-engine differential gate: the seeded random-workload comparison of
# Sync-GT / Async-GT / GraphTrek against the reference evaluator, including
# the duplicate+drop idempotence leg. Run explicitly for the same reason as
# the crash sweeps: discovery problems must not silently drop it.
step "cross-engine differential harness (test_engine_differential)"
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'EngineDifferentialTest'

# GTravel language + planner gate: plan codec round-trip/validation, the
# GTravel builder, the reference evaluator, and the statistics-driven
# planner goldens. Planner-on/off result identity itself rides in the
# differential harness above; this gate keeps the unit-level coverage from
# silently dropping out of discovery.
step "GTravel language + planner tests"
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'PlanTest|FilterTest|GTravelTest|EvaluatorTest|PlannerTest'

# Bench smoke gate: every figure/table/ablation binary must still run end to
# end at --smoke size (they read the metrics registry, so a renamed series
# breaks here instead of on a multi-hour full run).
step "bench smoke run (--smoke)"
ctest --test-dir build --output-on-failure --no-tests=error -L bench_smoke

# I/O-path ablation gate: the adjacency-cache / batched-MultiGet / arena
# knobs must stay independently toggleable (the ablation binary sweeps each
# one off in turn), and the cache's unit + differential coverage must run.
# Explicit -R for the same reason as the sweeps above: a label or discovery
# problem must not silently drop them.
step "I/O-path ablation smoke + adjacency-cache tests"
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'bench_smoke_ablation_optimizations|AdjacencyCacheTest'

# Travel-lifecycle gate: queue-key collision regression, cancellation
# reclaim, admission control and deadline enforcement, plus the load
# generator that drives them at --smoke size. Explicit -R so a discovery
# problem cannot silently drop the lifecycle coverage.
step "travel lifecycle tests + load-generator smoke"
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'RequestQueueTest|TravelLifecycleTest|bench_smoke_load_travels'

# Decode-hardening gate: the table-driven malformed-input matrix, the replay
# of every checked-in fuzz corpus seed through its harness, and the lint
# self-test that keeps the decode-discipline check itself honest. Explicit
# -R so a discovery problem cannot silently drop the adversarial coverage.
step "decode-error matrix + fuzz-corpus replay + lint self-test"
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'DecodeErrorsTest|TcpMalformedFrameTest|CorpusReplayTest|gt_lint_selftest'

# Snapshot-isolation gate: the kv pin/GC unit tests, the adjacency-cache
# pinned-read test, the mutate-while-traversing differential legs (in-process
# and TCP), the torn-read control that proves the legs can catch a violation,
# and the mixed read/write load bench at --smoke size. Explicit -R so a
# discovery problem cannot silently drop the consistency coverage.
step "snapshot-isolation gate (pins, racing travels, torn-read control)"
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'DBTest\..*Snapshot|AdjacencyCacheTest\.PinnedSnapshot|MutationsRacingTravelsMatchPinnedOracle|TornReadControlRequiresSnapshotIsolation|bench_smoke_load_mutate'

# -- 2. thread-safety analysis (clang only) -----------------------------------
step "GT_ANALYZE=ON (clang thread-safety analysis)"
if command -v clang++ >/dev/null 2>&1; then
  configure build-tsa \
    -DCMAKE_CXX_COMPILER=clang++ -DGT_ANALYZE=ON >/dev/null
  cmake --build build-tsa -j "$JOBS"
else
  echo "clang++ not found: skipping the -Werror=thread-safety leg" \
       "(annotations compile as no-ops elsewhere)"
fi

# -- 3. ThreadSanitizer -------------------------------------------------------
if [[ "$FAST" == 0 ]]; then
  step "GT_SANITIZE=thread build + ctest"
  configure build-tsan -DGT_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
  step "crash-fault-injection sweep under TSan"
  ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -R 'Crash(Sweep|Recovery|FaultEnv)Test'
  step "cross-engine differential harness under TSan"
  ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -R 'EngineDifferentialTest'
  step "planner goldens + fuzz-corpus replay under TSan"
  ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -R 'PlannerTest|CorpusReplayTest'
  step "adjacency-cache tests under TSan (mutate-while-traversing)"
  ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -R 'AdjacencyCacheTest'
  step "travel lifecycle tests under TSan (cancel/admission races)"
  ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -R 'RequestQueueTest|TravelLifecycleTest'
  step "snapshot-isolation racing legs under TSan"
  ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -R 'MutationsRacingTravelsMatchPinnedOracle|TornReadControlRequiresSnapshotIsolation|bench_smoke_load_mutate'
else
  step "GT_SANITIZE=thread (skipped: --fast)"
fi

# -- 4. AddressSanitizer (+LeakSanitizer) -------------------------------------
if [[ "$FAST" == 0 ]]; then
  step "GT_SANITIZE=address build + ctest"
  configure build-asan -DGT_SANITIZE=address
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
  step "decode-error matrix + corpus replay under ASan"
  ctest --test-dir build-asan --output-on-failure --no-tests=error \
    -R 'DecodeErrorsTest|TcpMalformedFrameTest|CorpusReplayTest'
else
  step "GT_SANITIZE=address (skipped: --fast)"
fi

# -- 5. UndefinedBehaviorSanitizer --------------------------------------------
if [[ "$FAST" == 0 ]]; then
  step "GT_SANITIZE=undefined build + ctest"
  configure build-ubsan -DGT_SANITIZE=undefined
  cmake --build build-ubsan -j "$JOBS"
  ctest --test-dir build-ubsan --output-on-failure -j "$JOBS"
  step "decode-error matrix + corpus replay under UBSan"
  ctest --test-dir build-ubsan --output-on-failure --no-tests=error \
    -R 'DecodeErrorsTest|TcpMalformedFrameTest|CorpusReplayTest'
else
  step "GT_SANITIZE=undefined (skipped: --fast)"
fi

# -- 6. repo lint gate --------------------------------------------------------
step "tools/gt_lint.py"
python3 tools/gt_lint.py

printf '\ncheck.sh: all enabled legs passed\n'
