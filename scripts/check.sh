#!/usr/bin/env bash
# Full local verification matrix:
#   1. default build + ctest
#   2. GT_ANALYZE=ON with clang++ (-Werror=thread-safety)  [skipped if no clang++]
#   3. GT_SANITIZE=thread build + ctest                    [TSan]
#   4. tools/gt_lint.py                                    [repo lint gate]
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the sanitizer leg (slowest part of the matrix)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

GEN_ARGS=()
command -v ninja >/dev/null 2>&1 && GEN_ARGS=(-G Ninja)

step() { printf '\n== %s ==\n' "$*"; }

# -- 1. default build + tests -------------------------------------------------
step "default build + ctest"
cmake -B build -S . "${GEN_ARGS[@]}" >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

# Crash-fault-injection gate: run the kill-point sweeps explicitly so a
# filter or discovery problem can never silently drop them from the matrix.
step "crash-fault-injection sweep (test_kv_crash)"
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'Crash(Sweep|Recovery|FaultEnv)Test'

# Cross-engine differential gate: the seeded random-workload comparison of
# Sync-GT / Async-GT / GraphTrek against the reference evaluator, including
# the duplicate+drop idempotence leg. Run explicitly for the same reason as
# the crash sweeps: discovery problems must not silently drop it.
step "cross-engine differential harness (test_engine_differential)"
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'EngineDifferentialTest'

# Bench smoke gate: every figure/table/ablation binary must still run end to
# end at --smoke size (they read the metrics registry, so a renamed series
# breaks here instead of on a multi-hour full run).
step "bench smoke run (--smoke)"
ctest --test-dir build --output-on-failure --no-tests=error -L bench_smoke

# I/O-path ablation gate: the adjacency-cache / batched-MultiGet / arena
# knobs must stay independently toggleable (the ablation binary sweeps each
# one off in turn), and the cache's unit + differential coverage must run.
# Explicit -R for the same reason as the sweeps above: a label or discovery
# problem must not silently drop them.
step "I/O-path ablation smoke + adjacency-cache tests"
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'bench_smoke_ablation_optimizations|AdjacencyCacheTest'

# Travel-lifecycle gate: queue-key collision regression, cancellation
# reclaim, admission control and deadline enforcement, plus the load
# generator that drives them at --smoke size. Explicit -R so a discovery
# problem cannot silently drop the lifecycle coverage.
step "travel lifecycle tests + load-generator smoke"
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'RequestQueueTest|TravelLifecycleTest|bench_smoke_load_travels'

# -- 2. thread-safety analysis (clang only) -----------------------------------
step "GT_ANALYZE=ON (clang thread-safety analysis)"
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . "${GEN_ARGS[@]}" \
    -DCMAKE_CXX_COMPILER=clang++ -DGT_ANALYZE=ON >/dev/null
  cmake --build build-tsa -j "$JOBS"
else
  echo "clang++ not found: skipping the -Werror=thread-safety leg" \
       "(annotations compile as no-ops elsewhere)"
fi

# -- 3. ThreadSanitizer -------------------------------------------------------
if [[ "$FAST" == 0 ]]; then
  step "GT_SANITIZE=thread build + ctest"
  cmake -B build-tsan -S . "${GEN_ARGS[@]}" -DGT_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
  step "crash-fault-injection sweep under TSan"
  ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -R 'Crash(Sweep|Recovery|FaultEnv)Test'
  step "cross-engine differential harness under TSan"
  ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -R 'EngineDifferentialTest'
  step "adjacency-cache tests under TSan (mutate-while-traversing)"
  ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -R 'AdjacencyCacheTest'
  step "travel lifecycle tests under TSan (cancel/admission races)"
  ctest --test-dir build-tsan --output-on-failure --no-tests=error \
    -R 'RequestQueueTest|TravelLifecycleTest'
else
  step "GT_SANITIZE=thread (skipped: --fast)"
fi

# -- 4. repo lint gate --------------------------------------------------------
step "tools/gt_lint.py"
python3 tools/gt_lint.py

printf '\ncheck.sh: all enabled legs passed\n'
