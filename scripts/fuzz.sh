#!/usr/bin/env bash
# Time-boxed fuzzing sweep over every decode surface.
#
# Builds with -DGT_FUZZ=ON -DGT_SANITIZE=address, rewrites the deterministic
# seed corpus (gt_fuzz_gen_corpus regenerates the named seeds in place and
# leaves extra files — promoted crash reproducers — alone), then runs each
# harness for SECS seconds through the gt_fuzz mutational driver. With
# clang++ the same harnesses also build as gt_fuzz_<name> libFuzzer binaries;
# this script prefers those when present because coverage guidance beats
# blind mutation.
#
# Usage: scripts/fuzz.sh [--secs N] [--harness NAME] [--build-dir DIR]
#   --secs N        seconds per harness (default 60)
#   --harness NAME  fuzz only NAME (default: every registered harness)
#   --build-dir DIR build directory (default build-fuzz)
#
# Any crash artifact the driver leaves behind should be minimized and checked
# in under tests/fuzz/corpus/<harness>/ — corpus inputs replay as a plain
# ctest (CorpusReplayTest) on every default build, so the reproducer becomes
# a permanent regression test.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
SECS=60
ONLY=""
BUILD=build-fuzz

while [[ $# -gt 0 ]]; do
  case "$1" in
    --secs) SECS="$2"; shift 2 ;;
    --harness) ONLY="$2"; shift 2 ;;
    --build-dir) BUILD="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

# Only pick a generator for a fresh build dir: an existing cache keeps its
# generator, and passing a different -G is a hard CMake error.
GEN_ARGS=()
[[ ! -f "$BUILD/CMakeCache.txt" ]] && command -v ninja >/dev/null 2>&1 && GEN_ARGS=(-G Ninja)

step() { printf '\n== %s ==\n' "$*"; }

step "configure + build ($BUILD: GT_FUZZ=ON, ASan)"
cmake -B "$BUILD" -S . "${GEN_ARGS[@]}" -DGT_FUZZ=ON -DGT_SANITIZE=address >/dev/null
cmake --build "$BUILD" -j "$JOBS" --target gt_fuzz gt_fuzz_gen_corpus

CORPUS="$ROOT/tests/fuzz/corpus"
step "seed corpus (gt_fuzz_gen_corpus)"
"$BUILD/tests/fuzz/gt_fuzz_gen_corpus" "$CORPUS"

if [[ -n "$ONLY" ]]; then
  HARNESSES=("$ONLY")
else
  mapfile -t HARNESSES < <("$BUILD/tests/fuzz/gt_fuzz" --list)
fi

FAILED=()
for h in "${HARNESSES[@]}"; do
  step "fuzz $h (${SECS}s)"
  mkdir -p "$CORPUS/$h"
  if [[ -x "$BUILD/tests/fuzz/gt_fuzz_$h" ]]; then
    # libFuzzer build (clang): coverage-guided, writes crash-* into cwd.
    if ! (cd "$BUILD/tests/fuzz" &&
          "./gt_fuzz_$h" -max_total_time="$SECS" -timeout=10 -rss_limit_mb=2048 \
                         "$CORPUS/$h"); then
      FAILED+=("$h")
    fi
  else
    # Standalone mutational driver (any compiler, still under ASan).
    if ! "$BUILD/tests/fuzz/gt_fuzz" --harness="$h" --corpus="$CORPUS/$h" \
                                     --max_total_time="$SECS"; then
      FAILED+=("$h")
    fi
  fi
done

if [[ ${#FAILED[@]} -gt 0 ]]; then
  printf '\nfuzz.sh: FAILED harnesses: %s\n' "${FAILED[*]}" >&2
  printf 'minimize the reproducer and check it in under tests/fuzz/corpus/<harness>/\n' >&2
  exit 1
fi
printf '\nfuzz.sh: all harnesses ran %ss clean\n' "$SECS"
