#!/usr/bin/env bash
# Runs the performance suite against the default build and persists the
# parsed numbers as a BENCH_<n>.json snapshot at the repo root, so a PR's
# perf claims are reviewable numbers instead of prose (see EXPERIMENTS.md).
#
#   - micro_kv / micro_graph / micro_rpc_engine  (google-benchmark)
#   - fig8_2step / fig9_4step                    (paper figure tables)
#
# Usage: scripts/run_bench.sh [--out FILE] [--before DIR]
#   --out FILE    where to write the JSON (default: BENCH_<next>.json)
#   --before DIR  directory of pre-change raw outputs (<bench>.txt) captured
#                 with the same binaries; parsed into the "before" section
#                 so the snapshot carries its own baseline.
# Raw outputs land in a mktemp dir (path echoed per bench via tee).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

OUT=""
BEFORE_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --out) OUT="$2"; shift 2 ;;
    --before) BEFORE_DIR="$2"; shift 2 ;;
    *) echo "run_bench.sh: unknown flag '$1'" >&2; exit 1 ;;
  esac
done
if [[ -z "$OUT" ]]; then
  n=1
  while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
  OUT="BENCH_${n}.json"
fi

MICRO_BENCHES=(micro_kv micro_graph micro_rpc_engine)
FIG_BENCHES=(fig8_2step fig9_4step)
# Load benches with structured self-reports: each emits a JSON summary that
# is folded verbatim into the snapshot's "after" section (load_mutate = the
# mixed read/write ingest-vs-audit workload, table3_planner = the Darshan
# audit queries with the statistics-driven planner off vs on).
LOAD_BENCHES=(load_mutate table3_planner)

cmake --build build -j "${JOBS:-$(nproc 2>/dev/null || echo 2)}" \
  --target "${MICRO_BENCHES[@]}" "${FIG_BENCHES[@]}" "${LOAD_BENCHES[@]}" >/dev/null

RAW="$(mktemp -d)"
for b in "${MICRO_BENCHES[@]}"; do
  echo "== $b =="
  ./build/bench/"$b" --benchmark_min_time=0.05 | tee "$RAW/$b.txt"
done
for b in "${FIG_BENCHES[@]}"; do
  echo "== $b =="
  ./build/bench/"$b" | tee "$RAW/$b.txt"
done
for b in "${LOAD_BENCHES[@]}"; do
  echo "== $b =="
  ./build/bench/"$b" --json "$RAW/$b.json" | tee "$RAW/$b.txt"
done

python3 - "$OUT" "$RAW" "$BEFORE_DIR" <<'PY'
import json, os, re, subprocess, sys

out_path, raw_dir, before_dir = sys.argv[1], sys.argv[2], sys.argv[3]

# google-benchmark rows: "BM_Name/arg   1234 ns   1200 ns   9999 ..."
GBENCH_RE = re.compile(r"^(BM_\S+)\s+([\d.]+)\s+(ns|us|ms)\b")
TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6}
# figure tables: "16    19.1 ms    22.8 ms    0.84x"
FIG_RE = re.compile(r"^(\d+)\s+([\d.]+)\s+ms\s+([\d.]+)\s+ms\s+([\d.]+)x")


def parse_dir(d):
    benches = {}
    for name in sorted(os.listdir(d)):
        # Load benches self-report structured JSON; fold it in verbatim.
        if name.endswith(".json"):
            with open(os.path.join(d, name)) as f:
                benches[name[:-5]] = json.load(f)
            continue
        if not name.endswith(".txt"):
            continue
        rows = {}
        with open(os.path.join(d, name)) as f:
            for line in f:
                m = GBENCH_RE.match(line.strip())
                if m:
                    rows[m.group(1)] = {
                        "time_ns": float(m.group(2)) * TO_NS[m.group(3)]}
                    continue
                m = FIG_RE.match(line.strip())
                if m:
                    rows[f"servers_{m.group(1)}"] = {
                        "sync_ms": float(m.group(2)),
                        "graphtrek_ms": float(m.group(3)),
                        "speedup": float(m.group(4)),
                    }
        if rows:
            benches[name[:-4]] = rows
    return benches


def git(*args):
    try:
        return subprocess.run(["git", *args], capture_output=True,
                              text=True).stdout.strip()
    except OSError:
        return ""


snapshot = {
    "id": os.path.splitext(os.path.basename(out_path))[0],
    "commit": git("rev-parse", "--short", "HEAD"),
    "date": git("log", "-1", "--format=%cI") or None,
    "after": parse_dir(raw_dir),
}
if before_dir and os.path.isdir(before_dir):
    snapshot["before"] = parse_dir(before_dir)

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")

# Convenience: surface the cache-warm frontier-expansion speedup when both
# scan benchmarks are present (the PR-6 acceptance number).
mg = snapshot["after"].get("micro_graph", {})
for arg in ("8", "64"):
    cold = mg.get(f"BM_GraphScanEdgesByType/{arg}")
    warm = mg.get(f"BM_GraphScanEdgesCached/{arg}")
    if cold and warm and warm["time_ns"] > 0:
        print(f"frontier expansion speedup (degree {arg}): "
              f"{cold['time_ns'] / warm['time_ns']:.2f}x cache-warm")
PY
