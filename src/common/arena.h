// Bump allocator shared by the KV memtable's skip list and the graph
// layer's adjacency-cache rows / engine scratch buffers. Allocations live
// until the arena is destroyed or Reset(); there is no per-allocation free.
//
// Thread-compatibility contract: Allocate/AllocateAligned/Reset must be
// externally serialized (the memtable runs them under the DB write lock,
// the engine uses one arena per worker thread); MemoryUsage() alone may be
// read concurrently.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace gt {

class Arena {
 public:
  static constexpr size_t kDefaultBlockSize = 64 * 1024;

  // `block_size` tunes the bump-block granularity: the memtable keeps the
  // 64 KiB default, adjacency-cache rows use exact-sized arenas so a small
  // CSR row does not pin a full block.
  explicit Arena(size_t block_size = kDefaultBlockSize)
      : block_size_(block_size == 0 ? kDefaultBlockSize : block_size) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes) {
    if (bytes <= avail_) {
      char* r = ptr_;
      ptr_ += bytes;
      avail_ -= bytes;
      mem_.fetch_add(bytes, std::memory_order_relaxed);
      return r;
    }
    return AllocateFallback(bytes);
  }

  // Aligned for pointer-bearing structures (skip list nodes, CSR arrays).
  char* AllocateAligned(size_t bytes) {
    constexpr size_t align = alignof(std::max_align_t);
    const size_t mod = reinterpret_cast<uintptr_t>(ptr_) & (align - 1);
    const size_t slop = mod == 0 ? 0 : align - mod;
    if (bytes + slop <= avail_) {
      char* r = ptr_ + slop;
      ptr_ += bytes + slop;
      avail_ -= bytes + slop;
      mem_.fetch_add(bytes + slop, std::memory_order_relaxed);
      return r;
    }
    return AllocateFallback(bytes);  // fresh blocks are max-aligned
  }

  // Bytes handed out to callers (the memtable's flush-threshold signal).
  size_t MemoryUsage() const { return mem_.load(std::memory_order_relaxed); }

  // Bytes reserved in blocks — the arena's real footprint, which is what a
  // byte-budgeted cache must charge for.
  size_t BlockBytes() const {
    size_t total = 0;
    for (const auto& [block, size] : blocks_) {
      (void)block;
      total += size;
    }
    return total;
  }

  // Discards every allocation. The first block is retained and reused so a
  // per-batch scratch arena stops hitting the heap once it has grown to its
  // working-set size.
  void Reset() {
    if (blocks_.size() > 1) blocks_.resize(1);
    if (!blocks_.empty()) {
      ptr_ = blocks_.front().first.get();
      avail_ = blocks_.front().second;
    } else {
      ptr_ = nullptr;
      avail_ = 0;
    }
    mem_.store(0, std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes) {
    if (bytes > block_size_ / 4) {
      // Large allocation gets its own block; keeps current block usable.
      blocks_.emplace_back(std::make_unique<char[]>(bytes), bytes);
      mem_.fetch_add(bytes, std::memory_order_relaxed);
      return blocks_.back().first.get();
    }
    blocks_.emplace_back(std::make_unique<char[]>(block_size_), block_size_);
    ptr_ = blocks_.back().first.get();
    avail_ = block_size_;
    char* r = ptr_;
    ptr_ += bytes;
    avail_ -= bytes;
    mem_.fetch_add(bytes, std::memory_order_relaxed);
    return r;
  }

  const size_t block_size_;
  char* ptr_ = nullptr;
  size_t avail_ = 0;
  std::vector<std::pair<std::unique_ptr<char[]>, size_t>> blocks_;
  std::atomic<size_t> mem_{0};
};

// Minimal std::allocator adapter over an Arena for short-lived scratch
// containers on the engine's frame path. A null arena falls back to the
// heap, which is how the `arena_scratch` ablation knob turns the
// optimization off without forking container types. Arena-backed
// deallocate is a no-op (memory is reclaimed by Arena::Reset()).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena()) {}

  T* allocate(size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return reinterpret_cast<T*>(arena_->AllocateAligned(n * sizeof(T)));
  }
  void deallocate(T* p, size_t) {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& o) const { return arena_ == o.arena_; }
  bool operator!=(const ArenaAllocator& o) const { return arena_ != o.arena_; }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace gt
