// Timing helpers: a monotonic stopwatch and microsecond timestamps.
#pragma once

#include <chrono>
#include <cstdint>

namespace gt {

inline uint64_t NowMicros() {
  using namespace std::chrono;
  return static_cast<uint64_t>(
      duration_cast<microseconds>(steady_clock::now().time_since_epoch()).count());
}

class Stopwatch {
 public:
  Stopwatch() : start_(NowMicros()) {}
  void Restart() { start_ = NowMicros(); }
  uint64_t ElapsedMicros() const { return NowMicros() - start_; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedMicros()) / 1e3; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedMicros()) / 1e6; }

 private:
  uint64_t start_;
};

}  // namespace gt
