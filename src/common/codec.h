// Binary codecs shared by the KV store (order-preserving big-endian keys),
// the RPC wire format (varints, length-prefixed fields) and the graph
// property encoding.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace gt {

// ---------------------------------------------------------------------------
// Fixed-width little-endian (values inside records; fast memcpy on LE hosts).
// ---------------------------------------------------------------------------

inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

// ---------------------------------------------------------------------------
// Fixed-width big-endian (order-preserving: memcmp on encoded bytes matches
// numeric order). Used for all KV key components.
// ---------------------------------------------------------------------------

inline void PutFixed32BE(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v >> 24);
  buf[1] = static_cast<char>(v >> 16);
  buf[2] = static_cast<char>(v >> 8);
  buf[3] = static_cast<char>(v);
  dst->append(buf, 4);
}

inline void PutFixed64BE(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; i++) buf[i] = static_cast<char>(v >> (56 - 8 * i));
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32BE(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return (uint32_t{u[0]} << 24) | (uint32_t{u[1]} << 16) | (uint32_t{u[2]} << 8) |
         uint32_t{u[3]};
}

inline uint64_t DecodeFixed64BE(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) v = (v << 8) | u[i];
  return v;
}

// ---------------------------------------------------------------------------
// Varints (LEB128) and zigzag for signed values.
// ---------------------------------------------------------------------------

inline void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutVarSigned64(std::string* dst, int64_t v) {
  PutVarint64(dst, ZigZagEncode64(v));
}

// CheckedReader: the one sanctioned way to decode untrusted bytes. A cursor
// over an immutable byte range; every Get* method length-validates before
// touching memory and returns false (without advancing past the end) on
// truncated input. Decode functions built on it convert that false into a
// structured Status/Result at their boundary — never an assert or a crash.
//
// Decode discipline (enforced by tools/gt_lint.py check 8 over src/rpc,
// src/kv and src/lang):
//   - no raw pointer-arithmetic decodes (DecodeFixed*(p + k)), no memcpy /
//     reinterpret_cast byte-picking outside this reader;
//   - length/count prefixes are read with GetCount()/GetLengthPrefixed() so
//     a hostile length can never drive an allocation or a read past the end;
//   - every Decode* entry point returns Status or Result<T>.
class CheckedReader {
 public:
  CheckedReader(const char* p, size_t n) : p_(p), end_(p + n) {}
  explicit CheckedReader(std::string_view s) : CheckedReader(s.data(), s.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool empty() const { return p_ == end_; }
  const char* data() const { return p_; }

  bool GetFixed32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = DecodeFixed32(p_);
    p_ += 4;
    return true;
  }
  bool GetFixed64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = DecodeFixed64(p_);
    p_ += 8;
    return true;
  }
  bool GetFixed32BE(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = DecodeFixed32BE(p_);
    p_ += 4;
    return true;
  }
  bool GetFixed64BE(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = DecodeFixed64BE(p_);
    p_ += 8;
    return true;
  }

  bool GetVarint32(uint32_t* v) {
    uint64_t x;
    if (!GetVarint64(&x) || x > UINT32_MAX) return false;
    *v = static_cast<uint32_t>(x);
    return true;
  }

  bool GetVarint64(uint64_t* v) {
    uint64_t result = 0;
    int shift = 0;
    const char* p = p_;
    while (p < end_ && shift <= 63) {
      uint64_t byte = static_cast<unsigned char>(*p);
      p++;
      if (byte & 0x80) {
        result |= (byte & 0x7f) << shift;
      } else {
        result |= byte << shift;
        *v = result;
        p_ = p;
        return true;
      }
      shift += 7;
    }
    return false;
  }

  bool GetVarSigned64(int64_t* v) {
    uint64_t x;
    if (!GetVarint64(&x)) return false;
    *v = ZigZagDecode64(x);
    return true;
  }

  // One raw byte (tag / flag / enum fields).
  bool GetByte(uint8_t* v) {
    if (empty()) return false;
    *v = static_cast<uint8_t>(*p_);
    p_++;
    return true;
  }

  // Element-count prefix. Beyond GetVarint32, validates that the remaining
  // input could plausibly hold `*n` elements of at least `min_bytes_each`
  // encoded bytes — so a hostile count can never drive a multi-gigabyte
  // resize()/reserve() before the per-element reads hit end-of-input.
  bool GetCount(uint32_t* n, size_t min_bytes_each = 1) {
    if (!GetVarint32(n)) return false;
    if (min_bytes_each != 0 && *n > remaining() / min_bytes_each) return false;
    return true;
  }

  bool GetBytes(size_t n, std::string_view* out) {
    if (remaining() < n) return false;
    *out = std::string_view(p_, n);
    p_ += n;
    return true;
  }

  bool GetLengthPrefixed(std::string_view* out) {
    uint32_t len;
    if (!GetVarint32(&len)) return false;
    return GetBytes(len, out);
  }

  bool Skip(size_t n) {
    if (remaining() < n) return false;
    p_ += n;
    return true;
  }

 private:
  const char* p_;
  const char* end_;
};

// Historical name; new code (and everything gt_lint audits) should spell
// CheckedReader.
using Decoder = CheckedReader;

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

// ---------------------------------------------------------------------------
// CRC32C (software, slice-by-1 table). Used by the WAL and table footers.
// ---------------------------------------------------------------------------

class Crc32c {
 public:
  static uint32_t Compute(const char* data, size_t n, uint32_t seed = 0) {
    const uint32_t* table = Table();
    uint32_t crc = ~seed;
    const auto* p = reinterpret_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; i++) crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
  }
  static uint32_t Compute(std::string_view s) { return Compute(s.data(), s.size()); }

 private:
  static const uint32_t* Table() {
    static const uint32_t* t = [] {
      static uint32_t table[256];
      const uint32_t poly = 0x82f63b78;  // CRC-32C (Castagnoli), reflected
      for (uint32_t i = 0; i < 256; i++) {
        uint32_t c = i;
        for (int k = 0; k < 8; k++) c = (c & 1) ? poly ^ (c >> 1) : c >> 1;
        table[i] = c;
      }
      return table;
    }();
    return t;
  }
};

}  // namespace gt
