// Simulated storage-device latency model.
//
// The paper evaluates GraphTrek cold-start on RocksDB instances backed by
// GPFS / local disk, so every vertex access pays a device-level cost. This
// repo runs on one machine with an in-process cluster, so the device cost is
// modeled explicitly: each "real I/O" vertex access charges a configurable
// latency (sleep). Because the engines are latency-bound rather than
// CPU-bound under this model, relative behaviour (barrier idling, straggler
// amplification, merging benefits) matches the paper's disk-bound setting.
//
// The model also carries the external-straggler injection hook used by the
// Fig. 11 experiment (fixed delays inserted into individual vertex accesses).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/common/rng.h"

namespace gt {

struct DeviceModelConfig {
  // Cost charged per cold vertex access (point lookup + edge scan seek).
  uint32_t access_latency_us = 0;
  // Additional cost per KiB transferred (sequential scan cost).
  uint32_t per_kib_us = 0;
  // Cost per *warm* access: the vertex's blocks were read earlier in the
  // same traversal and sit in the storage engine's block cache / OS page
  // cache. Redundant visits in the paper's Async-GT pay this, not a full
  // disk seek. 0 means "derive as access_latency_us / 10".
  uint32_t warm_latency_us = 0;
  // Heavy-tail model for cold accesses: with probability `tail_prob` a cold
  // access costs `tail_mult` x the base latency. Real storage devices (and
  // GPFS in particular) exhibit such tails; they are the organic straggler
  // source that hurts level-synchronous engines.
  double tail_prob = 0.0;
  uint32_t tail_mult = 10;
};

class DeviceModel {
 public:
  explicit DeviceModel(DeviceModelConfig cfg = {}) : cfg_(cfg) {}

  void set_config(DeviceModelConfig cfg) { cfg_ = cfg; }
  const DeviceModelConfig& config() const { return cfg_; }

  // Charges the cost of one access that read `bytes` bytes. `warm` accesses
  // (re-reads within a traversal) charge the cache-hit latency.
  void ChargeAccess(uint64_t bytes, bool warm = false) {
    uint64_t us;
    if (warm) {
      us = cfg_.warm_latency_us != 0 ? cfg_.warm_latency_us : cfg_.access_latency_us / 10;
      warm_accesses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      us = cfg_.access_latency_us + (bytes / 1024) * cfg_.per_kib_us;
      if (cfg_.tail_prob > 0.0) {
        thread_local Rng tl_rng(0x7a11 ^ reinterpret_cast<uintptr_t>(&tl_rng));
        if (tl_rng.Bernoulli(cfg_.tail_prob)) {
          us *= cfg_.tail_mult;
          tail_accesses_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    total_accesses_.fetch_add(1, std::memory_order_relaxed);
    total_us_.fetch_add(us, std::memory_order_relaxed);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

  // Charges an explicitly injected external delay (straggler emulation).
  void ChargeInjectedDelay(uint64_t us) {
    injected_us_.fetch_add(us, std::memory_order_relaxed);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

  uint64_t total_accesses() const { return total_accesses_.load(std::memory_order_relaxed); }
  uint64_t warm_accesses() const { return warm_accesses_.load(std::memory_order_relaxed); }
  uint64_t tail_accesses() const { return tail_accesses_.load(std::memory_order_relaxed); }
  uint64_t total_us() const { return total_us_.load(std::memory_order_relaxed); }
  uint64_t injected_us() const { return injected_us_.load(std::memory_order_relaxed); }

  void ResetStats() {
    total_accesses_ = 0;
    warm_accesses_ = 0;
    tail_accesses_ = 0;
    total_us_ = 0;
    injected_us_ = 0;
  }

 private:
  DeviceModelConfig cfg_;
  std::atomic<uint64_t> total_accesses_{0};
  std::atomic<uint64_t> warm_accesses_{0};
  std::atomic<uint64_t> tail_accesses_{0};
  std::atomic<uint64_t> total_us_{0};
  std::atomic<uint64_t> injected_us_{0};
};

}  // namespace gt
