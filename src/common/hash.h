// Hashing utilities: a 64-bit mixer (splitmix64 finalizer) for partitioning
// and cache keys, and a bytes hash (FNV-1a with avalanche) for bloom filters
// and string interning.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace gt {

// High-quality 64-bit integer mixer. Suitable for hash-partitioning vertex
// ids: consecutive ids land on uncorrelated servers.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over bytes, finished with Mix64 for avalanche.
inline uint64_t HashBytes(const char* data, size_t n, uint64_t seed = 0) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (size_t i = 0; i < n; i++) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

inline uint64_t HashBytes(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace gt
