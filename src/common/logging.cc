#include "src/common/logging.h"

#include <chrono>
#include <cstdio>

#include "src/common/sync.h"

namespace gt {

std::atomic<LogLevel> Logger::level_{LogLevel::kWarn};

namespace {
const char* LevelName(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
Mutex g_log_mu;
}  // namespace

void Logger::Write(LogLevel lvl, const std::string& msg) {
  using namespace std::chrono;
  const auto now = duration_cast<microseconds>(steady_clock::now().time_since_epoch());
  MutexLock lk(&g_log_mu);
  std::fprintf(stderr, "[%11.6f] [%s] %s\n", static_cast<double>(now.count()) / 1e6,
               LevelName(lvl), msg.c_str());
}

}  // namespace gt
