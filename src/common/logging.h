// Minimal leveled logger. Thread-safe; writes to stderr. Level is a process
// global so tests and benches can silence the engine.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace gt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel Level() { return level_.load(std::memory_order_relaxed); }
  static void SetLevel(LogLevel lvl) { level_.store(lvl, std::memory_order_relaxed); }

  // Writes one formatted line: "[ts] [LEVEL] msg".
  static void Write(LogLevel lvl, const std::string& msg);

 private:
  static std::atomic<LogLevel> level_;
};

namespace log_internal {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel lvl) : lvl_(lvl) {}
  ~LineBuilder() { Logger::Write(lvl_, os_.str()); }
  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace log_internal

}  // namespace gt

#define GT_LOG(lvl)                                        \
  if (static_cast<int>(::gt::LogLevel::lvl) <              \
      static_cast<int>(::gt::Logger::Level())) {           \
  } else                                                   \
    ::gt::log_internal::LineBuilder(::gt::LogLevel::lvl)

#define GT_DEBUG GT_LOG(kDebug)
#define GT_INFO GT_LOG(kInfo)
#define GT_WARN GT_LOG(kWarn)
#define GT_ERROR GT_LOG(kError)
