#include "src/common/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace gt::metrics {

namespace {

// Prometheus floats: integers render without a fractional part so counter
// output stays exact and golden-testable; everything else gets shortest-
// round-trip-ish %g.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string FormatLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  out += "}";
  return out;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.reserve(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; i++) {
    buckets_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

void Histogram::Observe(double v) {
  // Prometheus bucket bounds are inclusive upper edges (le = "less than or
  // equal"), so an observation exactly on a bound lands in that bucket.
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b->load(std::memory_order_relaxed));
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b->store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::LatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000};
  return kBuckets;
}

Registry* Registry::Default() {
  static Registry* r = new Registry();  // leaked: outlives every collector
  return r;
}

void Registry::RecordFamilyLocked(const std::string& name, MetricType type,
                                  const std::string& help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    families_[name] = {type, help};
  } else if (it->second.second.empty() && !help.empty()) {
    it->second.second = help;
  }
}

Counter* Registry::GetCounter(const std::string& name, Labels labels,
                              const std::string& help) {
  MutexLock lk(&mu_);
  RecordFamilyLocked(name, MetricType::kCounter, help);
  auto& slot = counters_[{name, SortedLabels(std::move(labels))}];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name, Labels labels,
                          const std::string& help) {
  MutexLock lk(&mu_);
  RecordFamilyLocked(name, MetricType::kGauge, help);
  auto& slot = gauges_[{name, SortedLabels(std::move(labels))}];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name, Labels labels,
                                  std::vector<double> bounds,
                                  const std::string& help) {
  MutexLock lk(&mu_);
  RecordFamilyLocked(name, MetricType::kHistogram, help);
  auto& slot = histograms_[{name, SortedLabels(std::move(labels))}];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::LatencyBucketsMs();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

CollectorId Registry::AddCollector(CollectorFn fn) {
  MutexLock lk(&mu_);
  const CollectorId id = next_collector_++;
  collectors_[id] = std::move(fn);
  return id;
}

void Registry::RemoveCollector(CollectorId id) {
  MutexLock lk(&mu_);
  collectors_.erase(id);
}

void Registry::DescribeFamily(const std::string& name, MetricType type,
                              const std::string& help) {
  MutexLock lk(&mu_);
  RecordFamilyLocked(name, type, help);
}

void Registry::CollectLocked(const std::string& prefix,
                             std::vector<Sample>* out) const {
  auto want = [&](const std::string& name) {
    return prefix.empty() || name.compare(0, prefix.size(), prefix) == 0;
  };
  for (const auto& [key, c] : counters_) {
    if (!want(key.first)) continue;
    out->push_back({key.first, key.second, static_cast<double>(c->Value()),
                    MetricType::kCounter});
  }
  for (const auto& [key, g] : gauges_) {
    if (!want(key.first)) continue;
    out->push_back({key.first, key.second, static_cast<double>(g->Value()),
                    MetricType::kGauge});
  }
  for (const auto& [key, h] : histograms_) {
    if (!want(key.first)) continue;
    const auto counts = h->BucketCounts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); i++) {
      cumulative += counts[i];
      Labels with_le = key.second;
      with_le.emplace_back(
          "le", i < h->bounds().size() ? FormatValue(h->bounds()[i]) : "+Inf");
      out->push_back({key.first + "_bucket", std::move(with_le),
                      static_cast<double>(cumulative), MetricType::kHistogram});
    }
    out->push_back(
        {key.first + "_sum", key.second, h->Sum(), MetricType::kHistogram});
    out->push_back({key.first + "_count", key.second,
                    static_cast<double>(h->Count()), MetricType::kHistogram});
  }
  std::vector<Sample> extra;
  for (const auto& [id, fn] : collectors_) {
    (void)id;
    fn(&extra);
  }
  for (auto& s : extra) {
    if (!want(s.name)) continue;
    std::sort(s.labels.begin(), s.labels.end());
    out->push_back(std::move(s));
  }
}

std::vector<Sample> Registry::Collect(const std::string& prefix) const {
  std::vector<Sample> out;
  MutexLock lk(&mu_);
  CollectLocked(prefix, &out);
  return out;
}

double Registry::Sum(const std::string& name) const {
  double total = 0;
  for (const auto& s : Collect()) {
    if (s.name == name) total += s.value;
  }
  return total;
}

std::string Registry::Expose(const std::string& prefix) const {
  std::vector<Sample> samples;
  std::map<std::string, std::pair<MetricType, std::string>> families;
  {
    MutexLock lk(&mu_);
    CollectLocked(prefix, &samples);
    families = families_;
  }
  // Group by family: histogram series (name_bucket/_sum/_count) sort under
  // their base family so the whole histogram sits beneath one # TYPE line.
  auto family_of = [&](const Sample& s) -> std::string {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t len = std::char_traits<char>::length(suffix);
      if (s.type == MetricType::kHistogram && s.name.size() > len &&
          s.name.compare(s.name.size() - len, len, suffix) == 0) {
        return s.name.substr(0, s.name.size() - len);
      }
    }
    return s.name;
  };
  std::stable_sort(samples.begin(), samples.end(),
                   [&](const Sample& a, const Sample& b) {
                     const std::string fa = family_of(a), fb = family_of(b);
                     if (fa != fb) return fa < fb;
                     return false;  // keep intern/emit order within a family
                   });
  std::string out;
  std::string current_family;
  for (const auto& s : samples) {
    const std::string family = family_of(s);
    if (family != current_family) {
      current_family = family;
      auto it = families.find(family);
      const MetricType type = it != families.end() ? it->second.first : s.type;
      const std::string& help = it != families.end() ? it->second.second : "";
      if (!help.empty()) out += "# HELP " + family + " " + help + "\n";
      out += "# TYPE " + family + " " + std::string(TypeName(type)) + "\n";
    }
    out += s.name + FormatLabels(s.labels) + " " + FormatValue(s.value) + "\n";
  }
  return out;
}

void Registry::ResetForTest() {
  MutexLock lk(&mu_);
  for (auto& [key, c] : counters_) c->Reset();
  for (auto& [key, g] : gauges_) g->Reset();
  for (auto& [key, h] : histograms_) h->Reset();
}

}  // namespace gt::metrics
