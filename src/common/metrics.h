// Process-wide metrics registry: the one place every layer (kv, rpc,
// engine, coordinator) reports counters, gauges and latency histograms,
// exposed in Prometheus text format.
//
// Design:
//  - The hot path is lock-free: Counter::Inc / Gauge::Set / Histogram::Observe
//    are plain std::atomic operations on handles fetched once at setup time.
//    The registry mutex is taken only when interning a metric (startup) or
//    rendering an exposition (ops/bench frequency).
//  - Instrumented objects with their own internal counters (KvStats,
//    TransportStats, VisitStats) do not duplicate state into the registry:
//    they register a *collector* — a callback that emits Samples at
//    exposition time with instance labels attached — and remove it when the
//    instance dies. This keeps hot paths untouched and label cardinality
//    bounded by the set of live instances.
//  - Naming scheme (see DESIGN.md "Observability"): gt_<layer>_<what>[_total],
//    layer in {kv, rpc, engine, travel}; instance labels `db`, `transport`,
//    `server`; per-link rpc rows carry `src`/`dst`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sync.h"
#include "src/common/thread_annotations.h"

namespace gt::metrics {

// Sorted (key, value) pairs; sorted at intern time so label order never
// creates duplicate series.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

// A monotonically increasing counter. Lock-free.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// A value that can go up and down. Lock-free.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Fixed-bucket histogram. Observe() is lock-free: one fetch_add on the
// bucket, one on the total count, and a CAS loop on the (double) sum.
// Bucket bounds are inclusive upper edges; an implicit +Inf bucket catches
// the rest, Prometheus-style (each exposed `le` bucket is cumulative).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) counts, one per bound plus the +Inf bucket.
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

  // Default bounds for operation latencies measured in milliseconds:
  // 0.25ms .. 10s, roughly 2-2.5x apart (sub-ms cache hits through
  // multi-second cold traversals).
  static const std::vector<double>& LatencyBucketsMs();

 private:
  const std::vector<double> bounds_;  // ascending upper edges
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> buckets_;  // bounds + Inf
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// One exposition-time data point, as emitted by collectors and Collect().
struct Sample {
  std::string name;
  Labels labels;
  double value = 0;
  MetricType type = MetricType::kGauge;
};

// Collectors append Samples for the instance they describe.
using CollectorFn = std::function<void(std::vector<Sample>*)>;
using CollectorId = uint64_t;

class Registry {
 public:
  // The process-wide registry every layer reports into.
  static Registry* Default();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Interns (or returns the existing) metric for (name, labels). The returned
  // pointer is stable for the registry's lifetime; fetch it once and keep it.
  // A histogram created with empty `bounds` uses LatencyBucketsMs().
  Counter* GetCounter(const std::string& name, Labels labels = {},
                      const std::string& help = "") GT_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, Labels labels = {},
                  const std::string& help = "") GT_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, Labels labels = {},
                          std::vector<double> bounds = {},
                          const std::string& help = "") GT_EXCLUDES(mu_);

  // Registers a callback run at every Expose()/Collect(); remove it before
  // the instance it reads from dies. Collector callbacks run under the
  // registry mutex and must not call back into the registry.
  CollectorId AddCollector(CollectorFn fn) GT_EXCLUDES(mu_);
  void RemoveCollector(CollectorId id) GT_EXCLUDES(mu_);

  // Records the # TYPE/# HELP header for a family whose samples come from
  // collectors (owned metrics register theirs at Get* time).
  void DescribeFamily(const std::string& name, MetricType type,
                      const std::string& help = "") GT_EXCLUDES(mu_);

  // All current samples (owned metrics + collectors), optionally filtered to
  // names starting with `prefix`. Histograms expand to <name>_sum,
  // <name>_count and cumulative <name>_bucket{le=...} samples.
  std::vector<Sample> Collect(const std::string& prefix = "") const GT_EXCLUDES(mu_);

  // Sum of every sample whose name is exactly `name`, across all label sets
  // and collectors (e.g. total messages sent over all live transports).
  double Sum(const std::string& name) const GT_EXCLUDES(mu_);

  // Prometheus text exposition of Collect(prefix): families sorted by name,
  // one # HELP/# TYPE header per family, label values escaped.
  std::string Expose(const std::string& prefix = "") const GT_EXCLUDES(mu_);

  // Zeroes every owned counter/gauge/histogram (collectors are left alone:
  // they mirror live instances, which own their state). Test fixtures use
  // this so registry state never bleeds between tests.
  void ResetForTest() GT_EXCLUDES(mu_);

 private:
  using MetricKey = std::pair<std::string, Labels>;  // (name, sorted labels)

  void CollectLocked(const std::string& prefix, std::vector<Sample>* out) const
      GT_REQUIRES(mu_);
  void RecordFamilyLocked(const std::string& name, MetricType type,
                          const std::string& help) GT_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<MetricKey, std::unique_ptr<Counter>> counters_ GT_GUARDED_BY(mu_);
  std::map<MetricKey, std::unique_ptr<Gauge>> gauges_ GT_GUARDED_BY(mu_);
  std::map<MetricKey, std::unique_ptr<Histogram>> histograms_ GT_GUARDED_BY(mu_);
  // Family name -> (type, help) for # TYPE/# HELP headers.
  std::map<std::string, std::pair<MetricType, std::string>> families_
      GT_GUARDED_BY(mu_);
  std::map<CollectorId, CollectorFn> collectors_ GT_GUARDED_BY(mu_);
  CollectorId next_collector_ GT_GUARDED_BY(mu_) = 1;
};

// Formats a label set as {k="v",...} with Prometheus escaping ("" for empty).
std::string FormatLabels(const Labels& labels);

}  // namespace gt::metrics
