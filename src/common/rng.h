// Deterministic, seedable RNG (xoshiro256**) used by the graph generators
// and fault injectors. Deterministic across platforms so tests and benches
// reproduce the same graphs.
#pragma once

#include <cstdint>
#include <cmath>

#include "src/common/hash.h"

namespace gt {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // Expand the 64-bit seed into 256 bits of state with splitmix64.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      si = Mix64(x);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Zipf-distributed value in [0, n) with exponent s (s > 0). Uses rejection
  // sampling (Jain's method) — O(1) expected time, no precomputed tables.
  uint64_t Zipf(uint64_t n, double s);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

inline uint64_t Rng::Zipf(uint64_t n, double s) {
  // Rejection-inversion sampling after W. Hörmann & G. Derflinger.
  // Falls back to uniform for degenerate exponents.
  if (s <= 0.0 || n <= 1) return Uniform(n == 0 ? 1 : n);
  auto h = [s](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto hinv = [s](double x) {
    if (s == 1.0) return std::exp(x);
    return std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;
  const double hn = h(static_cast<double>(n) + 0.5);
  for (;;) {
    const double u = hx0 + NextDouble() * (hn - hx0);
    const double x = hinv(u);
    const auto k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) continue;
    if (k > n) continue;
    const double hk = h(static_cast<double>(k) + 0.5);
    const double hk1 = h(static_cast<double>(k) - 0.5);
    // Accept with probability proportional to the true pmf over the envelope.
    const double pk = std::pow(static_cast<double>(k), -s);
    if (NextDouble() * (hk - hk1) <= pk) return k - 1;
  }
}

}  // namespace gt
