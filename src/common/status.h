// Status and Result<T>: lightweight error propagation used across all
// GraphTrek modules. No exceptions cross module boundaries; fallible
// operations return Status (or Result<T> when they produce a value).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace gt {

enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound,
  kCorruption,
  kInvalidArgument,
  kIOError,
  kTimeout,
  kUnavailable,
  kAborted,
  kAlreadyExists,
  kInternal,
};

inline const char* StatusCodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "") { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status Corruption(std::string m = "") { return Status(StatusCode::kCorruption, std::move(m)); }
  static Status InvalidArgument(std::string m = "") { return Status(StatusCode::kInvalidArgument, std::move(m)); }
  static Status IOError(std::string m = "") { return Status(StatusCode::kIOError, std::move(m)); }
  static Status Timeout(std::string m = "") { return Status(StatusCode::kTimeout, std::move(m)); }
  static Status Unavailable(std::string m = "") { return Status(StatusCode::kUnavailable, std::move(m)); }
  static Status Aborted(std::string m = "") { return Status(StatusCode::kAborted, std::move(m)); }
  static Status AlreadyExists(std::string m = "") { return Status(StatusCode::kAlreadyExists, std::move(m)); }
  static Status Internal(std::string m = "") { return Status(StatusCode::kInternal, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

  bool operator==(const Status& o) const { return code_ == o.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {}    // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(v_);
  }

  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace gt

// Propagate a non-OK status to the caller.
#define GT_RETURN_IF_ERROR(expr)             \
  do {                                       \
    ::gt::Status _st = (expr);               \
    if (!_st.ok()) return _st;               \
  } while (0)
