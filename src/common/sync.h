// Synchronization primitives used across the engine. This is the only file
// in src/ allowed to touch <mutex>/<condition_variable>/<shared_mutex>
// directly (enforced by tools/gt_lint.py): everything else locks through the
// annotated wrappers so Clang Thread Safety Analysis (-DGT_ANALYZE=ON) can
// prove at compile time that guarded state is only touched under its lock.
//
//  - Mutex / MutexLock:                annotated std::mutex + RAII lock
//  - SharedMutex / Reader|WriterMutexLock: annotated std::shared_mutex
//  - CondVar:                          condition variable bound to one Mutex
//  - CountDownLatch:                   one-shot counter latch
//  - Notification:                     one-shot event
//  - BlockingCounter:                  waits until N outstanding items complete
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "src/common/thread_annotations.h"

namespace gt {

class CondVar;

// Annotated exclusive mutex. Prefer MutexLock over manual Lock()/Unlock().
class GT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GT_ACQUIRE() { mu_.lock(); }
  void Unlock() GT_RELEASE() { mu_.unlock(); }
  bool TryLock() GT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // No-op at runtime; tells the analysis the lock is held. Use at the top of
  // callbacks that the analysis cannot follow across a call boundary (e.g.
  // waiter lambdas fired while the owning object's lock is held).
  void AssertHeld() const GT_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Annotated reader/writer mutex (used by the read-mostly Catalog).
class GT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() GT_ACQUIRE() { mu_.lock(); }
  void Unlock() GT_RELEASE() { mu_.unlock(); }
  void LockShared() GT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() GT_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock over a Mutex.
class GT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) GT_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() GT_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// RAII exclusive lock over a SharedMutex.
class GT_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) GT_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterMutexLock() GT_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// RAII shared (reader) lock over a SharedMutex.
class GT_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) GT_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() GT_RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable bound to a single Mutex for its lifetime (the LevelDB
// port::CondVar shape). All Wait* methods functionally require the bound
// mutex to be held; like std::condition_variable they release it while
// blocked and reacquire before returning. They carry no REQUIRES annotation
// because the analysis cannot alias the stored pointer to the caller's
// member, so the held-lock proof stays with the caller's MutexLock scope.
// Callers express predicates as explicit loops:
//
//   MutexLock lk(&mu_);
//   while (!ready_) cv_.Wait();
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait() {
    std::unique_lock<std::mutex> lk(mu_->mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's scope
  }

  // Returns false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> d) {
    std::unique_lock<std::mutex> lk(mu_->mu_, std::adopt_lock);
    const auto r = cv_.wait_for(lk, d);
    lk.release();
    return r == std::cv_status::no_timeout;
  }

  // Returns false once `deadline` has passed. Loop shape for timed waits:
  //   const auto deadline = steady_clock::now() + d;
  //   while (!ready_) if (!cv_.WaitUntil(deadline)) break;
  template <typename Clock, typename Duration>
  bool WaitUntil(std::chrono::time_point<Clock, Duration> deadline) {
    std::unique_lock<std::mutex> lk(mu_->mu_, std::adopt_lock);
    const auto r = cv_.wait_until(lk, deadline);
    lk.release();
    return r == std::cv_status::no_timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

class CountDownLatch {
 public:
  explicit CountDownLatch(int64_t count) : cv_(&mu_), count_(count) {}

  void CountDown(int64_t n = 1) GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    count_ -= n;
    if (count_ <= 0) cv_.SignalAll();
  }

  void Wait() GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    while (count_ > 0) cv_.Wait();
  }

  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> d) GT_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + d;
    MutexLock lk(&mu_);
    while (count_ > 0) {
      if (!cv_.WaitUntil(deadline)) break;
    }
    return count_ <= 0;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int64_t count_ GT_GUARDED_BY(mu_);
};

class Notification {
 public:
  Notification() : cv_(&mu_) {}

  void Notify() GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    notified_ = true;
    cv_.SignalAll();
  }

  bool HasBeenNotified() const GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    return notified_;
  }

  void Wait() GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    while (!notified_) cv_.Wait();
  }

  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> d) GT_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + d;
    MutexLock lk(&mu_);
    while (!notified_) {
      if (!cv_.WaitUntil(deadline)) break;
    }
    return notified_;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  bool notified_ GT_GUARDED_BY(mu_) = false;
};

// Tracks a dynamically growing set of outstanding items; Wait() returns when
// the count returns to zero after at least one Add. Used by bulk ingest.
class BlockingCounter {
 public:
  BlockingCounter() : cv_(&mu_) {}

  void Add(int64_t n = 1) GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    outstanding_ += n;
  }

  void Done(int64_t n = 1) GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    outstanding_ -= n;
    if (outstanding_ <= 0) cv_.SignalAll();
  }

  void Wait() GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    while (outstanding_ > 0) cv_.Wait();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int64_t outstanding_ GT_GUARDED_BY(mu_) = 0;
};

}  // namespace gt
