// Small synchronization primitives used across the engine:
//  - CountDownLatch: one-shot counter latch.
//  - Notification: one-shot event.
//  - BlockingCounter: waits until N outstanding items complete.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace gt {

class CountDownLatch {
 public:
  explicit CountDownLatch(int64_t count) : count_(count) {}

  void CountDown(int64_t n = 1) {
    std::lock_guard<std::mutex> lk(mu_);
    count_ -= n;
    if (count_ <= 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return count_ <= 0; });
  }

  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> d) {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, d, [this] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t count_;
};

class Notification {
 public:
  void Notify() {
    std::lock_guard<std::mutex> lk(mu_);
    notified_ = true;
    cv_.notify_all();
  }

  bool HasBeenNotified() const {
    std::lock_guard<std::mutex> lk(mu_);
    return notified_;
  }

  void Wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return notified_; });
  }

  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> d) {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, d, [this] { return notified_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool notified_ = false;
};

// Tracks a dynamically growing set of outstanding items; Wait() returns when
// the count returns to zero after at least one Add. Used by bulk ingest.
class BlockingCounter {
 public:
  void Add(int64_t n = 1) {
    std::lock_guard<std::mutex> lk(mu_);
    outstanding_ += n;
  }

  void Done(int64_t n = 1) {
    std::lock_guard<std::mutex> lk(mu_);
    outstanding_ -= n;
    if (outstanding_ <= 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return outstanding_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t outstanding_ = 0;
};

}  // namespace gt
