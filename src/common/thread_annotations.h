// Portable wrappers over Clang's Thread Safety Analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under clang the
// annotations are checked at compile time — every path, not just the paths a
// test happens to execute — and promoted to errors by -DGT_ANALYZE=ON
// (-Werror=thread-safety). Under GCC and other compilers they expand to
// nothing, so annotated code builds everywhere.
//
// Usage conventions in this repo:
//   - Data members protected by a lock:            GT_GUARDED_BY(mu_)
//   - Data reached through a guarded pointer:      GT_PT_GUARDED_BY(mu_)
//   - Private "FooLocked()" helpers:                GT_REQUIRES(mu_)
//   - Public methods that take the lock inside:     GT_EXCLUDES(mu_)
//   - Lambdas/callbacks that run under a lock the
//     analysis cannot see across the call boundary:  mu_.AssertHeld() first
// The lock types carrying these capabilities live in src/common/sync.h
// (gt::Mutex, gt::SharedMutex, gt::MutexLock, ...); raw std::mutex use
// outside sync.h is rejected by tools/gt_lint.py.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define GT_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define GT_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on GCC/MSVC
#endif

// Type attributes ------------------------------------------------------------

// Marks a class as a capability (a lock). The string names the capability
// kind in diagnostics, e.g. GT_CAPABILITY("mutex").
#define GT_CAPABILITY(x) GT_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (gt::MutexLock and friends).
#define GT_SCOPED_CAPABILITY GT_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Data-member attributes -----------------------------------------------------

// The member may only be read/written while holding the given capability.
#define GT_GUARDED_BY(x) GT_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// The pointer itself is unguarded, but the data it points to may only be
// dereferenced while holding the given capability.
#define GT_PT_GUARDED_BY(x) GT_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Lock-ordering declarations (checked when both locks are annotated).
#define GT_ACQUIRED_BEFORE(...) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define GT_ACQUIRED_AFTER(...) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

// Function attributes --------------------------------------------------------

// The caller must hold the capability (exclusively / shared) on entry, and
// still holds it on exit. Used for the repo's "FooLocked()" helpers.
#define GT_REQUIRES(...) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define GT_REQUIRES_SHARED(...) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability and does not release it before
// returning (lock functions, scoped-lock constructors).
#define GT_ACQUIRE(...) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define GT_ACQUIRE_SHARED(...) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

// The function releases the capability (unlock functions, scoped-lock
// destructors; the generic form releases either mode).
#define GT_RELEASE(...) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define GT_RELEASE_SHARED(...) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define GT_RELEASE_GENERIC(...) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

// The function tries to acquire the capability; the first argument is the
// return value that signals success.
#define GT_TRY_ACQUIRE(...) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// The caller must NOT hold the capability (the function acquires it itself,
// or a deadlock would result).
#define GT_EXCLUDES(...) GT_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held; teaches the analysis about
// lock state it cannot derive, e.g. inside callbacks invoked under a lock.
#define GT_ASSERT_CAPABILITY(x) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define GT_ASSERT_SHARED_CAPABILITY(x) \
  GT_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

// The function returns a reference to the given capability.
#define GT_RETURN_CAPABILITY(x) GT_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: disables analysis for one function. Every use must carry a
// comment explaining why the analysis cannot see the invariant.
#define GT_NO_THREAD_SAFETY_ANALYSIS \
  GT_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
