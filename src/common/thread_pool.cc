#include "src/common/thread_pool.h"

namespace gt {

ThreadPool::ThreadPool(size_t num_threads) : work_cv_(&mu_), idle_cv_(&mu_) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lk(&mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.Signal();
}

void ThreadPool::Wait() {
  MutexLock lk(&mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait();
}

void ThreadPool::Shutdown() {
  {
    MutexLock lk(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.SignalAll();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::pending() const {
  MutexLock lk(&mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait();
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      active_++;
    }
    task();
    {
      MutexLock lk(&mu_);
      active_--;
      if (queue_.empty() && active_ == 0) idle_cv_.SignalAll();
    }
  }
}

}  // namespace gt
