#include "src/common/thread_pool.h"

namespace gt {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      active_++;
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      active_--;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace gt
