// Fixed-size thread pool with a FIFO task queue. Used for background KV
// compaction, bulk graph ingest, engine worker/maintenance threads, and
// client-side helpers. One of the few sanctioned owners of raw std::thread
// (see tools/gt_lint.py); everything else submits work here.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "src/common/sync.h"
#include "src/common/thread_annotations.h"

namespace gt {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task) GT_EXCLUDES(mu_);

  // Enqueues a task and returns a future for its result.
  template <typename F>
  auto SubmitWithResult(F&& f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    Submit([task] { (*task)(); });
    return fut;
  }

  // Blocks until the queue is empty and all in-flight tasks finished.
  void Wait() GT_EXCLUDES(mu_);

  // Stops accepting tasks, drains the queue, joins all threads. Idempotent.
  void Shutdown() GT_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }
  size_t pending() const GT_EXCLUDES(mu_);

 private:
  void WorkerLoop() GT_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar work_cv_;  // signaled when tasks arrive / shutdown
  CondVar idle_cv_;  // signaled when the pool drains
  std::deque<std::function<void()>> queue_ GT_GUARDED_BY(mu_);
  size_t active_ GT_GUARDED_BY(mu_) = 0;
  bool shutdown_ GT_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // written only by the constructor
};

}  // namespace gt
