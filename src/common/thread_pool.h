// Fixed-size thread pool with a FIFO task queue. Used for background KV
// compaction, bulk graph ingest, and client-side helpers. Backend-server
// worker threads use their own priority queue (see engine/request_queue.h),
// not this pool.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gt {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task);

  // Enqueues a task and returns a future for its result.
  template <typename F>
  auto SubmitWithResult(F&& f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    Submit([task] { (*task)(); });
    return fut;
  }

  // Blocks until the queue is empty and all in-flight tasks finished.
  void Wait();

  // Stops accepting tasks, drains the queue, joins all threads. Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signaled when tasks arrive / shutdown
  std::condition_variable idle_cv_;   // signaled when the pool drains
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace gt
