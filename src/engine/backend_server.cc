#include "src/engine/backend_server.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/arena.h"
#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/engine/mutation.h"
#include "src/engine/straggler.h"

namespace gt::engine {

namespace {

constexpr uint32_t kBackwardKeyBit = 0x80000000u;
constexpr size_t kMaxAbortTombstones = 10000;
// Coordinator-side bound on accumulated kPaths results: path counts can grow
// combinatorially with fan-out, and the coordinator materializes every
// distinct chain before rendering.
constexpr size_t kMaxCoordinatorPaths = size_t{1} << 17;

std::string EncodeTravelId(TravelId id) {
  std::string s;
  PutVarint64(&s, id);
  return s;
}

Result<TravelId> DecodeTravelId(std::string_view payload) {
  CheckedReader dec(payload);
  uint64_t id;
  if (!dec.GetVarint64(&id)) return Status::Corruption("bad travel id payload");
  return id;
}

bool RtnAtStep(const lang::TraversalPlan& plan, uint32_t step) {
  if (step == 0) return plan.start_rtn;
  return plan.hops[step - 1].rtn;
}

// Whether a vertex surviving the final step is itself a result. until()
// plans return only the until() hits: final-step survivors that never
// matched the until filters are dropped.
bool FinalStepYieldsResults(const lang::TraversalPlan& plan) {
  if (plan.has_until()) return false;
  const uint32_t last = static_cast<uint32_t>(plan.num_steps());
  return !plan.has_rtn() || RtnAtStep(plan, last);
}

// The until() filter set checked on vertices entering `step` (stamped on
// every unrolled copy of a repeat hop), or null when the step has none.
const std::vector<lang::Filter>* UntilFiltersAtStep(const lang::TraversalPlan& plan,
                                                    uint32_t step) {
  if (step == 0 || step > plan.hops.size()) return nullptr;
  const auto& u = plan.hops[step - 1].until_filters;
  return u.empty() ? nullptr : &u;
}

// True when results require per-vertex attribution through the answer tree
// (an rtn() on a non-final step). Plans without intermediate rtn() use the
// paper's direct protocol: final vertices go straight to the coordinator.
bool NeedsAttribution(const lang::TraversalPlan& plan) {
  const uint32_t last = static_cast<uint32_t>(plan.num_steps());
  if (plan.start_rtn && last > 0) return true;
  for (size_t i = 0; i + 1 < plan.hops.size(); i++) {
    if (plan.hops[i].rtn) return true;
  }
  return false;
}

// Smallest rtn-marked step (coordinator stops the sync backward phase there).
uint32_t MinRtnStep(const lang::TraversalPlan& plan) {
  if (plan.start_rtn) return 0;
  for (size_t i = 0; i < plan.hops.size(); i++) {
    if (plan.hops[i].rtn) return static_cast<uint32_t>(i) + 1;
  }
  return static_cast<uint32_t>(plan.num_steps());
}

// Resolves the type-index label for an unanchored v() start (the validator
// guarantees a type EQ filter exists).
graph::LabelId ScanLabelFor(const lang::TraversalPlan& plan, graph::Catalog* catalog) {
  const graph::Catalog::Id type_key = catalog->Intern("type");
  for (const auto& f : plan.start_vertex_filters) {
    if (f.key == type_key && f.op == lang::FilterOp::kEq && !f.values.empty() &&
        f.values[0].is_string()) {
      return catalog->Intern(f.values[0].as_string());
    }
  }
  return graph::Catalog::kInvalidId;
}

}  // namespace

BackendServer::BackendServer(ServerConfig cfg, graph::GraphStore* store,
                             const graph::Partitioner* partitioner,
                             graph::Catalog* catalog, rpc::Transport* transport)
    : cfg_(cfg),
      store_(store),
      partitioner_(partitioner),
      catalog_(catalog),
      transport_(transport),
      cache_(cfg.cache_capacity),
      maint_cv_(&maint_mu_) {
  auto* reg = metrics::Registry::Default();
  const std::string server = "s" + std::to_string(cfg_.id);
  reg->DescribeFamily("gt_travel_duration_ms", metrics::MetricType::kHistogram,
                      "End-to-end travel wall time at the coordinator");
  reg->DescribeFamily("gt_travel_completed_total", metrics::MetricType::kCounter,
                      "Travels completed, by outcome");
  for (int m = 0; m < 3; m++) {
    travel_duration_ms_[m] = reg->GetHistogram(
        "gt_travel_duration_ms",
        {{"server", server}, {"mode", EngineModeName(static_cast<EngineMode>(m))}},
        metrics::Histogram::LatencyBucketsMs());
  }
  travels_ok_ = reg->GetCounter("gt_travel_completed_total",
                                {{"server", server}, {"outcome", "ok"}});
  travels_failed_ = reg->GetCounter("gt_travel_completed_total",
                                    {{"server", server}, {"outcome", "error"}});
  reg->DescribeFamily("gt_travel_admitted_total", metrics::MetricType::kCounter,
                      "Travels admitted by the coordinator, by priority class");
  reg->DescribeFamily("gt_travel_rejected_total", metrics::MetricType::kCounter,
                      "Travels rejected at admission (Unavailable), by priority class");
  reg->DescribeFamily("gt_travel_cancelled_total", metrics::MetricType::kCounter,
                      "Live travels aborted by client cancel/timeout");
  reg->DescribeFamily("gt_travel_deadline_exceeded_total", metrics::MetricType::kCounter,
                      "Travels failed by server-side deadline enforcement");
  for (uint32_t c = 0; c < kNumTravelClasses; c++) {
    const metrics::Labels labels = {
        {"server", server}, {"class", TravelClassName(static_cast<TravelClass>(c))}};
    travel_admitted_[c] = reg->GetCounter("gt_travel_admitted_total", labels);
    travel_rejected_[c] = reg->GetCounter("gt_travel_rejected_total", labels);
  }
  travel_cancelled_ = reg->GetCounter("gt_travel_cancelled_total", {{"server", server}});
  travel_deadline_exceeded_ =
      reg->GetCounter("gt_travel_deadline_exceeded_total", {{"server", server}});
  reg->DescribeFamily("gt_travel_snapshots_pinned_total", metrics::MetricType::kCounter,
                      "Per-travel store snapshots pinned on this server");
  travel_snapshots_pinned_ =
      reg->GetCounter("gt_travel_snapshots_pinned_total", {{"server", server}});
  reg->DescribeFamily("gt_engine_dangling_edges_rejected_total",
                      metrics::MetricType::kCounter,
                      "kPutEdge requests rejected because an endpoint vertex is missing");
  dangling_edges_rejected_ =
      reg->GetCounter("gt_engine_dangling_edges_rejected_total", {{"server", server}});
  reg->DescribeFamily("gt_engine_edge_dst_unverified_total", metrics::MetricType::kCounter,
                      "kPutEdge requests whose dst lives on another shard (existence "
                      "not checked; counted instead of rejected)");
  edge_dst_unverified_ =
      reg->GetCounter("gt_engine_edge_dst_unverified_total", {{"server", server}});
}

BackendServer::~BackendServer() { Stop(); }

Status BackendServer::Start() {
  GT_RETURN_IF_ERROR(transport_->RegisterEndpoint(
      cfg_.id, [this](rpc::Message&& m) { OnMessage(std::move(m)); }));
  // Workers plus the maintenance tick share one pool; each loop occupies a
  // pool thread until Stop() makes it return.
  pool_ = std::make_unique<ThreadPool>(cfg_.workers + 1);
  for (uint32_t i = 0; i < cfg_.workers; i++) {
    pool_->Submit([this] { WorkerLoop(); });
  }
  pool_->Submit([this] { MaintenanceLoop(); });
  started_ = true;

  // Exposition-time bridge: snapshots this server's engine-layer state into
  // the registry. Runs off the hot path (only when someone scrapes), so
  // taking mu_ for the cache/travel figures is fine — hot paths never call
  // into the registry while holding mu_.
  auto* reg = metrics::Registry::Default();
  const std::string server = "s" + std::to_string(cfg_.id);
  reg->DescribeFamily("gt_engine_visits_received_total", metrics::MetricType::kCounter,
                      "Vertex visit requests received");
  reg->DescribeFamily("gt_engine_visits_redundant_total", metrics::MetricType::kCounter,
                      "Redundant visits absorbed by the travel cache");
  reg->DescribeFamily("gt_engine_visits_combined_total", metrics::MetricType::kCounter,
                      "Visits folded into another access by execution merging");
  reg->DescribeFamily("gt_engine_visits_real_io_total", metrics::MetricType::kCounter,
                      "Visits that reached the storage backend");
  reg->DescribeFamily("gt_engine_step_visits_total", metrics::MetricType::kCounter,
                      "Visit requests received, by traversal step");
  reg->DescribeFamily("gt_engine_duplicate_frames_total", metrics::MetricType::kCounter,
                      "Re-delivered hand-off frames absorbed by exec-id dedup");
  reg->DescribeFamily("gt_engine_travel_cache_hits_total", metrics::MetricType::kCounter,
                      "Travel-cache lookups that found an entry");
  reg->DescribeFamily("gt_engine_travel_cache_misses_total", metrics::MetricType::kCounter,
                      "Travel-cache lookups that inserted a pending entry");
  reg->DescribeFamily("gt_engine_queue_depth", metrics::MetricType::kGauge,
                      "Request-queue depth");
  metrics_collector_ = reg->AddCollector([this, server](
                                             std::vector<metrics::Sample>* out) {
    using metrics::MetricType;
    const metrics::Labels base = {{"server", server}};
    auto counter = [&](const char* name, uint64_t v) {
      out->push_back({name, base, static_cast<double>(v), MetricType::kCounter});
    };
    const VisitStats::Snapshot vs = visit_stats_.Read();
    counter("gt_engine_visits_received_total", vs.received);
    counter("gt_engine_visits_redundant_total", vs.redundant);
    counter("gt_engine_visits_combined_total", vs.combined);
    counter("gt_engine_visits_real_io_total", vs.real_io);
    for (uint32_t i = 0; i < VisitStats::kMaxTrackedSteps; i++) {
      if (vs.per_step[i] == 0) continue;
      metrics::Labels labels = base;
      labels.emplace_back("step", std::to_string(i));
      out->push_back({"gt_engine_step_visits_total", std::move(labels),
                      static_cast<double>(vs.per_step[i]), MetricType::kCounter});
    }
    counter("gt_engine_send_failures_total", send_failures_.load());
    counter("gt_engine_duplicate_frames_total", visit_stats_.duplicate_frames.load());
    out->push_back({"gt_engine_queue_depth", base,
                    static_cast<double>(queue_.size()), MetricType::kGauge});
    out->push_back({"gt_engine_queue_high_watermark", base,
                    static_cast<double>(queue_.high_watermark()), MetricType::kGauge});
    MutexLock lk(&mu_);
    counter("gt_engine_travel_cache_hits_total", cache_.hits());
    counter("gt_engine_travel_cache_misses_total", cache_.misses());
    counter("gt_engine_travel_cache_evictions_total", cache_.evictions());
    out->push_back({"gt_engine_travel_cache_entries", base,
                    static_cast<double>(cache_.size()), MetricType::kGauge});
    out->push_back({"gt_engine_active_travels", base,
                    static_cast<double>(travels_.size()), MetricType::kGauge});
  });
  return Status::OK();
}

void BackendServer::Stop() {
  if (!started_) return;
  started_ = false;
  metrics::Registry::Default()->RemoveCollector(metrics_collector_);
  transport_->UnregisterEndpoint(cfg_.id);
  stop_.store(true);
  {
    MutexLock lk(&maint_mu_);
    maint_stop_ = true;
  }
  maint_cv_.SignalAll();  // wake the maintenance tick out of its sleep
  queue_.Shutdown();
  if (pool_ != nullptr) {
    pool_->Shutdown();  // joins worker + maintenance loops
    pool_.reset();
  }
}

size_t BackendServer::cache_size() const {
  MutexLock lk(&mu_);
  return cache_.size();
}

uint64_t BackendServer::cache_evictions() const {
  MutexLock lk(&mu_);
  return cache_.evictions();
}

bool BackendServer::HasTravelResidue(TravelId travel) const {
  MutexLock lk(&mu_);
  if (plans_.count(travel) != 0 || travels_.count(travel) != 0 ||
      sync_locals_.count(travel) != 0 || accessed_.count(travel) != 0 ||
      scanned_types_.count(travel) != 0 || travel_snaps_.count(travel) != 0 ||
      cache_.HasTravel(travel)) {
    return true;
  }
  for (const auto& [id, exec] : execs_) {
    if (exec->travel == travel) return true;
  }
  for (const auto& [key, items] : trace_buffer_) {
    if (key.second == travel && !items.empty()) return true;
  }
  return false;
}

std::shared_ptr<const graph::GraphStore::ReadSnapshot>
BackendServer::PinTravelSnapLocked(TravelId travel) {
  if (!cfg_.snapshot_isolation) return nullptr;
  auto it = travel_snaps_.find(travel);
  if (it != travel_snaps_.end()) return it->second;
  // Engine mu_ -> KV locks is a fresh lock order (the KV layer never calls
  // back into the engine).
  graph::GraphStore* store = store_;
  std::shared_ptr<const graph::GraphStore::ReadSnapshot> snap(
      store->GetSnapshot(),
      [store](const graph::GraphStore::ReadSnapshot* s) { store->ReleaseSnapshot(s); });
  travel_snaps_.emplace(travel, snap);
  travel_snapshots_pinned_->Inc();
  return snap;
}

std::shared_ptr<const graph::GraphStore::ReadSnapshot> BackendServer::TravelSnapLocked(
    TravelId travel) const {
  auto it = travel_snaps_.find(travel);
  return it == travel_snaps_.end() ? nullptr : it->second;
}

std::shared_ptr<const graph::GraphStore::ReadSnapshot>
BackendServer::TravelSnapshotForTest(TravelId travel) const {
  MutexLock lk(&mu_);
  if (auto it = travel_snaps_.find(travel); it != travel_snaps_.end()) return it->second;
  if (auto it = retained_snaps_.find(travel); it != retained_snaps_.end()) {
    return it->second;
  }
  return nullptr;
}

void BackendServer::DropRetainedSnapshotsForTest() {
  std::vector<std::shared_ptr<const graph::GraphStore::ReadSnapshot>> drained;
  {
    MutexLock lk(&mu_);
    drained.reserve(retained_snaps_.size());
    for (auto it = retained_snaps_.begin(); it != retained_snaps_.end();
         it = retained_snaps_.erase(it)) {
      drained.push_back(std::move(it->second));
    }
  }
  // Snapshots release outside mu_ as `drained` goes out of scope.
}

void BackendServer::QueueSendLocked(rpc::Message msg) {
  outbox_.push_back(std::move(msg));
}

void BackendServer::DrainOutbox() {
  std::vector<rpc::Message> staged;
  {
    MutexLock lk(&mu_);
    if (outbox_.empty()) return;
    staged.swap(outbox_);
  }
  for (auto& m : staged) SendLossy(std::move(m));
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

const std::vector<lang::Filter>& BackendServer::StepVertexFilters(
    const lang::TraversalPlan& plan, uint32_t step) const {
  if (step == 0) return plan.start_vertex_filters;
  return plan.hops[step - 1].vertex_filters;
}

bool BackendServer::VertexPassesLocked(const CompiledPlan& cplan,
                                       const graph::VertexRecord& rec,
                                       uint32_t step) const {
  return lang::VertexMatchesAll(StepVertexFilters(cplan.plan, step), rec, *catalog_,
                                cplan.type_key);
}

void BackendServer::SendTraceEventLocked(ServerId coordinator, TravelId travel,
                                         uint32_t step, std::vector<ExecId> ids,
                                         bool created) {
  if (ids.empty()) return;
  ExecEventPayload ev;
  ev.travel_id = travel;
  ev.step = step;
  ev.exec_ids = std::move(ids);
  rpc::Message m;
  m.type = created ? rpc::MsgType::kExecCreated : rpc::MsgType::kExecTerminated;
  m.src = cfg_.id;
  m.dst = coordinator;
  m.payload = ev.Encode();
  QueueSendLocked(std::move(m));
}

// Combined tracing event: registers the downstream executions AND reports
// the dispatching execution's own termination. Items are buffered per
// (coordinator, travel) and flushed by size or by the maintenance tick so
// tracing stays off the traversal's critical path.
void BackendServer::SendDispatchEventLocked(ServerId coordinator, TravelId travel,
                                            uint32_t child_step, std::vector<ExecId> children,
                                            ExecId term_exec, uint32_t term_step) {
  auto& buf = trace_buffer_[{coordinator, travel}];
  for (ExecId child : children) {
    buf.push_back(TraceItem{child, child_step, 1});
  }
  buf.push_back(TraceItem{term_exec, term_step, 0});
  if (buf.size() >= 48) FlushTraceBufferLocked(coordinator, travel);
}

void BackendServer::FlushTraceBufferLocked(ServerId coordinator, TravelId travel) {
  auto it = trace_buffer_.find({coordinator, travel});
  if (it == trace_buffer_.end() || it->second.empty()) return;
  TraceBatchPayload batch;
  batch.travel_id = travel;
  batch.items = std::move(it->second);
  trace_buffer_.erase(it);
  rpc::Message m;
  m.type = rpc::MsgType::kExecDispatched;
  m.src = cfg_.id;
  m.dst = coordinator;
  m.payload = batch.Encode();
  QueueSendLocked(std::move(m));
}

void BackendServer::FlushAllTraceBuffersLocked() {
  while (!trace_buffer_.empty()) {
    auto key = trace_buffer_.begin()->first;
    FlushTraceBufferLocked(key.first, key.second);
  }
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

void BackendServer::OnMessage(rpc::Message&& msg) {
  switch (msg.type) {
    case rpc::MsgType::kSubmitTraversal:
      HandleSubmit(std::move(msg));
      break;
    case rpc::MsgType::kTraverse:
      HandleTraverse(std::move(msg));
      break;
    case rpc::MsgType::kReturnVertices:
      HandleAnswer(std::move(msg));
      break;
    case rpc::MsgType::kExecCreated:
      HandleExecEvent(std::move(msg), /*created=*/true);
      break;
    case rpc::MsgType::kExecTerminated:
      HandleExecEvent(std::move(msg), /*created=*/false);
      break;
    case rpc::MsgType::kExecDispatched:
      HandleExecEvent(std::move(msg), /*created=*/true);  // batch; flag unused
      break;
    case rpc::MsgType::kProgressRequest:
      HandleProgress(std::move(msg));
      break;
    case rpc::MsgType::kAbortTraversal:
      HandleAbort(std::move(msg));
      break;
    case rpc::MsgType::kPinTravel:
      HandlePinTravel(std::move(msg));
      break;
    case rpc::MsgType::kSyncStepStart:
      HandleSyncStepStart(std::move(msg));
      break;
    case rpc::MsgType::kSyncBatch:
      HandleSyncBatch(std::move(msg));
      break;
    case rpc::MsgType::kSyncStepDone:
      HandleSyncStepDone(std::move(msg));
      break;
    case rpc::MsgType::kPutVertex:
    case rpc::MsgType::kPutEdge:
    case rpc::MsgType::kGetVertex:
    case rpc::MsgType::kDeleteVertex:
      HandleMutation(std::move(msg));
      break;
    case rpc::MsgType::kCatalogIntern:
    case rpc::MsgType::kCatalogPull:
      HandleCatalog(std::move(msg));
      break;
    case rpc::MsgType::kPing: {
      rpc::Message reply;
      reply.type = rpc::MsgType::kPong;
      reply.src = cfg_.id;
      reply.dst = msg.src;
      reply.rpc_id = msg.rpc_id;
      SendLossy(std::move(reply));
      break;
    }
    default:
      GT_WARN << "server " << cfg_.id << ": unexpected message type "
              << rpc::MsgTypeName(msg.type);
  }
  DrainOutbox();  // flush sends the handler staged while holding mu_
}

// Coordinator broadcast: pin the travel's read view on this server. Sent at
// admission, before any frontier frame, so in-order transports pin every
// participant at (nearly) the same point in the mutation stream; when a
// faulty transport reorders it behind the first kTraverse/sync frame the
// lazy first-touch pin in that handler has already run and this is a no-op.
void BackendServer::HandlePinTravel(rpc::Message&& msg) {
  auto travel = DecodeTravelId(msg.payload);
  if (!travel.ok()) {
    GT_WARN << "server " << cfg_.id << ": bad pin-travel payload";
    return;
  }
  MutexLock lk(&mu_);
  if (aborted_travels_.count(*travel) != 0) return;  // raced with cleanup
  PinTravelSnapLocked(*travel);
}

// ---------------------------------------------------------------------------
// Submission (this server becomes the coordinator)
// ---------------------------------------------------------------------------

void BackendServer::HandleSubmit(rpc::Message&& msg) {
  auto submit = SubmitPayload::Decode(msg.payload);
  auto fail = [&](const Status& st) {
    CompletePayload done;
    done.ok = 0;
    done.code = static_cast<uint8_t>(st.code());
    done.error = st.ToString();
    rpc::Message reply;
    reply.type = rpc::MsgType::kTraversalComplete;
    reply.src = cfg_.id;
    reply.dst = msg.src;
    reply.rpc_id = msg.rpc_id;
    reply.payload = done.Encode();
    SendLossy(std::move(reply));
  };
  if (!submit.ok()) {
    fail(submit.status());
    return;
  }
  auto plan = lang::TraversalPlan::Decode(submit->plan);
  if (!plan.ok()) {
    fail(plan.status());
    return;
  }
  // The wire plan is untrusted: Decode enforces structure, Validate the
  // semantic rules (scan anchor, until/branch/paths restrictions, caps).
  if (Status vst = plan->Validate(); !vst.ok()) {
    fail(vst);
    return;
  }

  uint8_t cls_byte = submit->priority_class;
  if (cls_byte >= kNumTravelClasses) cls_byte = static_cast<uint8_t>(TravelClass::kNormal);
  const TravelClass cls = static_cast<TravelClass>(cls_byte);

  MutexLock lk(&mu_);

  // Statistics-driven rewrite (result-identical; see src/lang/planner.h).
  // Runs before expansion so hand-offs forward the rewritten compact form.
  std::string plan_bytes = submit->plan;
  if (cfg_.planner) {
    *plan = lang::RewritePlan(*plan, PlanStatsLocked(), *catalog_,
                              catalog_->Intern("type"));
    plan_bytes = plan->Encode();
  }

  // Expand to the executable form up front so oversized repeat chains
  // reject before admission. Branch plans flatten into one linear sub-plan
  // per alternative; each runs as an internal child travel below.
  auto locked_fail = [&](const Status& st) {
    CompletePayload done;
    done.ok = 0;
    done.code = static_cast<uint8_t>(st.code());
    done.error = st.ToString();
    rpc::Message reply;
    reply.type = rpc::MsgType::kTraversalComplete;
    reply.src = cfg_.id;
    reply.dst = msg.src;
    reply.rpc_id = msg.rpc_id;
    reply.payload = done.Encode();
    QueueSendLocked(std::move(reply));
  };
  std::vector<lang::TraversalPlan> subs;      // branch alternatives (compact)
  std::vector<lang::TraversalPlan> expanded;  // parallel: unrolled sub-plans
  lang::TraversalPlan unrolled;               // non-branch executable plan
  if (plan->has_branch()) {
    subs = plan->FlattenBranches();
    for (const auto& sub : subs) {
      auto u = sub.Unrolled();
      if (!u.ok()) {
        locked_fail(u.status());
        return;
      }
      expanded.push_back(std::move(*u));
    }
  } else {
    auto u = plan->Unrolled();
    if (!u.ok()) {
      locked_fail(u.status());
      return;
    }
    unrolled = std::move(*u);
  }

  // Admission control: bound the in-flight-travel table, overall and per
  // priority class. Rejection is backpressure, not failure — the client
  // retries with jittered backoff.
  const uint32_t class_limit = cfg_.admission_limits[cls_byte];
  if ((cfg_.max_inflight_travels != 0 && travels_.size() >= cfg_.max_inflight_travels) ||
      (class_limit != 0 && inflight_per_class_[cls_byte] >= class_limit)) {
    travel_rejected_[cls_byte]->Inc();
    CompletePayload done;
    done.ok = 0;
    done.code = static_cast<uint8_t>(StatusCode::kUnavailable);
    done.error = "admission limit reached";
    rpc::Message reply;
    reply.type = rpc::MsgType::kTraversalComplete;
    reply.src = cfg_.id;
    reply.dst = msg.src;
    reply.rpc_id = msg.rpc_id;
    reply.payload = done.Encode();
    QueueSendLocked(std::move(reply));
    return;
  }

  const TravelId travel = MakeExecId(cfg_.id, next_travel_seq_++);
  inflight_per_class_[cls_byte]++;
  travel_admitted_[cls_byte]->Inc();

  const EngineMode mode = static_cast<EngineMode>(submit->mode);
  const uint64_t now_us = NowMicros();
  const uint32_t timeout_ms =
      submit->timeout_ms == 0 ? cfg_.exec_timeout_ms : submit->timeout_ms;
  const uint64_t deadline_us =
      submit->deadline_ms == 0
          ? 0
          : now_us + static_cast<uint64_t>(submit->deadline_ms) * 1000;

  TravelState& ts = travels_[travel];
  ts.id = travel;
  ts.mode = mode;
  ts.client = msg.src;
  ts.plan_bytes = plan_bytes;
  ts.started_us = now_us;
  ts.last_activity_us = now_us;
  ts.timeout_ms = timeout_ms;
  ts.cls = cls;
  ts.deadline_us = deadline_us;
  ts.result_mode = plan->result_mode;
  ts.group_key = plan->group_key;

  // Acknowledge with the assigned travel id; results stream separately.
  rpc::Message reply;
  reply.type = rpc::MsgType::kTraversalAccepted;
  reply.src = cfg_.id;
  reply.dst = msg.src;
  reply.rpc_id = msg.rpc_id;
  reply.payload = EncodeTravelId(travel);
  QueueSendLocked(std::move(reply));

  if (plan->has_branch()) {
    // Branch fan-out: the parent travel does no engine work of its own —
    // each flattened alternative runs as an internal child travel
    // coordinated on this same server, so parent/child result folding
    // happens under one mu_. Children pin their own snapshots (per-child
    // consistency; union-of-consistent-views semantics under races) and
    // inherit the parent's absolute deadline so lifecycle enforcement
    // happens at the children, which propagate failure upward.
    ts.plan = *plan;
    ts.unfinished_per_step.assign(1, 0);
    ts.pending_children = static_cast<uint32_t>(subs.size());
    for (size_t a = 0; a < subs.size(); a++) {
      ts.children.push_back(MakeExecId(cfg_.id, next_travel_seq_++));
    }
    for (size_t a = 0; a < subs.size(); a++) {
      const TravelId child = ts.children[a];
      PinTravelSnapLocked(child);
      if (cfg_.snapshot_isolation) {
        for (ServerId s = 0; s < cfg_.num_servers; s++) {
          if (s == cfg_.id) continue;
          rpc::Message pin;
          pin.type = rpc::MsgType::kPinTravel;
          pin.src = cfg_.id;
          pin.dst = s;
          pin.payload = EncodeTravelId(child);
          QueueSendLocked(std::move(pin));
        }
      }
      TravelState& cs = travels_[child];
      cs.id = child;
      cs.mode = mode;
      cs.client = 0;
      cs.internal = true;
      cs.parent_travel = travel;
      cs.plan_bytes = subs[a].Encode();
      cs.plan = expanded[a];
      cs.started_us = now_us;
      cs.last_activity_us = now_us;
      cs.timeout_ms = timeout_ms;
      cs.cls = cls;
      cs.deadline_us = deadline_us;
      cs.result_mode = plan->result_mode;
      cs.group_key = plan->group_key;
      cs.unfinished_per_step.assign(cs.plan.num_steps() + 1, 0);

      auto cplan = std::make_shared<CompiledPlan>();
      cplan->plan = cs.plan;
      cplan->plan_bytes = cs.plan_bytes;
      cplan->mode = mode;
      cplan->coordinator = cfg_.id;
      cplan->type_key = catalog_->Intern("type");
      cplan->attribution = NeedsAttribution(cs.plan);
      plans_[child] = cplan;
      cs.attribution = cplan->attribution;

      StartTravelLocked(cs);
    }
    return;
  }

  // Pin the travel's read view locally and broadcast the pin to every other
  // server. The pin messages are queued before the seed/step frames below,
  // so on in-order transports every participant pins before it sees any
  // work for the travel; reordered deliveries fall back to the lazy
  // first-touch pin in the frontier handlers.
  PinTravelSnapLocked(travel);
  if (cfg_.snapshot_isolation) {
    for (ServerId s = 0; s < cfg_.num_servers; s++) {
      if (s == cfg_.id) continue;
      rpc::Message pin;
      pin.type = rpc::MsgType::kPinTravel;
      pin.src = cfg_.id;
      pin.dst = s;
      pin.payload = EncodeTravelId(travel);
      QueueSendLocked(std::move(pin));
    }
  }

  ts.plan = std::move(unrolled);  // executable (repeat-expanded) form
  ts.unfinished_per_step.assign(ts.plan.num_steps() + 1, 0);

  auto cplan = std::make_shared<CompiledPlan>();
  cplan->plan = ts.plan;
  cplan->plan_bytes = plan_bytes;
  cplan->mode = ts.mode;
  cplan->coordinator = cfg_.id;
  // Intern, not Lookup: replica catalogs only know names they have seen;
  // "type" is virtual (never carried by a mutation) so a local-only Lookup
  // misses forever and every type filter would degrade to an ordinary prop
  // filter that no vertex carries.
  cplan->type_key = catalog_->Intern("type");
  cplan->attribution = NeedsAttribution(ts.plan);
  plans_[travel] = cplan;
  ts.attribution = cplan->attribution;

  StartTravelLocked(ts);
}

void BackendServer::StartTravelLocked(TravelState& ts) {
  if (ts.mode == EngineMode::kSync) {
    // Seed step-0 frontier batches, then start step 0 on every server.
    ts.sync_fwd_matrices.assign(ts.plan.num_steps() + 1,
                                std::vector<std::vector<uint32_t>>());
    std::vector<std::vector<FrontierEntry>> seed(cfg_.num_servers);
    std::vector<graph::VertexId> ids = ts.plan.start_ids;
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (auto vid : ids) {
      seed[partitioner_->ServerFor(vid)].push_back(FrontierEntry{vid, {}});
    }
    const bool scan = ts.plan.start_ids.empty();
    for (ServerId s = 0; s < cfg_.num_servers; s++) {
      if (!seed[s].empty()) {
        SyncBatchPayload batch;
        batch.travel_id = ts.id;
        batch.step = 0;
        batch.phase = 0;
        batch.entries = std::move(seed[s]);
        rpc::Message bm;
        bm.type = rpc::MsgType::kSyncBatch;
        bm.src = cfg_.id;
        bm.dst = s;
        bm.payload = batch.Encode();
        QueueSendLocked(std::move(bm));
      }
    }
    ts.sync_step = 0;
    ts.sync_phase = 0;
    ts.sync_pending_done = cfg_.num_servers;
    for (ServerId s = 0; s < cfg_.num_servers; s++) {
      RecordStepEventLocked(ts, 0, /*created=*/true);
      SyncStepPayload start;
      start.travel_id = ts.id;
      start.step = 0;
      start.phase = 0;
      start.scan_start = scan ? 1 : 0;
      start.plan = ts.plan_bytes;
      start.batches_expected = seed[s].empty() ? 0 : 1;
      rpc::Message sm;
      sm.type = rpc::MsgType::kSyncStepStart;
      sm.src = cfg_.id;
      sm.dst = s;
      sm.payload = start.Encode();
      QueueSendLocked(std::move(sm));
    }
    return;
  }

  StartRootExecsLocked(ts);
}

void BackendServer::StartRootExecsLocked(TravelState& ts) {
  const auto& plan = ts.plan;
  std::vector<std::vector<FrontierEntry>> per_server(cfg_.num_servers);
  bool scan = false;

  if (!plan.start_ids.empty()) {
    std::vector<graph::VertexId> ids = plan.start_ids;
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (auto vid : ids) {
      per_server[partitioner_->ServerFor(vid)].push_back(FrontierEntry{vid, {}});
    }
  } else {
    scan = true;  // every server scans its local type index
  }

  std::vector<ExecId> created;
  for (ServerId s = 0; s < cfg_.num_servers; s++) {
    if (!scan && per_server[s].empty()) continue;
    const ExecId exec_id = MakeExecId(cfg_.id, next_exec_seq_++);
    created.push_back(exec_id);

    TraversePayload req;
    req.travel_id = ts.id;
    req.step = 0;
    req.exec_id = exec_id;
    req.parent_exec = 0;
    req.parent_server = cfg_.id;
    req.coordinator = cfg_.id;
    req.mode = static_cast<uint8_t>(ts.mode);
    req.scan_start = scan ? 1 : 0;
    req.plan = ts.plan_bytes;
    req.entries = std::move(per_server[s]);

    rpc::Message m;
    m.type = rpc::MsgType::kTraverse;
    m.src = cfg_.id;
    m.dst = s;
    m.payload = req.Encode();
    QueueSendLocked(std::move(m));
  }

  ts.root_outstanding = static_cast<uint32_t>(created.size());
  ts.roots_dispatched = true;
  // Register the root creation events locally (the coordinator is the
  // spawning party here).
  for (ExecId id : created) {
    auto& trace = ts.execs[id];
    trace.step = 0;
    trace.created = true;
    ts.total_created++;
    ts.incomplete_execs++;
    ts.unfinished_per_step[0]++;
    RecordStepEventLocked(ts, 0, /*created=*/true);
  }

  if (ts.root_outstanding == 0) {
    CompleteTravelLocked(ts, Status::OK());
  }
}

void BackendServer::CompleteTravelLocked(TravelState& ts, Status status) {
  if (ts.done) return;
  ts.done = true;

  // Release the admission slot the travel held since HandleSubmit (internal
  // branch children were never admitted).
  if (!ts.internal) {
    const uint8_t cls_byte = static_cast<uint8_t>(ts.cls);
    if (cls_byte < kNumTravelClasses && inflight_per_class_[cls_byte] > 0) {
      inflight_per_class_[cls_byte]--;
    }
  }

  // Render + stream results to the client by result mode, then the
  // completion marker. Internal children skip rendering entirely: their raw
  // structures fold into the parent below and the parent renders once.
  if (!ts.internal) {
    auto send_chunk = [&](ResultChunkPayload&& chunk) {
      chunk.travel_id = ts.id;
      rpc::Message m;
      m.type = rpc::MsgType::kResultChunk;
      m.src = cfg_.id;
      m.dst = ts.client;
      m.payload = chunk.Encode();
      QueueSendLocked(std::move(m));
    };
    uint64_t total = 0;
    switch (ts.result_mode) {
      case lang::ResultMode::kVertices: {
        std::vector<graph::VertexId> all(ts.results.begin(), ts.results.end());
        std::sort(all.begin(), all.end());
        for (size_t off = 0; off < all.size(); off += cfg_.result_chunk) {
          ResultChunkPayload chunk;
          chunk.vids.assign(all.begin() + off,
                            all.begin() + std::min(all.size(), off + cfg_.result_chunk));
          send_chunk(std::move(chunk));
        }
        total = all.size();
        break;
      }
      case lang::ResultMode::kCount:
        // count() folds entirely into total_results; no chunks.
        total = ts.results.size();
        break;
      case lang::ResultMode::kGroup: {
        // value -> count over the distinct result vertices, in value order.
        std::map<std::string, uint64_t> groups;
        for (const auto& [vid, value] : ts.result_values) {
          (void)vid;
          groups[value]++;
        }
        ResultChunkPayload chunk;
        for (const auto& [value, count] : groups) {
          chunk.groups.emplace_back(value, count);
          if (chunk.groups.size() >= cfg_.result_chunk) {
            send_chunk(std::move(chunk));
            chunk = ResultChunkPayload();
          }
        }
        if (!chunk.groups.empty()) send_chunk(std::move(chunk));
        total = ts.result_values.size();
        break;
      }
      case lang::ResultMode::kPaths: {
        ResultChunkPayload chunk;
        for (const auto& path : ts.result_paths) {
          chunk.paths.push_back(path);
          if (chunk.paths.size() >= cfg_.result_chunk) {
            send_chunk(std::move(chunk));
            chunk = ResultChunkPayload();
          }
        }
        if (!chunk.paths.empty()) send_chunk(std::move(chunk));
        total = ts.result_paths.size();
        break;
      }
    }

    CompletePayload done;
    done.travel_id = ts.id;
    done.ok = status.ok() ? 1 : 0;
    done.code = static_cast<uint8_t>(status.code());
    done.error = status.ok() ? "" : status.ToString();
    done.total_results = total;
    rpc::Message m;
    m.type = rpc::MsgType::kTraversalComplete;
    m.src = cfg_.id;
    m.dst = ts.client;
    m.payload = done.Encode();
    QueueSendLocked(std::move(m));
  }

  // Broadcast cleanup; every server (including this one) drops the travel's
  // plans, cache entries, queued tasks and any leftover execution state.
  for (ServerId s = 0; s < cfg_.num_servers; s++) {
    rpc::Message abort;
    abort.type = rpc::MsgType::kAbortTraversal;
    abort.src = cfg_.id;
    abort.dst = s;
    abort.payload = AbortPayload{ts.id, AbortPayload::kCleanup}.Encode();
    QueueSendLocked(std::move(abort));
  }
  // A completing branch parent cancels any children still running (their
  // local abort routes back through this function and finds the parent
  // done, so the fold below is skipped for them).
  for (TravelId child : ts.children) {
    for (ServerId s = 0; s < cfg_.num_servers; s++) {
      rpc::Message abort;
      abort.type = rpc::MsgType::kAbortTraversal;
      abort.src = cfg_.id;
      abort.dst = s;
      abort.payload = AbortPayload{child, AbortPayload::kCleanup}.Encode();
      QueueSendLocked(std::move(abort));
    }
  }

  if (ts.internal) {
    // Fold this child's raw result structures into the parent; the union of
    // the alternatives' results is the branch semantics. A failing child
    // fails the whole branch with its status.
    auto pit = travels_.find(ts.parent_travel);
    if (pit != travels_.end() && !pit->second.done) {
      TravelState& parent = pit->second;
      if (!status.ok()) {
        parent.results.clear();
        parent.result_values.clear();
        parent.result_paths.clear();
        CompleteTravelLocked(parent, status);
      } else {
        parent.results.insert(ts.results.begin(), ts.results.end());
        for (const auto& [vid, value] : ts.result_values) {
          parent.result_values.emplace(vid, value);
        }
        parent.result_paths.insert(ts.result_paths.begin(), ts.result_paths.end());
        parent.last_activity_us = NowMicros();
        if (parent.pending_children > 0) parent.pending_children--;
        if (parent.pending_children == 0) CompleteTravelLocked(parent, Status::OK());
      }
    }
    travels_.erase(ts.id);  // ts is dangling after this line
    return;
  }

  const uint64_t now_us = NowMicros();
  travel_duration_ms_[static_cast<int>(ts.mode)]->Observe(
      (now_us - ts.started_us) / 1000.0);
  (status.ok() ? travels_ok_ : travels_failed_)->Inc();
  ArchiveTravelLocked(ts, status.ok(), now_us);

  travels_.erase(ts.id);  // ts is dangling after this line
}

void BackendServer::RecordStepEventLocked(TravelState& ts, uint32_t step,
                                          bool created) {
  if (ts.step_spans.size() <= step) ts.step_spans.resize(step + 1);
  TravelTrace::StepSpan& span = ts.step_spans[step];
  const uint64_t now = NowMicros();
  if (span.first_event_us == 0) span.first_event_us = now;
  span.last_event_us = now;
  if (created) {
    span.created++;
  } else {
    span.terminated++;
  }
}

void BackendServer::ArchiveTravelLocked(const TravelState& ts, bool ok,
                                        uint64_t now_us) {
  constexpr size_t kMaxArchivedTraces = 32;
  TravelTrace trace;
  trace.travel = ts.id;
  trace.mode = ts.mode;
  trace.coordinator = cfg_.id;
  trace.ok = ok;
  trace.started_us = ts.started_us;
  trace.finished_us = now_us;
  trace.total_created = ts.total_created;
  trace.total_terminated = ts.total_terminated;
  trace.result_count = ts.results.size();
  trace.steps = ts.step_spans;
  recent_traces_.push_back(std::move(trace));
  while (recent_traces_.size() > kMaxArchivedTraces) recent_traces_.pop_front();
}

std::vector<TravelTrace> BackendServer::RecentTraces() const {
  MutexLock lk(&mu_);
  return std::vector<TravelTrace>(recent_traces_.begin(), recent_traces_.end());
}

bool BackendServer::ExportTraceJson(TravelId travel, std::string* json) const {
  MutexLock lk(&mu_);
  if (recent_traces_.empty()) return false;
  if (travel == 0) {
    *json = ToChromeTraceJson(recent_traces_.back());
    return true;
  }
  for (const TravelTrace& t : recent_traces_) {
    if (t.travel == travel) {
      *json = ToChromeTraceJson(t);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Asynchronous traversal: frontier hand-off
// ---------------------------------------------------------------------------

void BackendServer::HandleTraverse(rpc::Message&& msg) {
  auto req = TraversePayload::Decode(msg.payload);
  if (!req.ok()) {
    GT_WARN << "server " << cfg_.id << ": bad traverse payload";
    return;
  }

  // Resolve the scan label before taking the lock (catalog is thread-safe).
  MutexLock lk(&mu_);
  if (aborted_travels_.count(req->travel_id) != 0) return;

  // Lazy first-touch pin: normally the kPinTravel broadcast got here first
  // and this returns the existing pin.
  auto travel_snap = PinTravelSnapLocked(req->travel_id);

  auto pit = plans_.find(req->travel_id);
  std::shared_ptr<CompiledPlan> cplan;
  if (pit != plans_.end()) {
    cplan = pit->second;
  } else {
    auto plan = lang::TraversalPlan::Decode(req->plan);
    if (!plan.ok()) {
      GT_WARN << "server " << cfg_.id << ": bad plan in traverse";
      return;
    }
    // The wire form is compact; execution uses the repeat-expanded chain so
    // step attribution and cohort numbering line up across servers.
    auto unrolled = plan->Unrolled();
    if (!unrolled.ok()) {
      GT_WARN << "server " << cfg_.id << ": bad plan in traverse: "
              << unrolled.status().ToString();
      return;
    }
    cplan = std::make_shared<CompiledPlan>();
    cplan->plan = std::move(*unrolled);
    cplan->plan_bytes.assign(req->plan);  // first sight: copy out of the frame
    cplan->mode = static_cast<EngineMode>(req->mode);
    cplan->coordinator = req->coordinator;
    cplan->type_key = catalog_->Intern("type");  // see HandleSubmit: replicas
    cplan->attribution = NeedsAttribution(cplan->plan);
    plans_[req->travel_id] = cplan;
  }

  // Duplicate-delivery absorption (exec ids are globally unique): only the
  // first copy of a hand-off frame executes.
  if (!cplan->seen_execs.insert(req->exec_id).second) {
    visit_stats_.duplicate_frames.fetch_add(1);
    return;
  }

  auto exec_owner = std::make_unique<ExecState>();
  ExecState& exec = *exec_owner;
  exec.travel = req->travel_id;
  exec.id = req->exec_id;
  exec.step = req->step;
  exec.parent_server = req->parent_server;
  exec.parent_exec = req->parent_exec;

  const bool graphtrek = cplan->mode == EngineMode::kGraphTrek;
  const bool attribution = cplan->attribution;

  // Build the entry set. The attribution path deduplicates and keeps the
  // per-vertex parents (needed for the answer flow); the direct path
  // iterates the wire entries as-is (senders already deduplicate).
  std::vector<graph::VertexId> scan_entries;
  if (req->scan_start != 0) {
    const graph::LabelId label = ScanLabelFor(cplan->plan, catalog_);
    if (label != graph::Catalog::kInvalidId) {
      const bool warm = !scanned_types_[req->travel_id].insert(label).second;
      auto collect = [&](graph::VertexId vid) {
        scan_entries.push_back(vid);
        return true;
      };
      if (cplan->plan.push_start_filters) {
        // Planner pushdown: apply every start filter inside the index scan
        // so non-matching vertices never become root tasks. The engine
        // re-applies the filters at processing time (idempotent), so this
        // is result-identical with the unpushed path.
        const auto& sf = cplan->plan.start_vertex_filters;
        store_->ScanVerticesByTypeFiltered(
            label,
            [&](const graph::VertexRecord& rec) {
              return lang::VertexMatchesAll(sf, rec, *catalog_, cplan->type_key);
            },
            collect, warm, travel_snap.get()).ok();
      } else {
        store_->ScanVerticesByType(label, collect, warm, travel_snap.get()).ok();
      }
    }
  }

  const ExecId exec_id = exec.id;
  execs_.emplace(exec_id, std::move(exec_owner));
  ExecState& ex = *execs_.at(exec_id);

  if (cplan->plan.result_mode == lang::ResultMode::kPaths) {
    // kPaths (always direct protocol: the validator forbids rtn): prefixes
    // ride FrontierEntry.parents, and the same vertex reached along
    // different chains expands once per distinct prefix. The travel cache
    // is bypassed — absorption would collapse distinct prefixes into one.
    auto add_entry = [&](graph::VertexId vid,
                         const std::vector<graph::VertexId>& prefix) {
      auto& prefixes = ex.path_prefixes[vid];
      if (std::find(prefixes.begin(), prefixes.end(), prefix) == prefixes.end()) {
        prefixes.push_back(prefix);
      }
    };
    for (const auto& e : req->entries) add_entry(e.vid, e.parents);
    for (auto vid : scan_entries) add_entry(vid, std::vector<graph::VertexId>{});
    visit_stats_.received.fetch_add(ex.path_prefixes.size());
    visit_stats_.AddStep(ex.step, ex.path_prefixes.size());
    for (const auto& [vid, prefixes] : ex.path_prefixes) {
      (void)prefixes;
      ex.owned_unprocessed++;
      queue_.Push(VertexTask{ex.travel, ex.step, vid, ex.id, /*is_owner=*/true,
                             /*sync=*/false},
                  graphtrek && cfg_.graphtrek_priority_sched,
                  graphtrek && cfg_.graphtrek_merging);
    }
    if (ex.owned_unprocessed == 0 && !ex.dispatched) {
      DispatchLocked(ex, *cplan);  // erases ex
    }
    return;
  }

  if (!attribution) {
    // Direct protocol: per entry, one memo probe decides owner vs redundant.
    visit_stats_.received.fetch_add(req->entries.size() + scan_entries.size());
    visit_stats_.AddStep(ex.step, req->entries.size() + scan_entries.size());
    auto classify = [&](graph::VertexId vid) {
      if (graphtrek) {
        auto lr = cache_.LookupOrInsertPending(ex.travel, ex.step, vid);
        if (lr.state != TravelCache::State::kMiss) {
          visit_stats_.redundant.fetch_add(1);
          return;
        }
        ex.owned_unprocessed++;
        queue_.Push(VertexTask{ex.travel, ex.step, vid, ex.id, /*is_owner=*/true,
                               /*sync=*/false},
                    cfg_.graphtrek_priority_sched, cfg_.graphtrek_merging);
      } else {
        ex.owned_unprocessed++;
        queue_.Push(VertexTask{ex.travel, ex.step, vid, ex.id, /*is_owner=*/false,
                               /*sync=*/false},
                    /*priority=*/false, /*mergeable=*/false);
      }
    };
    for (const auto& e : req->entries) classify(e.vid);
    for (auto vid : scan_entries) classify(vid);
    if (ex.owned_unprocessed == 0 && !ex.dispatched) {
      DispatchLocked(ex, *cplan);  // erases ex
    }
    return;
  }

  for (auto vid : scan_entries) {
    ex.entry_parents.emplace(vid, std::vector<graph::VertexId>{});
  }
  for (auto& e : req->entries) {
    auto [it, inserted] = ex.entry_parents.emplace(e.vid, e.parents);
    if (!inserted) {
      it->second.insert(it->second.end(), e.parents.begin(), e.parents.end());
    }
  }
  ex.unresolved = ex.entry_parents.size();
  visit_stats_.received.fetch_add(ex.entry_parents.size());
  visit_stats_.AddStep(ex.step, ex.entry_parents.size());

  std::vector<std::pair<graph::VertexId, TravelCache::LookupResult>> classified;
  classified.reserve(ex.entry_parents.size());
  for (const auto& [vid, parents] : ex.entry_parents) {
    if (graphtrek) {
      classified.emplace_back(vid,
                              cache_.LookupOrInsertPending(ex.travel, ex.step, vid));
    } else {
      // Async-GT: classification deferred to processing time; every entry
      // pays its own I/O.
      classified.emplace_back(vid, TravelCache::LookupResult{});
    }
  }

  for (auto& [vid, lr] : classified) {
    if (!graphtrek) {
      ex.owned_unprocessed++;
      queue_.Push(VertexTask{ex.travel, ex.step, vid, ex.id, /*is_owner=*/false,
                             /*sync=*/false},
                  /*priority=*/false, /*mergeable=*/false);
      continue;
    }
    switch (lr.state) {
      case TravelCache::State::kMiss:
        ex.owned.insert(vid);
        ex.owned_unprocessed++;
        queue_.Push(VertexTask{ex.travel, ex.step, vid, ex.id, /*is_owner=*/true,
                               /*sync=*/false},
                    cfg_.graphtrek_priority_sched, cfg_.graphtrek_merging);
        break;
      case TravelCache::State::kPending: {
        visit_stats_.redundant.fetch_add(1);
        const ExecId waiter_exec = ex.id;
        const graph::VertexId waiter_vid = vid;
        cache_.AddWaiter(ex.travel, ex.step, vid, [this, waiter_exec, waiter_vid](bool reach) {
          mu_.AssertHeld();  // waiters fire under the engine lock (Resolve sites)
          auto it = execs_.find(waiter_exec);
          if (it == execs_.end()) return;
          ResolveVertexLocked(*it->second, waiter_vid, reach, /*from_owner=*/false);
          TryAnswerLocked(*it->second);
        });
        break;
      }
      case TravelCache::State::kResolved:
        visit_stats_.redundant.fetch_add(1);
        ResolveVertexLocked(ex, vid, lr.reach, /*from_owner=*/false);
        break;
    }
  }

  if (ex.owned_unprocessed == 0 && !ex.dispatched) {
    DispatchLocked(ex, *cplan);
  }
  TryAnswerLocked(ex);
}

// ---------------------------------------------------------------------------
// Worker loop: vertex processing (async engines + sync-engine tasks)
// ---------------------------------------------------------------------------

void BackendServer::WorkerLoop() {
  const size_t max_frontier =
      cfg_.batched_multiget ? std::max<uint32_t>(1, cfg_.max_frontier_batch) : 1;
  std::vector<VertexTask> batch;
  while (queue_.PopBatch(&batch, max_frontier)) {
    if (batch.empty()) continue;
    if (batch.front().sync) {
      // Sync-engine tasks are never merged (batch size 1).
      ProcessSyncTask(batch.front());
    } else {
      ProcessBatch(batch);
    }
    DrainOutbox();  // flush sends staged under mu_ during processing
  }
}

void BackendServer::ProcessBatch(const std::vector<VertexTask>& batch) {
  const TravelId travel = batch.front().travel;

  // Per-thread scratch: every per-batch container below lives in the arena
  // and is reclaimed wholesale by Reset(). A disabled knob hands out a null
  // arena and the same containers silently fall back to the heap.
  thread_local Arena scratch_arena(256 << 10);
  Arena* arena = cfg_.arena_scratch ? &scratch_arena : nullptr;
  if (arena != nullptr) arena->Reset();

  // Distinct vertices in the group, in first-appearance order, with each
  // task mapped to its vertex slot.
  std::vector<graph::VertexId, ArenaAllocator<graph::VertexId>> vids{
      ArenaAllocator<graph::VertexId>(arena)};
  std::vector<uint32_t, ArenaAllocator<uint32_t>> task_slot{
      ArenaAllocator<uint32_t>(arena)};
  task_slot.reserve(batch.size());
  for (const auto& t : batch) {
    uint32_t slot = 0;
    while (slot < vids.size() && vids[slot] != t.vid) slot++;
    if (slot == vids.size()) vids.push_back(t.vid);
    task_slot.push_back(slot);
  }

  std::shared_ptr<CompiledPlan> cplan;
  std::shared_ptr<const graph::GraphStore::ReadSnapshot> travel_snap;
  std::vector<bool> warm(vids.size(), false);
  {
    MutexLock lk(&mu_);
    auto it = plans_.find(travel);
    if (it == plans_.end()) return;  // travel aborted while queued
    cplan = it->second;
    // The shared_ptr copy keeps the pinned view alive through the unlocked
    // I/O phase even if an abort erases the travel's pin concurrently.
    travel_snap = TravelSnapLocked(travel);
    // Re-reads within a travel hit the storage engine's block cache.
    auto& acc = accessed_[travel];
    for (size_t i = 0; i < vids.size(); i++) warm[i] = !acc.insert(vids[i]).second;
  }
  const lang::TraversalPlan& plan = cplan->plan;
  const uint32_t num_steps = static_cast<uint32_t>(plan.num_steps());
  const bool graphtrek = cplan->mode == EngineMode::kGraphTrek;
  const bool attribution = cplan->attribution;

  // Step each vertex is first scheduled at (drives straggler step matching).
  std::vector<uint32_t, ArenaAllocator<uint32_t>> vid_step(
      vids.size(), 0, ArenaAllocator<uint32_t>(arena));
  {
    std::vector<bool> seen(vids.size(), false);
    for (size_t i = 0; i < batch.size(); i++) {
      if (!seen[task_slot[i]]) {
        seen[task_slot[i]] = true;
        vid_step[task_slot[i]] = batch[i].step;
      }
    }
  }

  // --- I/O phase (no engine lock held) -------------------------------------
  struct EdgeEntry {
    graph::LabelId label;
    graph::VertexId dst;
    graph::PropMap props;
  };
  using EdgeVec = std::vector<EdgeEntry, ArenaAllocator<EdgeEntry>>;
  struct VidData {
    bool exists = false;
    graph::VertexRecord rec;
  };
  std::vector<VidData> vid_data(vids.size());
  std::vector<EdgeVec, ArenaAllocator<EdgeVec>> vid_edges{
      ArenaAllocator<EdgeVec>(arena)};
  for (size_t i = 0; i < vids.size(); i++) {
    vid_edges.emplace_back(ArenaAllocator<EdgeEntry>(arena));
  }

  // Planner fetch strategy: 0 honours the server knob, 1 forces the batched
  // MultiGet, 2 forces per-vertex point reads. Both read the same records
  // from the same snapshot — result-identical by construction.
  const bool batched_fetch =
      plan.fetch_hint == 0 ? cfg_.batched_multiget : plan.fetch_hint == 1;
  if (batched_fetch && vids.size() > 1) {
    // One MultiGet per step cohort (usually the whole group) so straggler
    // rules still see the step each access belongs to.
    std::vector<bool> fetched(vids.size(), false);
    for (size_t lo = 0; lo < vids.size(); lo++) {
      if (fetched[lo]) continue;
      const uint32_t step = vid_step[lo];
      std::vector<graph::GraphStore::VertexLookup> lookups;
      std::vector<size_t> slots;
      for (size_t i = lo; i < vids.size(); i++) {
        if (fetched[i] || vid_step[i] != step) continue;
        graph::GraphStore::VertexLookup lk;
        lk.vid = vids[i];
        lk.warm = warm[i];
        lookups.push_back(lk);
        slots.push_back(i);
        fetched[i] = true;
      }
      tls_current_step = static_cast<int>(step);
      store_->MultiGetVertices(&lookups, travel_snap.get()).ok();
      tls_current_step = -1;
      for (size_t j = 0; j < slots.size(); j++) {
        vid_data[slots[j]].exists = lookups[j].found;
        vid_data[slots[j]].rec = std::move(lookups[j].rec);
      }
    }
  } else {
    for (size_t i = 0; i < vids.size(); i++) {
      tls_current_step = static_cast<int>(vid_step[i]);
      auto vrec = store_->GetVertex(vids[i], warm[i], travel_snap.get());
      tls_current_step = -1;
      if (vrec.ok()) {
        vid_data[i].exists = true;
        vid_data[i].rec = std::move(*vrec);
      }
    }
  }

  // One edge scan per vertex serves every merged task that needs expansion.
  for (size_t i = 0; i < vids.size(); i++) {
    bool need_edges = false;
    for (size_t k = 0; k < batch.size(); k++) {
      if (task_slot[k] == i && batch[k].step < num_steps) need_edges = true;
    }
    if (!vid_data[i].exists || !need_edges) continue;
    tls_current_step = static_cast<int>(vid_step[i]);
    store_
        ->ScanAllEdges(vids[i],
                       [&](graph::LabelId label, graph::VertexId dst,
                           const graph::PropMap& props) {
                         vid_edges[i].push_back({label, dst, props});
                         return true;
                       },
                       warm[i], travel_snap.get())
        .ok();
    tls_current_step = -1;
  }

  visit_stats_.real_io.fetch_add(vids.size());
  if (batch.size() > vids.size()) {
    visit_stats_.combined.fetch_add(batch.size() - vids.size());
  }

  // Per-task outcome, computed lock-free. Targets are a flat arena vector
  // of (owner server, dst) pairs; the apply phase groups as it inserts.
  using TargetVec =
      std::vector<std::pair<ServerId, graph::VertexId>,
                  ArenaAllocator<std::pair<ServerId, graph::VertexId>>>;
  struct Outcome {
    bool passed = false;
    bool final_step = false;
    TargetVec targets;
    // kGroup: the vertex's rendered group value, captured here while the
    // record is in hand (the apply phase never re-reads the store).
    std::string group_value;
    explicit Outcome(Arena* a)
        : targets(ArenaAllocator<std::pair<ServerId, graph::VertexId>>(a)) {}
  };
  std::vector<Outcome, ArenaAllocator<Outcome>> outcomes{
      ArenaAllocator<Outcome>(arena)};
  outcomes.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); i++) outcomes.emplace_back(arena);
  for (size_t i = 0; i < batch.size(); i++) {
    const VertexTask& t = batch[i];
    const VidData& vd = vid_data[task_slot[i]];
    Outcome& out = outcomes[i];
    if (!vd.exists) continue;
    if (!lang::VertexMatchesAll(StepVertexFilters(plan, t.step), vd.rec, *catalog_,
                                cplan->type_key)) {
      continue;
    }
    out.passed = true;
    // until(): a matching vertex at an iteration boundary is a terminal
    // result — no further expansion. In an until() plan, final-step
    // survivors that never matched are not results at all.
    const std::vector<lang::Filter>* until = UntilFiltersAtStep(plan, t.step);
    const bool until_hit =
        until != nullptr &&
        lang::VertexMatchesAll(*until, vd.rec, *catalog_, cplan->type_key);
    if (until_hit) {
      out.final_step = true;
    } else if (t.step >= num_steps) {
      if (plan.has_until()) {
        out.passed = false;
        continue;
      }
      out.final_step = true;
    }
    if (out.final_step) {
      if (plan.result_mode == lang::ResultMode::kGroup) {
        out.group_value =
            lang::GroupValueForVertex(vd.rec, plan.group_key, *catalog_, cplan->type_key);
      }
      continue;
    }
    const lang::Hop& hop = plan.hops[t.step];
    // Edges are in (label, dst) order: the hop's label is one contiguous run.
    const EdgeVec& edges = vid_edges[task_slot[i]];
    auto lo = std::lower_bound(
        edges.begin(), edges.end(), hop.edge_label,
        [](const EdgeEntry& e, graph::LabelId l) { return e.label < l; });
    for (auto eit = lo; eit != edges.end() && eit->label == hop.edge_label; ++eit) {
      if (!lang::MatchesAll(hop.edge_filters, eit->props)) continue;
      out.targets.emplace_back(partitioner_->ServerFor(eit->dst), eit->dst);
    }
  }

  // --- apply phase (engine lock) --------------------------------------------
  MutexLock lk(&mu_);
  for (size_t i = 0; i < batch.size(); i++) {
    const VertexTask& t = batch[i];
    auto eit = execs_.find(t.exec);
    if (eit == execs_.end()) continue;  // exec gone (abort)
    ExecState& exec = *eit->second;
    Outcome& out = outcomes[i];

    if (cplan->plan.result_mode == lang::ResultMode::kPaths) {
      // kPaths bypasses the cache and classification entirely: every task
      // is an owner task, and each distinct prefix of the vertex extends
      // through every passing edge independently.
      const auto ppit = exec.path_prefixes.find(t.vid);
      if (ppit != exec.path_prefixes.end()) {
        if (out.passed && out.final_step) {
          for (const auto& prefix : ppit->second) {
            std::vector<graph::VertexId> path = prefix;
            path.push_back(t.vid);
            exec.result_paths.push_back(std::move(path));
          }
        } else if (out.passed) {
          for (auto& [server, dst] : out.targets) {
            for (const auto& prefix : ppit->second) {
              std::vector<graph::VertexId> chain = prefix;
              chain.push_back(t.vid);
              exec.out_path_entries[server].push_back(FrontierEntry{dst, std::move(chain)});
            }
          }
        }
      }
      exec.owned_unprocessed--;
      if (exec.owned_unprocessed == 0 && !exec.dispatched) {
        DispatchLocked(exec, *cplan);  // erases exec on this path
      }
      continue;
    }

    bool owner = t.is_owner;
    if (!graphtrek) {
      // Async-GT classifies now: the I/O is already paid either way.
      auto lr = cache_.LookupOrInsertPending(t.travel, t.step, t.vid);
      switch (lr.state) {
        case TravelCache::State::kMiss:
          owner = true;
          exec.owned.insert(t.vid);
          break;
        case TravelCache::State::kPending: {
          visit_stats_.redundant.fetch_add(1);
          if (attribution) {
            const ExecId waiter_exec = exec.id;
            const graph::VertexId waiter_vid = t.vid;
            cache_.AddWaiter(t.travel, t.step, t.vid,
                             [this, waiter_exec, waiter_vid](bool reach) {
                               mu_.AssertHeld();  // fired under the engine lock
                               auto it2 = execs_.find(waiter_exec);
                               if (it2 == execs_.end()) return;
                               ResolveVertexLocked(*it2->second, waiter_vid, reach,
                                                   /*from_owner=*/false);
                               TryAnswerLocked(*it2->second);
                             });
          }
          exec.owned_unprocessed--;
          if (exec.owned_unprocessed == 0 && !exec.dispatched) {
            DispatchLocked(exec, *cplan);  // erases exec on the direct path
            if (attribution) TryAnswerLocked(exec);
            continue;
          }
          if (attribution) TryAnswerLocked(exec);
          continue;
        }
        case TravelCache::State::kResolved:
          visit_stats_.redundant.fetch_add(1);
          if (attribution) ResolveVertexLocked(exec, t.vid, lr.reach, /*from_owner=*/false);
          exec.owned_unprocessed--;
          if (exec.owned_unprocessed == 0 && !exec.dispatched) {
            DispatchLocked(exec, *cplan);
            if (attribution) TryAnswerLocked(exec);
            continue;
          }
          if (attribution) TryAnswerLocked(exec);
          continue;
      }
    }

    // Owner path: apply the computed outcome.
    if (!attribution) {
      // Direct protocol: resolve the memo (for redundancy absorption) and
      // collect results/expansion; no per-vertex answer bookkeeping.
      if (owner) {
        auto waiters = cache_.Resolve(t.travel, t.step, t.vid, out.passed);
        for (auto& w : waiters) w(out.passed);  // none are registered
        if (out.passed && out.final_step) {
          exec.results.push_back(t.vid);
          if (cplan->plan.result_mode == lang::ResultMode::kGroup) {
            exec.result_values.push_back(std::move(out.group_value));
          }
        } else if (out.passed) {
          for (auto& [server, dst] : out.targets) {
            exec.out_targets[server][dst];  // parents not tracked
          }
        }
      }
      exec.owned_unprocessed--;
      if (exec.owned_unprocessed == 0 && !exec.dispatched) {
        DispatchLocked(exec, *cplan);  // erases exec on this path
      }
      continue;
    }

    if (!out.passed) {
      ResolveVertexLocked(exec, t.vid, false, /*from_owner=*/owner);
    } else if (out.final_step) {
      ResolveVertexLocked(exec, t.vid, true, /*from_owner=*/owner);
    } else if (out.targets.empty()) {
      ResolveVertexLocked(exec, t.vid, false, /*from_owner=*/owner);
    } else {
      exec.awaiting_children.insert(t.vid);
      for (auto& [server, dst] : out.targets) {
        exec.out_targets[server][dst].push_back(t.vid);
      }
    }
    exec.owned_unprocessed--;
    if (exec.owned_unprocessed == 0 && !exec.dispatched) DispatchLocked(exec, *cplan);
    TryAnswerLocked(exec);
  }
}

void BackendServer::ResolveVertexLocked(ExecState& exec, graph::VertexId vid, bool reach,
                                        bool from_owner) {
  if (exec.answered) return;
  if (!exec.resolved.insert(vid).second) return;  // already decided
  exec.unresolved--;
  exec.awaiting_children.erase(vid);
  if (reach) {
    exec.reached.insert(vid);
    // rtn()/final-result emission happens exactly once, at the owner.
    if (exec.owned.count(vid) != 0) {
      const auto pit = plans_.find(exec.travel);
      if (pit != plans_.end()) {
        const lang::TraversalPlan& plan = pit->second->plan;
        const bool is_final = exec.step >= plan.num_steps();
        if (RtnAtStep(plan, exec.step) || (is_final && !plan.has_rtn())) {
          exec.results.push_back(vid);
        }
      }
    }
  }
  if (from_owner && exec.owned.count(vid) != 0) {
    auto waiters = cache_.Resolve(exec.travel, exec.step, vid, reach);
    for (auto& w : waiters) w(reach);
  }
}

void BackendServer::DispatchLocked(ExecState& exec, const CompiledPlan& cplan) {
  exec.dispatched = true;

  std::vector<ExecId> created;
  auto send_child = [&](ServerId server, std::vector<FrontierEntry> entries) {
    const ExecId child_id = MakeExecId(cfg_.id, next_exec_seq_++);
    created.push_back(child_id);

    TraversePayload req;
    req.travel_id = exec.travel;
    req.step = exec.step + 1;
    req.exec_id = child_id;
    req.parent_exec = exec.id;
    req.parent_server = cfg_.id;
    req.coordinator = cplan.coordinator;
    req.mode = static_cast<uint8_t>(cplan.mode);
    req.plan = cplan.plan_bytes;
    req.entries = std::move(entries);

    rpc::Message m;
    m.type = rpc::MsgType::kTraverse;
    m.src = cfg_.id;
    m.dst = server;
    m.payload = req.Encode();
    QueueSendLocked(std::move(m));
  };
  for (auto& [server, targets] : exec.out_targets) {
    std::vector<FrontierEntry> entries;
    entries.reserve(targets.size());
    for (auto& [dst, parents] : targets) {
      entries.push_back(FrontierEntry{dst, std::move(parents)});
    }
    send_child(server, std::move(entries));
  }
  // kPaths expansion: one entry per (prefix, edge), prefixes in `parents`.
  for (auto& [server, entries] : exec.out_path_entries) {
    send_child(server, std::move(entries));
  }
  exec.children_outstanding = static_cast<uint32_t>(created.size());
  exec.out_targets.clear();
  exec.out_path_entries.clear();

  if (!cplan.attribution) {
    // Direct protocol (paper Fig. 3): results go straight to the
    // coordinator; the execution is finished once it has dispatched.
    if (!exec.results.empty() || !exec.result_paths.empty()) {
      AnswerPayload ans;
      ans.travel_id = exec.travel;
      ans.exec_id = exec.id;
      ans.parent_exec = 0;  // travel-level accumulation
      ans.result_vids = std::move(exec.results);
      ans.result_values = std::move(exec.result_values);
      ans.result_paths = std::move(exec.result_paths);
      rpc::Message m;
      m.type = rpc::MsgType::kReturnVertices;
      m.src = cfg_.id;
      m.dst = cplan.coordinator;
      m.payload = ans.Encode();
      QueueSendLocked(std::move(m));
    }
    const TravelId travel = exec.travel;
    const uint32_t step = exec.step;
    const ExecId id = exec.id;
    EraseExecLocked(id);  // exec is dangling after this line
    SendDispatchEventLocked(cplan.coordinator, travel, step + 1, std::move(created), id,
                            step);
    return;
  }

  // Status tracing (Section IV-C): register the downstream executions with
  // the coordinator and report this execution's own termination.
  SendDispatchEventLocked(cplan.coordinator, exec.travel, exec.step + 1,
                          std::move(created), exec.id, exec.step);
}

void BackendServer::TryAnswerLocked(ExecState& exec) {
  if (exec.answered || !exec.dispatched || exec.owned_unprocessed > 0 ||
      exec.children_outstanding > 0 || exec.unresolved > 0) {
    return;
  }
  exec.answered = true;

  AnswerPayload ans;
  ans.travel_id = exec.travel;
  ans.exec_id = exec.id;
  ans.parent_exec = exec.parent_exec;
  std::unordered_set<graph::VertexId> reached_parents;
  for (auto vid : exec.reached) {
    const auto it = exec.entry_parents.find(vid);
    if (it == exec.entry_parents.end()) continue;
    reached_parents.insert(it->second.begin(), it->second.end());
  }
  ans.reached_parents.assign(reached_parents.begin(), reached_parents.end());
  ans.result_vids = std::move(exec.results);

  rpc::Message m;
  m.type = rpc::MsgType::kReturnVertices;
  m.src = cfg_.id;
  m.dst = exec.parent_server;
  m.payload = ans.Encode();
  QueueSendLocked(std::move(m));

  EraseExecLocked(exec.id);  // exec is dangling after this line
}

void BackendServer::EraseExecLocked(ExecId id) { execs_.erase(id); }

void BackendServer::HandleAnswer(rpc::Message&& msg) {
  auto ans = AnswerPayload::Decode(msg.payload);
  if (!ans.ok()) return;

  MutexLock lk(&mu_);

  if (ans->parent_exec == 0) {
    // Travel-level accounting at the coordinator.
    auto it = travels_.find(ans->travel_id);
    if (it == travels_.end()) return;
    TravelState& ts = it->second;
    ts.results.insert(ans->result_vids.begin(), ans->result_vids.end());
    if (!ans->result_values.empty()) {
      // Decode validated the parallel-array invariant.
      for (size_t i = 0; i < ans->result_vids.size(); i++) {
        ts.result_values[ans->result_vids[i]] = std::move(ans->result_values[i]);
      }
    }
    for (auto& path : ans->result_paths) {
      ts.result_paths.insert(std::move(path));
    }
    ts.last_activity_us = NowMicros();
    if (ts.result_paths.size() > kMaxCoordinatorPaths) {
      ts.results.clear();
      ts.result_values.clear();
      ts.result_paths.clear();
      CompleteTravelLocked(ts, Status::Internal("path result limit exceeded"));
      return;
    }
    if (!ts.attribution) return;  // completion comes from status tracing
    if (ts.root_outstanding > 0) ts.root_outstanding--;
    if (ts.root_outstanding == 0) CompleteTravelLocked(ts, Status::OK());
    return;
  }

  auto eit = execs_.find(ans->parent_exec);
  if (eit == execs_.end()) return;
  ExecState& exec = *eit->second;
  if (exec.children_outstanding > 0) exec.children_outstanding--;

  for (auto vid : ans->reached_parents) {
    ResolveVertexLocked(exec, vid, true, /*from_owner=*/true);
  }
  exec.results.insert(exec.results.end(), ans->result_vids.begin(), ans->result_vids.end());

  if (exec.children_outstanding == 0) {
    // Everything still awaiting children has no live path.
    std::vector<graph::VertexId> dead(exec.awaiting_children.begin(),
                                      exec.awaiting_children.end());
    for (auto vid : dead) {
      ResolveVertexLocked(exec, vid, false, /*from_owner=*/true);
    }
  }
  TryAnswerLocked(exec);
}

// ---------------------------------------------------------------------------
// Live updates + point queries (client -> owning server, Section I reqs)
// ---------------------------------------------------------------------------

void BackendServer::HandleMutation(rpc::Message&& msg) {
  auto reply_ack = [&](const Status& st) {
    MutateAckPayload ack;
    ack.ok = st.ok() ? 1 : 0;
    ack.error = st.ok() ? "" : st.ToString();
    rpc::Message reply;
    reply.type = rpc::MsgType::kMutateAck;
    reply.src = cfg_.id;
    reply.dst = msg.src;
    reply.rpc_id = msg.rpc_id;
    reply.payload = ack.Encode();
    SendLossy(std::move(reply));
  };

  // Clients may address any server; requests for records owned elsewhere
  // are forwarded to the owner, which replies to the client directly (the
  // original src rides along on the forwarded message).
  auto forward_if_foreign = [&](graph::VertexId anchor) {
    const ServerId owner = partitioner_->ServerFor(anchor);
    if (owner == cfg_.id) return false;
    rpc::Message fwd = msg;
    fwd.dst = owner;
    SendLossy(std::move(fwd));
    return true;
  };

  switch (msg.type) {
    case rpc::MsgType::kPutVertex: {
      auto req = PutVertexPayload::Decode(msg.payload);
      if (!req.ok()) return reply_ack(req.status());
      if (forward_if_foreign(req->vid)) return;
      graph::VertexRecord rec;
      rec.id = req->vid;
      rec.label = catalog_->Intern(req->label);
      rec.props = InternProps(req->props, catalog_);
      reply_ack(store_->PutVertex(rec));
      return;
    }
    case rpc::MsgType::kPutEdge: {
      auto req = PutEdgePayload::Decode(msg.payload);
      if (!req.ok()) return reply_ack(req.status());
      if (forward_if_foreign(req->src)) return;  // edge-cut: edges live with src
      // Referential integrity: an edge whose endpoint vertex does not exist
      // is a dangling reference no traversal can ever resolve. `src` is
      // always local here (the forward above routed us to its owner), so it
      // is checked authoritatively; `dst` is checked when it is ours and
      // only counted when it lives on another shard (a synchronous
      // cross-shard existence RPC on the ingest hot path is not worth it).
      if (!store_->HasVertex(req->src)) {
        dangling_edges_rejected_->Inc();
        return reply_ack(Status::NotFound("dangling edge: src vertex " +
                                          std::to_string(req->src) + " does not exist"));
      }
      if (partitioner_->ServerFor(req->dst) == cfg_.id) {
        if (!store_->HasVertex(req->dst)) {
          dangling_edges_rejected_->Inc();
          return reply_ack(Status::NotFound("dangling edge: dst vertex " +
                                            std::to_string(req->dst) + " does not exist"));
        }
      } else {
        edge_dst_unverified_->Inc();
      }
      graph::EdgeRecord rec;
      rec.src = req->src;
      rec.label = catalog_->Intern(req->label);
      rec.dst = req->dst;
      rec.props = InternProps(req->props, catalog_);
      reply_ack(store_->PutEdge(rec));
      return;
    }
    case rpc::MsgType::kDeleteVertex: {
      auto req = GetVertexPayload::Decode(msg.payload);
      if (!req.ok()) return reply_ack(req.status());
      if (forward_if_foreign(req->vid)) return;
      reply_ack(store_->DeleteVertex(req->vid));
      return;
    }
    case rpc::MsgType::kGetVertex: {
      auto req = GetVertexPayload::Decode(msg.payload);
      if (!req.ok()) return;
      if (forward_if_foreign(req->vid)) return;
      VertexReplyPayload out;
      out.vid = req->vid;
      auto rec = store_->GetVertex(req->vid);
      if (rec.ok()) {
        out.found = 1;
        out.label = catalog_->Name(rec->label).value_or("?");
        for (const auto& [key, value] : rec->props) {
          out.props.emplace_back(catalog_->Name(key).value_or("?"), value);
        }
      }
      rpc::Message reply;
      reply.type = rpc::MsgType::kVertexReply;
      reply.src = cfg_.id;
      reply.dst = msg.src;
      reply.rpc_id = msg.rpc_id;
      reply.payload = out.Encode();
      SendLossy(std::move(reply));
      return;
    }
    default:
      return;
  }
}

// Distributed catalog authority (clients conventionally address server 0;
// in-process clusters share the catalog object so any server can answer).
void BackendServer::HandleCatalog(rpc::Message&& msg) {
  CatalogReplyPayload out;
  if (msg.type == rpc::MsgType::kCatalogIntern) {
    auto req = CatalogInternPayload::Decode(msg.payload);
    if (req.ok()) out.id = catalog_->Intern(req->name);
  } else {
    out.names = catalog_->Snapshot();
  }
  rpc::Message reply;
  reply.type = rpc::MsgType::kCatalogReply;
  reply.src = cfg_.id;
  reply.dst = msg.src;
  reply.rpc_id = msg.rpc_id;
  reply.payload = out.Encode();
  SendLossy(std::move(reply));
}

// ---------------------------------------------------------------------------
// Status tracing + progress + failure detection
// ---------------------------------------------------------------------------

void BackendServer::ApplyTraceItemLocked(TravelState& ts, const TraceItem& item) {
  if (item.step >= ts.unfinished_per_step.size()) {
    ts.unfinished_per_step.resize(item.step + 1, 0);
  }
  const bool existed = ts.execs.count(item.exec) != 0;
  auto& trace = ts.execs[item.exec];
  if (item.created != 0) {
    if (trace.created) return;
    trace.created = true;
    trace.step = item.step;
    RecordStepEventLocked(ts, item.step, /*created=*/true);
    ts.total_created++;
    if (!existed) {
      ts.incomplete_execs++;
    } else if (trace.terminated) {
      ts.incomplete_execs--;
    }
    if (!trace.terminated) ts.unfinished_per_step[item.step]++;
  } else {
    if (trace.terminated) return;
    trace.terminated = true;
    RecordStepEventLocked(ts, trace.created ? trace.step : item.step,
                          /*created=*/false);
    ts.total_terminated++;
    if (!existed) {
      ts.incomplete_execs++;
    } else if (trace.created) {
      ts.incomplete_execs--;
    }
    if (trace.created) {
      if (ts.unfinished_per_step[trace.step] > 0) ts.unfinished_per_step[trace.step]--;
    } else {
      trace.step = item.step;  // termination raced ahead of creation
    }
  }
}

void BackendServer::HandleExecEvent(rpc::Message&& msg, bool created) {
  MutexLock lk(&mu_);

  if (msg.type == rpc::MsgType::kExecDispatched) {
    auto batch = TraceBatchPayload::Decode(msg.payload);
    if (!batch.ok()) return;
    auto it = travels_.find(batch->travel_id);
    if (it == travels_.end()) return;
    TravelState& ts = it->second;
    ts.last_activity_us = NowMicros();
    for (const auto& item : batch->items) ApplyTraceItemLocked(ts, item);
    if (!ts.attribution && ts.mode != EngineMode::kSync && ts.roots_dispatched &&
        ts.total_created > 0 && ts.incomplete_execs == 0) {
      CompleteTravelLocked(ts, Status::OK());
    }
    return;
  }

  // Legacy single-kind events (kExecCreated / kExecTerminated).
  auto ev = ExecEventPayload::Decode(msg.payload);
  if (!ev.ok()) return;
  auto it = travels_.find(ev->travel_id);
  if (it == travels_.end()) return;
  TravelState& ts = it->second;
  ts.last_activity_us = NowMicros();
  for (ExecId id : ev->exec_ids) {
    ApplyTraceItemLocked(ts, TraceItem{id, ev->step, static_cast<uint8_t>(created ? 1 : 0)});
  }
  if (!ts.attribution && ts.mode != EngineMode::kSync && ts.roots_dispatched &&
      ts.total_created > 0 && ts.incomplete_execs == 0) {
    CompleteTravelLocked(ts, Status::OK());
  }
}

void BackendServer::HandleProgress(rpc::Message&& msg) {
  auto travel = DecodeTravelId(msg.payload);
  ProgressPayload progress;
  {
    MutexLock lk(&mu_);
    if (travel.ok()) {
      auto it = travels_.find(*travel);
      if (it != travels_.end()) {
        progress.travel_id = *travel;
        progress.unfinished_per_step = it->second.unfinished_per_step;
        progress.total_created = it->second.total_created;
        progress.total_terminated = it->second.total_terminated;
      }
    }
  }
  rpc::Message reply;
  reply.type = rpc::MsgType::kProgressReply;
  reply.src = cfg_.id;
  reply.dst = msg.src;
  reply.rpc_id = msg.rpc_id;
  reply.payload = progress.Encode();
  SendLossy(std::move(reply));
}

void BackendServer::HandleAbort(rpc::Message&& msg) {
  auto abort = AbortPayload::Decode(msg.payload);
  if (!abort.ok()) return;
  const TravelId travel = abort->travel_id;

  MutexLock lk(&mu_);

  // If this server coordinates the travel and it is still live, route the
  // abort through the normal completion path: that releases the admission
  // slot, notifies the client, and re-broadcasts the cleanup to every
  // server. The local-state erasure below still runs for this delivery.
  auto tit = travels_.find(travel);
  if (tit != travels_.end() && !tit->second.done) {
    if (abort->reason == AbortPayload::kCancel) travel_cancelled_->Inc();
    // Cancelled travels return no results. A cancelled branch child also
    // folds nothing: the parent either initiated the cancel (done already)
    // or fails over via the child's Aborted status.
    tit->second.results.clear();
    tit->second.result_values.clear();
    tit->second.result_paths.clear();
    CompleteTravelLocked(tit->second, Status::Aborted("travel cancelled"));
  }

  aborted_travels_.insert(travel);
  aborted_order_.push_back(travel);
  while (aborted_order_.size() > kMaxAbortTombstones) {
    aborted_travels_.erase(aborted_order_.front());
    aborted_order_.pop_front();
  }

  plans_.erase(travel);
  cache_.EraseTravel(travel);
  accessed_.erase(travel);
  scanned_types_.erase(travel);
  sync_locals_.erase(travel);
  if (auto sit = travel_snaps_.find(travel); sit != travel_snaps_.end()) {
    // Release the pinned view (unblocking compaction GC) — or park it for
    // the differential harness when test retention is on. Workers mid-batch
    // still hold their shared_ptr copy; the KV snapshot is handed back only
    // when the last holder drops it.
    if (cfg_.retain_snapshots_for_test) retained_snaps_[travel] = sit->second;
    travel_snaps_.erase(sit);
  }
  for (auto it = trace_buffer_.begin(); it != trace_buffer_.end();) {
    if (it->first.second == travel) {
      it = trace_buffer_.erase(it);
    } else {
      ++it;
    }
  }
  travels_.erase(travel);
  for (auto it = execs_.begin(); it != execs_.end();) {
    if (it->second->travel == travel) {
      it = execs_.erase(it);
    } else {
      ++it;
    }
  }
  // Drain the travel's queued-but-unprocessed tasks so workers never touch
  // them (they would hit the erased plan and bail, but each would still
  // burn a dequeue and possibly device I/O).
  queue_.EraseTravel(travel);
}

void BackendServer::SendLossy(rpc::Message msg) {
  const rpc::EndpointId dst = msg.dst;
  Status s = transport_->Send(std::move(msg));
  if (!s.ok()) {
    send_failures_.fetch_add(1);
    GT_WARN << "server " << cfg_.id << ": send to endpoint " << dst
            << " failed: " << s.ToString();
  }
}

void BackendServer::MaintenanceLoop() {
  const auto interval =
      std::chrono::milliseconds(std::max<uint32_t>(1, cfg_.maintenance_interval_ms));
  while (!stop_.load()) {
    {
      // Interruptible sleep: Stop() signals maint_cv_ so shutdown never
      // waits out a full interval (and long TSan/soak intervals stay cheap).
      MutexLock lk(&maint_mu_);
      if (maint_stop_) return;
      maint_cv_.WaitFor(interval);
      if (maint_stop_) return;
    }
    std::vector<TravelId> deadline_exceeded;
    std::vector<TravelId> failed;
    {
      MutexLock lk(&mu_);
      FlushAllTraceBuffersLocked();
      const uint64_t now = NowMicros();
      for (auto& [id, ts] : travels_) {
        if (ts.done) continue;
        // Branch parents do no engine work: their children inherit the
        // absolute deadline and carry their own activity timeouts, and any
        // child failure propagates up through the fold. Enforcing the
        // parent's own last_activity would race the children's progress.
        if (ts.pending_children > 0) continue;
        if (ts.deadline_us != 0 && now > ts.deadline_us) {
          deadline_exceeded.push_back(id);
        } else if (now - ts.last_activity_us >
                   static_cast<uint64_t>(ts.timeout_ms) * 1000) {
          failed.push_back(id);
        }
      }
      for (TravelId id : deadline_exceeded) {
        auto it = travels_.find(id);
        if (it == travels_.end()) continue;
        travel_deadline_exceeded_->Inc();
        // Deadline expiry is final: Timeout is not retryable client-side.
        it->second.results.clear();
        it->second.result_values.clear();
        it->second.result_paths.clear();
        CompleteTravelLocked(it->second, Status::Timeout("travel deadline exceeded"));
      }
      for (TravelId id : failed) {
        auto it = travels_.find(id);
        if (it == travels_.end()) continue;
        GT_WARN << "server " << cfg_.id << ": traversal " << id
                << " timed out (execution created but never terminated); failing";
        // The paper's recovery story: detect via the trace registry and
        // restart the whole traversal. Aborted is the client's retry signal.
        it->second.results.clear();
        it->second.result_values.clear();
        it->second.result_paths.clear();
        CompleteTravelLocked(it->second, Status::Aborted("execution lost"));
      }
    }
    DrainOutbox();  // trace flushes + completions staged under mu_
  }
}

// ---------------------------------------------------------------------------
// Synchronous engine (Sync-GT)
// ---------------------------------------------------------------------------

void BackendServer::HandleSyncStepStart(rpc::Message&& msg) {
  auto start = SyncStepPayload::Decode(msg.payload);
  if (!start.ok()) return;

  MutexLock lk(&mu_);
  if (aborted_travels_.count(start->travel_id) != 0) return;
  PinTravelSnapLocked(start->travel_id);  // lazy fallback; usually pinned already
  SyncLocal& sl = sync_locals_[start->travel_id];

  if (!sl.plan_ready && !start->plan.empty()) {
    auto plan = lang::TraversalPlan::Decode(start->plan);
    if (!plan.ok()) return;
    auto unrolled = plan->Unrolled();  // execute the repeat-expanded chain
    if (!unrolled.ok()) return;
    sl.cplan.plan = std::move(*unrolled);
    sl.cplan.plan_bytes = start->plan;
    sl.cplan.mode = EngineMode::kSync;
    sl.cplan.coordinator = msg.src;
    sl.cplan.type_key = catalog_->Intern("type");  // see HandleSubmit: replicas
    sl.coordinator = msg.src;
    sl.scan_start = start->scan_start;
    sl.plan_ready = true;
  }

  if (start->phase == 0) {
    sl.step = start->step;
    sl.batches_expected[start->step] = start->batches_expected;
    SyncMaybeProcessStepLocked(start->travel_id);
  } else {
    // Backward round k: send alive subsets for step k+1 back to the senders,
    // and note how many backward batches we expect ourselves.
    sl.batches_expected[kBackwardKeyBit | start->step] = start->batches_expected;
    SyncProcessBackwardLocked(start->travel_id, sl, start->step);
  }
}

void BackendServer::HandleSyncBatch(rpc::Message&& msg) {
  auto batch = SyncBatchPayload::Decode(msg.payload);
  if (!batch.ok()) return;

  MutexLock lk(&mu_);
  if (aborted_travels_.count(batch->travel_id) != 0) return;
  PinTravelSnapLocked(batch->travel_id);  // lazy fallback; usually pinned already
  SyncLocal& sl = sync_locals_[batch->travel_id];

  if (batch->phase == 0) {
    auto& slot = sl.inbox[batch->step][msg.src];
    for (auto& e : batch->entries) slot.push_back(std::move(e));
    sl.batches_received[batch->step]++;
    visit_stats_.received.fetch_add(batch->entries.size());
    visit_stats_.AddStep(batch->step, batch->entries.size());
    SyncMaybeProcessStepLocked(batch->travel_id);
    return;
  }

  // Backward: entries name alive step-`batch->step` targets that this server
  // sent to msg.src during the forward phase.
  const uint32_t k = batch->step - 1;  // round being resolved
  auto& exp = sl.expansion[k][msg.src];
  for (const auto& e : batch->entries) {
    auto it = exp.find(e.vid);
    if (it == exp.end()) continue;
    for (auto parent : it->second) sl.alive[k].insert(parent);
  }
  sl.back_batches_received[k]++;

  const auto expected_it = sl.batches_expected.find(kBackwardKeyBit | k);
  if (expected_it != sl.batches_expected.end() &&
      sl.back_batches_received[k] >= expected_it->second) {
    // Round complete locally: report results (if this step is rtn-marked).
    SyncStepPayload done;
    done.travel_id = batch->travel_id;
    done.step = k;
    done.phase = 1;
    if (sl.plan_ready && RtnAtStep(sl.cplan.plan, k)) {
      done.result_vids.assign(sl.alive[k].begin(), sl.alive[k].end());
    }
    rpc::Message m;
    m.type = rpc::MsgType::kSyncStepDone;
    m.src = cfg_.id;
    m.dst = sl.coordinator;
    m.payload = done.Encode();
    QueueSendLocked(std::move(m));
  }
}

void BackendServer::SyncMaybeProcessStepLocked(TravelId travel) {
  auto it = sync_locals_.find(travel);
  if (it == sync_locals_.end()) return;
  SyncLocal& sl = it->second;
  if (!sl.plan_ready || sl.processing) return;

  const uint32_t step = sl.step;
  if (sl.steps_processed.count(step) != 0) return;
  auto exp = sl.batches_expected.find(step);
  if (exp == sl.batches_expected.end()) return;
  if (sl.batches_received[step] < exp->second) return;

  sl.steps_processed.insert(step);
  sl.processing = true;

  // Merge the inbox into a deduplicated frontier. In kPaths mode the
  // entries' parents are distinct visited-chain prefixes; each is kept (and
  // deduplicated) per vertex rather than concatenated.
  const bool paths_mode = sl.cplan.plan.result_mode == lang::ResultMode::kPaths;
  sl.current_frontier.clear();
  sl.current_paths.clear();
  uint64_t raw_entries = 0;
  for (auto& [sender, entries] : sl.inbox[step]) {
    (void)sender;
    for (auto& e : entries) {
      raw_entries += 1;
      if (paths_mode) {
        auto& prefixes = sl.current_paths[e.vid];
        if (std::find(prefixes.begin(), prefixes.end(), e.parents) == prefixes.end()) {
          prefixes.push_back(e.parents);
        }
        sl.current_frontier.emplace(e.vid, std::vector<graph::VertexId>{});
        continue;
      }
      auto [fit, inserted] = sl.current_frontier.emplace(e.vid, e.parents);
      if (!inserted) {
        fit->second.insert(fit->second.end(), e.parents.begin(), e.parents.end());
      }
    }
  }
  if (step == 0 && sl.scan_start != 0) {
    const graph::LabelId label = ScanLabelFor(sl.cplan.plan, catalog_);
    if (label != graph::Catalog::kInvalidId) {
      const size_t before = sl.current_frontier.size();
      const bool warm = !scanned_types_[travel].insert(label).second;
      auto add = [&](graph::VertexId vid) {
        raw_entries += 1;
        if (paths_mode) {
          auto& prefixes = sl.current_paths[vid];
          if (prefixes.empty()) prefixes.push_back({});  // scan roots: empty prefix
        }
        sl.current_frontier.emplace(vid, std::vector<graph::VertexId>{});
        return true;
      };
      if (sl.cplan.plan.push_start_filters) {
        // Planner pushdown, mirroring the async scan start.
        const auto& sf = sl.cplan.plan.start_vertex_filters;
        const graph::Catalog::Id type_key = sl.cplan.type_key;
        store_->ScanVerticesByTypeFiltered(
            label,
            [&](const graph::VertexRecord& rec) {
              return lang::VertexMatchesAll(sf, rec, *catalog_, type_key);
            },
            add, warm, TravelSnapLocked(travel).get()).ok();
      } else {
        store_->ScanVerticesByType(label, add, warm, TravelSnapLocked(travel).get()).ok();
      }
      visit_stats_.received.fetch_add(sl.current_frontier.size() - before);
      visit_stats_.AddStep(step, sl.current_frontier.size() - before);
    }
  }
  if (raw_entries > sl.current_frontier.size()) {
    visit_stats_.redundant.fetch_add(raw_entries - sl.current_frontier.size());
  }
  // The forward inbox is only needed again by the backward phase.
  if (!sl.cplan.plan.has_rtn()) sl.inbox.erase(step);

  sl.pending_tasks = sl.current_frontier.size();
  if (sl.pending_tasks == 0) {
    SyncFinishForwardStepLocked(travel, sl);
    return;
  }
  for (const auto& [vid, parents] : sl.current_frontier) {
    (void)parents;
    queue_.Push(VertexTask{travel, step, vid, 0, /*is_owner=*/true, /*sync=*/true},
                /*priority=*/false, /*mergeable=*/false);
  }
}

void BackendServer::ProcessSyncTask(const VertexTask& task) {
  std::shared_ptr<CompiledPlan> cplan;
  std::shared_ptr<const graph::GraphStore::ReadSnapshot> travel_snap;
  std::vector<graph::VertexId> parents;
  bool warm = false;
  {
    MutexLock lk(&mu_);
    auto it = sync_locals_.find(task.travel);
    if (it == sync_locals_.end()) return;
    auto fit = it->second.current_frontier.find(task.vid);
    if (fit != it->second.current_frontier.end()) parents = fit->second;
    cplan = std::make_shared<CompiledPlan>(it->second.cplan);
    travel_snap = TravelSnapLocked(task.travel);
    warm = !accessed_[task.travel].insert(task.vid).second;
  }
  const lang::TraversalPlan& plan = cplan->plan;
  const uint32_t num_steps = static_cast<uint32_t>(plan.num_steps());
  const uint32_t step = task.step;

  tls_current_step = static_cast<int>(step);
  auto vrec = store_->GetVertex(task.vid, warm, travel_snap.get());
  bool passed = vrec.ok() && lang::VertexMatchesAll(StepVertexFilters(plan, step), *vrec,
                                                    *catalog_, cplan->type_key);
  // until(): a match at an iteration boundary is a terminal result — no
  // expansion. Group values are rendered here, while the record is in hand.
  const std::vector<lang::Filter>* until = UntilFiltersAtStep(plan, step);
  const bool until_hit = passed && until != nullptr &&
                         lang::VertexMatchesAll(*until, *vrec, *catalog_, cplan->type_key);
  std::string group_value;
  bool have_group_value = false;
  if (passed && plan.result_mode == lang::ResultMode::kGroup &&
      (until_hit || (step >= num_steps && !plan.has_until()))) {
    group_value = lang::GroupValueForVertex(*vrec, plan.group_key, *catalog_,
                                            cplan->type_key);
    have_group_value = true;
  }
  std::vector<std::pair<graph::VertexId, graph::PropMap>> edges;
  if (passed && !until_hit && step < num_steps) {
    const lang::Hop& hop = plan.hops[step];
    store_->ScanEdges(task.vid, hop.edge_label,
                      [&](graph::VertexId dst, const graph::PropMap& props) {
                        if (lang::MatchesAll(hop.edge_filters, props)) {
                          edges.emplace_back(dst, props);
                        }
                        return true;
                      },
                      warm, travel_snap.get())
        .ok();
  }
  tls_current_step = -1;
  visit_stats_.real_io.fetch_add(1);

  MutexLock lk(&mu_);
  auto it = sync_locals_.find(task.travel);
  if (it == sync_locals_.end()) return;
  SyncLocal& sl = it->second;
  if (passed) {
    sl.passed[step].insert(task.vid);
    if (until_hit) {
      // Terminal until() result: reported with this step's done message.
      sl.step_results.push_back(task.vid);
      if (have_group_value) sl.step_result_values.push_back(std::move(group_value));
    } else if (plan.result_mode == lang::ResultMode::kPaths) {
      // Each distinct prefix of this vertex extends through every edge.
      const auto ppit = sl.current_paths.find(task.vid);
      if (ppit != sl.current_paths.end()) {
        for (const auto& [dst, props] : edges) {
          (void)props;
          const ServerId server = partitioner_->ServerFor(dst);
          for (const auto& prefix : ppit->second) {
            std::vector<graph::VertexId> chain = prefix;
            chain.push_back(task.vid);
            sl.path_expansion[step][server].push_back(FrontierEntry{dst, std::move(chain)});
          }
        }
      }
    } else {
      for (const auto& [dst, props] : edges) {
        (void)props;
        sl.expansion[step][partitioner_->ServerFor(dst)][dst].push_back(task.vid);
      }
    }
    if (!until_hit && have_group_value) sl.value_by_vid[task.vid] = std::move(group_value);
  }
  if (sl.pending_tasks > 0) sl.pending_tasks--;
  if (sl.pending_tasks == 0) SyncFinishForwardStepLocked(task.travel, sl);
}

void BackendServer::SyncFinishForwardStepLocked(TravelId travel, SyncLocal& sl) {
  const uint32_t step = sl.step;
  const lang::TraversalPlan& plan = sl.cplan.plan;
  const uint32_t num_steps = static_cast<uint32_t>(plan.num_steps());

  SyncStepPayload done;
  done.travel_id = travel;
  done.step = step;
  done.phase = 0;
  done.batches_sent.assign(cfg_.num_servers, 0);

  const bool paths_mode = plan.result_mode == lang::ResultMode::kPaths;

  if (step < num_steps) {
    if (paths_mode) {
      // Path batches ship full prefixes in FrontierEntry::parents; duplicate
      // (vid, prefix) pairs were already deduped at expansion time.
      auto pexp_it = sl.path_expansion.find(step);
      if (pexp_it != sl.path_expansion.end()) {
        for (auto& [server, entries] : pexp_it->second) {
          SyncBatchPayload batch;
          batch.travel_id = travel;
          batch.step = step + 1;
          batch.phase = 0;
          batch.entries = std::move(entries);
          rpc::Message m;
          m.type = rpc::MsgType::kSyncBatch;
          m.src = cfg_.id;
          m.dst = server;
          m.payload = batch.Encode();
          QueueSendLocked(std::move(m));
          done.batches_sent[server] = 1;
        }
      }
    } else {
      auto exp_it = sl.expansion.find(step);
      if (exp_it != sl.expansion.end()) {
        for (auto& [server, targets] : exp_it->second) {
          SyncBatchPayload batch;
          batch.travel_id = travel;
          batch.step = step + 1;
          batch.phase = 0;
          batch.entries.reserve(targets.size());
          // Parents stay local (the backward phase uses this server's own
          // expansion map); ship bare vertex ids.
          for (auto& [dst, parents] : targets) {
            (void)parents;
            batch.entries.push_back(FrontierEntry{dst, {}});
          }
          rpc::Message m;
          m.type = rpc::MsgType::kSyncBatch;
          m.src = cfg_.id;
          m.dst = server;
          m.payload = batch.Encode();
          QueueSendLocked(std::move(m));
          done.batches_sent[server] = 1;
        }
      }
    }
  } else {
    // Final step: report surviving vertices when they are the results.
    if (paths_mode) {
      auto pit = sl.passed.find(step);
      if (pit != sl.passed.end()) {
        for (graph::VertexId vid : pit->second) {
          auto ppit = sl.current_paths.find(vid);
          if (ppit == sl.current_paths.end()) continue;
          for (const auto& prefix : ppit->second) {
            std::vector<graph::VertexId> chain = prefix;
            chain.push_back(vid);
            done.result_paths.push_back(std::move(chain));
          }
        }
      }
    } else if (FinalStepYieldsResults(plan)) {
      auto pit = sl.passed.find(step);
      if (pit != sl.passed.end()) {
        done.result_vids.assign(pit->second.begin(), pit->second.end());
        if (plan.result_mode == lang::ResultMode::kGroup) {
          done.result_values.reserve(done.result_vids.size());
          for (graph::VertexId vid : done.result_vids) {
            done.result_values.push_back(sl.value_by_vid[vid]);
          }
        }
      }
    }
  }

  // until() hits collected at this step are terminal results regardless of
  // the step index; attach them to this step's done message.
  if (!sl.step_results.empty()) {
    if (plan.result_mode == lang::ResultMode::kGroup && done.result_values.empty() &&
        !done.result_vids.empty()) {
      // Keep the parallel-array invariant if finals were attached above.
      done.result_values.resize(done.result_vids.size());
    }
    done.result_vids.insert(done.result_vids.end(), sl.step_results.begin(),
                            sl.step_results.end());
    if (plan.result_mode == lang::ResultMode::kGroup) {
      done.result_values.insert(done.result_values.end(),
                                sl.step_result_values.begin(),
                                sl.step_result_values.end());
    }
    sl.step_results.clear();
    sl.step_result_values.clear();
  }

  // Keep forward history only when a backward phase will need it.
  if (!plan.has_rtn()) {
    sl.expansion.erase(step);
    sl.passed.erase(step);
  }
  sl.path_expansion.erase(step);  // paths plans never have a backward phase
  sl.current_paths.clear();
  sl.value_by_vid.clear();
  sl.current_frontier.clear();
  sl.processing = false;

  rpc::Message m;
  m.type = rpc::MsgType::kSyncStepDone;
  m.src = cfg_.id;
  m.dst = sl.coordinator;
  m.payload = done.Encode();
  QueueSendLocked(std::move(m));
}

void BackendServer::SyncProcessBackwardLocked(TravelId travel, SyncLocal& sl,
                                              uint32_t step) {
  // Round `step`: send, to each forward sender of step+1 entries, the subset
  // of its entries that are alive.
  const lang::TraversalPlan& plan = sl.cplan.plan;
  const uint32_t num_steps = static_cast<uint32_t>(plan.num_steps());
  const std::unordered_set<graph::VertexId>& alive_next =
      (step + 1 >= num_steps) ? sl.passed[num_steps] : sl.alive[step + 1];

  auto ib = sl.inbox.find(step + 1);
  if (ib != sl.inbox.end()) {
    for (auto& [sender, entries] : ib->second) {
      SyncBatchPayload batch;
      batch.travel_id = travel;
      batch.step = step + 1;
      batch.phase = 1;
      std::unordered_set<graph::VertexId> seen;
      for (const auto& e : entries) {
        if (alive_next.count(e.vid) != 0 && seen.insert(e.vid).second) {
          batch.entries.push_back(FrontierEntry{e.vid, {}});
        }
      }
      rpc::Message m;
      m.type = rpc::MsgType::kSyncBatch;
      m.src = cfg_.id;
      m.dst = sender;
      m.payload = batch.Encode();
      QueueSendLocked(std::move(m));
    }
  }

  // A server that expects zero backward batches finishes the round at once.
  const auto expected_it = sl.batches_expected.find(kBackwardKeyBit | step);
  if (expected_it != sl.batches_expected.end() &&
      sl.back_batches_received[step] >= expected_it->second) {
    SyncStepPayload done;
    done.travel_id = travel;
    done.step = step;
    done.phase = 1;
    if (RtnAtStep(plan, step)) {
      done.result_vids.assign(sl.alive[step].begin(), sl.alive[step].end());
    }
    rpc::Message m;
    m.type = rpc::MsgType::kSyncStepDone;
    m.src = cfg_.id;
    m.dst = sl.coordinator;
    m.payload = done.Encode();
    QueueSendLocked(std::move(m));
  }
}

void BackendServer::HandleSyncStepDone(rpc::Message&& msg) {
  auto done = SyncStepPayload::Decode(msg.payload);
  if (!done.ok()) return;

  MutexLock lk(&mu_);
  auto it = travels_.find(done->travel_id);
  if (it == travels_.end()) return;
  TravelState& ts = it->second;
  ts.last_activity_us = NowMicros();
  SyncCoordinatorStepDoneLocked(ts, *done, msg.src);
}

void BackendServer::SyncCoordinatorStepDoneLocked(TravelState& ts,
                                                  const SyncStepPayload& done,
                                                  ServerId src) {
  if (done.step != ts.sync_step || done.phase != ts.sync_phase) return;  // stale

  // Forward-phase barrier arrivals close the per-server span for this step.
  if (done.phase == 0) RecordStepEventLocked(ts, done.step, /*created=*/false);
  ts.results.insert(done.result_vids.begin(), done.result_vids.end());
  if (!done.result_values.empty()) {
    for (size_t i = 0; i < done.result_vids.size() && i < done.result_values.size(); i++) {
      ts.result_values.emplace(done.result_vids[i], done.result_values[i]);
    }
  }
  if (!done.result_paths.empty()) {
    for (auto& p : done.result_paths) ts.result_paths.insert(std::move(p));
    if (ts.result_paths.size() > kMaxCoordinatorPaths) {
      ts.results.clear();
      ts.result_values.clear();
      ts.result_paths.clear();
      CompleteTravelLocked(ts, Status::Internal("path result limit exceeded"));
      return;
    }
  }
  if (done.phase == 0) {
    if (ts.sync_fwd_matrices[done.step].empty()) {
      ts.sync_fwd_matrices[done.step].assign(cfg_.num_servers,
                                             std::vector<uint32_t>(cfg_.num_servers, 0));
    }
    if (!done.batches_sent.empty() && src < cfg_.num_servers) {
      ts.sync_fwd_matrices[done.step][src] = done.batches_sent;
    }
  }
  if (ts.sync_pending_done > 0) ts.sync_pending_done--;
  if (ts.sync_pending_done > 0) return;

  const uint32_t num_steps = static_cast<uint32_t>(ts.plan.num_steps());

  if (ts.sync_phase == 0) {
    if (ts.sync_step < num_steps) {
      SyncStartStepLocked(ts, ts.sync_step + 1, /*phase=*/0);
      return;
    }
    // Forward pass complete.
    const bool needs_backward = ts.plan.has_rtn() && MinRtnStep(ts.plan) < num_steps &&
                                num_steps > 0;
    if (!needs_backward) {
      CompleteTravelLocked(ts, Status::OK());
      return;
    }
    SyncStartStepLocked(ts, num_steps - 1, /*phase=*/1);
    return;
  }

  // Backward phase.
  const uint32_t min_rtn = MinRtnStep(ts.plan);
  if (ts.sync_step > min_rtn) {
    SyncStartStepLocked(ts, ts.sync_step - 1, /*phase=*/1);
  } else {
    CompleteTravelLocked(ts, Status::OK());
  }
}

void BackendServer::SyncStartStepLocked(TravelState& ts, uint32_t step, uint8_t phase) {
  ts.sync_step = step;
  ts.sync_phase = phase;
  ts.sync_pending_done = cfg_.num_servers;

  for (ServerId s = 0; s < cfg_.num_servers; s++) {
    if (phase == 0) RecordStepEventLocked(ts, step, /*created=*/true);
    SyncStepPayload start;
    start.travel_id = ts.id;
    start.step = step;
    start.phase = phase;
    if (phase == 0) {
      // Expected forward batches = column sums of the previous step matrix.
      uint32_t expected = 0;
      const auto& matrix = ts.sync_fwd_matrices[step - 1];
      for (ServerId u = 0; u < cfg_.num_servers; u++) {
        if (!matrix.empty() && s < matrix[u].size()) expected += matrix[u][s];
      }
      start.batches_expected = expected;
    } else {
      // Expected backward batches for round `step` = number of servers this
      // server sent forward batches to at step -> step+1.
      uint32_t expected = 0;
      const auto& matrix = ts.sync_fwd_matrices[step];
      if (!matrix.empty()) {
        for (ServerId dst = 0; dst < cfg_.num_servers; dst++) {
          if (matrix[s][dst] > 0) expected++;
        }
      }
      start.batches_expected = expected;
    }
    rpc::Message m;
    m.type = rpc::MsgType::kSyncStepStart;
    m.src = cfg_.id;
    m.dst = s;
    m.payload = start.Encode();
    QueueSendLocked(std::move(m));
  }
}

const lang::PlanStats& BackendServer::PlanStatsLocked() {
  if (plan_stats_ready_) return plan_stats_;
  plan_stats_ready_ = true;
  // Statistics from this coordinator's local shard. Hash partitioning
  // spreads every type/label roughly evenly, so shard-local counts are a
  // representative sample for selectivity *ordering* — the only thing the
  // planner consumes. Maintenance-path scans: no device charges.
  store_->ScanAllVertices([&](const graph::VertexRecord& rec) {
    plan_stats_.total_vertices++;
    plan_stats_.vertices_per_type[rec.label]++;
    return true;
  }).ok();
  store_->ScanEverythingEdges([&](const graph::EdgeRecord& rec) {
    plan_stats_.total_edges++;
    plan_stats_.edges_per_label[rec.label]++;
    return true;
  }).ok();
  return plan_stats_;
}

}  // namespace gt::engine
