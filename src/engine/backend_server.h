// BackendServer: one GraphTrek traversal-engine daemon. Each backend server
// owns a GraphStore (its shard of the property graph), a request queue
// drained by worker threads, a traversal-affiliate cache, and — for
// traversals it coordinates — the status-tracing registry and client-facing
// result stream.
//
// One class implements all three engines under evaluation; the mode travels
// with each traversal:
//   Sync-GT    - coordinator-driven level-synchronous steps (Section VI)
//   Async-GT   - plain asynchronous: every arrival pays its own I/O, FIFO
//                scheduling, no merging
//   GraphTrek  - asynchronous + traversal-affiliate cache absorption +
//                smallest-step-first scheduling + execution merging
#pragma once

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/common/thread_pool.h"
#include "src/engine/request_queue.h"
#include "src/engine/travel_cache.h"
#include "src/engine/travel_trace.h"
#include "src/engine/types.h"
#include "src/engine/visit_stats.h"
#include "src/graph/graph_store.h"
#include "src/graph/partitioner.h"
#include "src/lang/gtravel.h"
#include "src/lang/planner.h"
#include "src/rpc/transport.h"

namespace gt::engine {

struct ServerConfig {
  ServerId id = 0;
  uint32_t num_servers = 1;
  uint32_t workers = 2;               // worker threads (parallel I/O depth)
  size_t cache_capacity = 1 << 20;    // traversal-affiliate cache entries
  uint32_t exec_timeout_ms = 15000;   // coordinator failure-detection window
  uint32_t result_chunk = 4096;       // vids per kResultChunk message
  // Maintenance tick period: trace-buffer flush cadence and the resolution
  // of failure detection / deadline enforcement. The 5 ms default drives
  // small-travel completion latency; raise it for TSan/soak runs.
  uint32_t maintenance_interval_ms = 5;

  // Admission control (coordinator role). A submit is rejected with
  // Unavailable when the total in-flight table is full or the submitting
  // priority class is at its limit. 0 = unlimited.
  uint32_t max_inflight_travels = 4096;
  std::array<uint32_t, kNumTravelClasses> admission_limits{{64, 512, 2048}};

  // Ablation knobs for the GraphTrek mode (both on in the full system).
  bool graphtrek_merging = true;        // execution merging (Section V-B)
  bool graphtrek_priority_sched = true; // smallest-step-first scheduling

  // I/O-path ablation knobs (all on in the full system). Independent of
  // the scheduling knobs above and of GraphStoreOptions::
  // adjacency_cache_bytes, so each optimization can be toggled alone.
  //
  // Batch same-travel frontier vertices into one worker dequeue: vertex
  // records resolve through one GraphStore::MultiGetVertices (single KV
  // snapshot) instead of per-vertex Gets. Device/warm accounting is
  // unchanged — this is a CPU-path optimization.
  bool batched_multiget = true;
  // Cap on distinct vertices per dequeued frontier group.
  uint32_t max_frontier_batch = 64;
  // Carve worker-loop scratch (edge lists, expansion targets) from a
  // per-thread arena reset between batches instead of the heap.
  bool arena_scratch = true;

  // Per-travel snapshot isolation. When on, every travel pins a KV read
  // snapshot on each participating server at admission (coordinator) or on
  // first contact (kPinTravel broadcast / lazy first-touch, whichever lands
  // first), and every traversal read on that server is bounded to the
  // pinned view — travels racing live mutations see a consistent
  // point-in-time graph instead of a torn mix of old and new state. Off
  // reproduces the historical read-latest behaviour (torn-read control for
  // tests/benches).
  bool snapshot_isolation = true;
  // Test hook: keep each travel's released snapshot in a side map instead
  // of dropping it at cleanup, so the differential harness can dump the
  // exact pinned view a finished travel saw (Cluster::DumpAtTravelPin).
  // Callers must drain via DropRetainedSnapshotsForTest.
  bool retain_snapshots_for_test = false;

  // Statistics-driven planner (coordinator role): rewrite each submitted
  // plan (selectivity-ordered filter lists, start-filter pushdown, fetch
  // strategy) against statistics collected once from the local shard. Every
  // rewrite is result-identical by construction; the differential harness
  // asserts planner-on == planner-off on randomized plans.
  bool planner = false;
};

class BackendServer {
 public:
  BackendServer(ServerConfig cfg, graph::GraphStore* store,
                const graph::Partitioner* partitioner, graph::Catalog* catalog,
                rpc::Transport* transport);
  ~BackendServer();

  BackendServer(const BackendServer&) = delete;
  BackendServer& operator=(const BackendServer&) = delete;

  // Registers the endpoint and starts worker + maintenance threads.
  Status Start();
  void Stop();

  ServerId id() const { return cfg_.id; }
  const VisitStats& visit_stats() const { return visit_stats_; }
  void ResetVisitStats() { visit_stats_.Reset(); }
  size_t queue_depth() const { return queue_.size(); }
  size_t cache_size() const;
  uint64_t cache_evictions() const;
  graph::GraphStore* store() { return store_; }
  // Transport sends that failed (peer unreachable after retries). The engine
  // tolerates loss — status tracing restarts lost work — but the count feeds
  // the ops stats line.
  uint64_t send_failures() const { return send_failures_.load(); }

  // Recently completed travels this server coordinated (oldest first,
  // bounded archive), with per-step execution spans.
  std::vector<TravelTrace> RecentTraces() const GT_EXCLUDES(mu_);
  // Renders the archived trace for `travel` (0 = most recent) as Chrome
  // trace-event JSON. False when the travel is not in the archive.
  bool ExportTraceJson(TravelId travel, std::string* json) const GT_EXCLUDES(mu_);

  // True while any per-travel engine state (plan, execs, coordinator entry,
  // sync-local, memo/access/type-scan maps, pinned snapshot) survives for
  // `travel`. The cancellation contract is that an abort reclaims
  // everything; tests poll this on every server after cancelling.
  bool HasTravelResidue(TravelId travel) const GT_EXCLUDES(mu_);

  // The snapshot `travel` is pinned to on this server: the live pin while
  // the travel runs, or the retained copy after cleanup when
  // cfg.retain_snapshots_for_test is set. Null when never pinned.
  std::shared_ptr<const graph::GraphStore::ReadSnapshot> TravelSnapshotForTest(
      TravelId travel) const GT_EXCLUDES(mu_);
  // Drains the test-retention side map (releases the underlying KV
  // snapshots once the last outside reference drops).
  void DropRetainedSnapshotsForTest() GT_EXCLUDES(mu_);

 private:
  // --- shared traversal bookkeeping ---------------------------------------

  struct CompiledPlan {
    // The executable plan: repeat hops expanded into linear cohorts
    // (TraversalPlan::Unrolled), never carrying a branch — the coordinator
    // flattens branches into per-alternative child travels before any
    // engine sees them. plan_bytes stays the compact wire form so hand-offs
    // forward what arrived.
    lang::TraversalPlan plan;
    std::string plan_bytes;  // serialized (compact) form forwarded on hand-offs
    EngineMode mode = EngineMode::kGraphTrek;
    ServerId coordinator = 0;
    graph::Catalog::Id type_key = graph::Catalog::kInvalidId;
    // True when an rtn() marks a non-final step: results must then be
    // attributed per vertex through the execution-tree answer flow (the
    // generalized Fig. 4 relay). Plans without intermediate rtn() take the
    // paper's direct protocol: final vertices return straight to the
    // coordinator and completion is detected purely by status tracing.
    bool attribution = false;
    // Exec ids already delivered for this travel (guarded by the server
    // mu_, like the plans_ map itself). Hand-off frames are absorbed
    // first-delivery-wins: a re-delivered frame replayed against live exec
    // state corrupts the unresolved/children accounting, and replayed
    // against an already-erased exec it re-answers the parent and lets the
    // travel complete without its siblings' results.
    std::unordered_set<ExecId> seen_execs;
  };

  // Asynchronous-engine execution state (one per kTraverse request).
  struct ExecState {
    TravelId travel = 0;
    ExecId id = 0;
    uint32_t step = 0;
    ServerId parent_server = 0;
    ExecId parent_exec = 0;

    // Per distinct vertex: previous-step parents (for the answer upward).
    std::unordered_map<graph::VertexId, std::vector<graph::VertexId>> entry_parents;
    // Vertices this execution owns (it performs their I/O + expansion).
    std::unordered_set<graph::VertexId> owned;
    // Vertices not yet resolved to reach/no-reach.
    size_t unresolved = 0;
    // Owner tasks not yet processed by a worker.
    size_t owned_unprocessed = 0;
    // Owner vertices whose reach awaits child answers.
    std::unordered_set<graph::VertexId> awaiting_children;
    // Vertices with a decided reach value / the subset decided true.
    std::unordered_set<graph::VertexId> resolved;
    std::unordered_set<graph::VertexId> reached;

    // Outbound expansion accumulated while owner tasks process:
    // target server -> dst -> parents.
    std::unordered_map<ServerId,
                       std::unordered_map<graph::VertexId, std::vector<graph::VertexId>>>
        out_targets;
    bool dispatched = false;
    uint32_t children_outstanding = 0;

    std::vector<graph::VertexId> results;  // rtn/final hits + child pass-through
    // kGroup: rendered group value per results entry (parallel vector),
    // captured at processing time while the vertex record is in hand.
    std::vector<std::string> result_values;
    // kPaths: completed visited chains discovered by this execution.
    std::vector<std::vector<graph::VertexId>> result_paths;
    // kPaths: distinct path prefixes per entry vertex (the same vertex can
    // be reached along several chains; each expands independently).
    std::unordered_map<graph::VertexId, std::vector<std::vector<graph::VertexId>>>
        path_prefixes;
    // kPaths outbound expansion: one frontier entry per (prefix, edge) —
    // out_targets' dst->parents merging would garble distinct prefixes.
    std::unordered_map<ServerId, std::vector<FrontierEntry>> out_path_entries;
    bool answered = false;
  };

  // Coordinator-side per-traversal state (status tracing, Section IV-C).
  struct TravelState {
    TravelId id = 0;
    EngineMode mode = EngineMode::kGraphTrek;
    rpc::EndpointId client = 0;
    std::string plan_bytes;
    lang::TraversalPlan plan;
    uint64_t started_us = 0;
    uint64_t last_activity_us = 0;
    uint32_t timeout_ms = 0;
    TravelClass cls = TravelClass::kNormal;
    uint64_t deadline_us = 0;  // absolute wall deadline; 0 = none
    bool done = false;

    // Execution registry: created/terminated tracing events.
    struct ExecTrace {
      uint32_t step = 0;
      bool created = false;
      bool terminated = false;
    };
    std::unordered_map<ExecId, ExecTrace> execs;
    uint64_t total_created = 0;
    uint64_t total_terminated = 0;
    std::vector<uint32_t> unfinished_per_step;

    // Async: outstanding root executions (attribution path only); results
    // accumulate here.
    uint32_t root_outstanding = 0;
    bool attribution = false;
    bool roots_dispatched = false;
    uint64_t incomplete_execs = 0;  // trace entries missing created/terminated
    std::unordered_set<graph::VertexId> results;

    // Result-mode accumulation (rendered to the client only at completion).
    lang::ResultMode result_mode = lang::ResultMode::kVertices;
    graph::Catalog::Id group_key = 0;
    std::unordered_map<graph::VertexId, std::string> result_values;  // kGroup
    std::set<std::vector<graph::VertexId>> result_paths;             // kPaths

    // Branch fan-out (coordinator-side): a branch plan becomes one parent
    // travel plus one internal child travel per flattened alternative, all
    // coordinated on this server so parent/child folding happens under one
    // mu_. Children skip admission and client streaming; their RAW result
    // structures merge into the parent at completion, and rendering happens
    // only when the parent completes.
    TravelId parent_travel = 0;      // nonzero = internal branch child
    bool internal = false;           // true for branch children
    uint32_t pending_children = 0;   // parent: children not yet folded
    std::vector<TravelId> children;  // parent: abort/deadline cascade list

    // Per-step span accumulation for the archived TravelTrace (async modes
    // feed this from trace items, the sync engine from its step barriers).
    std::vector<TravelTrace::StepSpan> step_spans;

    // Sync engine control state.
    uint32_t sync_step = 0;
    uint8_t sync_phase = 0;  // 0 fwd, 1 back
    uint32_t sync_pending_done = 0;
    std::vector<std::vector<uint32_t>> sync_batch_matrix;  // [src][dst] forward counts
    std::vector<std::vector<std::vector<uint32_t>>> sync_fwd_matrices;  // per step
  };

  // Per-server synchronous-engine state for one traversal.
  struct SyncLocal {
    CompiledPlan cplan;
    ServerId coordinator = 0;
    // inbox[step][sender] = entries received.
    std::unordered_map<uint32_t, std::unordered_map<ServerId, std::vector<FrontierEntry>>>
        inbox;
    std::unordered_map<uint32_t, uint32_t> batches_received;
    // Expected batch counts per step, set by kSyncStepStart (forward) and
    // by the backward-round kick-off; UINT32_MAX = not yet announced.
    std::unordered_map<uint32_t, uint32_t> batches_expected;
    bool plan_ready = false;
    uint8_t scan_start = 0;
    bool processing = false;  // a forward step is in flight
    std::unordered_set<uint32_t> steps_processed;  // forward steps already run
    // Forward history for the backward (rtn) phase.
    std::unordered_map<uint32_t, std::unordered_set<graph::VertexId>> passed;
    std::unordered_map<
        uint32_t,
        std::unordered_map<ServerId,
                           std::unordered_map<graph::VertexId, std::vector<graph::VertexId>>>>
        expansion;  // [step][target server][dst] = parents
    // Step being processed.
    uint32_t step = 0;
    size_t pending_tasks = 0;
    std::unordered_map<graph::VertexId, std::vector<graph::VertexId>> current_frontier;
    std::unordered_set<graph::VertexId> current_passed;
    // until() hits collected during this forward step (terminal results; they
    // ride the step-done report's result_vids). step_result_values is the
    // parallel kGroup value vector.
    std::vector<graph::VertexId> step_results;
    std::vector<std::string> step_result_values;
    // kGroup: rendered value per final-step passing vertex, captured while
    // the record is in hand during ProcessSyncTask.
    std::unordered_map<graph::VertexId, std::string> value_by_vid;
    // kPaths: distinct visited-chain prefixes per current-frontier vertex,
    // and the per-(prefix, edge) outbound expansion (dst->parents merging in
    // `expansion` would garble distinct prefixes).
    std::unordered_map<graph::VertexId, std::vector<std::vector<graph::VertexId>>>
        current_paths;
    std::unordered_map<uint32_t, std::unordered_map<ServerId, std::vector<FrontierEntry>>>
        path_expansion;
    // Backward phase.
    std::unordered_map<uint32_t, std::unordered_set<graph::VertexId>> alive;
    std::unordered_map<uint32_t, uint32_t> back_batches_received;
  };

  // --- message handling -----------------------------------------------------

  void OnMessage(rpc::Message&& msg);
  void HandleSubmit(rpc::Message&& msg);
  void HandleTraverse(rpc::Message&& msg);
  void HandleAnswer(rpc::Message&& msg);
  void HandleExecEvent(rpc::Message&& msg, bool created);
  void HandleProgress(rpc::Message&& msg);
  void HandleAbort(rpc::Message&& msg);
  void HandlePinTravel(rpc::Message&& msg);

  void HandleMutation(rpc::Message&& msg);
  void HandleCatalog(rpc::Message&& msg);

  void HandleSyncStepStart(rpc::Message&& msg);
  void HandleSyncBatch(rpc::Message&& msg);
  void HandleSyncStepDone(rpc::Message&& msg);

  // --- async engine ----------------------------------------------------------

  void WorkerLoop();
  void ProcessBatch(const std::vector<VertexTask>& batch);
  void ProcessSyncTask(const VertexTask& task);

  // All Locked methods require mu_.
  void ResolveVertexLocked(ExecState& exec, graph::VertexId vid, bool reach, bool from_owner)
      GT_REQUIRES(mu_);
  void DispatchLocked(ExecState& exec, const CompiledPlan& cplan) GT_REQUIRES(mu_);
  void TryAnswerLocked(ExecState& exec) GT_REQUIRES(mu_);
  void EraseExecLocked(ExecId id) GT_REQUIRES(mu_);
  void StartRootExecsLocked(TravelState& ts) GT_REQUIRES(mu_);
  // Launches an admitted travel: seeds the sync step matrix + step-start
  // broadcast (kSync) or the root executions (async modes). Factored out of
  // HandleSubmit so branch children launch through the same path.
  void StartTravelLocked(TravelState& ts) GT_REQUIRES(mu_);
  // Lazily collects planner statistics from the local shard (once per
  // server; guarded by plan_stats_ready_). Maintenance-path scans only — no
  // device charges.
  const lang::PlanStats& PlanStatsLocked() GT_REQUIRES(mu_);
  void CompleteTravelLocked(TravelState& ts, Status status) GT_REQUIRES(mu_);
  // Folds one execution lifecycle event into the travel's step spans.
  void RecordStepEventLocked(TravelState& ts, uint32_t step, bool created)
      GT_REQUIRES(mu_);
  // Archives the finished travel into recent_traces_ and observes its wall
  // time in the per-mode duration histogram.
  void ArchiveTravelLocked(const TravelState& ts, bool ok, uint64_t now_us)
      GT_REQUIRES(mu_);
  void SendTraceEventLocked(ServerId coordinator, TravelId travel, uint32_t step,
                            std::vector<ExecId> ids, bool created) GT_REQUIRES(mu_);
  void SendDispatchEventLocked(ServerId coordinator, TravelId travel, uint32_t child_step,
                               std::vector<ExecId> children, ExecId term_exec,
                               uint32_t term_step) GT_REQUIRES(mu_);
  void FlushTraceBufferLocked(ServerId coordinator, TravelId travel) GT_REQUIRES(mu_);
  void FlushAllTraceBuffersLocked() GT_REQUIRES(mu_);
  void ApplyTraceItemLocked(TravelState& ts, const TraceItem& item) GT_REQUIRES(mu_);

  // --- sync engine ------------------------------------------------------------

  void SyncMaybeProcessStepLocked(TravelId travel) GT_REQUIRES(mu_);
  void SyncFinishForwardStepLocked(TravelId travel, SyncLocal& sl) GT_REQUIRES(mu_);
  void SyncProcessBackwardLocked(TravelId travel, SyncLocal& sl, uint32_t step)
      GT_REQUIRES(mu_);
  void SyncCoordinatorStepDoneLocked(TravelState& ts, const SyncStepPayload& done,
                                     ServerId src) GT_REQUIRES(mu_);
  void SyncStartStepLocked(TravelState& ts, uint32_t step, uint8_t phase) GT_REQUIRES(mu_);

  // --- maintenance ------------------------------------------------------------

  void MaintenanceLoop();

  // Fire-and-forget send: delivery failures are logged and counted, never
  // propagated — the engine's status tracer owns end-to-end recovery.
  void SendLossy(rpc::Message msg);

  // Sends staged while mu_ is held: QueueSendLocked appends to outbox_, and
  // every path that may have queued (message handlers, worker batches, the
  // maintenance tick) calls DrainOutbox after releasing mu_. Keeps the
  // transport — whose delivery work is unbounded from our perspective —
  // out of the engine's critical section.
  void QueueSendLocked(rpc::Message msg) GT_REQUIRES(mu_);
  void DrainOutbox() GT_EXCLUDES(mu_);

  // Pins this server's current store view for `travel` (no-op when
  // snapshot isolation is off or the travel is already pinned); returns the
  // pin. Handlers that materialize travel state call this so every later
  // store read the travel performs here is bounded to one view, even when
  // the kPinTravel broadcast was reordered behind the first kTraverse /
  // sync frame (fault-injected transports).
  std::shared_ptr<const graph::GraphStore::ReadSnapshot> PinTravelSnapLocked(
      TravelId travel) GT_REQUIRES(mu_);
  // The travel's pin on this server, or null (isolation off / never pinned).
  std::shared_ptr<const graph::GraphStore::ReadSnapshot> TravelSnapLocked(
      TravelId travel) const GT_REQUIRES(mu_);

  bool VertexPassesLocked(const CompiledPlan& cplan, const graph::VertexRecord& rec,
                          uint32_t step) const GT_REQUIRES(mu_);
  const std::vector<lang::Filter>& StepVertexFilters(const lang::TraversalPlan& plan,
                                                     uint32_t step) const;

  ServerConfig cfg_;
  graph::GraphStore* store_;
  const graph::Partitioner* partitioner_;
  graph::Catalog* catalog_;
  rpc::Transport* transport_;

  VisitStats visit_stats_;
  RequestQueue queue_;

  mutable Mutex mu_;
  std::unordered_map<TravelId, std::shared_ptr<CompiledPlan>> plans_ GT_GUARDED_BY(mu_);
  std::unordered_map<ExecId, std::unique_ptr<ExecState>> execs_ GT_GUARDED_BY(mu_);
  std::unordered_map<TravelId, TravelState> travels_ GT_GUARDED_BY(mu_);  // coordinated here
  std::unordered_map<TravelId, SyncLocal> sync_locals_ GT_GUARDED_BY(mu_);
  TravelCache cache_ GT_GUARDED_BY(mu_);
  // Vertices already accessed per travel on this server: later accesses hit
  // the storage engine's block cache and charge the warm device cost.
  std::unordered_map<TravelId, std::unordered_set<graph::VertexId>> accessed_ GT_GUARDED_BY(mu_);
  // Type-index labels already scanned per travel on this server: a travel
  // re-scanning the same index (scan-start re-delivery, sync backward
  // phase) charges the warm device cost, mirroring accessed_ above.
  std::unordered_map<TravelId, std::unordered_set<graph::LabelId>> scanned_types_
      GT_GUARDED_BY(mu_);
  // Outbound tracing events, batched per (coordinator, travel) and flushed
  // by size or by the maintenance tick.
  std::map<std::pair<ServerId, TravelId>, std::vector<TraceItem>> trace_buffer_
      GT_GUARDED_BY(mu_);
  // Per-travel pinned store snapshot (snapshot_isolation). Workers copy the
  // shared_ptr under mu_ and read through it lock-free; the custom deleter
  // hands the pin back to the GraphStore when the last holder drops it, so
  // an abort erasing the map entry mid-batch never yanks the view out from
  // under a worker. Erased in HandleAbort (every completion path broadcasts
  // an abort/cleanup), which also bounds the map to live travels.
  std::unordered_map<TravelId, std::shared_ptr<const graph::GraphStore::ReadSnapshot>>
      travel_snaps_ GT_GUARDED_BY(mu_);
  // Test-only retention (cfg_.retain_snapshots_for_test): snapshots moved
  // here at cleanup instead of released, drained by
  // DropRetainedSnapshotsForTest. Deliberately NOT counted as travel
  // residue — retention is an explicit harness choice, not a leak.
  std::unordered_map<TravelId, std::shared_ptr<const graph::GraphStore::ReadSnapshot>>
      retained_snaps_ GT_GUARDED_BY(mu_);
  std::unordered_set<TravelId> aborted_travels_ GT_GUARDED_BY(mu_);  // late-message tombstones
  std::deque<TravelId> aborted_order_ GT_GUARDED_BY(mu_);  // bounds the tombstone set
  uint64_t next_exec_seq_ GT_GUARDED_BY(mu_) = 1;
  uint64_t next_travel_seq_ GT_GUARDED_BY(mu_) = 1;
  // Planner statistics, built once from this shard on first planner-enabled
  // submit (under hash partitioning the local shard is a representative
  // sample of global selectivities; rewrites only need relative order).
  bool plan_stats_ready_ GT_GUARDED_BY(mu_) = false;
  lang::PlanStats plan_stats_ GT_GUARDED_BY(mu_);
  // Live coordinated travels per priority class (admission accounting;
  // incremented on admit, decremented in CompleteTravelLocked).
  std::array<uint32_t, kNumTravelClasses> inflight_per_class_ GT_GUARDED_BY(mu_) = {{0, 0, 0}};
  // Sends staged under mu_, flushed by DrainOutbox once the lock drops.
  std::vector<rpc::Message> outbox_ GT_GUARDED_BY(mu_);
  // Completed-travel archive for trace export (bounded; oldest dropped).
  std::deque<TravelTrace> recent_traces_ GT_GUARDED_BY(mu_);

  // Registry handles, fetched once at construction (hot paths only touch
  // the atomics inside). Indexed by EngineMode for the duration histogram.
  metrics::Histogram* travel_duration_ms_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* travels_ok_ = nullptr;
  metrics::Counter* travels_failed_ = nullptr;
  // Lifecycle counters (coordinator role), per priority class where the
  // class is known at the event.
  metrics::Counter* travel_admitted_[kNumTravelClasses] = {nullptr, nullptr, nullptr};
  metrics::Counter* travel_rejected_[kNumTravelClasses] = {nullptr, nullptr, nullptr};
  metrics::Counter* travel_cancelled_ = nullptr;
  metrics::Counter* travel_deadline_exceeded_ = nullptr;
  metrics::Counter* travel_snapshots_pinned_ = nullptr;
  // Referential-integrity accounting on the kPutEdge ingest path.
  metrics::Counter* dangling_edges_rejected_ = nullptr;
  metrics::Counter* edge_dst_unverified_ = nullptr;
  metrics::CollectorId metrics_collector_ = 0;  // live between Start and Stop

  // Workers plus the maintenance tick run on this pool (cfg_.workers + 1
  // threads) so the engine owns no raw std::thread lifecycles.
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<uint64_t> send_failures_{0};
  std::atomic<bool> stop_{false};
  bool started_ = false;  // Start/Stop are external-control-thread only

  // Maintenance tick interrupt: Stop signals maint_cv_ so the loop exits
  // immediately instead of finishing a full sleep interval.
  Mutex maint_mu_;
  CondVar maint_cv_;
  bool maint_stop_ GT_GUARDED_BY(maint_mu_) = false;
};

}  // namespace gt::engine
