#include "src/engine/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/clock.h"
#include "src/common/logging.h"

namespace gt::engine {

Result<TravelId> GraphTrekClient::Submit(const lang::TraversalPlan& plan,
                                         const RunOptions& opts) {
  SubmitPayload submit;
  submit.mode = static_cast<uint8_t>(opts.mode);
  submit.timeout_ms = opts.failure_timeout_ms;
  submit.priority_class = static_cast<uint8_t>(opts.priority);
  submit.deadline_ms = opts.deadline_ms != 0 ? opts.deadline_ms : opts.client_timeout_ms;
  submit.plan = plan.Encode();

  auto reply = mailbox_.Call(opts.coordinator, rpc::MsgType::kSubmitTraversal,
                             submit.Encode());
  if (!reply.ok()) return reply.status();
  if (reply->type == rpc::MsgType::kTraversalComplete) {
    auto done = CompletePayload::Decode(reply->payload);
    if (done.ok() && done->ok == 0) {
      // Admission rejections surface as Unavailable; malformed submissions
      // keep their original code (InvalidArgument fallback for legacy peers).
      Status st = StatusFromWire(done->code, done->error);
      if (st.ok()) st = Status::InvalidArgument(done->error);
      return st;
    }
    return Status::Internal("unexpected completion on submit");
  }
  CheckedReader dec(reply->payload);
  uint64_t travel = 0;
  if (!dec.GetVarint64(&travel)) return Status::Corruption("bad accept payload");
  return travel;
}

Status GraphTrekClient::Cancel(TravelId travel) {
  MarkFinished(travel);
  return mailbox_.Send(ExecServer(travel), rpc::MsgType::kAbortTraversal,
                       AbortPayload{travel, AbortPayload::kCancel}.Encode());
}

void GraphTrekClient::MarkFinished(TravelId travel) {
  constexpr size_t kMaxFinished = 128;
  if (!finished_.insert(travel).second) return;
  finished_order_.push_back(travel);
  while (finished_order_.size() > kMaxFinished) {
    finished_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
}

void GraphTrekClient::DrainStaleFrames() {
  if (finished_.empty()) return;
  mailbox_.DrainInboxIf([this](const rpc::Message& m) {
    TravelId travel = 0;
    if (m.type == rpc::MsgType::kResultChunk) {
      auto chunk = ResultChunkPayload::Decode(m.payload);
      if (!chunk.ok()) return false;
      travel = chunk->travel_id;
    } else if (m.type == rpc::MsgType::kTraversalComplete) {
      auto done = CompletePayload::Decode(m.payload);
      if (!done.ok()) return false;
      travel = done->travel_id;
    } else {
      return false;
    }
    return finished_.count(travel) != 0;
  });
}

Result<TraversalResult> GraphTrekClient::Await(TravelId travel, uint32_t timeout_ms) {
  TraversalResult result;
  result.travel_id = travel;
  const uint64_t deadline = NowMicros() + static_cast<uint64_t>(timeout_ms) * 1000;
  DrainStaleFrames();  // drop leftovers from cancelled/abandoned travels

  // Giving up on the travel must tell the coordinator, or the travel keeps
  // running server-side (leaking frontier state on every server) and its
  // frames sit in the mailbox forever.
  auto give_up = [&](Status st) -> Status {
    Status ignored = Cancel(travel);
    (void)ignored;  // cancellation is best-effort; the deadline also covers us
    DrainStaleFrames();
    return st;
  };

  for (;;) {
    const uint64_t now = NowMicros();
    if (now >= deadline) return give_up(Status::Timeout("traversal wait"));
    auto msg = mailbox_.Receive(static_cast<uint32_t>((deadline - now) / 1000) + 1);
    if (!msg.ok()) {
      if (msg.status().IsTimeout()) return give_up(Status::Timeout("traversal wait"));
      return msg.status();
    }

    switch (msg->type) {
      case rpc::MsgType::kResultChunk: {
        auto chunk = ResultChunkPayload::Decode(msg->payload);
        if (!chunk.ok()) return chunk.status();
        if (chunk->travel_id != travel) continue;  // stale stream
        result.vids.insert(result.vids.end(), chunk->vids.begin(), chunk->vids.end());
        for (const auto& [value, count] : chunk->groups) result.groups[value] += count;
        for (auto& path : chunk->paths) result.paths.push_back(std::move(path));
        break;
      }
      case rpc::MsgType::kTraversalComplete: {
        auto done = CompletePayload::Decode(msg->payload);
        if (!done.ok()) return done.status();
        if (done->travel_id != travel) continue;
        MarkFinished(travel);
        if (done->ok == 0) {
          Status st = StatusFromWire(done->code, done->error);
          if (st.ok()) st = Status::Aborted(done->error);
          return st;
        }
        result.count = done->total_results;
        std::sort(result.vids.begin(), result.vids.end());
        result.vids.erase(std::unique(result.vids.begin(), result.vids.end()),
                          result.vids.end());
        std::sort(result.paths.begin(), result.paths.end());
        result.paths.erase(std::unique(result.paths.begin(), result.paths.end()),
                           result.paths.end());
        return result;
      }
      default:
        break;  // ignore unrelated traffic
    }
  }
}

Result<TraversalResult> GraphTrekClient::Run(const lang::TraversalPlan& plan,
                                             const RunOptions& opts) {
  Stopwatch watch;
  uint32_t restarts = 0;
  uint32_t admission_retries = 0;
  for (;;) {
    auto travel = Submit(plan, opts);
    if (!travel.ok()) {
      if (travel.status().IsUnavailable() &&
          admission_retries < opts.max_admission_retries) {
        // Admission backpressure: jittered exponential backoff, then retry.
        const uint32_t shift = std::min(admission_retries, 6u);
        const uint64_t base_ms =
            static_cast<uint64_t>(std::max<uint32_t>(1, opts.backoff_base_ms)) << shift;
        const uint64_t jitter_ms = NowMicros() % (base_ms + 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(base_ms + jitter_ms));
        admission_retries++;
        continue;
      }
      return travel.status();
    }
    auto result = Await(*travel, opts.client_timeout_ms);
    if (result.ok()) {
      result->elapsed_ms = watch.ElapsedMillis();
      result->restarts = restarts;
      return result;
    }
    if (result.status().IsAborted() && restarts < opts.max_restarts) {
      // Failure detected by the coordinator's status tracing; restart the
      // traversal from scratch (paper Section IV-C).
      restarts++;
      GT_WARN << "traversal " << *travel << " failed (" << result.status().ToString()
              << "); restarting (" << restarts << "/" << opts.max_restarts << ")";
      continue;
    }
    return result.status();
  }
}

Result<TraversalResult> GraphTrekClient::RunUnion(
    const std::vector<lang::TraversalPlan>& plans, const RunOptions& opts) {
  Stopwatch watch;
  TraversalResult combined;
  uint32_t restarts = 0;
  for (const auto& plan : plans) {
    auto result = Run(plan, opts);
    if (!result.ok()) return result.status();
    combined.vids.insert(combined.vids.end(), result->vids.begin(), result->vids.end());
    combined.count += result->count;
    for (const auto& [value, count] : result->groups) combined.groups[value] += count;
    combined.paths.insert(combined.paths.end(), result->paths.begin(),
                          result->paths.end());
    restarts += result->restarts;
    combined.travel_id = result->travel_id;
  }
  std::sort(combined.vids.begin(), combined.vids.end());
  combined.vids.erase(std::unique(combined.vids.begin(), combined.vids.end()),
                      combined.vids.end());
  std::sort(combined.paths.begin(), combined.paths.end());
  combined.paths.erase(std::unique(combined.paths.begin(), combined.paths.end()),
                       combined.paths.end());
  combined.elapsed_ms = watch.ElapsedMillis();
  combined.restarts = restarts;
  return combined;
}

Result<ProgressPayload> GraphTrekClient::Progress(TravelId travel, ServerId coordinator,
                                                  uint32_t timeout_ms) {
  std::string payload;
  PutVarint64(&payload, travel);
  auto reply = mailbox_.Call(coordinator, rpc::MsgType::kProgressRequest,
                             std::move(payload), timeout_ms);
  if (!reply.ok()) return reply.status();
  return ProgressPayload::Decode(reply->payload);
}

}  // namespace gt::engine

// ---------------------------------------------------------------------------
// Live updates + point queries
// ---------------------------------------------------------------------------

namespace gt::engine {

Status GraphTrekClient::CallMutation(ServerId dst, rpc::MsgType type, std::string payload,
                                     uint32_t timeout_ms) {
  auto reply = mailbox_.Call(dst, type, std::move(payload), timeout_ms);
  if (!reply.ok()) return reply.status();
  auto ack = MutateAckPayload::Decode(reply->payload);
  if (!ack.ok()) return ack.status();
  if (ack->ok == 0) return Status::Internal(ack->error);
  return Status::OK();
}

Status GraphTrekClient::PutVertex(graph::VertexId vid, const std::string& label,
                                  NamedProps props, uint32_t timeout_ms) {
  PutVertexPayload req;
  req.vid = vid;
  req.label = label;
  req.props = std::move(props);
  return CallMutation(OwnerOf(vid), rpc::MsgType::kPutVertex, req.Encode(), timeout_ms);
}

Status GraphTrekClient::PutEdge(graph::VertexId src, const std::string& label,
                                graph::VertexId dst, NamedProps props,
                                uint32_t timeout_ms) {
  PutEdgePayload req;
  req.src = src;
  req.label = label;
  req.dst = dst;
  req.props = std::move(props);
  return CallMutation(OwnerOf(src), rpc::MsgType::kPutEdge, req.Encode(), timeout_ms);
}

Status GraphTrekClient::DeleteVertex(graph::VertexId vid, uint32_t timeout_ms) {
  GetVertexPayload req;
  req.vid = vid;
  return CallMutation(OwnerOf(vid), rpc::MsgType::kDeleteVertex, req.Encode(), timeout_ms);
}

Result<VertexReplyPayload> GraphTrekClient::GetVertex(graph::VertexId vid,
                                                      uint32_t timeout_ms) {
  GetVertexPayload req;
  req.vid = vid;
  auto reply = mailbox_.Call(OwnerOf(vid), rpc::MsgType::kGetVertex, req.Encode(),
                             timeout_ms);
  if (!reply.ok()) return reply.status();
  return VertexReplyPayload::Decode(reply->payload);
}

}  // namespace gt::engine
