// GraphTrekClient: submits GTravel plans to a coordinator server, streams
// back results, polls progress, and implements the paper's restart-on-
// failure policy (a traversal whose executions are lost to a failure is
// simply resubmitted).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/engine/mutation.h"
#include "src/engine/types.h"
#include "src/graph/partitioner.h"
#include "src/lang/gtravel.h"
#include "src/rpc/mailbox.h"

namespace gt::engine {

struct TraversalResult {
  TravelId travel_id = 0;
  std::vector<graph::VertexId> vids;  // sorted, deduplicated (kVertices)
  // Aggregation / path terminals (populated per the plan's result_mode; the
  // others stay empty). `count` is the coordinator-reported result total and
  // is set for every mode — for count() plans it IS the result.
  uint64_t count = 0;
  std::map<std::string, uint64_t> groups;           // group(key): value -> count
  std::vector<std::vector<graph::VertexId>> paths;  // path(): visited chains
  double elapsed_ms = 0.0;
  uint32_t restarts = 0;  // failure-triggered resubmissions
};

struct RunOptions {
  EngineMode mode = EngineMode::kGraphTrek;
  ServerId coordinator = 0;
  uint32_t failure_timeout_ms = 0;  // 0 = server default
  uint32_t max_restarts = 2;
  uint32_t client_timeout_ms = 120000;  // overall wait

  // Admission class the travel submits under (per-class coordinator limits).
  TravelClass priority = TravelClass::kNormal;
  // Server-enforced deadline shipped in the SubmitPayload; 0 = derive from
  // client_timeout_ms so the server never runs a travel its client stopped
  // waiting for.
  uint32_t deadline_ms = 0;
  // Backpressure policy: admission rejections (Unavailable) retry with
  // jittered exponential backoff up to this many attempts.
  uint32_t max_admission_retries = 8;
  uint32_t backoff_base_ms = 2;
};

class GraphTrekClient {
 public:
  // `num_servers` > 0 enables owner-routing of mutations and point queries
  // (otherwise they are sent to server 0, which forwards to the owner).
  explicit GraphTrekClient(rpc::Transport* transport, rpc::EndpointId id,
                           uint32_t num_servers = 0)
      : mailbox_(transport, id),
        partitioner_(num_servers == 0 ? 1 : num_servers),
        routed_(num_servers > 0) {}

  rpc::EndpointId id() const { return mailbox_.id(); }
  rpc::Mailbox* mailbox() { return &mailbox_; }

  // Submits the plan and blocks until the traversal completes (restarting
  // on reported failures, per the paper's recovery policy).
  Result<TraversalResult> Run(const lang::TraversalPlan& plan, const RunOptions& opts);

  // Fire-and-forget submission; use Await() to collect.
  Result<TravelId> Submit(const lang::TraversalPlan& plan, const RunOptions& opts);

  // Waits for a previously submitted traversal. On timeout the travel is
  // cancelled at its coordinator (kAbortTraversal) so server-side state is
  // reclaimed instead of orphaned.
  Result<TraversalResult> Await(TravelId travel, uint32_t timeout_ms = 120000);

  // Asks the travel's coordinator to abandon it. Fire-and-forget: the
  // coordinator completes the travel as Aborted and fans cleanup out to
  // every server.
  Status Cancel(TravelId travel);

  // Requests the per-step unfinished-execution counts from the coordinator.
  Result<ProgressPayload> Progress(TravelId travel, ServerId coordinator,
                                   uint32_t timeout_ms = 5000);

  // --- live updates + point queries (paper Section I requirements) ---
  // Labels and property keys are plain strings; servers intern them.

  Status PutVertex(graph::VertexId vid, const std::string& label,
                   NamedProps props = {}, uint32_t timeout_ms = 10000);
  Status PutEdge(graph::VertexId src, const std::string& label, graph::VertexId dst,
                 NamedProps props = {}, uint32_t timeout_ms = 10000);
  Status DeleteVertex(graph::VertexId vid, uint32_t timeout_ms = 10000);

  // Low-latency point lookup of one vertex record (label + props by name).
  Result<VertexReplyPayload> GetVertex(graph::VertexId vid, uint32_t timeout_ms = 10000);

  // OR-composition helper: the language AND-composes filters; the paper's
  // prescription for OR is to "issue different traversals and combine their
  // results". Runs each plan (sequentially) and returns the deduplicated
  // union of their result sets.
  Result<TraversalResult> RunUnion(const std::vector<lang::TraversalPlan>& plans,
                                   const RunOptions& opts);

 private:
  ServerId OwnerOf(graph::VertexId vid) const {
    return routed_ ? partitioner_.ServerFor(vid) : 0;
  }
  Status CallMutation(ServerId dst, rpc::MsgType type, std::string payload,
                      uint32_t timeout_ms);

  // Finished/cancelled travel ids (bounded). Stale kResultChunk /
  // kTraversalComplete frames for these are dropped from the mailbox so
  // they never confuse a later Await. Single-threaded like the rest of the
  // client API.
  void MarkFinished(TravelId travel);
  void DrainStaleFrames();

  rpc::Mailbox mailbox_;
  graph::HashPartitioner partitioner_;
  bool routed_ = false;
  std::unordered_set<TravelId> finished_;
  std::deque<TravelId> finished_order_;
};

}  // namespace gt::engine
