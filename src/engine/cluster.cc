#include "src/engine/cluster.h"

#include <cstdlib>
#include <ostream>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/kv/env.h"

namespace gt::engine {

Result<std::unique_ptr<Cluster>> Cluster::Create(ClusterConfig cfg) {
  auto cluster = std::unique_ptr<Cluster>(new Cluster(std::move(cfg)));
  ClusterConfig& c = cluster->cfg_;

  if (c.data_dir.empty()) {
    std::string tmpl = "/tmp/graphtrek-cluster-XXXXXX";
    if (::mkdtemp(tmpl.data()) == nullptr) {
      return Status::IOError("mkdtemp failed for cluster data dir");
    }
    c.data_dir = tmpl;
    cluster->own_dir_ = true;
  } else {
    GT_RETURN_IF_ERROR(kv::Env::Default()->CreateDirIfMissing(c.data_dir));
  }

  cluster->partitioner_ = std::make_unique<graph::HashPartitioner>(c.num_servers);
  cluster->transport_ = std::make_unique<rpc::InProcTransport>(c.net);
  if (c.net_faults) {
    cluster->fault_transport_ = std::make_unique<rpc::FaultInjectingTransport>(
        cluster->transport_.get(), c.net_fault_seed);
  }

  for (uint32_t i = 0; i < c.num_servers; i++) {
    cluster->devices_.push_back(std::make_unique<DeviceModel>(c.device));

    graph::GraphStoreOptions sopts;
    sopts.db = c.db;
    sopts.device = cluster->devices_.back().get();
    sopts.server_id = i;
    sopts.adjacency_cache_bytes = c.adjacency_cache_bytes;
    auto store =
        graph::GraphStore::Open(c.data_dir + "/s" + std::to_string(i), sopts);
    if (!store.ok()) return store.status();
    (*store)->SetInterceptor(&cluster->straggler_);
    cluster->stores_.push_back(std::move(*store));

    ServerConfig scfg;
    scfg.id = i;
    scfg.num_servers = c.num_servers;
    scfg.workers = c.workers_per_server;
    scfg.cache_capacity = c.cache_capacity;
    scfg.exec_timeout_ms = c.exec_timeout_ms;
    scfg.maintenance_interval_ms = c.maintenance_interval_ms;
    scfg.max_inflight_travels = c.max_inflight_travels;
    scfg.admission_limits = c.admission_limits;
    scfg.graphtrek_merging = c.graphtrek_merging;
    scfg.graphtrek_priority_sched = c.graphtrek_priority_sched;
    scfg.planner = c.planner;
    scfg.batched_multiget = c.batched_multiget;
    scfg.arena_scratch = c.arena_scratch;
    scfg.snapshot_isolation = c.snapshot_isolation;
    scfg.retain_snapshots_for_test = c.retain_snapshots_for_test;
    cluster->servers_.push_back(std::make_unique<BackendServer>(
        scfg, cluster->stores_.back().get(), cluster->partitioner_.get(),
        &cluster->catalog_, cluster->transport()));
  }
  for (auto& server : cluster->servers_) {
    GT_RETURN_IF_ERROR(server->Start());
  }
  return cluster;
}

Cluster::~Cluster() { Stop(); }

void Cluster::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& server : servers_) server->Stop();
  transport()->Shutdown();  // decorator (if any) shuts the inner fabric too
  servers_.clear();
  stores_.clear();
  if (own_dir_) {
    kv::Env::Default()->RemoveDirRecursive(cfg_.data_dir).ok();
  }
}

Status Cluster::Load(const graph::RefGraph& graph) {
  std::vector<graph::GraphStore*> raw;
  raw.reserve(stores_.size());
  for (auto& s : stores_) raw.push_back(s.get());
  graph::GraphLoader loader(partitioner_.get(), std::move(raw));
  return graph.LoadInto(&loader);
}

std::unique_ptr<GraphTrekClient> Cluster::NewClient() {
  return std::make_unique<GraphTrekClient>(
      transport(), rpc::kClientIdBase + next_client_.fetch_add(1), cfg_.num_servers);
}

Result<TraversalResult> Cluster::Run(const lang::TraversalPlan& plan, EngineMode mode,
                                     ServerId coordinator) {
  auto client = NewClient();
  RunOptions opts;
  opts.mode = mode;
  opts.coordinator = coordinator;
  return client->Run(plan, opts);
}

Result<graph::RefGraph> Cluster::Dump() {
  graph::RefGraph g;
  for (auto& store : stores_) {
    GT_RETURN_IF_ERROR(store->ScanAllVertices([&](const graph::VertexRecord& rec) {
      g.AddVertex(rec);
      return true;
    }));
    GT_RETURN_IF_ERROR(store->ScanEverythingEdges([&](const graph::EdgeRecord& rec) {
      g.AddEdge(rec);
      return true;
    }));
  }
  return g;
}

Result<graph::RefGraph> Cluster::DumpAtTravelPin(TravelId travel) {
  graph::RefGraph g;
  for (uint32_t i = 0; i < servers_.size(); i++) {
    // Holding the shared_ptr keeps the pin alive across both scans even if
    // the retention map is drained concurrently.
    auto snap = servers_[i]->TravelSnapshotForTest(travel);
    GT_RETURN_IF_ERROR(stores_[i]->ScanAllVertices(
        [&](const graph::VertexRecord& rec) {
          g.AddVertex(rec);
          return true;
        },
        snap.get()));
    GT_RETURN_IF_ERROR(stores_[i]->ScanEverythingEdges(
        [&](const graph::EdgeRecord& rec) {
          g.AddEdge(rec);
          return true;
        },
        snap.get()));
  }
  return g;
}

void Cluster::DropRetainedSnapshotsForTest() {
  for (auto& server : servers_) server->DropRetainedSnapshotsForTest();
}

void Cluster::DumpMetrics(std::ostream* out) {
  // Every layer (kv DBs, transports, backend servers) registered its own
  // exposition collector; one scrape of the process registry covers the
  // whole cluster. Device-model figures are the only cluster-owned state.
  *out << metrics::Registry::Default()->Expose("gt_");
  for (uint32_t i = 0; i < cfg_.num_servers; i++) {
    *out << "# device model s" << i << ": accesses=" << devices_[i]->total_accesses()
         << " warm=" << devices_[i]->warm_accesses()
         << " tails=" << devices_[i]->tail_accesses() << "\n";
  }
}

bool Cluster::ExportTraceJson(TravelId travel, std::string* json) {
  // Any coordinator may have archived the travel; latest-first when travel=0.
  for (auto it = servers_.rbegin(); it != servers_.rend(); ++it) {
    if ((*it)->ExportTraceJson(travel, json)) return true;
  }
  return false;
}

void Cluster::ResetStats() {
  for (auto& server : servers_) server->ResetVisitStats();
  for (auto& store : stores_) store->ResetAccessCount();
  for (auto& device : devices_) device->ResetStats();
}

}  // namespace gt::engine
