// Cluster: assembles N backend servers (each with its own GraphStore and
// embedded KV database), the shared transport, catalog and partitioner into
// a runnable GraphTrek deployment inside one process. Benches and tests use
// this to stand up 2-32 "backend servers" the way the paper's evaluation
// deploys nodes on the Fusion cluster.
#pragma once

#include <array>
#include <atomic>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/common/device_model.h"
#include "src/engine/backend_server.h"
#include "src/engine/client.h"
#include "src/engine/straggler.h"
#include "src/graph/ingest.h"
#include "src/graph/ref_graph.h"
#include "src/rpc/fault_transport.h"
#include "src/rpc/inproc_transport.h"

namespace gt::engine {

struct ClusterConfig {
  uint32_t num_servers = 4;
  uint32_t workers_per_server = 2;
  size_t cache_capacity = 1 << 20;
  uint32_t exec_timeout_ms = 15000;
  uint32_t maintenance_interval_ms = 5;

  // Admission control at each coordinator (see ServerConfig). 0 = unlimited.
  uint32_t max_inflight_travels = 4096;
  std::array<uint32_t, kNumTravelClasses> admission_limits{{64, 512, 2048}};

  // Ablation knobs for the GraphTrek optimizations (see DESIGN.md).
  bool graphtrek_merging = true;
  bool graphtrek_priority_sched = true;

  // Statistics-driven plan rewriting at each coordinator (see
  // ServerConfig::planner). Off by default: the differential harness
  // compares planner-on vs planner-off clusters for result identity.
  bool planner = false;

  // I/O-path ablation knobs (see DESIGN.md "Adjacency cache & batched
  // I/O"). Each axis toggles independently of the two above.
  size_t adjacency_cache_bytes = 16 << 20;  // 0 disables the CSR cache
  bool batched_multiget = true;             // frontier-group MultiGet
  bool arena_scratch = true;                // per-worker arena scratch

  // Per-travel snapshot isolation (see ServerConfig::snapshot_isolation).
  // Off = historical read-latest behaviour; the torn-read control legs in
  // tests/benches flip this.
  bool snapshot_isolation = true;
  // Test hook: servers retain each travel's pinned snapshot past cleanup
  // so DumpAtTravelPin can reconstruct the exact view the travel saw.
  bool retain_snapshots_for_test = false;

  // Empty: a fresh directory under the system temp dir, removed on Stop.
  std::string data_dir;

  // Simulated device cost per vertex access (cold-start disk behaviour).
  DeviceModelConfig device;

  // Simulated network fabric.
  rpc::InProcConfig net;

  // When true, the cluster's transport is wrapped in a seeded
  // FaultInjectingTransport; configure link faults via fault_transport().
  bool net_faults = false;
  uint64_t net_fault_seed = 42;

  // KV engine knobs (block cache etc.); `device` above is charged at the
  // GraphStore access level, not per KV block.
  kv::DBOptions db;
};

class Cluster {
 public:
  static Result<std::unique_ptr<Cluster>> Create(ClusterConfig cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  uint32_t num_servers() const { return cfg_.num_servers; }
  graph::Catalog* catalog() { return &catalog_; }
  const graph::Partitioner* partitioner() const { return partitioner_.get(); }
  // The transport every server/client endpoint is registered on: the fault
  // decorator when net_faults is set, the raw in-process fabric otherwise.
  rpc::Transport* transport() {
    if (fault_transport_) return fault_transport_.get();
    return transport_.get();
  }
  rpc::InProcTransport* inproc_transport() { return transport_.get(); }
  // Null unless ClusterConfig::net_faults was set.
  rpc::FaultInjectingTransport* fault_transport() { return fault_transport_.get(); }
  BackendServer* server(uint32_t i) { return servers_[i].get(); }
  graph::GraphStore* store(uint32_t i) { return stores_[i].get(); }
  DeviceModel* device(uint32_t i) { return devices_[i].get(); }
  StragglerInjector* straggler() { return &straggler_; }

  // Bulk-loads a staged in-memory graph across the shards.
  Status Load(const graph::RefGraph& graph);

  // Creates a client endpoint (caller owns it; must not outlive the cluster).
  std::unique_ptr<GraphTrekClient> NewClient();

  // Convenience: build + run one traversal.
  Result<TraversalResult> Run(const lang::TraversalPlan& plan, EngineMode mode,
                              ServerId coordinator = 0);

  // Clears engine statistics on every server (between bench iterations).
  void ResetStats();

  // Dumps the whole distributed graph (all shards) into the staging
  // RefGraph form — the inverse of Load(); pair with graph::ExportText.
  Result<graph::RefGraph> Dump();

  // Dumps the composite view `travel` was pinned to: each shard contributes
  // its vertices/edges as seen through that server's pinned snapshot for
  // the travel (its live state when the server holds no pin — isolation
  // off, or a server the travel never touched). With
  // retain_snapshots_for_test set this works after the travel completes;
  // the result is exactly the graph the distributed engines read, so it is
  // the oracle input for the mutate-while-traversing differential leg.
  Result<graph::RefGraph> DumpAtTravelPin(TravelId travel);

  // Drains every server's test-retained snapshots (releases the KV pins).
  void DropRetainedSnapshotsForTest();

  // Writes the process metrics registry (Prometheus text exposition — kv,
  // rpc, engine and travel families) plus the cluster's device-model
  // figures to `out` (ops tooling).
  void DumpMetrics(std::ostream* out);

  // Renders an archived travel (0 = most recent across all coordinators)
  // as Chrome trace-event JSON. False when no coordinator archived it.
  bool ExportTraceJson(TravelId travel, std::string* json);

  void Stop();

 private:
  explicit Cluster(ClusterConfig cfg) : cfg_(std::move(cfg)) {}

  ClusterConfig cfg_;
  bool own_dir_ = false;
  graph::Catalog catalog_;
  std::unique_ptr<graph::Partitioner> partitioner_;
  std::unique_ptr<rpc::InProcTransport> transport_;
  std::unique_ptr<rpc::FaultInjectingTransport> fault_transport_;
  std::vector<std::unique_ptr<DeviceModel>> devices_;
  std::vector<std::unique_ptr<graph::GraphStore>> stores_;
  std::vector<std::unique_ptr<BackendServer>> servers_;
  StragglerInjector straggler_;
  // Atomic: tests/benches create clients from several threads at once.
  std::atomic<uint32_t> next_client_{0};
  bool stopped_ = false;
};

}  // namespace gt::engine
