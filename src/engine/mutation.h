// Live-update and point-query protocol payloads.
//
// The paper's metadata system "must support live updates (to ingest
// production information in real time) [and] low-latency point queries (for
// frequent metadata operations such as permission checking)". These
// messages carry single-record mutations and point lookups from clients to
// the owning backend server. Labels and property keys travel as *names*
// (strings) so that out-of-process clients need no catalog state; servers
// intern them on arrival.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/common/codec.h"
#include "src/common/status.h"
#include "src/graph/catalog.h"
#include "src/graph/encoding.h"

namespace gt::engine {

// Property list keyed by name rather than interned id.
using NamedProps = std::vector<std::pair<std::string, graph::PropValue>>;

inline void EncodeNamedProps(std::string* out, const NamedProps& props) {
  PutVarint32(out, static_cast<uint32_t>(props.size()));
  for (const auto& [name, value] : props) {
    PutLengthPrefixed(out, name);
    value.EncodeTo(out);
  }
}

inline bool DecodeNamedProps(CheckedReader* dec, NamedProps* out) {
  uint32_t n = 0;
  // 2 = minimum encoded prop (empty-name length byte + value tag byte).
  if (!dec->GetCount(&n, 2)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    std::string_view name;
    graph::PropValue value;
    if (!dec->GetLengthPrefixed(&name) || !graph::PropValue::DecodeFrom(dec, &value)) {
      return false;
    }
    out->emplace_back(std::string(name), std::move(value));
  }
  return true;
}

// Resolves names against a catalog (interning new ones).
inline graph::PropMap InternProps(const NamedProps& props, graph::Catalog* catalog) {
  graph::PropMap out;
  for (const auto& [name, value] : props) {
    out.Set(catalog->Intern(name), value);
  }
  return out;
}

// --- kPutVertex --------------------------------------------------------------

struct PutVertexPayload {
  graph::VertexId vid = 0;
  std::string label;
  NamedProps props;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, vid);
    PutLengthPrefixed(&out, label);
    EncodeNamedProps(&out, props);
    return out;
  }
  static Result<PutVertexPayload> Decode(std::string_view data) {
    PutVertexPayload p;
    CheckedReader dec(data);
    std::string_view label;
    if (!dec.GetVarint64(&p.vid) || !dec.GetLengthPrefixed(&label) ||
        !DecodeNamedProps(&dec, &p.props)) {
      return Status::Corruption("bad put-vertex payload");
    }
    p.label.assign(label);
    return p;
  }
};

// --- kPutEdge ----------------------------------------------------------------

struct PutEdgePayload {
  graph::VertexId src = 0;
  std::string label;
  graph::VertexId dst = 0;
  NamedProps props;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, src);
    PutLengthPrefixed(&out, label);
    PutVarint64(&out, dst);
    EncodeNamedProps(&out, props);
    return out;
  }
  static Result<PutEdgePayload> Decode(std::string_view data) {
    PutEdgePayload p;
    CheckedReader dec(data);
    std::string_view label;
    if (!dec.GetVarint64(&p.src) || !dec.GetLengthPrefixed(&label) ||
        !dec.GetVarint64(&p.dst) || !DecodeNamedProps(&dec, &p.props)) {
      return Status::Corruption("bad put-edge payload");
    }
    p.label.assign(label);
    return p;
  }
};

// --- kMutateAck ----------------------------------------------------------------

struct MutateAckPayload {
  uint8_t ok = 1;
  std::string error;

  std::string Encode() const {
    std::string out;
    out.push_back(static_cast<char>(ok));
    PutLengthPrefixed(&out, error);
    return out;
  }
  static Result<MutateAckPayload> Decode(std::string_view data) {
    MutateAckPayload p;
    CheckedReader dec(data);
    std::string_view err;
    if (!dec.GetByte(&p.ok) || !dec.GetLengthPrefixed(&err)) {
      return Status::Corruption("bad mutate ack");
    }
    p.error.assign(err);
    return p;
  }
};

// --- kGetVertex / kVertexReply ---------------------------------------------------

struct GetVertexPayload {
  graph::VertexId vid = 0;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, vid);
    return out;
  }
  static Result<GetVertexPayload> Decode(std::string_view data) {
    GetVertexPayload p;
    CheckedReader dec(data);
    if (!dec.GetVarint64(&p.vid)) return Status::Corruption("bad get-vertex payload");
    return p;
  }
};

struct VertexReplyPayload {
  uint8_t found = 0;
  graph::VertexId vid = 0;
  std::string label;
  NamedProps props;

  std::string Encode() const {
    std::string out;
    out.push_back(static_cast<char>(found));
    PutVarint64(&out, vid);
    PutLengthPrefixed(&out, label);
    EncodeNamedProps(&out, props);
    return out;
  }
  static Result<VertexReplyPayload> Decode(std::string_view data) {
    VertexReplyPayload p;
    CheckedReader dec(data);
    std::string_view label;
    if (!dec.GetByte(&p.found) || !dec.GetVarint64(&p.vid) ||
        !dec.GetLengthPrefixed(&label) || !DecodeNamedProps(&dec, &p.props)) {
      return Status::Corruption("bad vertex reply");
    }
    p.label.assign(label);
    return p;
  }
};

// --- kCatalogIntern / kCatalogReply ----------------------------------------------
// Distributed catalog protocol: server 0 is the interning authority; other
// processes resolve unknown names through it (see graph::RemoteCatalog).

struct CatalogInternPayload {
  std::string name;

  std::string Encode() const {
    std::string out;
    PutLengthPrefixed(&out, name);
    return out;
  }
  static Result<CatalogInternPayload> Decode(std::string_view data) {
    CatalogInternPayload p;
    CheckedReader dec(data);
    std::string_view name;
    if (!dec.GetLengthPrefixed(&name)) return Status::Corruption("bad intern payload");
    p.name.assign(name);
    return p;
  }
};

struct CatalogReplyPayload {
  uint32_t id = graph::Catalog::kInvalidId;
  // Full snapshot (kCatalogPull replies): names in id order.
  std::vector<std::string> names;

  std::string Encode() const {
    std::string out;
    PutVarint32(&out, id);
    PutVarint32(&out, static_cast<uint32_t>(names.size()));
    for (const auto& n : names) PutLengthPrefixed(&out, n);
    return out;
  }
  static Result<CatalogReplyPayload> Decode(std::string_view data) {
    CatalogReplyPayload p;
    CheckedReader dec(data);
    uint32_t n = 0;
    if (!dec.GetVarint32(&p.id) || !dec.GetCount(&n)) {
      return Status::Corruption("bad catalog reply");
    }
    p.names.reserve(n);
    for (uint32_t i = 0; i < n; i++) {
      std::string_view name;
      if (!dec.GetLengthPrefixed(&name)) return Status::Corruption("bad catalog name");
      p.names.emplace_back(name);
    }
    return p;
  }
};

}  // namespace gt::engine
