// RemoteCatalog: catalog replica for out-of-process participants (server
// daemons other than the authority, and standalone clients).
//
// Id assignment must be globally consistent because label/property-key ids
// are baked into stored records and serialized plans. One server (the
// authority, by convention server 0) owns assignment; every other process
// resolves unknown names through it and caches the bindings locally.
// Lookup()/Name() are local-only (warm the replica with Pull() at startup);
// Intern() falls through to an RPC on a local miss.
#pragma once

#include <memory>

#include "src/engine/mutation.h"
#include "src/graph/catalog.h"
#include "src/rpc/mailbox.h"

namespace gt::engine {

class RemoteCatalog final : public graph::Catalog {
 public:
  // `mailbox` must outlive the catalog; `authority` is the owning endpoint.
  RemoteCatalog(rpc::Mailbox* mailbox, rpc::EndpointId authority,
                uint32_t timeout_ms = 10000)
      : mailbox_(mailbox), authority_(authority), timeout_ms_(timeout_ms) {}

  // Fetches the authority's full snapshot into the local replica.
  Status Pull() {
    auto reply = mailbox_->Call(authority_, rpc::MsgType::kCatalogPull, "", timeout_ms_);
    if (!reply.ok()) return reply.status();
    auto decoded = CatalogReplyPayload::Decode(reply->payload);
    if (!decoded.ok()) return decoded.status();
    if (decoded->names.size() > kMaxWireId) {
      return Status::Corruption("catalog snapshot impossibly large: " +
                                std::to_string(decoded->names.size()) + " names");
    }
    for (uint32_t id = 0; id < decoded->names.size(); id++) {
      InsertAt(id, decoded->names[id]);
    }
    return Status::OK();
  }

  Id Intern(const std::string& name) override {
    const Id local = graph::Catalog::Lookup(name);
    if (local != kInvalidId) return local;

    CatalogInternPayload req;
    req.name = name;
    auto reply = mailbox_->Call(authority_, rpc::MsgType::kCatalogIntern, req.Encode(),
                                timeout_ms_);
    if (!reply.ok()) return kInvalidId;
    auto decoded = CatalogReplyPayload::Decode(reply->payload);
    // The id is untrusted wire input and feeds a resize(id + 1) in
    // InsertAt; reject anything outside the sane dense-id range.
    if (!decoded.ok() || decoded->id >= kMaxWireId) return kInvalidId;
    InsertAt(decoded->id, name);
    return decoded->id;
  }

 private:
  rpc::Mailbox* mailbox_;
  rpc::EndpointId authority_;
  uint32_t timeout_ms_;
};

}  // namespace gt::engine
