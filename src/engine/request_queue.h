// Per-server request queue implementing the paper's execution scheduling
// and merging (Section V-B).
//
// Incoming traversal requests explode into per-vertex tasks. Worker threads
// pop tasks; scheduling and merging behaviour is carried per task because
// the engine mode travels with each traversal:
//   GraphTrek tasks - smallest-step-first order ("process the slow steps
//                     with higher priority to help them catch up"), and
//                     mergeable: popping one extracts every queued task for
//                     the same {travel, vertex} so a single disk access
//                     serves them all ("combined visits").
//   Async-GT tasks  - plain FIFO, never merged.
#pragma once

#include <cassert>
#include <map>
#include <vector>

#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/engine/types.h"

namespace gt::engine {

struct VertexTask {
  TravelId travel = 0;
  uint32_t step = 0;
  graph::VertexId vid = 0;
  ExecId exec = 0;      // owning local execution (0 for sync-engine tasks)
  bool is_owner = true; // false: redundant arrival that must re-consult the memo
  bool sync = false;    // synchronous-engine task
};

class RequestQueue {
 public:
  RequestQueue() : cv_(&mu_) {}

  // `priority`: order by (step, arrival) rather than arrival only.
  // `mergeable`: candidate for execution merging.
  void Push(VertexTask task, bool priority, bool mergeable) GT_EXCLUDES(mu_) {
    {
      MutexLock lk(&mu_);
      const uint64_t seq = next_seq_++;
      // Priority tasks rank by (step, arrival); FIFO tasks rank in the
      // step-0 band by arrival alone, so fresh travels of either class
      // interleave exactly as before. The two classes can never collide:
      // `seq` is globally unique and carried at full 64-bit width (the old
      // packed encoding truncated it to 44 bits, so a FIFO key could equal
      // a priority key and the emplace below silently dropped a task while
      // merge_index_ still recorded it).
      const OrderKey key = priority ? OrderKey{task.step, seq} : OrderKey{0, seq};
      if (mergeable) merge_index_[MergeKey{task.travel, task.vid}].push_back(key);
      queue_.emplace(key, Item{std::move(task), mergeable});
      if (queue_.size() > high_watermark_) high_watermark_ = queue_.size();
    }
    cv_.Signal();
  }

  // Blocks until tasks are available (or shutdown). Returns the scheduled
  // task plus — when it is mergeable — all other queued tasks for the same
  // vertex. With `max_frontier` > 1, additionally drains queued mergeable
  // tasks for up to that many distinct vertices of the *same travel* (the
  // batched-frontier-I/O group: one dequeue, one KV snapshot for all of
  // them). Returns false on shutdown.
  bool PopBatch(std::vector<VertexTask>* batch, size_t max_frontier = 1)
      GT_EXCLUDES(mu_) {
    batch->clear();
    MutexLock lk(&mu_);
    while (!stop_ && queue_.empty()) cv_.Wait();
    if (stop_) return false;

    auto first = queue_.begin();
    const MergeKey mkey{first->second.task.travel, first->second.task.vid};

    if (!first->second.mergeable) {
      batch->push_back(std::move(first->second.task));
      queue_.erase(first);
      return true;
    }

    // Extract every queued mergeable task for this {travel, vertex}.
    ExtractGroupLocked(merge_index_.find(mkey), batch);
    if (max_frontier <= 1) return true;

    // Widen to other vertices of the same travel, in vid order. Grouping
    // jumps those tasks ahead of their scheduled order, which is safe for
    // the same reason cross-step vertex merging is: every task still runs
    // exactly once, and execution accounting is per task.
    size_t vertices = 1;
    auto it = merge_index_.lower_bound(MergeKey{mkey.travel, 0});
    while (vertices < max_frontier && it != merge_index_.end() &&
           it->first.travel == mkey.travel) {
      auto next = std::next(it);
      ExtractGroupLocked(it, batch);
      vertices++;
      it = next;
    }
    return true;
  }

  // Drops every queued task belonging to `travel` (cooperative abort /
  // cancellation reclaim). Returns the number of tasks removed.
  size_t EraseTravel(TravelId travel) GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    size_t erased = 0;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->second.task.travel == travel) {
        it = queue_.erase(it);
        erased++;
      } else {
        ++it;
      }
    }
    auto lo = merge_index_.lower_bound(MergeKey{travel, 0});
    auto hi = lo;
    while (hi != merge_index_.end() && hi->first.travel == travel) ++hi;
    merge_index_.erase(lo, hi);
    return erased;
  }

  // Test hook: fast-forwards the arrival sequence (the key-collision
  // regression needs seq values near the old 44-bit packing boundary, which
  // brute-force pushes cannot reach).
  void SetNextSeqForTest(uint64_t seq) GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    next_seq_ = seq;
  }

  void Shutdown() GT_EXCLUDES(mu_) {
    {
      MutexLock lk(&mu_);
      stop_ = true;
    }
    cv_.SignalAll();
  }

  size_t size() const GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    return queue_.size();
  }

  size_t high_watermark() const GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    return high_watermark_;
  }

 private:
  // Scheduling rank. Priority tasks carry their step in `band`; FIFO tasks
  // always use band 0. `seq` is the full 64-bit arrival number, so keys are
  // unique across both classes by construction (no packing, no wrap).
  struct OrderKey {
    uint64_t band;
    uint64_t seq;
    bool operator<(const OrderKey& o) const {
      if (band != o.band) return band < o.band;
      return seq < o.seq;
    }
    bool operator==(const OrderKey& o) const { return band == o.band && seq == o.seq; }
  };

  struct Item {
    VertexTask task;
    bool mergeable;
  };

  struct MergeKey {
    TravelId travel;
    graph::VertexId vid;
    bool operator<(const MergeKey& o) const {
      if (travel != o.travel) return travel < o.travel;
      return vid < o.vid;
    }
  };

  // Moves every queued task of one merge-index group into `batch` and
  // erases the group. Every key the index records must still be queued —
  // the two are updated together under mu_ — so a failed find means the
  // key spaces collided (the pre-fix bug) and dereferencing end() is UB.
  void ExtractGroupLocked(std::map<MergeKey, std::vector<OrderKey>>::iterator idx,
                          std::vector<VertexTask>* batch) GT_REQUIRES(mu_) {
    for (const OrderKey& key : idx->second) {
      auto it = queue_.find(key);
      assert(it != queue_.end() && "merge_index_ key missing from queue_");
      if (it == queue_.end()) continue;
      batch->push_back(std::move(it->second.task));
      queue_.erase(it);
    }
    merge_index_.erase(idx);
  }

  mutable Mutex mu_;
  CondVar cv_;
  std::map<OrderKey, Item> queue_ GT_GUARDED_BY(mu_);
  std::map<MergeKey, std::vector<OrderKey>> merge_index_ GT_GUARDED_BY(mu_);
  uint64_t next_seq_ GT_GUARDED_BY(mu_) = 0;
  size_t high_watermark_ GT_GUARDED_BY(mu_) = 0;
  bool stop_ GT_GUARDED_BY(mu_) = false;
};

}  // namespace gt::engine
