// External-straggler injection (the Fig. 11 methodology): fixed delays
// inserted into individual vertex data accesses on selected servers at
// selected steps. The engine publishes the step being processed in a
// thread-local so the injector can match step-scoped rules.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/device_model.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/graph/graph_store.h"

namespace gt::engine {

// Set by the engine around each vertex access; -1 outside traversal work.
inline thread_local int tls_current_step = -1;

struct StragglerRule {
  uint32_t server_id = 0;
  int step = -1;           // -1 matches any step
  uint64_t delay_us = 0;   // fixed delay per matched access
  uint64_t max_hits = 0;   // 0 = unlimited; else stop after this many
};

class StragglerInjector final : public graph::AccessInterceptor {
 public:
  explicit StragglerInjector(DeviceModel* device = nullptr) : device_(device) {}

  void AddRule(StragglerRule rule) GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    rules_.push_back(RuleState{rule, 0});
  }

  void ClearRules() GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    rules_.clear();
  }

  uint64_t total_injected_delays() const { return hits_.load(); }

  void OnVertexAccess(uint32_t server_id, graph::VertexId) override {
    uint64_t delay = 0;
    {
      MutexLock lk(&mu_);
      for (auto& rs : rules_) {
        if (rs.rule.server_id != server_id) continue;
        if (rs.rule.step >= 0 && rs.rule.step != tls_current_step) continue;
        if (rs.rule.max_hits != 0 && rs.hits >= rs.rule.max_hits) continue;
        rs.hits++;
        delay += rs.rule.delay_us;
      }
    }
    if (delay > 0) {
      hits_.fetch_add(1);
      if (device_ != nullptr) {
        device_->ChargeInjectedDelay(delay);
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
    }
  }

 private:
  struct RuleState {
    StragglerRule rule;
    uint64_t hits;
  };

  DeviceModel* device_;
  Mutex mu_;
  std::vector<RuleState> rules_ GT_GUARDED_BY(mu_);
  std::atomic<uint64_t> hits_{0};
};

}  // namespace gt::engine
