// Traversal-affiliate cache (paper Section V-A), generalized into the
// memo table that also drives rtn() attribution.
//
// Each entry is keyed by the paper's {travel-id, current-step, vertex-id}
// triple and records whether that vertex's traversal subtree reaches the
// end of the call chain (`reach`). A first arrival inserts a *pending*
// entry and owns the vertex's processing; subsequent arrivals are redundant
// visits — GraphTrek absorbs them without I/O and registers a waiter that
// is answered when the owner resolves the entry.
//
// Replacement follows the paper's time-based strategy: the triples with the
// smallest step ids are substituted first (the presence of larger step ids
// indicates the oldest steps are finished). Only resolved entries are
// evictable; pending entries pin protocol state.
//
// Not internally synchronized: the owning BackendServer serializes access
// under its engine mutex, and waiter callbacks fire under that same mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/engine/types.h"

namespace gt::engine {

class TravelCache {
 public:
  explicit TravelCache(size_t capacity = 1 << 20) : capacity_(capacity) {}

  enum class State { kMiss, kPending, kResolved };

  struct LookupResult {
    State state = State::kMiss;
    bool reach = false;  // valid when kResolved
  };

  // Looks up {travel, step, vid}; on miss inserts a pending entry (the
  // caller becomes the owner responsible for resolving it).
  LookupResult LookupOrInsertPending(TravelId travel, uint32_t step, graph::VertexId vid) {
    const Key key{travel, step, vid};
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_++;
      return LookupResult{it->second.resolved ? State::kResolved : State::kPending,
                          it->second.reach};
    }
    misses_++;
    MaybeEvict();
    Entry e;
    e.seq = next_seq_++;
    entries_.emplace(key, std::move(e));
    return LookupResult{State::kMiss, false};
  }

  // Registers a callback fired (under the server engine lock) when the
  // pending entry resolves. REQUIRES: entry exists and is pending.
  void AddWaiter(TravelId travel, uint32_t step, graph::VertexId vid,
                 std::function<void(bool)> waiter) {
    entries_.at(Key{travel, step, vid}).waiters.push_back(std::move(waiter));
  }

  // Resolves a pending entry and returns the waiters to fire. REQUIRES:
  // entry exists and is pending.
  std::vector<std::function<void(bool)>> Resolve(TravelId travel, uint32_t step,
                                                 graph::VertexId vid, bool reach) {
    const Key key{travel, step, vid};
    Entry& e = entries_.at(key);
    e.resolved = true;
    e.reach = reach;
    evictable_.insert(EvictKey{step, e.seq, key});
    return std::move(e.waiters);
  }

  // Drops all entries of a finished travel.
  void EraseTravel(TravelId travel) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->first.travel == travel) {
        if (it->second.resolved) {
          evictable_.erase(EvictKey{it->first.step, it->second.seq, it->first});
        }
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // True when any entry of `travel` is still cached (cancellation tests
  // assert abort reclaims everything; linear scan, test/abort path only).
  bool HasTravel(TravelId travel) const {
    for (const auto& [key, entry] : entries_) {
      if (key.travel == travel) return true;
    }
    return false;
  }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Key {
    TravelId travel;
    uint32_t step;
    graph::VertexId vid;
    bool operator==(const Key& o) const {
      return travel == o.travel && step == o.step && vid == o.vid;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return HashCombine(HashCombine(Mix64(k.travel), Mix64(k.step)), Mix64(k.vid));
    }
  };
  struct Entry {
    bool resolved = false;
    bool reach = false;
    uint64_t seq = 0;
    std::vector<std::function<void(bool)>> waiters;
  };
  // Eviction order: smallest step first, then oldest insertion.
  struct EvictKey {
    uint32_t step;
    uint64_t seq;
    Key key;
    bool operator<(const EvictKey& o) const {
      if (step != o.step) return step < o.step;
      return seq < o.seq;
    }
  };

  void MaybeEvict() {
    while (entries_.size() >= capacity_ && !evictable_.empty()) {
      auto it = evictable_.begin();
      entries_.erase(it->key);
      evictable_.erase(it);
      evictions_++;
    }
  }

  size_t capacity_;
  uint64_t next_seq_ = 0;
  uint64_t evictions_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::set<EvictKey> evictable_;
};

}  // namespace gt::engine
