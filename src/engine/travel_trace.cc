#include "src/engine/travel_trace.h"

namespace gt::engine {

namespace {

void AppendEvent(std::string* out, bool* first, const std::string& name,
                 const char* cat, uint64_t pid, uint64_t tid, uint64_t ts_us,
                 uint64_t dur_us, const std::string& args) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += "  {\"name\":\"" + name + "\",\"cat\":\"" + cat +
          "\",\"ph\":\"X\",\"ts\":" + std::to_string(ts_us) +
          ",\"dur\":" + std::to_string(dur_us) + ",\"pid\":" + std::to_string(pid) +
          ",\"tid\":" + std::to_string(tid) + ",\"args\":{" + args + "}}";
}

void AppendTravel(std::string* out, bool* first, const TravelTrace& t) {
  // Travel ids encode the coordinator in the high bits; fold to something the
  // trace viewer displays comfortably while keeping concurrent travels apart.
  const uint64_t pid = t.travel % 100000;
  const uint64_t end_us = t.finished_us > t.started_us ? t.finished_us : t.started_us;
  AppendEvent(out, first,
              "travel " + std::to_string(t.travel) + " (" +
                  EngineModeName(t.mode) + ")",
              "travel", pid, 0, t.started_us, end_us - t.started_us,
              std::string("\"ok\":") + (t.ok ? "true" : "false") +
                  ",\"results\":" + std::to_string(t.result_count) +
                  ",\"execs_created\":" + std::to_string(t.total_created) +
                  ",\"execs_terminated\":" + std::to_string(t.total_terminated) +
                  ",\"coordinator\":" + std::to_string(t.coordinator));
  for (size_t step = 0; step < t.steps.size(); step++) {
    const TravelTrace::StepSpan& s = t.steps[step];
    if (s.created == 0 && s.terminated == 0) continue;
    const uint64_t begin = s.first_event_us != 0 ? s.first_event_us : t.started_us;
    const uint64_t last = s.last_event_us > begin ? s.last_event_us : begin;
    AppendEvent(out, first, "step " + std::to_string(step), "step", pid, step + 1,
                begin, last - begin,
                "\"created\":" + std::to_string(s.created) +
                    ",\"terminated\":" + std::to_string(s.terminated));
  }
}

}  // namespace

std::string ToChromeTraceJson(const TravelTrace& trace) {
  return ToChromeTraceJson(std::vector<TravelTrace>{trace});
}

std::string ToChromeTraceJson(const std::vector<TravelTrace>& traces) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& t : traces) AppendTravel(&out, &first, t);
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace gt::engine
