// Archived per-travel execution timeline. The coordinator already observes
// every execution's lifecycle through the status-tracing registry (TraceItem
// batches arriving as kExecDispatched, plus the sync engine's step barrier
// round-trips); TravelTrace condenses those events into per-step spans that
// survive travel completion, and renders as Chrome trace-event JSON for
// chrome://tracing / Perfetto ("load trace.json").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/types.h"

namespace gt::engine {

struct TravelTrace {
  TravelId travel = 0;
  EngineMode mode = EngineMode::kGraphTrek;
  ServerId coordinator = 0;
  bool ok = false;
  uint64_t started_us = 0;   // submission accepted at the coordinator
  uint64_t finished_us = 0;  // completion streamed to the client
  uint64_t total_created = 0;
  uint64_t total_terminated = 0;
  uint64_t result_count = 0;

  // One span per traversal step: the window between the first execution
  // creation observed for the step and the last event that touched it.
  struct StepSpan {
    uint64_t first_event_us = 0;
    uint64_t last_event_us = 0;
    uint64_t created = 0;
    uint64_t terminated = 0;
  };
  std::vector<StepSpan> steps;  // index = step
};

// Chrome trace-event JSON: {"traceEvents": [...]} with one "ph":"X"
// (complete) event for the whole travel (tid 0) and one per step span
// (tid = step + 1); pid distinguishes travels when several are combined.
std::string ToChromeTraceJson(const TravelTrace& trace);
std::string ToChromeTraceJson(const std::vector<TravelTrace>& traces);

}  // namespace gt::engine
