// Engine protocol types: identifiers, frontier entries and the payload
// encodings for every engine message (async hand-offs, tracing events,
// result returns and the synchronous control plane).
//
// rtn() attribution model
// -----------------------
// Each frontier entry carries `parents`: the vertices of the PREVIOUS step
// (on the sending server) whose edge expansion produced this entry. Answers
// flow back up the execution tree: a child execution answers its parent
// with the subset of parent vertices that have at least one path reaching
// the end of the chain. Every execution translates child answers into (a)
// reach values for its own vertices (memoized in the traversal-affiliate
// cache) and (b) an answer to its own parent. rtn-marked steps emit their
// reached vertices as result values which ride the answers up to the
// coordinator. This generalizes the paper's "change the reporting
// destination" relay (Fig. 4) to exact per-vertex attribution.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/codec.h"
#include "src/common/status.h"
#include "src/graph/encoding.h"

namespace gt::engine {

using TravelId = uint64_t;
using ExecId = uint64_t;
using ServerId = uint32_t;

inline ExecId MakeExecId(ServerId server, uint64_t seq) {
  return (static_cast<uint64_t>(server) << 40) | (seq & ((1ULL << 40) - 1));
}
inline ServerId ExecServer(ExecId id) { return static_cast<ServerId>(id >> 40); }

// Engine variants under evaluation (paper Section VII).
enum class EngineMode : uint8_t {
  kSync = 0,       // Sync-GT: level-synchronous, coordinator barrier per step
  kAsyncPlain = 1, // Async-GT: asynchronous, no cache absorption / merging / priority
  kGraphTrek = 2,  // GraphTrek: async + traversal-affiliate cache + sched/merge
};

inline const char* EngineModeName(EngineMode m) {
  switch (m) {
    case EngineMode::kSync: return "Sync-GT";
    case EngineMode::kAsyncPlain: return "Async-GT";
    case EngineMode::kGraphTrek: return "GraphTrek";
  }
  return "?";
}

// Admission-control priority class carried on every submit. Coordinators
// keep a bounded in-flight table per class; over-limit submits are rejected
// with Unavailable and the client backs off and retries.
enum class TravelClass : uint8_t {
  kInteractive = 0,  // user-facing point/short traversals, small quota
  kNormal = 1,       // default
  kBatch = 2,        // bulk/analytics travels, large quota
};
inline constexpr uint32_t kNumTravelClasses = 3;

inline const char* TravelClassName(TravelClass c) {
  switch (c) {
    case TravelClass::kInteractive: return "interactive";
    case TravelClass::kNormal: return "normal";
    case TravelClass::kBatch: return "batch";
  }
  return "?";
}

// Reconstructs a Status from a wire (code, message) pair; out-of-range
// codes collapse to Internal rather than trusting the peer.
inline Status StatusFromWire(uint8_t code, std::string msg) {
  if (code == 0) return Status::OK();
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Internal(std::move(msg));
  }
  return Status(static_cast<StatusCode>(code), std::move(msg));
}

// One frontier vertex plus the previous-step vertices that produced it.
struct FrontierEntry {
  graph::VertexId vid = 0;
  std::vector<graph::VertexId> parents;

  bool operator==(const FrontierEntry& o) const {
    return vid == o.vid && parents == o.parents;
  }
};

inline void EncodeEntries(std::string* out, const std::vector<FrontierEntry>& entries) {
  PutVarint32(out, static_cast<uint32_t>(entries.size()));
  for (const auto& e : entries) {
    PutVarint64(out, e.vid);
    PutVarint32(out, static_cast<uint32_t>(e.parents.size()));
    for (auto p : e.parents) PutVarint64(out, p);
  }
}

inline bool DecodeEntries(CheckedReader* dec, std::vector<FrontierEntry>* out) {
  uint32_t n = 0;
  // Every entry costs at least 2 bytes (vid varint + parent count varint),
  // so GetCount bounds a hostile count before the reserve.
  if (!dec->GetCount(&n, 2)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    FrontierEntry e;
    uint32_t np = 0;
    if (!dec->GetVarint64(&e.vid) || !dec->GetCount(&np)) return false;
    e.parents.reserve(np);
    for (uint32_t j = 0; j < np; j++) {
      uint64_t p;
      if (!dec->GetVarint64(&p)) return false;
      e.parents.push_back(p);
    }
    out->push_back(std::move(e));
  }
  return true;
}

inline void EncodeVidList(std::string* out, const std::vector<graph::VertexId>& vids) {
  PutVarint32(out, static_cast<uint32_t>(vids.size()));
  for (auto v : vids) PutVarint64(out, v);
}

inline bool DecodeVidList(CheckedReader* dec, std::vector<graph::VertexId>* out) {
  uint32_t n = 0;
  if (!dec->GetCount(&n)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    uint64_t v;
    if (!dec->GetVarint64(&v)) return false;
    out->push_back(v);
  }
  return true;
}

// Length-prefixed string list (group values riding beside result vids).
inline void EncodeStringList(std::string* out, const std::vector<std::string>& strs) {
  PutVarint32(out, static_cast<uint32_t>(strs.size()));
  for (const auto& s : strs) PutLengthPrefixed(out, s);
}

inline bool DecodeStringList(CheckedReader* dec, std::vector<std::string>* out) {
  uint32_t n = 0;
  if (!dec->GetCount(&n)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    std::string_view s;
    if (!dec->GetLengthPrefixed(&s)) return false;
    out->emplace_back(s);
  }
  return true;
}

// Vertex-chain list (kPaths results: each inner list is one visited chain).
inline void EncodePathList(std::string* out,
                           const std::vector<std::vector<graph::VertexId>>& paths) {
  PutVarint32(out, static_cast<uint32_t>(paths.size()));
  for (const auto& p : paths) EncodeVidList(out, p);
}

inline bool DecodePathList(CheckedReader* dec,
                           std::vector<std::vector<graph::VertexId>>* out) {
  uint32_t n = 0;
  if (!dec->GetCount(&n)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    std::vector<graph::VertexId> p;
    if (!DecodeVidList(dec, &p)) return false;
    out->push_back(std::move(p));
  }
  return true;
}

// --- kSubmitTraversal (client -> coordinator) ------------------------------

struct SubmitPayload {
  uint8_t mode = 0;           // EngineMode
  uint32_t timeout_ms = 0;    // failure-detection timeout (0 = default)
  std::string plan;           // TraversalPlan::Encode()
  // Lifecycle extension (decode tolerates its absence for old encoders):
  uint8_t priority_class =    // TravelClass, admission-control quota bucket
      static_cast<uint8_t>(TravelClass::kNormal);
  uint32_t deadline_ms = 0;   // end-to-end deadline enforced by the
                              // coordinator's maintenance tick (0 = none)

  std::string Encode() const {
    std::string out;
    out.push_back(static_cast<char>(mode));
    PutVarint32(&out, timeout_ms);
    PutLengthPrefixed(&out, plan);
    out.push_back(static_cast<char>(priority_class));
    PutVarint32(&out, deadline_ms);
    return out;
  }
  static Result<SubmitPayload> Decode(std::string_view data) {
    SubmitPayload p;
    CheckedReader dec(data);
    std::string_view plan;
    if (!dec.GetByte(&p.mode) || !dec.GetVarint32(&p.timeout_ms) ||
        !dec.GetLengthPrefixed(&plan)) {
      return Status::Corruption("bad submit payload");
    }
    p.plan.assign(plan);
    if (!dec.empty()) {
      if (!dec.GetByte(&p.priority_class) || !dec.GetVarint32(&p.deadline_ms)) {
        return Status::Corruption("bad submit lifecycle tail");
      }
      if (p.priority_class >= kNumTravelClasses) {
        p.priority_class = static_cast<uint8_t>(TravelClass::kNormal);
      }
    }
    return p;
  }
};

// --- kTraverse (server -> server) ------------------------------------------

struct TraversePayload {
  TravelId travel_id = 0;
  uint32_t step = 0;      // step index of the entries' working set
  ExecId exec_id = 0;     // id of the execution created at the receiver
  ExecId parent_exec = 0;
  ServerId parent_server = 0;
  ServerId coordinator = 0;
  uint8_t mode = 0;           // EngineMode (async variants)
  uint8_t scan_start = 0;     // step-0 request: scan the local type index
  // Included on every hand-off (plans are small). A view, not a copy: on
  // decode it aliases the message payload (kTraverse is the hot frame, and
  // the receiver only reads the plan on the travel's first frame), so the
  // decoded payload is only valid while the backing message/buffer lives.
  std::string_view plan;
  std::vector<FrontierEntry> entries;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, travel_id);
    PutVarint32(&out, step);
    PutVarint64(&out, exec_id);
    PutVarint64(&out, parent_exec);
    PutVarint32(&out, parent_server);
    PutVarint32(&out, coordinator);
    out.push_back(static_cast<char>(mode));
    out.push_back(static_cast<char>(scan_start));
    PutLengthPrefixed(&out, plan);
    EncodeEntries(&out, entries);
    return out;
  }
  static Result<TraversePayload> Decode(std::string_view data) {
    TraversePayload p;
    CheckedReader dec(data);
    std::string_view plan;
    if (!dec.GetVarint64(&p.travel_id) || !dec.GetVarint32(&p.step) ||
        !dec.GetVarint64(&p.exec_id) || !dec.GetVarint64(&p.parent_exec) ||
        !dec.GetVarint32(&p.parent_server) || !dec.GetVarint32(&p.coordinator) ||
        !dec.GetByte(&p.mode) || !dec.GetByte(&p.scan_start) ||
        !dec.GetLengthPrefixed(&plan) || !DecodeEntries(&dec, &p.entries)) {
      return Status::Corruption("bad traverse payload");
    }
    p.plan = plan;  // zero-copy: aliases `data`
    return p;
  }
};

// --- kReturnVertices (execution answer, child -> parent / -> coordinator) --

struct AnswerPayload {
  TravelId travel_id = 0;
  ExecId exec_id = 0;         // the answering execution
  ExecId parent_exec = 0;     // destination execution
  std::vector<graph::VertexId> reached_parents;  // parent vids with a live path
  std::vector<graph::VertexId> result_vids;      // rtn/final results, pass-through
  // Result-mode extension (decode tolerates its absence for old encoders;
  // legacy plans encode no tail, so their frames stay byte-identical):
  std::vector<std::string> result_values;  // kGroup: value per result vid
  std::vector<std::vector<graph::VertexId>> result_paths;  // kPaths chains

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, travel_id);
    PutVarint64(&out, exec_id);
    PutVarint64(&out, parent_exec);
    EncodeVidList(&out, reached_parents);
    EncodeVidList(&out, result_vids);
    if (!result_values.empty() || !result_paths.empty()) {
      EncodeStringList(&out, result_values);
      EncodePathList(&out, result_paths);
    }
    return out;
  }
  static Result<AnswerPayload> Decode(std::string_view data) {
    AnswerPayload p;
    CheckedReader dec(data);
    if (!dec.GetVarint64(&p.travel_id) || !dec.GetVarint64(&p.exec_id) ||
        !dec.GetVarint64(&p.parent_exec) || !DecodeVidList(&dec, &p.reached_parents) ||
        !DecodeVidList(&dec, &p.result_vids)) {
      return Status::Corruption("bad answer payload");
    }
    if (!dec.empty()) {
      if (!DecodeStringList(&dec, &p.result_values) ||
          !DecodePathList(&dec, &p.result_paths)) {
        return Status::Corruption("bad answer result tail");
      }
      // Group values ride one-per-result-vid; anything else is corrupt.
      if (!p.result_values.empty() && p.result_values.size() != p.result_vids.size()) {
        return Status::Corruption("answer result_values/result_vids mismatch");
      }
    }
    return p;
  }
};

// --- kExecCreated / kExecTerminated (server -> coordinator tracing) --------

struct ExecEventPayload {
  TravelId travel_id = 0;
  uint32_t step = 0;
  std::vector<ExecId> exec_ids;  // created: may be several; terminated: one
  // kExecDispatched: the execution reporting its own termination alongside
  // the creation of its children (exec_ids, at `step`).
  ExecId term_exec = 0;
  uint32_t term_step = 0;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, travel_id);
    PutVarint32(&out, step);
    PutVarint32(&out, static_cast<uint32_t>(exec_ids.size()));
    for (auto id : exec_ids) PutVarint64(&out, id);
    PutVarint64(&out, term_exec);
    PutVarint32(&out, term_step);
    return out;
  }
  static Result<ExecEventPayload> Decode(std::string_view data) {
    ExecEventPayload p;
    CheckedReader dec(data);
    uint32_t n = 0;
    if (!dec.GetVarint64(&p.travel_id) || !dec.GetVarint32(&p.step) || !dec.GetCount(&n)) {
      return Status::Corruption("bad exec event payload");
    }
    p.exec_ids.reserve(n);
    for (uint32_t i = 0; i < n; i++) {
      uint64_t id;
      if (!dec.GetVarint64(&id)) return Status::Corruption("bad exec id");
      p.exec_ids.push_back(id);
    }
    if (!dec.GetVarint64(&p.term_exec) || !dec.GetVarint32(&p.term_step)) {
      return Status::Corruption("bad exec event tail");
    }
    return p;
  }
};

// --- kExecDispatched (batched tracing, server -> coordinator) ---------------
// Servers coalesce creation/termination events into small batches to keep
// the coordinator's tracing traffic off the traversal's critical path.

struct TraceItem {
  ExecId exec = 0;
  uint32_t step = 0;
  uint8_t created = 0;  // 1 = creation event, 0 = termination event

  bool operator==(const TraceItem& o) const {
    return exec == o.exec && step == o.step && created == o.created;
  }
};

struct TraceBatchPayload {
  TravelId travel_id = 0;
  std::vector<TraceItem> items;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, travel_id);
    PutVarint32(&out, static_cast<uint32_t>(items.size()));
    for (const auto& it : items) {
      PutVarint64(&out, it.exec);
      PutVarint32(&out, it.step);
      out.push_back(static_cast<char>(it.created));
    }
    return out;
  }
  static Result<TraceBatchPayload> Decode(std::string_view data) {
    TraceBatchPayload p;
    CheckedReader dec(data);
    uint32_t n = 0;
    // 3 = minimum encoded item (exec varint + step varint + created byte).
    if (!dec.GetVarint64(&p.travel_id) || !dec.GetCount(&n, 3)) {
      return Status::Corruption("bad trace batch payload");
    }
    p.items.resize(n);
    for (uint32_t i = 0; i < n; i++) {
      if (!dec.GetVarint64(&p.items[i].exec) || !dec.GetVarint32(&p.items[i].step) ||
          !dec.GetByte(&p.items[i].created)) {
        return Status::Corruption("bad trace item");
      }
    }
    return p;
  }
};

// --- kResultChunk / kTraversalComplete (coordinator -> client) -------------

struct ResultChunkPayload {
  TravelId travel_id = 0;
  std::vector<graph::VertexId> vids;
  // Result-mode extension (decode tolerates its absence; legacy kVertices
  // travels never encode it): group buckets and path chains streamed to the
  // client at completion time.
  std::vector<std::pair<std::string, uint64_t>> groups;  // value -> count
  std::vector<std::vector<graph::VertexId>> paths;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, travel_id);
    EncodeVidList(&out, vids);
    if (!groups.empty() || !paths.empty()) {
      PutVarint32(&out, static_cast<uint32_t>(groups.size()));
      for (const auto& [value, count] : groups) {
        PutLengthPrefixed(&out, value);
        PutVarint64(&out, count);
      }
      EncodePathList(&out, paths);
    }
    return out;
  }
  static Result<ResultChunkPayload> Decode(std::string_view data) {
    ResultChunkPayload p;
    CheckedReader dec(data);
    if (!dec.GetVarint64(&p.travel_id) || !DecodeVidList(&dec, &p.vids)) {
      return Status::Corruption("bad result chunk");
    }
    if (!dec.empty()) {
      uint32_t n = 0;
      // 2 = minimum encoded bucket (empty length-prefixed value + count).
      if (!dec.GetCount(&n, 2)) return Status::Corruption("bad result chunk groups");
      p.groups.reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        std::string_view value;
        uint64_t count = 0;
        if (!dec.GetLengthPrefixed(&value) || !dec.GetVarint64(&count)) {
          return Status::Corruption("bad result chunk group");
        }
        p.groups.emplace_back(std::string(value), count);
      }
      if (!DecodePathList(&dec, &p.paths)) {
        return Status::Corruption("bad result chunk paths");
      }
    }
    return p;
  }
};

struct CompletePayload {
  TravelId travel_id = 0;
  uint8_t ok = 1;
  std::string error;
  uint64_t total_results = 0;
  // StatusCode of the completion (decode tolerates its absence: old
  // encoders map ok=0 to Aborted, the historical client interpretation).
  uint8_t code = 0;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, travel_id);
    out.push_back(static_cast<char>(ok));
    PutLengthPrefixed(&out, error);
    PutVarint64(&out, total_results);
    out.push_back(static_cast<char>(code));
    return out;
  }
  static Result<CompletePayload> Decode(std::string_view data) {
    CompletePayload p;
    CheckedReader dec(data);
    std::string_view err;
    if (!dec.GetVarint64(&p.travel_id) || !dec.GetByte(&p.ok) ||
        !dec.GetLengthPrefixed(&err) || !dec.GetVarint64(&p.total_results)) {
      return Status::Corruption("bad complete payload");
    }
    p.error.assign(err);
    p.code = p.ok != 0 ? 0 : static_cast<uint8_t>(StatusCode::kAborted);
    if (!dec.empty()) {
      if (!dec.GetByte(&p.code)) return Status::Corruption("bad complete code");
    }
    return p;
  }
};

// --- kAbortTraversal (any -> any) -------------------------------------------
// kCleanup: completion broadcast from the coordinator; receivers drop the
// travel's local state. kCancel: a client (or operator) asks the travel's
// coordinator to abandon a live travel — the coordinator completes it as
// Aborted, which fans the kCleanup broadcast out to every server.

struct AbortPayload {
  enum Reason : uint8_t { kCleanup = 0, kCancel = 1 };

  TravelId travel_id = 0;
  uint8_t reason = kCleanup;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, travel_id);
    out.push_back(static_cast<char>(reason));
    return out;
  }
  static Result<AbortPayload> Decode(std::string_view data) {
    AbortPayload p;
    CheckedReader dec(data);
    if (!dec.GetVarint64(&p.travel_id)) return Status::Corruption("bad abort payload");
    if (!dec.empty()) {
      // Legacy frames carry the bare travel id (implicit kCleanup).
      if (!dec.GetByte(&p.reason)) return Status::Corruption("bad abort reason");
    }
    return p;
  }
};

// --- kProgressReply (coordinator -> client) ---------------------------------
// Per-step count of unfinished traversal executions, the paper's progress
// estimate ("the count of current unfinished traversal executions in each
// step can still help users estimate the remaining work").

struct ProgressPayload {
  TravelId travel_id = 0;
  std::vector<uint32_t> unfinished_per_step;
  uint64_t total_created = 0;
  uint64_t total_terminated = 0;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, travel_id);
    PutVarint32(&out, static_cast<uint32_t>(unfinished_per_step.size()));
    for (auto c : unfinished_per_step) PutVarint32(&out, c);
    PutVarint64(&out, total_created);
    PutVarint64(&out, total_terminated);
    return out;
  }
  static Result<ProgressPayload> Decode(std::string_view data) {
    ProgressPayload p;
    CheckedReader dec(data);
    uint32_t n = 0;
    if (!dec.GetVarint64(&p.travel_id) || !dec.GetCount(&n)) {
      return Status::Corruption("bad progress payload");
    }
    p.unfinished_per_step.resize(n);
    for (uint32_t i = 0; i < n; i++) {
      if (!dec.GetVarint32(&p.unfinished_per_step[i])) {
        return Status::Corruption("bad progress count");
      }
    }
    if (!dec.GetVarint64(&p.total_created) || !dec.GetVarint64(&p.total_terminated)) {
      return Status::Corruption("bad progress totals");
    }
    return p;
  }
};

// --- synchronous engine control plane ---------------------------------------

struct SyncStepPayload {
  TravelId travel_id = 0;
  uint32_t step = 0;
  uint8_t phase = 0;  // 0 = forward, 1 = backward (rtn resolution)
  // kSyncStepStart at step 0 carries the plan and the scan flag.
  uint8_t scan_start = 0;
  std::string plan;
  // kSyncStepDone: number of batches this server sent to each server.
  std::vector<uint32_t> batches_sent;
  // kSyncStepStart: number of batches the receiver should expect.
  uint32_t batches_expected = 0;
  // kSyncStepDone: local result vids discovered this step (final/rtn).
  std::vector<graph::VertexId> result_vids;
  // Result-mode extension (decode tolerates its absence; legacy plans never
  // encode it): group values parallel to result_vids, path chains.
  std::vector<std::string> result_values;
  std::vector<std::vector<graph::VertexId>> result_paths;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, travel_id);
    PutVarint32(&out, step);
    out.push_back(static_cast<char>(phase));
    out.push_back(static_cast<char>(scan_start));
    PutLengthPrefixed(&out, plan);
    PutVarint32(&out, static_cast<uint32_t>(batches_sent.size()));
    for (auto c : batches_sent) PutVarint32(&out, c);
    PutVarint32(&out, batches_expected);
    EncodeVidList(&out, result_vids);
    if (!result_values.empty() || !result_paths.empty()) {
      EncodeStringList(&out, result_values);
      EncodePathList(&out, result_paths);
    }
    return out;
  }
  static Result<SyncStepPayload> Decode(std::string_view data) {
    SyncStepPayload p;
    CheckedReader dec(data);
    std::string_view plan;
    uint32_t n = 0;
    if (!dec.GetVarint64(&p.travel_id) || !dec.GetVarint32(&p.step) ||
        !dec.GetByte(&p.phase) || !dec.GetByte(&p.scan_start) ||
        !dec.GetLengthPrefixed(&plan) || !dec.GetCount(&n)) {
      return Status::Corruption("bad sync step payload");
    }
    p.plan.assign(plan);
    p.batches_sent.resize(n);
    for (uint32_t i = 0; i < n; i++) {
      if (!dec.GetVarint32(&p.batches_sent[i])) return Status::Corruption("bad batch count");
    }
    if (!dec.GetVarint32(&p.batches_expected) || !DecodeVidList(&dec, &p.result_vids)) {
      return Status::Corruption("bad sync step tail");
    }
    if (!dec.empty()) {
      if (!DecodeStringList(&dec, &p.result_values) ||
          !DecodePathList(&dec, &p.result_paths)) {
        return Status::Corruption("bad sync step result tail");
      }
      if (!p.result_values.empty() && p.result_values.size() != p.result_vids.size()) {
        return Status::Corruption("sync step result_values/result_vids mismatch");
      }
    }
    return p;
  }
};

// Frontier batch between servers in the synchronous engine. In the forward
// phase entries are next-step candidates; in the backward phase `entries`
// carries (vid, {}) pairs naming alive vertices owned by the receiver's
// forward expansion.
struct SyncBatchPayload {
  TravelId travel_id = 0;
  uint32_t step = 0;  // step of the entries' working set
  uint8_t phase = 0;
  std::vector<FrontierEntry> entries;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, travel_id);
    PutVarint32(&out, step);
    out.push_back(static_cast<char>(phase));
    EncodeEntries(&out, entries);
    return out;
  }
  static Result<SyncBatchPayload> Decode(std::string_view data) {
    SyncBatchPayload p;
    CheckedReader dec(data);
    if (!dec.GetVarint64(&p.travel_id) || !dec.GetVarint32(&p.step) ||
        !dec.GetByte(&p.phase) || !DecodeEntries(&dec, &p.entries)) {
      return Status::Corruption("bad sync batch payload");
    }
    return p;
  }
};

}  // namespace gt::engine
