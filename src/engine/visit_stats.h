// Per-server visit statistics — the three counters instrumented for the
// paper's Fig. 7:
//   redundant visits - repeated (travel, step, vertex) requests absorbed by
//                      the traversal-affiliate cache (GraphTrek) or paid as
//                      duplicate I/O (Async-GT)
//   combined visits  - requests folded into another vertex access by
//                      execution merging
//   real I/O visits  - vertex accesses that reached the storage backend
// The sum equals the total vertex requests the server received.
//
// Received visits are additionally bucketed by traversal step (steps at or
// beyond kMaxTrackedSteps fold into the last slot) so the registry can show
// where in a traversal the visit volume concentrates.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace gt::engine {

struct VisitStats {
  static constexpr uint32_t kMaxTrackedSteps = 16;

  std::atomic<uint64_t> received{0};
  std::atomic<uint64_t> redundant{0};
  std::atomic<uint64_t> combined{0};
  std::atomic<uint64_t> real_io{0};
  // Whole hand-off frames absorbed because their exec id was already
  // delivered once (duplicating transports); not part of the visit sum.
  std::atomic<uint64_t> duplicate_frames{0};
  std::atomic<uint64_t> per_step[kMaxTrackedSteps] = {};

  void AddStep(uint32_t step, uint64_t n = 1) {
    per_step[step < kMaxTrackedSteps ? step : kMaxTrackedSteps - 1].fetch_add(
        n, std::memory_order_relaxed);
  }

  void Reset() {
    received = redundant = combined = real_io = duplicate_frames = 0;
    for (auto& s : per_step) s = 0;
  }

  struct Snapshot {
    uint64_t received = 0;
    uint64_t redundant = 0;
    uint64_t combined = 0;
    uint64_t real_io = 0;
    std::array<uint64_t, kMaxTrackedSteps> per_step = {};
  };

  Snapshot Read() const {
    Snapshot s{received.load(), redundant.load(), combined.load(), real_io.load(), {}};
    for (uint32_t i = 0; i < kMaxTrackedSteps; i++) s.per_step[i] = per_step[i].load();
    return s;
  }

  std::string ToString() const {
    auto s = Read();
    return "received=" + std::to_string(s.received) + " redundant=" + std::to_string(s.redundant) +
           " combined=" + std::to_string(s.combined) + " real_io=" + std::to_string(s.real_io);
  }
};

}  // namespace gt::engine
