// Per-server visit statistics — the three counters instrumented for the
// paper's Fig. 7:
//   redundant visits - repeated (travel, step, vertex) requests absorbed by
//                      the traversal-affiliate cache (GraphTrek) or paid as
//                      duplicate I/O (Async-GT)
//   combined visits  - requests folded into another vertex access by
//                      execution merging
//   real I/O visits  - vertex accesses that reached the storage backend
// The sum equals the total vertex requests the server received.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace gt::engine {

struct VisitStats {
  std::atomic<uint64_t> received{0};
  std::atomic<uint64_t> redundant{0};
  std::atomic<uint64_t> combined{0};
  std::atomic<uint64_t> real_io{0};

  void Reset() { received = redundant = combined = real_io = 0; }

  struct Snapshot {
    uint64_t received = 0;
    uint64_t redundant = 0;
    uint64_t combined = 0;
    uint64_t real_io = 0;
  };

  Snapshot Read() const {
    return Snapshot{received.load(), redundant.load(), combined.load(), real_io.load()};
  }

  std::string ToString() const {
    auto s = Read();
    return "received=" + std::to_string(s.received) + " redundant=" + std::to_string(s.redundant) +
           " combined=" + std::to_string(s.combined) + " real_io=" + std::to_string(s.real_io);
  }
};

}  // namespace gt::engine
