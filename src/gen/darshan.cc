#include "src/gen/darshan.h"

namespace gt::gen {

graph::RefGraph DarshanGenerator::Build(graph::Catalog* catalog) {
  graph::RefGraph g;
  stats_ = DarshanStats{};

  const graph::LabelId user_t = catalog->Intern("User");
  const graph::LabelId job_t = catalog->Intern("Job");
  const graph::LabelId exec_t = catalog->Intern("Execution");
  const graph::LabelId file_t = catalog->Intern("File");

  const graph::LabelId run_e = catalog->Intern("run");
  const graph::LabelId has_exec_e = catalog->Intern("hasExecutions");
  const graph::LabelId exe_e = catalog->Intern("exe");
  const graph::LabelId read_e = catalog->Intern("read");
  const graph::LabelId read_by_e = catalog->Intern("readBy");
  const graph::LabelId write_e = catalog->Intern("write");

  const auto name_k = catalog->Intern("name");
  const auto ts_k = catalog->Intern("ts");
  const auto size_k = catalog->Intern("size");
  const auto params_k = catalog->Intern("params");
  const auto write_size_k = catalog->Intern("writeSize");

  graph::VertexId next = 0;

  // Users.
  std::vector<graph::VertexId> users(cfg_.users);
  for (uint32_t u = 0; u < cfg_.users; u++) {
    graph::VertexRecord v;
    v.id = next++;
    v.label = user_t;
    v.props.Set(name_k, graph::PropValue("user-" + std::to_string(u)));
    users[u] = v.id;
    g.AddVertex(std::move(v));
    stats_.users++;
  }

  // Files (popularity is Zipf over this pool).
  std::vector<graph::VertexId> files(cfg_.files);
  for (uint32_t f = 0; f < cfg_.files; f++) {
    graph::VertexRecord v;
    v.id = next++;
    v.label = file_t;
    v.props.Set(name_k, graph::PropValue("/proj/data/file-" + std::to_string(f) +
                                         (f % 7 == 0 ? ".txt" : ".dat")));
    v.props.Set(size_k, graph::PropValue(static_cast<int64_t>(rng_.Uniform(1u << 30))));
    files[f] = v.id;
    g.AddVertex(std::move(v));
    stats_.files++;
  }

  auto pick_file = [&] { return files[rng_.Zipf(files.size(), cfg_.zipf_s)]; };

  auto add_edge = [&](graph::VertexId src, graph::LabelId label, graph::VertexId dst,
                      graph::PropMap props) {
    graph::EdgeRecord e;
    e.src = src;
    e.label = label;
    e.dst = dst;
    e.props = std::move(props);
    // AddEdge upserts on (src, label, dst) — an execution re-reading the
    // same hot file collapses to one resident edge, and stats_ counts what
    // is actually resident, not the raw event stream.
    if (g.AddEdge(std::move(e))) stats_.edges++;
  };

  // Jobs, executions and file accesses. User activity is skewed: a handful
  // of power users own most jobs (as on a production machine).
  for (uint32_t u = 0; u < cfg_.users; u++) {
    const uint32_t jobs =
        1 + static_cast<uint32_t>(rng_.Zipf(cfg_.jobs_per_user_max, 1.0));
    for (uint32_t j = 0; j < jobs; j++) {
      graph::VertexRecord job;
      job.id = next++;
      job.label = job_t;
      const int64_t job_ts = RandomTs();
      job.props.Set(ts_k, graph::PropValue(job_ts));
      const graph::VertexId job_vid = job.id;
      g.AddVertex(std::move(job));
      stats_.jobs++;

      graph::PropMap run_props;
      run_props.Set(ts_k, graph::PropValue(job_ts));
      add_edge(users[u], run_e, job_vid, std::move(run_props));

      const uint32_t execs =
          1 + static_cast<uint32_t>(rng_.Zipf(cfg_.execs_per_job_max, 1.2));
      for (uint32_t x = 0; x < execs; x++) {
        graph::VertexRecord exec;
        exec.id = next++;
        exec.label = exec_t;
        exec.props.Set(params_k,
                       graph::PropValue("-n " + std::to_string(1u << rng_.Uniform(12))));
        const graph::VertexId exec_vid = exec.id;
        g.AddVertex(std::move(exec));
        stats_.executions++;

        add_edge(job_vid, has_exec_e, exec_vid, {});
        add_edge(exec_vid, exe_e, pick_file(), {});

        const uint32_t reads = static_cast<uint32_t>(rng_.Uniform(cfg_.reads_per_exec_max + 1));
        for (uint32_t r = 0; r < reads; r++) {
          const graph::VertexId file = pick_file();
          graph::PropMap rp;
          rp.Set(ts_k, graph::PropValue(job_ts + static_cast<int64_t>(rng_.Uniform(3600))));
          add_edge(exec_vid, read_e, file, rp);
          add_edge(file, read_by_e, exec_vid, std::move(rp));
        }

        const uint32_t writes =
            static_cast<uint32_t>(rng_.Uniform(cfg_.writes_per_exec_max + 1));
        for (uint32_t w = 0; w < writes; w++) {
          graph::PropMap wp;
          wp.Set(ts_k, graph::PropValue(job_ts + static_cast<int64_t>(rng_.Uniform(3600))));
          wp.Set(write_size_k,
                 graph::PropValue(static_cast<int64_t>(rng_.Uniform(1u << 24))));
          add_edge(exec_vid, write_e, pick_file(), std::move(wp));
        }
      }
    }
  }
  return g;
}

}  // namespace gt::gen
