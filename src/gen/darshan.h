// Synthetic Darshan-style rich-metadata graph generator.
//
// The paper builds its real-world graph from one year of Darshan I/O traces
// from the Intrepid supercomputer (Table II: 177 users, 47.6K jobs, 123.4M
// executions, 34.6M files, 239.8M edges) — data we do not have. This
// generator produces a heterogeneous property graph with the same schema,
// edge vocabulary and power-law access skew, scaled by configuration:
//
//   user --run{ts}--> job --hasExecutions--> execution
//   execution --exe--> file (executable)
//   execution --read{ts}--> file      file --readBy{ts}--> execution
//   execution --write{ts,writeSize}--> file
//
// File popularity is Zipf-distributed (a few hot shared files, a long tail),
// matching the small-world/power-law structure reported for the real graph.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/graph/catalog.h"
#include "src/graph/ref_graph.h"

namespace gt::gen {

struct DarshanConfig {
  uint32_t users = 64;
  uint32_t jobs_per_user_max = 48;      // per-user job counts are Zipf-skewed
  uint32_t execs_per_job_max = 12;
  uint32_t files = 8192;
  uint32_t reads_per_exec_max = 6;
  uint32_t writes_per_exec_max = 3;
  double zipf_s = 1.1;                  // file-popularity skew
  int64_t ts_begin = 1356998400;        // 2013-01-01 UTC
  int64_t ts_end = 1388534400;          // 2014-01-01 UTC
  uint64_t seed = 42;
};

struct DarshanStats {
  uint64_t users = 0;
  uint64_t jobs = 0;
  uint64_t executions = 0;
  uint64_t files = 0;
  uint64_t edges = 0;
};

class DarshanGenerator {
 public:
  explicit DarshanGenerator(DarshanConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

  graph::RefGraph Build(graph::Catalog* catalog);

  const DarshanStats& stats() const { return stats_; }
  const DarshanConfig& config() const { return cfg_; }

  // Vertex-id layout helpers (ids are assigned in contiguous ranges).
  graph::VertexId UserVid(uint32_t i) const { return i; }
  graph::VertexId FileVid(uint32_t i) const { return cfg_.users + i; }
  // Jobs and executions follow; exact ids are data-dependent.

 private:
  int64_t RandomTs() {
    return cfg_.ts_begin +
           static_cast<int64_t>(rng_.Uniform(
               static_cast<uint64_t>(cfg_.ts_end - cfg_.ts_begin)));
  }

  DarshanConfig cfg_;
  Rng rng_;
  DarshanStats stats_;
};

}  // namespace gt::gen
