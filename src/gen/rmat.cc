#include "src/gen/rmat.h"

#include <unordered_set>

namespace gt::gen {

graph::RefGraph RmatGenerator::Build(graph::Catalog* catalog,
                                     const std::string& vertex_type,
                                     const std::string& edge_label) {
  graph::RefGraph g;
  const uint64_t n = 1ull << cfg_.scale;
  const uint64_t m = n * cfg_.avg_degree;

  const graph::LabelId vtype = catalog->Intern(vertex_type);
  const graph::LabelId elabel = catalog->Intern(edge_label);
  const graph::Catalog::Id attr_key = catalog->Intern("attr");
  const graph::Catalog::Id weight_key = catalog->Intern("weight");

  for (uint64_t vid = 0; vid < n; vid++) {
    graph::VertexRecord v;
    v.id = vid;
    v.label = vtype;
    if (cfg_.attr_bytes > 0) v.props.Set(attr_key, graph::PropValue(RandomAttr()));
    g.AddVertex(std::move(v));
  }

  // RefGraph (like the KV stores) upserts on (src, label, dst), so repeated
  // samples cannot become parallel edges. Resample collisions so the graph
  // really contains the requested n * avg_degree distinct edges; with
  // dedup_edges the duplicate is dropped instead (fewer edges). The retry
  // cap only matters for degenerate configs where the quadrant skew makes a
  // handful of pairs absorb most of the mass.
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < m; i++) {
    auto [src, dst] = SampleEdge();
    uint64_t key = (src << cfg_.scale) | dst;
    if (cfg_.dedup_edges) {
      if (!seen.insert(key).second) continue;
    } else {
      int retries = 0;
      while (!seen.insert(key).second && ++retries <= 64) {
        std::tie(src, dst) = SampleEdge();
        key = (src << cfg_.scale) | dst;
      }
      if (retries > 64) continue;  // saturated hot pair; give up on this edge
    }
    graph::EdgeRecord e;
    e.src = src;
    e.label = elabel;
    e.dst = dst;
    e.props.Set(weight_key, graph::PropValue(static_cast<int64_t>(rng_.Uniform(1000))));
    if (cfg_.attr_bytes > 0) e.props.Set(attr_key, graph::PropValue(RandomAttr()));
    g.AddEdge(std::move(e));
  }
  return g;
}

}  // namespace gt::gen
