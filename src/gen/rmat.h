// RMAT graph generator (Chakrabarti, Zhan, Faloutsos — "R-MAT: A Recursive
// Model for Graph Mining"). Generates the scale-free synthetic graphs used
// throughout the paper's evaluation: 2^scale vertices, avg out-degree
// `avg_degree`, quadrant probabilities (a, b, c, d); the paper's RMAT-1 uses
// a=0.45, b=0.15, c=0.15, d=0.25 with scale 20 and degree 16, and attaches
// a random 128-byte attribute to every vertex and edge.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/graph/catalog.h"
#include "src/graph/ref_graph.h"

namespace gt::gen {

struct RmatConfig {
  uint32_t scale = 14;          // 2^scale vertices
  uint32_t avg_degree = 16;
  double a = 0.45, b = 0.15, c = 0.15, d = 0.25;
  uint32_t attr_bytes = 128;    // random payload per vertex and edge
  uint64_t seed = 20150901;     // CLUSTER'15 vintage
  bool dedup_edges = false;     // drop repeated (src, dst) pairs instead of
                                // resampling them (yields < n*avg_degree edges)
};

class RmatGenerator {
 public:
  explicit RmatGenerator(RmatConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

  // One RMAT edge sample.
  std::pair<graph::VertexId, graph::VertexId> SampleEdge() {
    uint64_t src = 0;
    uint64_t dst = 0;
    const double ab = cfg_.a + cfg_.b;
    const double abc = ab + cfg_.c;
    for (uint32_t bit = 0; bit < cfg_.scale; bit++) {
      const double r = rng_.NextDouble();
      src <<= 1;
      dst <<= 1;
      if (r < cfg_.a) {
        // top-left quadrant
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    return {src, dst};
  }

  // Builds the full graph (all vertices exist; edges have one label).
  // `edge_label`/`attr_key` are interned via the catalog by the caller.
  graph::RefGraph Build(graph::Catalog* catalog, const std::string& vertex_type = "node",
                        const std::string& edge_label = "link");

  const RmatConfig& config() const { return cfg_; }

 private:
  std::string RandomAttr() {
    std::string s(cfg_.attr_bytes, '\0');
    for (auto& ch : s) ch = static_cast<char>('a' + rng_.Uniform(26));
    return s;
  }

  RmatConfig cfg_;
  Rng rng_;
};

}  // namespace gt::gen
