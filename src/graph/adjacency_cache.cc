#include "src/graph/adjacency_cache.h"

#include <cstring>
#include <utility>

namespace gt::graph {

std::shared_ptr<const AdjacencyRow> AdjacencyRow::Builder::Build() const {
  std::shared_ptr<AdjacencyRow> row(new AdjacencyRow());
  const uint32_t n = static_cast<uint32_t>(dsts_.size());
  row->count_ = n;
  row->source_bytes_ = source_bytes_;
  row->build_seq_ = build_seq_;

  auto* labels = reinterpret_cast<LabelId*>(
      row->arena_.AllocateAligned(n * sizeof(LabelId)));
  auto* dsts = reinterpret_cast<VertexId*>(
      row->arena_.AllocateAligned(n * sizeof(VertexId)));
  auto* off = reinterpret_cast<uint32_t*>(
      row->arena_.AllocateAligned((n + 1) * sizeof(uint32_t)));
  char* props = row->arena_.Allocate(prop_bytes_.size());

  if (n > 0) {
    std::memcpy(labels, labels_.data(), n * sizeof(LabelId));
    std::memcpy(dsts, dsts_.data(), n * sizeof(VertexId));
    std::memcpy(off, prop_off_.data(), n * sizeof(uint32_t));
  }
  off[n] = static_cast<uint32_t>(prop_bytes_.size());
  if (!prop_bytes_.empty()) {
    std::memcpy(props, prop_bytes_.data(), prop_bytes_.size());
  }

  row->labels_ = labels;
  row->dsts_ = dsts;
  row->prop_off_ = off;
  row->prop_bytes_ = props;
  return row;
}

AdjacencyCache::AdjacencyCache(AdjacencyCacheOptions opts)
    : opts_(opts),
      num_shards_(opts.shards > 0 ? static_cast<size_t>(opts.shards) : 1),
      per_shard_capacity_(opts.capacity_bytes / num_shards_),
      shard_(std::make_unique<Shard[]>(num_shards_)) {
  metrics::Labels labels{{"server", std::to_string(opts_.server_id)}};
  auto* reg = metrics::Registry::Default();
  hits_ = reg->GetCounter("gt_graph_adj_hits_total", labels,
                          "Adjacency cache row lookups served from memory");
  misses_ = reg->GetCounter("gt_graph_adj_misses_total", labels,
                            "Adjacency cache lookups that fell through to the KV store");
  evictions_ = reg->GetCounter("gt_graph_adj_evictions_total", labels,
                               "Adjacency cache rows evicted under byte pressure");
  builds_ = reg->GetCounter("gt_graph_adj_builds_total", labels,
                            "CSR rows built from KV scans");
  bytes_ = reg->GetGauge("gt_graph_adj_bytes", labels,
                         "Resident adjacency cache bytes");
  build_us_ = reg->GetHistogram(
      "gt_graph_adj_build_us", labels,
      {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000},
      "CSR row build latency in microseconds");
}

std::shared_ptr<const AdjacencyRow> AdjacencyCache::Lookup(VertexId src,
                                                           LabelId label,
                                                           bool count_miss) {
  Shard& s = ShardFor(src);
  MutexLock l(&s.mu);
  auto it = s.rows.find(RowKey{src, label});
  if (it == s.rows.end()) {
    if (count_miss) misses_->Inc();
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second.lru_pos);
  hits_->Inc();
  return it->second.row;
}

uint64_t AdjacencyCache::BeginBuild(VertexId src) {
  Shard& s = ShardFor(src);
  MutexLock l(&s.mu);
  return s.gen;
}

void AdjacencyCache::Insert(VertexId src, LabelId label,
                            std::shared_ptr<const AdjacencyRow> row,
                            uint64_t token) {
  if (opts_.capacity_bytes == 0 || row == nullptr) return;
  const size_t charge = row->charge();
  Shard& s = ShardFor(src);
  MutexLock l(&s.mu);
  if (s.gen != token) return;  // invalidated while building: row may be stale
  RowKey key{src, label};
  auto it = s.rows.find(key);
  if (it != s.rows.end()) EraseLocked(s, it);
  s.lru.push_front(key);
  s.rows.emplace(key, Entry{std::move(row), charge, s.lru.begin()});
  s.usage += charge;
  bytes_->Add(static_cast<int64_t>(charge));
  EvictLocked(s);
}

void AdjacencyCache::InvalidateEdge(VertexId src, LabelId label) {
  Shard& s = ShardFor(src);
  MutexLock l(&s.mu);
  ++s.gen;
  for (LabelId k : {label, kAllLabels}) {
    auto it = s.rows.find(RowKey{src, k});
    if (it != s.rows.end()) EraseLocked(s, it);
  }
}

void AdjacencyCache::InvalidateVertex(VertexId src) {
  Shard& s = ShardFor(src);
  MutexLock l(&s.mu);
  ++s.gen;
  // All rows of one src are contiguous under RowKey ordering.
  auto it = s.rows.lower_bound(RowKey{src, 0});
  while (it != s.rows.end() && it->first.src == src) {
    auto next = std::next(it);
    EraseLocked(s, it);
    it = next;
  }
}

void AdjacencyCache::RecordBuild(uint64_t us) {
  builds_->Inc();
  build_us_->Observe(static_cast<double>(us));
}

size_t AdjacencyCache::usage() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    MutexLock l(&shard_[i].mu);
    total += shard_[i].usage;
  }
  return total;
}

void AdjacencyCache::EraseLocked(Shard& s,
                                 std::map<RowKey, Entry>::iterator it) {
  s.usage -= it->second.charge;
  bytes_->Add(-static_cast<int64_t>(it->second.charge));
  s.lru.erase(it->second.lru_pos);
  s.rows.erase(it);
}

void AdjacencyCache::EvictLocked(Shard& s) {
  while (s.usage > per_shard_capacity_ && s.rows.size() > 1) {
    auto it = s.rows.find(s.lru.back());
    EraseLocked(s, it);
    evictions_->Inc();
  }
}

}  // namespace gt::graph
