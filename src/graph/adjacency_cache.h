// Compact CSR-style adjacency cache: the in-memory topology companion to
// the LSM-backed GraphStore (GRAPHITE's pairing of a durable store with a
// compact traversal representation).
//
// Unit of caching: one immutable *row* per (src vertex, edge label) — or per
// src vertex across all labels (kAllLabels) — holding that vertex's
// out-edges as flat arrays carved from one arena: per-edge label, dst and an
// offset table into a concatenated buffer of encoded edge values. Rows are
// built once from a KV prefix scan (or in bulk by GraphStore::WarmAdjacency)
// and served read-only via shared_ptr, so traversal workers iterate plain
// contiguous memory instead of the memtable/table iterator stack, and
// eviction or invalidation never pulls a row out from under a reader.
//
// Eviction: byte-budgeted sharded LRU (the src/kv/lru_cache.h idiom; rows
// are charged at their arena footprint). Sharding is by src vertex so every
// row of one vertex lives in one shard and invalidation is single-lock.
//
// Invalidation contract (mutators must call these, which GraphStore does):
//   PutEdge(src, label)  -> InvalidateEdge(src, label): drops the (src,
//                           label) row and the (src, kAllLabels) row.
//   DeleteVertex(vid)    -> InvalidateVertex(vid): drops every row of vid.
// Edges *pointing to* a mutated vertex are untouched — identical to the KV
// layout, where an edge lives only under its source key and the engine
// re-reads the dst vertex record (absorbing deletions) on the next step.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/arena.h"
#include "src/common/hash.h"
#include "src/common/metrics.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/graph/encoding.h"

namespace gt::graph {

struct AdjacencyCacheOptions {
  size_t capacity_bytes = 16 << 20;
  int shards = 4;
  uint32_t server_id = 0;  // metrics instance label
};

// One immutable CSR row. Edges are in KV key order: (label, dst) ascending,
// so a single-label slice of an all-labels row is a contiguous run.
class AdjacencyRow {
 public:
  // The sentinel label for a row covering every out-edge of its src.
  static constexpr LabelId kAllLabels = 0xffffffffu;

  uint32_t size() const { return count_; }
  LabelId label_at(uint32_t i) const { return labels_[i]; }
  VertexId dst_at(uint32_t i) const { return dsts_[i]; }
  // Encoded edge value (DecodeEdgeValue) of edge i.
  std::string_view props_at(uint32_t i) const {
    return {prop_bytes_ + prop_off_[i], prop_off_[i + 1] - prop_off_[i]};
  }

  // Bytes the KV layer read to build this row (key + value sizes); the
  // device model charges this on a hit, mirroring the original scan.
  uint64_t source_bytes() const { return source_bytes_; }
  // Cache charge: the arena footprint plus the object itself.
  size_t charge() const { return arena_.BlockBytes() + sizeof(AdjacencyRow); }

  // KV sequence number this row's content is valid from. A *resident* row
  // is valid on [build_seq, now] — every mutation of its src after the
  // build either invalidated the row or discarded its insert (epoch token)
  // — so a snapshot read pinned at sequence S may be served from cache iff
  // build_seq <= S; a row built after the pin may contain edges the
  // snapshot must not see and is bypassed instead.
  uint64_t build_seq() const { return build_seq_; }

  // Builder: append edges in scan order, then Build() to flatten.
  class Builder {
   public:
    void Add(LabelId label, VertexId dst, std::string_view encoded_props) {
      labels_.push_back(label);
      dsts_.push_back(dst);
      prop_off_.push_back(static_cast<uint32_t>(prop_bytes_.size()));
      prop_bytes_.append(encoded_props);
    }
    void AddSourceBytes(uint64_t n) { source_bytes_ += n; }
    // Sequence the finished row is valid from (see AdjacencyRow::build_seq).
    void SetBuildSeq(uint64_t seq) { build_seq_ = seq; }
    size_t size() const { return dsts_.size(); }
    std::shared_ptr<const AdjacencyRow> Build() const;

   private:
    std::vector<LabelId> labels_;
    std::vector<VertexId> dsts_;
    std::vector<uint32_t> prop_off_;
    std::string prop_bytes_;
    uint64_t source_bytes_ = 0;
    uint64_t build_seq_ = 0;
  };

 private:
  AdjacencyRow() : arena_(/*block_size=*/512) {}

  Arena arena_;  // exact-sized large allocations; small rows share one block
  uint32_t count_ = 0;
  const LabelId* labels_ = nullptr;
  const VertexId* dsts_ = nullptr;
  const uint32_t* prop_off_ = nullptr;  // count_ + 1 entries
  const char* prop_bytes_ = nullptr;
  uint64_t source_bytes_ = 0;
  uint64_t build_seq_ = 0;
};

class AdjacencyCache {
 public:
  static constexpr LabelId kAllLabels = AdjacencyRow::kAllLabels;

  explicit AdjacencyCache(AdjacencyCacheOptions opts);

  // nullptr on miss. Hits refresh LRU recency. `count_miss=false` makes a
  // miss silent — used for the exact-label probe in ScanEdges, which can
  // still be served by the (src, all-labels) row; hits+misses then count
  // scans served from cache vs scans that had to touch the KV store, not
  // raw probe attempts.
  std::shared_ptr<const AdjacencyRow> Lookup(VertexId src, LabelId label,
                                             bool count_miss = true);

  // Call before scanning the KV store to build a row for `src`; the
  // returned token captures the shard's invalidation epoch. Insert() drops
  // the row on the floor if any invalidation for the shard ran in between —
  // without this, a row built from a KV snapshot taken before a concurrent
  // PutEdge could be cached *after* that PutEdge's invalidation, and the
  // stale row would be served forever.
  uint64_t BeginBuild(VertexId src);

  // Inserts (replacing any existing row for the key) and evicts LRU rows
  // beyond the shard's byte budget. No-op if the shard was invalidated
  // since `token` was issued by BeginBuild.
  void Insert(VertexId src, LabelId label,
              std::shared_ptr<const AdjacencyRow> row, uint64_t token);

  // See the invalidation contract in the header comment.
  void InvalidateEdge(VertexId src, LabelId label);
  void InvalidateVertex(VertexId src);

  // Records one row build of `us` microseconds (gt_graph_adj_build metrics).
  void RecordBuild(uint64_t us);

  size_t capacity_bytes() const { return opts_.capacity_bytes; }
  size_t usage() const;
  uint64_t hits() const { return hits_->Value(); }
  uint64_t misses() const { return misses_->Value(); }
  uint64_t evictions() const { return evictions_->Value(); }
  uint64_t builds() const { return builds_->Value(); }

 private:
  struct RowKey {
    VertexId src;
    LabelId label;
    bool operator<(const RowKey& o) const {
      if (src != o.src) return src < o.src;
      return label < o.label;
    }
  };

  struct Entry {
    std::shared_ptr<const AdjacencyRow> row;
    size_t charge = 0;
    std::list<RowKey>::iterator lru_pos;
  };

  struct Shard {
    mutable Mutex mu;  // leaf lock: nothing else is acquired while held
    std::list<RowKey> lru GT_GUARDED_BY(mu);  // front = most recent
    std::map<RowKey, Entry> rows GT_GUARDED_BY(mu);
    size_t usage GT_GUARDED_BY(mu) = 0;
    uint64_t gen GT_GUARDED_BY(mu) = 0;  // bumped by every invalidation
  };

  Shard& ShardFor(VertexId src) { return shard_[Mix64(src) % num_shards_]; }
  void EraseLocked(Shard& s, std::map<RowKey, Entry>::iterator it) GT_REQUIRES(s.mu);
  void EvictLocked(Shard& s) GT_REQUIRES(s.mu);

  AdjacencyCacheOptions opts_;
  size_t num_shards_;
  size_t per_shard_capacity_;
  std::unique_ptr<Shard[]> shard_;

  // Registry handles (lock-free on the hot path), labeled by server.
  metrics::Counter* hits_;
  metrics::Counter* misses_;
  metrics::Counter* evictions_;
  metrics::Counter* builds_;
  metrics::Gauge* bytes_;
  metrics::Histogram* build_us_;
};

}  // namespace gt::graph
