// Catalog: interning of label and property-key strings to 32-bit ids.
// In a deployed system this metadata is tiny and replicated to every backend
// server; here one Catalog instance is shared read-mostly by the cluster.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"

namespace gt::graph {

class Catalog {
 public:
  using Id = uint32_t;
  static constexpr Id kInvalidId = 0xffffffffu;

  // Upper bound accepted from remote peers. Catalog ids are dense indexes
  // into names_, so an id that arrives over the wire drives a resize(id+1);
  // without a cap a hostile (or corrupt) reply could demand gigabytes. The
  // catalog holds label/property-key names — tiny by design — so a million
  // ids is far beyond any legitimate deployment.
  static constexpr Id kMaxWireId = 1u << 20;

  virtual ~Catalog() = default;

  // Returns the id for `name`, interning it if new. Thread-safe.
  virtual Id Intern(const std::string& name) GT_EXCLUDES(mu_) {
    {
      ReaderMutexLock lk(&mu_);
      auto it = ids_.find(name);
      if (it != ids_.end()) return it->second;
    }
    WriterMutexLock lk(&mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const Id id = static_cast<Id>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
  }

  // Returns kInvalidId when the name was never interned.
  virtual Id Lookup(const std::string& name) const GT_EXCLUDES(mu_) {
    ReaderMutexLock lk(&mu_);
    auto it = ids_.find(name);
    return it == ids_.end() ? kInvalidId : it->second;
  }

  virtual Result<std::string> Name(Id id) const GT_EXCLUDES(mu_) {
    ReaderMutexLock lk(&mu_);
    if (id >= names_.size()) return Status::NotFound("catalog id " + std::to_string(id));
    return names_[id];
  }

  size_t size() const GT_EXCLUDES(mu_) {
    ReaderMutexLock lk(&mu_);
    return names_.size();
  }

  // Replicates another catalog's name->id mapping (used when a cluster must
  // agree with a catalog the data was generated against; in a deployment
  // this metadata is shipped to every server). REQUIRES: this catalog is a
  // prefix of `other` (typically empty).
  void CopyFrom(const Catalog& other) GT_EXCLUDES(mu_) {
    std::vector<std::string> names = other.Snapshot();
    WriterMutexLock lk(&mu_);
    for (size_t i = names_.size(); i < names.size(); i++) {
      ids_.emplace(names[i], static_cast<Id>(i));
      names_.push_back(names[i]);
    }
  }

  // Installs a (name, id) binding decided elsewhere (the catalog authority
  // in a multi-process deployment). Gaps are padded with placeholders that
  // are overwritten when their bindings arrive.
  void InsertAt(Id id, const std::string& name) GT_EXCLUDES(mu_) {
    WriterMutexLock lk(&mu_);
    if (id >= names_.size()) names_.resize(id + 1);
    names_[id] = name;
    ids_[name] = id;
  }

  // Snapshot of all names in id order.
  std::vector<std::string> Snapshot() const GT_EXCLUDES(mu_) {
    ReaderMutexLock lk(&mu_);
    return names_;
  }

 private:
  mutable SharedMutex mu_;
  std::vector<std::string> names_ GT_GUARDED_BY(mu_);
  std::unordered_map<std::string, Id> ids_ GT_GUARDED_BY(mu_);
};

}  // namespace gt::graph
