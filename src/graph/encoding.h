// KV key layout for the property graph, designed (as in the paper) so that
// all edges of one vertex are stored together grouped by edge type, making
// per-type edge iteration a sequential scan.
//
// Namespaces (first key byte):
//   0x01 vertex:      [0x01][vid be64]                      -> label id + props
//   0x02 edge:        [0x02][src be64][label be32][dst be64] -> props
//   0x03 type index:  [0x03][label be32][vid be64]           -> (empty)
//
// All components are big-endian so bytewise key order matches logical order.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/codec.h"
#include "src/graph/property.h"

namespace gt::graph {

using VertexId = uint64_t;
using LabelId = uint32_t;

constexpr char kVertexNs = 0x01;
constexpr char kEdgeNs = 0x02;
constexpr char kTypeIndexNs = 0x03;

struct VertexRecord {
  VertexId id = 0;
  LabelId label = 0;
  PropMap props;
};

struct EdgeRecord {
  VertexId src = 0;
  LabelId label = 0;
  VertexId dst = 0;
  PropMap props;
};

// --- keys -------------------------------------------------------------

inline std::string VertexKey(VertexId vid) {
  std::string k;
  k.push_back(kVertexNs);
  PutFixed64BE(&k, vid);
  return k;
}

// ns byte + src + label + dst. The adjacency cache uses this to reconstruct
// per-edge byte accounting from rows that no longer store the keys.
inline constexpr size_t kEdgeKeyBytes = 1 + 8 + 4 + 8;

inline std::string EdgeKey(VertexId src, LabelId label, VertexId dst) {
  std::string k;
  k.push_back(kEdgeNs);
  PutFixed64BE(&k, src);
  PutFixed32BE(&k, label);
  PutFixed64BE(&k, dst);
  return k;
}

// Prefix of all edges of `src` with type `label` (the sequential-scan unit).
inline std::string EdgePrefix(VertexId src, LabelId label) {
  std::string k;
  k.push_back(kEdgeNs);
  PutFixed64BE(&k, src);
  PutFixed32BE(&k, label);
  return k;
}

// Prefix of all edges of `src`, any type.
inline std::string EdgePrefixAllLabels(VertexId src) {
  std::string k;
  k.push_back(kEdgeNs);
  PutFixed64BE(&k, src);
  return k;
}

inline std::string TypeIndexKey(LabelId label, VertexId vid) {
  std::string k;
  k.push_back(kTypeIndexNs);
  PutFixed32BE(&k, label);
  PutFixed64BE(&k, vid);
  return k;
}

inline std::string TypeIndexPrefix(LabelId label) {
  std::string k;
  k.push_back(kTypeIndexNs);
  PutFixed32BE(&k, label);
  return k;
}

// --- key parsing -------------------------------------------------------

inline bool ParseVertexKey(std::string_view key, VertexId* vid) {
  if (key.size() != 9 || key[0] != kVertexNs) return false;
  CheckedReader dec(key.substr(1));
  return dec.GetFixed64BE(vid);
}

inline bool ParseEdgeKey(std::string_view key, VertexId* src, LabelId* label, VertexId* dst) {
  if (key.size() != 21 || key[0] != kEdgeNs) return false;
  CheckedReader dec(key.substr(1));
  return dec.GetFixed64BE(src) && dec.GetFixed32BE(label) && dec.GetFixed64BE(dst);
}

inline bool ParseTypeIndexKey(std::string_view key, LabelId* label, VertexId* vid) {
  if (key.size() != 13 || key[0] != kTypeIndexNs) return false;
  CheckedReader dec(key.substr(1));
  return dec.GetFixed32BE(label) && dec.GetFixed64BE(vid);
}

// --- values ------------------------------------------------------------

inline std::string EncodeVertexValue(LabelId label, const PropMap& props) {
  std::string v;
  PutVarint32(&v, label);
  props.EncodeTo(&v);
  return v;
}

inline bool DecodeVertexValue(std::string_view value, LabelId* label, PropMap* props) {
  CheckedReader dec(value);
  return dec.GetVarint32(label) && PropMap::DecodeFrom(&dec, props);
}

inline std::string EncodeEdgeValue(const PropMap& props) {
  std::string v;
  props.EncodeTo(&v);
  return v;
}

inline bool DecodeEdgeValue(std::string_view value, PropMap* props) {
  CheckedReader dec(value);
  return PropMap::DecodeFrom(&dec, props);
}

}  // namespace gt::graph
