#include "src/graph/graph_store.h"

#include "src/common/logging.h"

namespace gt::graph {

Result<std::unique_ptr<GraphStore>> GraphStore::Open(const std::string& dir,
                                                     GraphStoreOptions opts) {
  auto db = kv::DB::Open(dir, opts.db);
  if (!db.ok()) return db.status();
  // The graph layers above treat this store as durable ground truth, so
  // evidence that the KV layer recovered from a crash (a torn WAL tail
  // dropped, orphaned files swept) must reach the operator log even though
  // the open itself succeeded.
  const auto& stats = (*db)->stats();
  const uint64_t torn = stats.wal_torn_tails.load();
  const uint64_t swept = stats.orphans_swept.load();
  if (torn > 0 || swept > 0) {
    GT_WARN << "graph store " << dir << " recovered from an unclean shutdown ("
            << torn << " torn WAL tail(s) dropped, " << swept
            << " orphaned file(s) swept)";
  }
  return std::unique_ptr<GraphStore>(new GraphStore(opts, std::move(*db)));
}

Status GraphStore::PutVertex(const VertexRecord& v) {
  // Overwriting a vertex with a different label leaves the old type-index
  // entry behind; type scans re-verify against the live record (the engine
  // applies the type filter after the index lookup), so stale entries are
  // harmless. DeleteVertex removes both.
  kv::WriteBatch batch;
  batch.Put(VertexKey(v.id), EncodeVertexValue(v.label, v.props));
  batch.Put(TypeIndexKey(v.label, v.id), "");
  return db_->Write(std::move(batch));
}

Status GraphStore::PutEdge(const EdgeRecord& e) {
  return db_->Put(EdgeKey(e.src, e.label, e.dst), EncodeEdgeValue(e.props));
}

Status GraphStore::DeleteVertex(VertexId vid) {
  std::string value;
  Status s = db_->Get(VertexKey(vid), &value);
  if (!s.ok()) return s;
  LabelId label;
  PropMap props;
  if (!DecodeVertexValue(value, &label, &props)) {
    return Status::Corruption("bad vertex value");
  }
  kv::WriteBatch batch;
  batch.Delete(VertexKey(vid));
  batch.Delete(TypeIndexKey(label, vid));
  return db_->Write(std::move(batch));
}

void GraphStore::ChargeAccess(VertexId vid, uint64_t bytes, bool warm) {
  vertex_accesses_.fetch_add(1, std::memory_order_relaxed);
  if (interceptor_ != nullptr) interceptor_->OnVertexAccess(opts_.server_id, vid);
  if (opts_.device != nullptr) opts_.device->ChargeAccess(bytes, warm);
}

Result<VertexRecord> GraphStore::GetVertex(VertexId vid, bool warm) {
  std::string value;
  GT_RETURN_IF_ERROR(db_->Get(VertexKey(vid), &value));
  ChargeAccess(vid, value.size(), warm);

  VertexRecord rec;
  rec.id = vid;
  if (!DecodeVertexValue(value, &rec.label, &rec.props)) {
    return Status::Corruption("bad vertex value for vid " + std::to_string(vid));
  }
  return rec;
}

Status GraphStore::ScanEdges(VertexId src, LabelId label,
                             const std::function<bool(VertexId, const PropMap&)>& fn,
                             bool warm) {
  uint64_t bytes = 0;
  Status inner = Status::OK();
  Status s = db_->ScanPrefix(EdgePrefix(src, label), [&](kv::Slice key, kv::Slice value) {
    VertexId esrc, edst;
    LabelId elabel;
    if (!ParseEdgeKey(key.view(), &esrc, &elabel, &edst)) {
      inner = Status::Corruption("bad edge key");
      return false;
    }
    PropMap props;
    if (!DecodeEdgeValue(value.view(), &props)) {
      inner = Status::Corruption("bad edge value");
      return false;
    }
    bytes += key.size() + value.size();
    return fn(edst, props);
  });
  ChargeAccess(src, bytes, warm);
  if (!inner.ok()) return inner;
  return s;
}

Status GraphStore::ScanAllEdges(
    VertexId src, const std::function<bool(LabelId, VertexId, const PropMap&)>& fn,
    bool warm) {
  uint64_t bytes = 0;
  Status inner = Status::OK();
  Status s = db_->ScanPrefix(EdgePrefixAllLabels(src), [&](kv::Slice key, kv::Slice value) {
    VertexId esrc, edst;
    LabelId elabel;
    if (!ParseEdgeKey(key.view(), &esrc, &elabel, &edst)) {
      inner = Status::Corruption("bad edge key");
      return false;
    }
    PropMap props;
    if (!DecodeEdgeValue(value.view(), &props)) {
      inner = Status::Corruption("bad edge value");
      return false;
    }
    bytes += key.size() + value.size();
    return fn(elabel, edst, props);
  });
  ChargeAccess(src, bytes, warm);
  if (!inner.ok()) return inner;
  return s;
}

Status GraphStore::ScanAllVertices(
    const std::function<bool(const VertexRecord&)>& fn) {
  Status inner = Status::OK();
  std::string prefix(1, kVertexNs);
  Status s = db_->ScanPrefix(prefix, [&](kv::Slice key, kv::Slice value) {
    VertexRecord rec;
    if (!ParseVertexKey(key.view(), &rec.id) ||
        !DecodeVertexValue(value.view(), &rec.label, &rec.props)) {
      inner = Status::Corruption("bad vertex record");
      return false;
    }
    return fn(rec);
  });
  if (!inner.ok()) return inner;
  return s;
}

Status GraphStore::ScanEverythingEdges(
    const std::function<bool(const EdgeRecord&)>& fn) {
  Status inner = Status::OK();
  std::string prefix(1, kEdgeNs);
  Status s = db_->ScanPrefix(prefix, [&](kv::Slice key, kv::Slice value) {
    EdgeRecord rec;
    if (!ParseEdgeKey(key.view(), &rec.src, &rec.label, &rec.dst) ||
        !DecodeEdgeValue(value.view(), &rec.props)) {
      inner = Status::Corruption("bad edge record");
      return false;
    }
    return fn(rec);
  });
  if (!inner.ok()) return inner;
  return s;
}

Status GraphStore::ScanVerticesByType(LabelId label,
                                      const std::function<bool(VertexId)>& fn) {
  uint64_t bytes = 0;
  Status inner = Status::OK();
  Status s = db_->ScanPrefix(TypeIndexPrefix(label), [&](kv::Slice key, kv::Slice) {
    LabelId klabel;
    VertexId vid;
    if (!ParseTypeIndexKey(key.view(), &klabel, &vid)) {
      inner = Status::Corruption("bad type index key");
      return false;
    }
    bytes += key.size();
    return fn(vid);
  });
  // The type index is a compact sequential run: charge once per scan.
  if (opts_.device != nullptr) opts_.device->ChargeAccess(bytes);
  if (!inner.ok()) return inner;
  return s;
}

}  // namespace gt::graph
