#include "src/graph/graph_store.h"

#include <algorithm>
#include <numeric>

#include "src/common/clock.h"
#include "src/common/logging.h"

namespace gt::graph {

GraphStore::GraphStore(GraphStoreOptions opts, std::unique_ptr<kv::DB> db)
    : opts_(opts), db_(std::move(db)) {
  if (opts_.adjacency_cache_bytes > 0) {
    AdjacencyCacheOptions cache_opts;
    cache_opts.capacity_bytes = opts_.adjacency_cache_bytes;
    cache_opts.server_id = opts_.server_id;
    adj_cache_ = std::make_unique<AdjacencyCache>(cache_opts);
  }
}

Result<std::unique_ptr<GraphStore>> GraphStore::Open(const std::string& dir,
                                                     GraphStoreOptions opts) {
  auto db = kv::DB::Open(dir, opts.db);
  if (!db.ok()) return db.status();
  // The graph layers above treat this store as durable ground truth, so
  // evidence that the KV layer recovered from a crash (a torn WAL tail
  // dropped, orphaned files swept) must reach the operator log even though
  // the open itself succeeded.
  const auto& stats = (*db)->stats();
  const uint64_t torn = stats.wal_torn_tails.load();
  const uint64_t swept = stats.orphans_swept.load();
  if (torn > 0 || swept > 0) {
    GT_WARN << "graph store " << dir << " recovered from an unclean shutdown ("
            << torn << " torn WAL tail(s) dropped, " << swept
            << " orphaned file(s) swept)";
  }
  return std::unique_ptr<GraphStore>(new GraphStore(opts, std::move(*db)));
}

Status GraphStore::PutVertex(const VertexRecord& v) {
  // Overwriting a vertex with a different label leaves the old type-index
  // entry behind; type scans re-verify against the live record (the engine
  // applies the type filter after the index lookup), so stale entries are
  // harmless. DeleteVertex removes both.
  kv::WriteBatch batch;
  batch.Put(VertexKey(v.id), EncodeVertexValue(v.label, v.props));
  batch.Put(TypeIndexKey(v.label, v.id), "");
  return db_->Write(std::move(batch));
}

Status GraphStore::PutEdge(const EdgeRecord& e) {
  Status s = db_->Put(EdgeKey(e.src, e.label, e.dst), EncodeEdgeValue(e.props));
  // Invalidate after the KV write commits so a concurrent rebuild cannot
  // cache the pre-write row after we dropped it.
  if (s.ok() && adj_cache_ != nullptr) adj_cache_->InvalidateEdge(e.src, e.label);
  return s;
}

Status GraphStore::DeleteVertex(VertexId vid) {
  std::string value;
  Status s = db_->Get(VertexKey(vid), &value);
  if (!s.ok()) return s;
  LabelId label;
  PropMap props;
  if (!DecodeVertexValue(value, &label, &props)) {
    return Status::Corruption("bad vertex value");
  }
  kv::WriteBatch batch;
  batch.Delete(VertexKey(vid));
  batch.Delete(TypeIndexKey(label, vid));
  Status w = db_->Write(std::move(batch));
  // Conservative: the KV layer keeps the deleted vertex's out-edges (only
  // the record + type-index entry are removed), so cached rows for vid
  // would rebuild identically — but dropping them keeps the invariant
  // "every cached row was built after the last mutation of its src" simple
  // enough to audit.
  if (w.ok() && adj_cache_ != nullptr) adj_cache_->InvalidateVertex(vid);
  return w;
}

void GraphStore::ChargeAccess(VertexId vid, uint64_t bytes, bool warm) {
  vertex_accesses_.fetch_add(1, std::memory_order_relaxed);
  if (interceptor_ != nullptr) interceptor_->OnVertexAccess(opts_.server_id, vid);
  if (opts_.device != nullptr) opts_.device->ChargeAccess(bytes, warm);
}

Result<VertexRecord> GraphStore::GetVertex(VertexId vid, bool warm,
                                           const ReadSnapshot* snap) {
  std::string value;
  GT_RETURN_IF_ERROR(db_->Get(VertexKey(vid), &value, snap));
  ChargeAccess(vid, value.size(), warm);

  VertexRecord rec;
  rec.id = vid;
  if (!DecodeVertexValue(value, &rec.label, &rec.props)) {
    return Status::Corruption("bad vertex value for vid " + std::to_string(vid));
  }
  return rec;
}

bool GraphStore::HasVertex(VertexId vid, const ReadSnapshot* snap) {
  std::string value;
  return db_->Get(VertexKey(vid), &value, snap).ok();
}

Status GraphStore::MultiGetVertices(std::vector<VertexLookup>* lookups,
                                    const ReadSnapshot* snap) {
  if (lookups->empty()) return Status::OK();
  // Visit keys in vid order (big-endian keys sort the same way) so the
  // batch walks each table's index monotonically; results land back in the
  // caller's slot via the permutation.
  std::vector<size_t> order(lookups->size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*lookups)[a].vid < (*lookups)[b].vid;
  });

  std::vector<std::string> key_storage;
  key_storage.reserve(order.size());
  std::vector<kv::Slice> keys;
  keys.reserve(order.size());
  for (size_t idx : order) {
    key_storage.push_back(VertexKey((*lookups)[idx].vid));
    keys.emplace_back(key_storage.back());
  }

  std::vector<std::optional<std::string>> values;
  GT_RETURN_IF_ERROR(db_->MultiGet(keys, &values, snap));

  for (size_t i = 0; i < order.size(); ++i) {
    VertexLookup& lk = (*lookups)[order[i]];
    if (!values[i].has_value()) {
      lk.found = false;
      continue;
    }
    // Same accounting as GetVertex: one charge per vid at its warm flag.
    ChargeAccess(lk.vid, values[i]->size(), lk.warm);
    lk.rec.id = lk.vid;
    if (!DecodeVertexValue(*values[i], &lk.rec.label, &lk.rec.props)) {
      return Status::Corruption("bad vertex value for vid " + std::to_string(lk.vid));
    }
    lk.found = true;
  }
  return Status::OK();
}

Result<std::shared_ptr<const AdjacencyRow>> GraphStore::BuildRow(VertexId src,
                                                                 LabelId label) {
  const uint64_t token = adj_cache_->BeginBuild(src);
  // The row is valid from this sequence on: any write to src's prefix that
  // lands after this read either shows up in the scan below or bumps the
  // shard epoch (the invalidation strictly follows the KV commit), which
  // discards the insert. Reads pinned at an earlier sequence must not be
  // served from this row — see AdjacencyRow::build_seq().
  const kv::SequenceNumber build_seq = db_->LastSequence();
  Stopwatch timer;
  AdjacencyRow::Builder builder;
  builder.SetBuildSeq(build_seq);
  Status inner = Status::OK();
  const std::string prefix = label == AdjacencyCache::kAllLabels
                                 ? EdgePrefixAllLabels(src)
                                 : EdgePrefix(src, label);
  Status s = db_->ScanPrefix(prefix, [&](kv::Slice key, kv::Slice value) {
    VertexId esrc, edst;
    LabelId elabel;
    if (!ParseEdgeKey(key.view(), &esrc, &elabel, &edst)) {
      inner = Status::Corruption("bad edge key");
      return false;
    }
    builder.Add(elabel, edst, value.view());
    builder.AddSourceBytes(key.size() + value.size());
    return true;
  });
  if (!inner.ok()) return inner;
  if (!s.ok()) return s;
  auto row = builder.Build();
  adj_cache_->Insert(src, label, row, token);
  adj_cache_->RecordBuild(timer.ElapsedMicros());
  return row;
}

// A cached row may serve a snapshot read only if it was built at or before
// the pinned sequence: residency guarantees validity on [build_seq, now],
// so an older pin could otherwise observe edges written after it.
static bool RowVisibleAt(const AdjacencyRow& row,
                         const GraphStore::ReadSnapshot* snap) {
  return snap == nullptr || row.build_seq() <= snap->sequence();
}

Status GraphStore::ScanEdgesUncached(
    VertexId src, LabelId label,
    const std::function<bool(VertexId, const PropMap&)>& fn, bool warm,
    const ReadSnapshot* snap) {
  uint64_t bytes = 0;
  Status inner = Status::OK();
  Status s = db_->ScanPrefix(EdgePrefix(src, label), [&](kv::Slice key, kv::Slice value) {
    VertexId esrc, edst;
    LabelId elabel;
    if (!ParseEdgeKey(key.view(), &esrc, &elabel, &edst)) {
      inner = Status::Corruption("bad edge key");
      return false;
    }
    PropMap props;
    if (!DecodeEdgeValue(value.view(), &props)) {
      inner = Status::Corruption("bad edge value");
      return false;
    }
    bytes += key.size() + value.size();
    return fn(edst, props);
  }, snap);
  ChargeAccess(src, bytes, warm);
  if (!inner.ok()) return inner;
  return s;
}

Status GraphStore::ScanAllEdgesUncached(
    VertexId src, const std::function<bool(LabelId, VertexId, const PropMap&)>& fn,
    bool warm, const ReadSnapshot* snap) {
  uint64_t bytes = 0;
  Status inner = Status::OK();
  Status s = db_->ScanPrefix(EdgePrefixAllLabels(src), [&](kv::Slice key, kv::Slice value) {
    VertexId esrc, edst;
    LabelId elabel;
    if (!ParseEdgeKey(key.view(), &esrc, &elabel, &edst)) {
      inner = Status::Corruption("bad edge key");
      return false;
    }
    PropMap props;
    if (!DecodeEdgeValue(value.view(), &props)) {
      inner = Status::Corruption("bad edge value");
      return false;
    }
    bytes += key.size() + value.size();
    return fn(elabel, edst, props);
  }, snap);
  ChargeAccess(src, bytes, warm);
  if (!inner.ok()) return inner;
  return s;
}

Status GraphStore::ScanEdges(VertexId src, LabelId label,
                             const std::function<bool(VertexId, const PropMap&)>& fn,
                             bool warm, const ReadSnapshot* snap) {
  if (adj_cache_ == nullptr) {
    return ScanEdgesUncached(src, label, fn, warm, snap);
  }

  // Prefer the exact (src, label) row; fall back to slicing a resident
  // all-labels row (edges are in (label, dst) order, so the slice is a
  // contiguous run and its byte share is proportional by edge count).
  // Rows built after `snap` was pinned are invisible to it (RowVisibleAt).
  auto row = adj_cache_->Lookup(src, label, /*count_miss=*/false);
  if (row != nullptr && !RowVisibleAt(*row, snap)) row = nullptr;
  bool hit = row != nullptr;
  uint64_t bytes = 0;
  if (!hit) {
    auto all = adj_cache_->Lookup(src, AdjacencyCache::kAllLabels);
    if (all != nullptr && RowVisibleAt(*all, snap)) {
      Status serve = Status::OK();
      for (uint32_t i = 0; i < all->size(); ++i) {
        if (all->label_at(i) != label) continue;
        bytes += kEdgeKeyBytes + all->props_at(i).size();
        PropMap props;
        if (!DecodeEdgeValue(all->props_at(i), &props)) {
          serve = Status::Corruption("bad cached edge value");
          break;
        }
        if (!fn(all->dst_at(i), props)) break;
      }
      ChargeAccess(src, bytes, /*warm=*/true);
      return serve;
    }
  }
  if (!hit) {
    // Build at the current sequence regardless of `snap` so future travels
    // get a warm row; serve this caller from it only when its pin can see
    // it (no write landed between the pin and the build — always true for
    // latest reads), else pay one direct snapshot-bounded scan.
    auto built = BuildRow(src, label);
    if (!built.ok()) {
      ChargeAccess(src, 0, warm);
      return built.status();
    }
    if (!RowVisibleAt(**built, snap)) {
      return ScanEdgesUncached(src, label, fn, warm, snap);
    }
    row = *built;
  }
  // A fresh build charges at the caller's cold/warm rate (the bytes really
  // came off the device); a cache hit always charges warm.
  ChargeAccess(src, row->source_bytes(), hit ? true : warm);
  for (uint32_t i = 0; i < row->size(); ++i) {
    PropMap props;
    if (!DecodeEdgeValue(row->props_at(i), &props)) {
      return Status::Corruption("bad cached edge value");
    }
    if (!fn(row->dst_at(i), props)) break;
  }
  return Status::OK();
}

Status GraphStore::ScanAllEdges(
    VertexId src, const std::function<bool(LabelId, VertexId, const PropMap&)>& fn,
    bool warm, const ReadSnapshot* snap) {
  if (adj_cache_ == nullptr) {
    return ScanAllEdgesUncached(src, fn, warm, snap);
  }

  auto row = adj_cache_->Lookup(src, AdjacencyCache::kAllLabels);
  if (row != nullptr && !RowVisibleAt(*row, snap)) row = nullptr;
  const bool hit = row != nullptr;
  if (!hit) {
    auto built = BuildRow(src, AdjacencyCache::kAllLabels);
    if (!built.ok()) {
      ChargeAccess(src, 0, warm);
      return built.status();
    }
    if (!RowVisibleAt(**built, snap)) {
      return ScanAllEdgesUncached(src, fn, warm, snap);
    }
    row = *built;
  }
  ChargeAccess(src, row->source_bytes(), hit ? true : warm);
  for (uint32_t i = 0; i < row->size(); ++i) {
    PropMap props;
    if (!DecodeEdgeValue(row->props_at(i), &props)) {
      return Status::Corruption("bad cached edge value");
    }
    if (!fn(row->label_at(i), row->dst_at(i), props)) break;
  }
  return Status::OK();
}

Status GraphStore::WarmAdjacency() {
  if (adj_cache_ == nullptr) return Status::OK();
  // One sweep of the edge namespace; keys arrive in (src, label, dst) order,
  // so each vertex's edges form one contiguous run and every all-labels row
  // is completed before the next src starts. The warm-up is an ingest /
  // benchmark-setup path: callers must not mutate edges concurrently (the
  // per-insert epoch token is taken at flush time, after the row's edges
  // were already read, so it does not protect a warm-up raced by writers
  // the way the lazy BuildRow path protects itself).
  bool have_src = false;
  VertexId cur_src = 0;
  Stopwatch row_timer;
  // One sequence for the whole sweep: the warm-up contract forbids
  // concurrent mutation, so every row is valid from the sweep's start.
  const kv::SequenceNumber sweep_seq = db_->LastSequence();
  AdjacencyRow::Builder builder;
  builder.SetBuildSeq(sweep_seq);
  auto flush = [&]() {
    if (!have_src) return;
    adj_cache_->Insert(cur_src, AdjacencyCache::kAllLabels, builder.Build(),
                       adj_cache_->BeginBuild(cur_src));
    adj_cache_->RecordBuild(row_timer.ElapsedMicros());
    builder = AdjacencyRow::Builder();
    builder.SetBuildSeq(sweep_seq);
  };
  Status s = ScanEverythingEdges([&](const EdgeRecord& e) {
    if (!have_src || e.src != cur_src) {
      flush();
      cur_src = e.src;
      have_src = true;
      row_timer.Restart();
    }
    const std::string value = EncodeEdgeValue(e.props);
    builder.Add(e.label, e.dst, value);
    builder.AddSourceBytes(kEdgeKeyBytes + value.size());
    return true;
  });
  flush();
  return s;
}

Status GraphStore::ScanAllVertices(
    const std::function<bool(const VertexRecord&)>& fn, const ReadSnapshot* snap) {
  Status inner = Status::OK();
  std::string prefix(1, kVertexNs);
  Status s = db_->ScanPrefix(prefix, [&](kv::Slice key, kv::Slice value) {
    VertexRecord rec;
    if (!ParseVertexKey(key.view(), &rec.id) ||
        !DecodeVertexValue(value.view(), &rec.label, &rec.props)) {
      inner = Status::Corruption("bad vertex record");
      return false;
    }
    return fn(rec);
  }, snap);
  if (!inner.ok()) return inner;
  return s;
}

Status GraphStore::ScanEverythingEdges(
    const std::function<bool(const EdgeRecord&)>& fn, const ReadSnapshot* snap) {
  Status inner = Status::OK();
  std::string prefix(1, kEdgeNs);
  Status s = db_->ScanPrefix(prefix, [&](kv::Slice key, kv::Slice value) {
    EdgeRecord rec;
    if (!ParseEdgeKey(key.view(), &rec.src, &rec.label, &rec.dst) ||
        !DecodeEdgeValue(value.view(), &rec.props)) {
      inner = Status::Corruption("bad edge record");
      return false;
    }
    return fn(rec);
  }, snap);
  if (!inner.ok()) return inner;
  return s;
}

Status GraphStore::ScanVerticesByType(LabelId label,
                                      const std::function<bool(VertexId)>& fn,
                                      bool warm, const ReadSnapshot* snap) {
  uint64_t bytes = 0;
  Status inner = Status::OK();
  Status s = db_->ScanPrefix(TypeIndexPrefix(label), [&](kv::Slice key, kv::Slice) {
    LabelId klabel;
    VertexId vid;
    if (!ParseTypeIndexKey(key.view(), &klabel, &vid)) {
      inner = Status::Corruption("bad type index key");
      return false;
    }
    bytes += key.size();
    return fn(vid);
  }, snap);
  // The type index is a compact sequential run: charge once per scan, at
  // the caller-tracked warm rate on re-scans (see the header contract).
  if (opts_.device != nullptr) opts_.device->ChargeAccess(bytes, warm);
  if (!inner.ok()) return inner;
  return s;
}

Status GraphStore::ScanVerticesByTypeFiltered(
    LabelId label, const std::function<bool(const VertexRecord&)>& pred,
    const std::function<bool(VertexId)>& fn, bool warm, const ReadSnapshot* snap) {
  // The index walk charges once, as in ScanVerticesByType, and yields the
  // candidates in ascending vid order (index keys are label + vid-BE).
  std::vector<VertexId> candidates;
  GT_RETURN_IF_ERROR(ScanVerticesByType(
      label,
      [&](VertexId vid) {
        candidates.push_back(vid);
        return true;
      },
      warm, snap));
  if (candidates.empty()) return Status::OK();

  // The pushed-down predicate reads the candidate records here instead of
  // once per root exec at task time, as one sequential run over the record
  // keyspace charged like the index walk — a single access covering the
  // run's bytes — which is the point of the pushdown: sequential scan cost
  // instead of a random point-read per candidate. The run only touches
  // shard-resident keys in [first, last], and ingest assigns type runs
  // contiguously, so the candidates are locally dense even though their
  // global vid span is ~num_servers× wider than any one shard's share.
  // Only a handful of candidates is cheaper as point reads (one batched
  // MultiGet with ordinary per-vertex accounting).
  constexpr size_t kPointReadCutoff = 16;
  if (candidates.size() > kPointReadCutoff) {
    auto it = db_->NewIterator(snap);
    uint64_t bytes = 0;
    size_t next = 0;  // two-pointer into the vid-sorted candidate list
    Status inner = Status::OK();
    for (it->Seek(VertexKey(candidates.front()));
         it->Valid() && next < candidates.size(); it->Next()) {
      VertexId vid;
      if (!ParseVertexKey(it->key().view(), &vid)) break;  // left the namespace
      bytes += it->key().size() + it->value().size();
      while (next < candidates.size() && candidates[next] < vid) {
        next++;  // deleted between the index walk and this read
      }
      if (next >= candidates.size() || candidates[next] != vid) continue;
      next++;
      VertexRecord rec;
      rec.id = vid;
      if (!DecodeVertexValue(it->value().view(), &rec.label, &rec.props)) {
        inner = Status::Corruption("bad vertex value for vid " + std::to_string(vid));
        break;
      }
      if (!pred(rec)) continue;
      if (!fn(vid)) break;
    }
    if (opts_.device != nullptr) opts_.device->ChargeAccess(bytes, warm);
    GT_RETURN_IF_ERROR(inner);
    return it->status();
  }

  std::vector<VertexLookup> lookups(candidates.size());
  for (size_t i = 0; i < candidates.size(); i++) {
    lookups[i].vid = candidates[i];
    lookups[i].warm = warm;
  }
  GT_RETURN_IF_ERROR(MultiGetVertices(&lookups, snap));
  for (const VertexLookup& lk : lookups) {
    if (!lk.found) continue;  // deleted between index walk and read
    if (!pred(lk.rec)) continue;
    if (!fn(lk.vid)) break;
  }
  return Status::OK();
}

}  // namespace gt::graph
