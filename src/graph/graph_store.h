// GraphStore: the per-backend-server property-graph storage daemon. Wraps
// one embedded KV database (src/kv) with the key layout from encoding.h.
//
// Every *logical vertex access* (point lookup of a vertex record, or an edge
// scan rooted at a vertex) charges the simulated device model once — the
// access granularity the paper's evaluation instruments ("real I/O visits").
// An optional AccessInterceptor lets the straggler injector insert external
// delays into individual vertex accesses (Fig. 11 methodology).
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "src/common/device_model.h"
#include "src/common/status.h"
#include "src/graph/encoding.h"
#include "src/kv/db.h"

namespace gt::graph {

// Called before the store performs a vertex access; implementations may
// sleep to emulate external interference.
class AccessInterceptor {
 public:
  virtual ~AccessInterceptor() = default;
  virtual void OnVertexAccess(uint32_t server_id, VertexId vid) = 0;
};

struct GraphStoreOptions {
  kv::DBOptions db;
  DeviceModel* device = nullptr;  // charged once per logical vertex access
  uint32_t server_id = 0;
};

class GraphStore {
 public:
  static Result<std::unique_ptr<GraphStore>> Open(const std::string& dir,
                                                  GraphStoreOptions opts);

  // --- writes (ingest path) ---
  Status PutVertex(const VertexRecord& v);
  Status PutEdge(const EdgeRecord& e);
  Status DeleteVertex(VertexId vid);  // removes record + type index entry
  Status Flush() { return db_->Flush(); }
  Status Compact() { return db_->CompactAll(); }

  // --- reads (traversal path); each charges one device access. `warm`
  // marks a re-read within the same traversal (block-cache hit). ---
  Result<VertexRecord> GetVertex(VertexId vid, bool warm = false);

  // Iterates out-edges of `src` with type `label` in dst order.
  Status ScanEdges(VertexId src, LabelId label,
                   const std::function<bool(VertexId dst, const PropMap&)>& fn,
                   bool warm = false);

  // Iterates all out-edges of `src` grouped by type.
  Status ScanAllEdges(
      VertexId src,
      const std::function<bool(LabelId, VertexId dst, const PropMap&)>& fn,
      bool warm = false);

  // Iterates every vertex record on this shard (maintenance/export path;
  // does not charge the device model).
  Status ScanAllVertices(const std::function<bool(const VertexRecord&)>& fn);

  // Iterates every edge on this shard (maintenance/export path).
  Status ScanEverythingEdges(
      const std::function<bool(const EdgeRecord&)>& fn);

  // Iterates ids of all vertices with the given label (type index scan).
  // Charged as one access per returned vertex would be pessimistic; the
  // index is compact and sequential, so it charges once per scan.
  Status ScanVerticesByType(LabelId label, const std::function<bool(VertexId)>& fn);

  void SetInterceptor(AccessInterceptor* interceptor) { interceptor_ = interceptor; }

  uint64_t vertex_accesses() const { return vertex_accesses_.load(std::memory_order_relaxed); }
  void ResetAccessCount() { vertex_accesses_ = 0; }

  kv::DB* db() { return db_.get(); }
  uint32_t server_id() const { return opts_.server_id; }

 private:
  GraphStore(GraphStoreOptions opts, std::unique_ptr<kv::DB> db)
      : opts_(opts), db_(std::move(db)) {}

  // Charges one logical access of `bytes` bytes rooted at `vid`.
  void ChargeAccess(VertexId vid, uint64_t bytes, bool warm);

  GraphStoreOptions opts_;
  std::unique_ptr<kv::DB> db_;
  AccessInterceptor* interceptor_ = nullptr;
  std::atomic<uint64_t> vertex_accesses_{0};
};

}  // namespace gt::graph
