// GraphStore: the per-backend-server property-graph storage daemon. Wraps
// one embedded KV database (src/kv) with the key layout from encoding.h.
//
// Every *logical vertex access* (point lookup of a vertex record, or an edge
// scan rooted at a vertex) charges the simulated device model once — the
// access granularity the paper's evaluation instruments ("real I/O visits").
// An optional AccessInterceptor lets the straggler injector insert external
// delays into individual vertex accesses (Fig. 11 methodology).
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "src/common/device_model.h"
#include "src/common/status.h"
#include "src/graph/adjacency_cache.h"
#include "src/graph/encoding.h"
#include "src/kv/db.h"

namespace gt::graph {

// Called before the store performs a vertex access; implementations may
// sleep to emulate external interference.
class AccessInterceptor {
 public:
  virtual ~AccessInterceptor() = default;
  virtual void OnVertexAccess(uint32_t server_id, VertexId vid) = 0;
};

struct GraphStoreOptions {
  kv::DBOptions db;
  DeviceModel* device = nullptr;  // charged once per logical vertex access
  uint32_t server_id = 0;

  // Byte budget for the CSR adjacency cache (0 disables it entirely; every
  // edge scan then goes straight to the KV iterator stack).
  size_t adjacency_cache_bytes = 16 << 20;
};

class GraphStore {
 public:
  // Pinned point-in-time view of this store (see kv::DB::Snapshot). Reads
  // that take a non-null snapshot see exactly the graph at its sequence,
  // regardless of racing mutations, flushes or compactions.
  using ReadSnapshot = kv::DB::Snapshot;

  static Result<std::unique_ptr<GraphStore>> Open(const std::string& dir,
                                                  GraphStoreOptions opts);

  // Pins / releases a point-in-time view. Every pin must be released
  // exactly once; a live snapshot also pins compaction GC in the KV layer.
  const ReadSnapshot* GetSnapshot() { return db_->GetSnapshot(); }
  void ReleaseSnapshot(const ReadSnapshot* snap) { db_->ReleaseSnapshot(snap); }

  // --- writes (ingest path) ---
  Status PutVertex(const VertexRecord& v);
  Status PutEdge(const EdgeRecord& e);
  Status DeleteVertex(VertexId vid);  // removes record + type index entry
  Status Flush() { return db_->Flush(); }
  Status Compact() { return db_->CompactAll(); }

  // --- reads (traversal path); each charges one device access. `warm`
  // marks a re-read within the same traversal (block-cache hit). A non-null
  // `snap` bounds the read to that pinned view. ---
  Result<VertexRecord> GetVertex(VertexId vid, bool warm = false,
                                 const ReadSnapshot* snap = nullptr);

  // Existence probe (vertex record present and not deleted). Charges no
  // device access: it is the ingest path's referential-integrity check, not
  // a traversal read.
  bool HasVertex(VertexId vid, const ReadSnapshot* snap = nullptr);

  // One frontier batch of vertex point-reads resolved against a single KV
  // snapshot (DB::MultiGet): the memtable/table handshake is paid once for
  // the whole batch instead of once per vertex. Device accounting is
  // identical to calling GetVertex once per entry — one charge per vid with
  // that entry's `warm` flag — so the batch is a pure CPU-path optimization
  // and ablating it cannot move simulated-device numbers by itself.
  struct VertexLookup {
    VertexId vid = 0;
    bool warm = false;      // in: same semantics as GetVertex(vid, warm)
    bool found = false;     // out: false = absent/deleted (not an error)
    VertexRecord rec;       // out: valid when found
  };
  Status MultiGetVertices(std::vector<VertexLookup>* lookups,
                          const ReadSnapshot* snap = nullptr);

  // Iterates out-edges of `src` with type `label` in dst order. Served from
  // the adjacency cache when resident ((src,label) row, or a (src,all) row
  // filtered down); a miss scans the KV prefix once, building and caching
  // the row as a side effect. Cache hits charge the device the row's
  // original byte count at the warm (cache-hit) rate regardless of `warm` —
  // the row IS the cached copy — while misses charge cold/warm exactly as
  // before.
  Status ScanEdges(VertexId src, LabelId label,
                   const std::function<bool(VertexId dst, const PropMap&)>& fn,
                   bool warm = false, const ReadSnapshot* snap = nullptr);

  // Iterates all out-edges of `src` grouped by type. Same caching and
  // charging policy as ScanEdges, keyed on the (src, all-labels) row.
  Status ScanAllEdges(
      VertexId src,
      const std::function<bool(LabelId, VertexId dst, const PropMap&)>& fn,
      bool warm = false, const ReadSnapshot* snap = nullptr);

  // Eagerly builds an all-labels adjacency row for every vertex on this
  // shard from one bulk edge sweep (ingest/benchmark warm-up path; charges
  // no device accesses). Rows beyond the byte budget LRU out as usual.
  Status WarmAdjacency();

  // Iterates every vertex record on this shard (maintenance/export path;
  // does not charge the device model).
  Status ScanAllVertices(const std::function<bool(const VertexRecord&)>& fn,
                         const ReadSnapshot* snap = nullptr);

  // Iterates every edge on this shard (maintenance/export path).
  Status ScanEverythingEdges(const std::function<bool(const EdgeRecord&)>& fn,
                             const ReadSnapshot* snap = nullptr);

  // Iterates ids of all vertices with the given label (type index scan).
  // Charged as one access per returned vertex would be pessimistic; the
  // index is compact and sequential, so it charges once per scan, at the
  // cold rate the first time a traversal touches the index and at the warm
  // (cache-hit) rate on re-scans — the same warm semantics every other
  // traversal read has. The caller (the engine) tracks which travels have
  // already scanned which type and passes `warm` accordingly; the scan is
  // deliberately not routed through ChargeAccess because it is not rooted
  // at any single vertex (no interceptor hook, no vertex_accesses_ bump).
  Status ScanVerticesByType(LabelId label, const std::function<bool(VertexId)>& fn,
                            bool warm = false, const ReadSnapshot* snap = nullptr);

  // Type-index scan with a predicate pushed down over the vertex records
  // (planner pushdown: push_start_filters). The index yields candidate ids;
  // each candidate's record is read and handed to `pred`, and only passing
  // vertices reach `fn`. Charges one scan access for the index walk (like
  // ScanVerticesByType); the record reads are one sequential run over the
  // record keyspace when the candidates are dense there (a single access
  // covering the run's bytes — the pushdown's actual win: sequential scan
  // cost where a non-pushdown start pays a random point-read per root exec
  // at task time), or one batched MultiGet with ordinary per-vertex
  // accounting when they are sparse. Like the index walk, the sequential
  // run is not vertex-rooted, so it bypasses the per-vertex interceptor.
  Status ScanVerticesByTypeFiltered(
      LabelId label, const std::function<bool(const VertexRecord&)>& pred,
      const std::function<bool(VertexId)>& fn, bool warm = false,
      const ReadSnapshot* snap = nullptr);

  void SetInterceptor(AccessInterceptor* interceptor) { interceptor_ = interceptor; }

  uint64_t vertex_accesses() const { return vertex_accesses_.load(std::memory_order_relaxed); }
  void ResetAccessCount() { vertex_accesses_ = 0; }

  kv::DB* db() { return db_.get(); }
  uint32_t server_id() const { return opts_.server_id; }

  // Null when adjacency_cache_bytes == 0.
  AdjacencyCache* adjacency_cache() { return adj_cache_.get(); }

 private:
  GraphStore(GraphStoreOptions opts, std::unique_ptr<kv::DB> db);

  // Charges one logical access of `bytes` bytes rooted at `vid`.
  void ChargeAccess(VertexId vid, uint64_t bytes, bool warm);

  // Cache-free KV prefix scans: the adjacency_cache_bytes == 0 path, and
  // the fallback when a snapshot read cannot be served by any cached row.
  Status ScanEdgesUncached(VertexId src, LabelId label,
                           const std::function<bool(VertexId, const PropMap&)>& fn,
                           bool warm, const ReadSnapshot* snap);
  Status ScanAllEdgesUncached(
      VertexId src,
      const std::function<bool(LabelId, VertexId, const PropMap&)>& fn, bool warm,
      const ReadSnapshot* snap);

  // Scans the (src, label) KV prefix (label == kAllLabels: every label),
  // builds the CSR row, and inserts it into the cache. Never serves the
  // caller directly — callers re-serve from the returned row.
  Result<std::shared_ptr<const AdjacencyRow>> BuildRow(VertexId src, LabelId label);

  GraphStoreOptions opts_;
  std::unique_ptr<kv::DB> db_;
  std::unique_ptr<AdjacencyCache> adj_cache_;
  AccessInterceptor* interceptor_ = nullptr;
  std::atomic<uint64_t> vertex_accesses_{0};
};

}  // namespace gt::graph
