// GraphLoader: bulk-ingest path. Routes vertices and edges to the owning
// backend store via the Partitioner (edge-cut: out-edges live with their
// source vertex) and batches writes per store to amortize WAL overhead.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/graph/graph_store.h"
#include "src/graph/partitioner.h"

namespace gt::graph {

class GraphLoader {
 public:
  GraphLoader(const Partitioner* partitioner, std::vector<GraphStore*> stores,
              size_t batch_records = 512)
      : partitioner_(partitioner),
        stores_(std::move(stores)),
        batch_records_(batch_records),
        batches_(stores_.size()),
        batch_counts_(stores_.size(), 0) {}

  ~GraphLoader() { Finish().ok(); }

  Status AddVertex(const VertexRecord& v) {
    const uint32_t s = partitioner_->ServerFor(v.id);
    batches_[s].Put(VertexKey(v.id), EncodeVertexValue(v.label, v.props));
    batches_[s].Put(TypeIndexKey(v.label, v.id), "");
    vertices_++;
    return MaybeFlush(s, 2);
  }

  Status AddEdge(const EdgeRecord& e) {
    const uint32_t s = partitioner_->ServerFor(e.src);
    batches_[s].Put(EdgeKey(e.src, e.label, e.dst), EncodeEdgeValue(e.props));
    edges_++;
    return MaybeFlush(s, 1);
  }

  // Flushes all pending batches and the stores' memtables.
  Status Finish() {
    for (uint32_t s = 0; s < stores_.size(); s++) {
      GT_RETURN_IF_ERROR(FlushBatch(s));
    }
    for (auto* store : stores_) {
      GT_RETURN_IF_ERROR(store->Flush());
    }
    return Status::OK();
  }

  uint64_t vertices_loaded() const { return vertices_; }
  uint64_t edges_loaded() const { return edges_; }

 private:
  Status MaybeFlush(uint32_t s, size_t added) {
    batch_counts_[s] += added;
    if (batch_counts_[s] >= batch_records_) return FlushBatch(s);
    return Status::OK();
  }

  Status FlushBatch(uint32_t s) {
    if (batch_counts_[s] == 0) return Status::OK();
    GT_RETURN_IF_ERROR(stores_[s]->db()->Write(std::move(batches_[s])));
    batches_[s] = kv::WriteBatch();
    batch_counts_[s] = 0;
    return Status::OK();
  }

  const Partitioner* partitioner_;
  std::vector<GraphStore*> stores_;
  size_t batch_records_;
  std::vector<kv::WriteBatch> batches_;
  std::vector<size_t> batch_counts_;
  uint64_t vertices_ = 0;
  uint64_t edges_ = 0;
};

}  // namespace gt::graph
