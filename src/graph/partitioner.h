// Edge-cut partitioning: every vertex (with its out-edges) lives on the
// server selected by hashing its id — the strategy the paper adopts ("we
// focus on the edge-cut partition, as most graph databases do"). The
// interface is virtual so vertex-cut or range strategies can be plugged in.
#pragma once

#include <cstdint>

#include "src/common/hash.h"
#include "src/graph/encoding.h"

namespace gt::graph {

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual uint32_t num_servers() const = 0;
  virtual uint32_t ServerFor(VertexId vid) const = 0;
};

class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(uint32_t num_servers) : n_(num_servers == 0 ? 1 : num_servers) {}

  uint32_t num_servers() const override { return n_; }
  uint32_t ServerFor(VertexId vid) const override {
    return static_cast<uint32_t>(Mix64(vid) % n_);
  }

 private:
  uint32_t n_;
};

// Range partitioner: contiguous id ranges per server. Deliberately skew-prone
// on power-law graphs; used by the partitioning ablation.
class RangePartitioner final : public Partitioner {
 public:
  RangePartitioner(uint32_t num_servers, VertexId max_vid)
      : n_(num_servers == 0 ? 1 : num_servers),
        stride_((max_vid / n_) + 1) {}

  uint32_t num_servers() const override { return n_; }
  uint32_t ServerFor(VertexId vid) const override {
    const uint64_t s = vid / stride_;
    return static_cast<uint32_t>(s >= n_ ? n_ - 1 : s);
  }

 private:
  uint32_t n_;
  uint64_t stride_;
};

}  // namespace gt::graph
