// Property values and property maps attached to vertices and edges.
// A PropValue is one of {int64, double, string, bytes}; a PropMap is a small
// ordered list of (interned key id, value) pairs.
//
// Binary encodings are stable and used both in the KV store and on the RPC
// wire (filters ship comparison values to remote servers).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/codec.h"
#include "src/common/status.h"

namespace gt::graph {

// Bytes payloads are strings tagged with a distinct type so that equality
// and display semantics can differ from text.
struct Bytes {
  std::string data;
  bool operator==(const Bytes& o) const { return data == o.data; }
  auto operator<=>(const Bytes& o) const { return data <=> o.data; }
};

class PropValue {
 public:
  enum class Kind : uint8_t { kInt = 0, kDouble = 1, kString = 2, kBytes = 3 };

  PropValue() : v_(int64_t{0}) {}
  PropValue(int64_t v) : v_(v) {}              // NOLINT
  PropValue(int v) : v_(int64_t{v}) {}         // NOLINT
  PropValue(double v) : v_(v) {}               // NOLINT
  PropValue(std::string v) : v_(std::move(v)) {}  // NOLINT
  PropValue(const char* v) : v_(std::string(v)) {}  // NOLINT
  PropValue(Bytes v) : v_(std::move(v)) {}     // NOLINT

  Kind kind() const { return static_cast<Kind>(v_.index()); }

  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_bytes() const { return kind() == Kind::kBytes; }

  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Bytes& as_bytes() const { return std::get<Bytes>(v_); }

  bool operator==(const PropValue& o) const { return v_ == o.v_; }

  // Three-way comparison used by RANGE filters. Values of different kinds
  // order by kind tag (so comparisons are total but cross-kind ranges never
  // match in practice). Int/double compare numerically.
  int Compare(const PropValue& o) const {
    if (IsNumeric() && o.IsNumeric()) {
      const double a = AsNumber();
      const double b = o.AsNumber();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    if (kind() != o.kind()) return kind() < o.kind() ? -1 : 1;
    switch (kind()) {
      case Kind::kInt: {
        const int64_t a = as_int(), b = o.as_int();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      case Kind::kDouble: {
        const double a = as_double(), b = o.as_double();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      case Kind::kString:
        return as_string().compare(o.as_string());
      case Kind::kBytes:
        return as_bytes().data.compare(o.as_bytes().data);
    }
    return 0;
  }

  bool IsNumeric() const { return is_int() || is_double(); }
  double AsNumber() const { return is_int() ? static_cast<double>(as_int()) : as_double(); }

  void EncodeTo(std::string* out) const {
    out->push_back(static_cast<char>(kind()));
    switch (kind()) {
      case Kind::kInt:
        PutVarSigned64(out, as_int());
        break;
      case Kind::kDouble: {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(double));
        std::memcpy(&bits, &std::get<double>(v_), 8);
        PutFixed64(out, bits);
        break;
      }
      case Kind::kString:
        PutLengthPrefixed(out, as_string());
        break;
      case Kind::kBytes:
        PutLengthPrefixed(out, as_bytes().data);
        break;
    }
  }

  static bool DecodeFrom(CheckedReader* dec, PropValue* out) {
    uint8_t tag = 0;
    if (!dec->GetByte(&tag)) return false;
    switch (static_cast<Kind>(tag)) {
      case Kind::kInt: {
        int64_t v;
        if (!dec->GetVarSigned64(&v)) return false;
        *out = PropValue(v);
        return true;
      }
      case Kind::kDouble: {
        uint64_t bits;
        if (!dec->GetFixed64(&bits)) return false;
        double d;
        std::memcpy(&d, &bits, 8);
        *out = PropValue(d);
        return true;
      }
      case Kind::kString: {
        std::string_view s;
        if (!dec->GetLengthPrefixed(&s)) return false;
        *out = PropValue(std::string(s));
        return true;
      }
      case Kind::kBytes: {
        std::string_view s;
        if (!dec->GetLengthPrefixed(&s)) return false;
        *out = PropValue(Bytes{std::string(s)});
        return true;
      }
    }
    return false;
  }

  std::string ToString() const {
    switch (kind()) {
      case Kind::kInt: return std::to_string(as_int());
      case Kind::kDouble: return std::to_string(as_double());
      case Kind::kString: return as_string();
      case Kind::kBytes: return "<bytes:" + std::to_string(as_bytes().data.size()) + ">";
    }
    return "?";
  }

 private:
  std::variant<int64_t, double, std::string, Bytes> v_;
};

// Ordered (by insertion) list of properties with interned key ids.
class PropMap {
 public:
  using KeyId = uint32_t;

  void Set(KeyId key, PropValue value) {
    for (auto& [k, v] : entries_) {
      if (k == key) {
        v = std::move(value);
        return;
      }
    }
    entries_.emplace_back(key, std::move(value));
  }

  const PropValue* Find(KeyId key) const {
    for (const auto& [k, v] : entries_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  bool operator==(const PropMap& o) const { return entries_ == o.entries_; }

  void EncodeTo(std::string* out) const {
    PutVarint32(out, static_cast<uint32_t>(entries_.size()));
    for (const auto& [k, v] : entries_) {
      PutVarint32(out, k);
      v.EncodeTo(out);
    }
  }

  static bool DecodeFrom(CheckedReader* dec, PropMap* out) {
    out->entries_.clear();
    uint32_t n;
    // 2 = minimum encoded entry (key varint + value tag byte); bounds a
    // hostile count before the reserve.
    if (!dec->GetCount(&n, 2)) return false;
    out->entries_.reserve(n);
    for (uint32_t i = 0; i < n; i++) {
      uint32_t key;
      PropValue value;
      if (!dec->GetVarint32(&key) || !PropValue::DecodeFrom(dec, &value)) return false;
      out->entries_.emplace_back(key, std::move(value));
    }
    return true;
  }

 private:
  std::vector<std::pair<KeyId, PropValue>> entries_;
};

}  // namespace gt::graph
