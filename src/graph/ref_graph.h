// RefGraph: a simple in-memory property graph. Two roles:
//  1. staging structure for the generators (built once, then bulk-loaded
//     into the distributed stores), and
//  2. oracle for tests — the reference traversal evaluator runs against it
//     and its results are compared with the distributed engines'.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "src/graph/encoding.h"
#include "src/graph/ingest.h"

namespace gt::graph {

class RefGraph {
 public:
  void AddVertex(VertexRecord v) {
    by_type_[v.label].push_back(v.id);
    vertices_[v.id] = std::move(v);
  }

  // Upsert on (src, label, dst), mirroring the KV store's edge key: loading
  // the same edge twice replaces its properties (last writer wins), it does
  // not create a parallel edge. Without this the oracle would evaluate
  // filters against multigraph duplicates the stores cannot represent.
  // Returns true when a new edge was inserted, false on a property upsert —
  // generators use this to report resident (distinct) edge counts.
  bool AddEdge(EdgeRecord e) {
    auto& edges = adj_[e.src][e.label];
    for (auto& [dst, props] : edges) {
      if (dst == e.dst) {
        props = std::move(e.props);
        return false;
      }
    }
    edges.emplace_back(e.dst, std::move(e.props));
    num_edges_++;
    return true;
  }

  const VertexRecord* FindVertex(VertexId vid) const {
    auto it = vertices_.find(vid);
    return it == vertices_.end() ? nullptr : &it->second;
  }

  // Out-edges of `src` with type `label` (empty if none).
  const std::vector<std::pair<VertexId, PropMap>>& Edges(VertexId src, LabelId label) const {
    static const std::vector<std::pair<VertexId, PropMap>> kEmpty;
    auto it = adj_.find(src);
    if (it == adj_.end()) return kEmpty;
    auto jt = it->second.find(label);
    return jt == it->second.end() ? kEmpty : jt->second;
  }

  const std::vector<VertexId>& VerticesByType(LabelId label) const {
    static const std::vector<VertexId> kEmpty;
    auto it = by_type_.find(label);
    return it == by_type_.end() ? kEmpty : it->second;
  }

  const std::unordered_map<VertexId, VertexRecord>& vertices() const { return vertices_; }
  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return num_edges_; }

  // Bulk-loads the whole graph into the distributed stores.
  Status LoadInto(GraphLoader* loader) const {
    for (const auto& [vid, v] : vertices_) {
      GT_RETURN_IF_ERROR(loader->AddVertex(v));
    }
    for (const auto& [src, by_label] : adj_) {
      for (const auto& [label, edges] : by_label) {
        for (const auto& [dst, props] : edges) {
          EdgeRecord e;
          e.src = src;
          e.label = label;
          e.dst = dst;
          e.props = props;
          GT_RETURN_IF_ERROR(loader->AddEdge(e));
        }
      }
    }
    return loader->Finish();
  }

  // Out-degree distribution summary used by Table II-style reports.
  struct DegreeStats {
    uint64_t min = 0, max = 0;
    double mean = 0.0;
  };
  DegreeStats OutDegreeStats() const {
    DegreeStats st;
    if (vertices_.empty()) return st;
    uint64_t total = 0;
    bool first = true;
    for (const auto& [vid, v] : vertices_) {
      uint64_t d = 0;
      auto it = adj_.find(vid);
      if (it != adj_.end()) {
        for (const auto& [label, edges] : it->second) d += edges.size();
      }
      total += d;
      if (first) {
        st.min = st.max = d;
        first = false;
      } else {
        st.min = std::min(st.min, d);
        st.max = std::max(st.max, d);
      }
    }
    st.mean = static_cast<double>(total) / static_cast<double>(vertices_.size());
    return st;
  }

 private:
  std::unordered_map<VertexId, VertexRecord> vertices_;
  std::unordered_map<VertexId, std::map<LabelId, std::vector<std::pair<VertexId, PropMap>>>> adj_;
  std::unordered_map<LabelId, std::vector<VertexId>> by_type_;
  size_t num_edges_ = 0;
};

}  // namespace gt::graph
