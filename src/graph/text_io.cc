#include "src/graph/text_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace gt::graph {

namespace {

bool NeedsEscape(unsigned char c) {
  return c < 0x21 || c > 0x7e || c == '%' || c == '=';
}

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string EncodeValue(const PropValue& v) {
  switch (v.kind()) {
    case PropValue::Kind::kInt:
      return "i:" + std::to_string(v.as_int());
    case PropValue::Kind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "d:%.17g", v.as_double());
      return buf;
    }
    case PropValue::Kind::kString:
      return "s:" + EscapeText(v.as_string());
    case PropValue::Kind::kBytes: {
      std::string out = "b:";
      for (unsigned char c : v.as_bytes().data) {
        char buf[3];
        std::snprintf(buf, sizeof(buf), "%02x", c);
        out += buf;
      }
      return out;
    }
  }
  return "s:";
}

Result<PropValue> DecodeValue(const std::string& text) {
  if (text.size() >= 2 && text[1] == ':') {
    const std::string body = text.substr(2);
    switch (text[0]) {
      case 'i': {
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(body.c_str(), &end, 10);
        if (errno != 0 || end == body.c_str() || *end != '\0') {
          return Status::InvalidArgument("bad int value: " + text);
        }
        return PropValue(static_cast<int64_t>(v));
      }
      case 'd': {
        errno = 0;
        char* end = nullptr;
        const double v = std::strtod(body.c_str(), &end);
        if (errno != 0 || end == body.c_str() || *end != '\0') {
          return Status::InvalidArgument("bad double value: " + text);
        }
        return PropValue(v);
      }
      case 's': {
        auto raw = UnescapeText(body);
        if (!raw.ok()) return raw.status();
        return PropValue(*raw);
      }
      case 'b': {
        if (body.size() % 2 != 0) return Status::InvalidArgument("odd hex length");
        std::string bytes;
        bytes.reserve(body.size() / 2);
        for (size_t i = 0; i < body.size(); i += 2) {
          const int hi = HexVal(body[i]);
          const int lo = HexVal(body[i + 1]);
          if (hi < 0 || lo < 0) return Status::InvalidArgument("bad hex: " + text);
          bytes.push_back(static_cast<char>((hi << 4) | lo));
        }
        return PropValue(Bytes{std::move(bytes)});
      }
      default:
        break;
    }
  }
  // Untyped: treat as escaped string.
  auto raw = UnescapeText(text);
  if (!raw.ok()) return raw.status();
  return PropValue(*raw);
}

void WriteProps(std::ostream* out, const PropMap& props, const Catalog& catalog) {
  for (const auto& [key, value] : props) {
    *out << '\t' << EscapeText(catalog.Name(key).value_or("?")) << '='
         << EncodeValue(value);
  }
}

Result<PropMap> ParseProps(const std::vector<std::string>& fields, size_t from,
                           Catalog* catalog) {
  PropMap props;
  for (size_t i = from; i < fields.size(); i++) {
    const auto eq = fields[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("property without '=': " + fields[i]);
    }
    auto name = UnescapeText(fields[i].substr(0, eq));
    if (!name.ok()) return name.status();
    auto value = DecodeValue(fields[i].substr(eq + 1));
    if (!value.ok()) return value.status();
    props.Set(catalog->Intern(*name), std::move(*value));
  }
  return props;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t pos = 0;
  while (pos <= line.size()) {
    const size_t tab = line.find('\t', pos);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(pos));
      break;
    }
    fields.push_back(line.substr(pos, tab - pos));
    pos = tab + 1;
  }
  return fields;
}

Result<uint64_t> ParseId(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad id: " + text);
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

std::string EscapeText(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    if (NeedsEscape(c)) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

Result<std::string> UnescapeText(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); i++) {
    if (escaped[i] != '%') {
      out.push_back(escaped[i]);
      continue;
    }
    if (i + 2 >= escaped.size()) {
      return Status::InvalidArgument("truncated escape in: " + escaped);
    }
    const int hi = HexVal(escaped[i + 1]);
    const int lo = HexVal(escaped[i + 2]);
    if (hi < 0 || lo < 0) return Status::InvalidArgument("bad escape in: " + escaped);
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

Status ExportText(const RefGraph& g, const Catalog& catalog, std::ostream* out) {
  *out << "# GraphTrek text graph: " << g.num_vertices() << " vertices, "
       << g.num_edges() << " edges\n";

  // Vertices by id.
  std::map<VertexId, const VertexRecord*> ordered;
  for (const auto& [vid, rec] : g.vertices()) ordered.emplace(vid, &rec);
  for (const auto& [vid, rec] : ordered) {
    *out << "V\t" << vid << '\t' << EscapeText(catalog.Name(rec->label).value_or("?"));
    WriteProps(out, rec->props, catalog);
    *out << '\n';
  }
  // Out-edges per vertex, grouped by label (RefGraph stores them that way).
  for (const auto& [vid, rec] : ordered) {
    (void)rec;
    for (uint32_t label = 0; label < catalog.size(); label++) {
      for (const auto& [dst, props] : g.Edges(vid, label)) {
        *out << "E\t" << vid << '\t' << EscapeText(catalog.Name(label).value_or("?"))
             << '\t' << dst;
        WriteProps(out, props, catalog);
        *out << '\n';
      }
    }
  }
  if (!out->good()) return Status::IOError("text export stream failure");
  return Status::OK();
}

Result<RefGraph> ImportText(std::istream* in, Catalog* catalog) {
  RefGraph g;
  std::vector<EdgeRecord> pending_edges;
  std::string line;
  size_t lineno = 0;
  auto fail = [&](const std::string& why) {
    return Status::InvalidArgument("line " + std::to_string(lineno) + ": " + why);
  };

  while (std::getline(*in, line)) {
    lineno++;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = SplitTabs(line);
    if (fields[0] == "V") {
      if (fields.size() < 3) return fail("V needs <vid> <label>");
      auto vid = ParseId(fields[1]);
      if (!vid.ok()) return fail(vid.status().message());
      auto label = UnescapeText(fields[2]);
      if (!label.ok()) return fail(label.status().message());
      auto props = ParseProps(fields, 3, catalog);
      if (!props.ok()) return fail(props.status().message());
      if (g.FindVertex(*vid) != nullptr) return fail("duplicate vertex id");
      VertexRecord rec;
      rec.id = *vid;
      rec.label = catalog->Intern(*label);
      rec.props = std::move(*props);
      g.AddVertex(std::move(rec));
    } else if (fields[0] == "E") {
      if (fields.size() < 4) return fail("E needs <src> <label> <dst>");
      auto src = ParseId(fields[1]);
      auto label = UnescapeText(fields[2]);
      auto dst = ParseId(fields[3]);
      if (!src.ok() || !label.ok() || !dst.ok()) return fail("bad edge fields");
      auto props = ParseProps(fields, 4, catalog);
      if (!props.ok()) return fail(props.status().message());
      EdgeRecord rec;
      rec.src = *src;
      rec.label = catalog->Intern(*label);
      rec.dst = *dst;
      rec.props = std::move(*props);
      // Endpoint existence is validated after the whole file is read, so
      // edge lines may legally precede their vertices.
      pending_edges.push_back(std::move(rec));
    } else {
      return fail("unknown record type '" + fields[0] + "'");
    }
  }
  // Referential integrity: a dangling edge would count in num_edges() but
  // be invisible to every per-vertex walk (including re-export), silently
  // corrupting traversal and round-trip accounting.
  for (auto& e : pending_edges) {
    if (g.FindVertex(e.src) == nullptr || g.FindVertex(e.dst) == nullptr) {
      return Status::InvalidArgument(
          "edge " + std::to_string(e.src) + " -> " + std::to_string(e.dst) +
          " references a vertex that is not in the file");
    }
    g.AddEdge(std::move(e));
  }
  return g;
}

Status ExportTextFile(const RefGraph& g, const Catalog& catalog, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  return ExportText(g, catalog, &out);
}

Result<RefGraph> ImportTextFile(const std::string& path, Catalog* catalog) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  return ImportText(&in, catalog);
}

}  // namespace gt::graph
