// Portable line-oriented text format for property graphs — the
// import/export path for bringing external metadata (e.g. parsed I/O
// traces) into GraphTrek and for dumping graphs for inspection.
//
// Format (tab-separated; one record per line; '#' starts a comment):
//   V <vid> <label> [key=value ...]
//   E <src> <label> <dst> [key=value ...]
//
// Values are typed by prefix: i:<int64>, d:<double>, s:<string>, b:<hex
// bytes>; bare values parse as s:. Strings are %-escaped (%XX) for bytes
// outside the printable set plus '%', '=', tab and newline.
#pragma once

#include <iosfwd>

#include "src/common/status.h"
#include "src/graph/catalog.h"
#include "src/graph/ref_graph.h"

namespace gt::graph {

// Writes the whole graph. Deterministic order: vertices by id, then each
// vertex's out-edges grouped by label.
Status ExportText(const RefGraph& g, const Catalog& catalog, std::ostream* out);

// Parses a text graph, interning labels/keys into `catalog`. Lines that
// fail to parse abort the import with the 1-based line number in the error.
Result<RefGraph> ImportText(std::istream* in, Catalog* catalog);

// Convenience file wrappers.
Status ExportTextFile(const RefGraph& g, const Catalog& catalog, const std::string& path);
Result<RefGraph> ImportTextFile(const std::string& path, Catalog* catalog);

// Exposed for tests: string escaping used for s: values and names.
std::string EscapeText(const std::string& raw);
Result<std::string> UnescapeText(const std::string& escaped);

}  // namespace gt::graph
