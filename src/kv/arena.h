// Bump allocator backing the memtable's skip list. Allocations live until
// the arena is destroyed (i.e. until the memtable is flushed and dropped).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace gt::kv {

class Arena {
 public:
  static constexpr size_t kBlockSize = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes) {
    if (bytes <= avail_) {
      char* r = ptr_;
      ptr_ += bytes;
      avail_ -= bytes;
      mem_.fetch_add(bytes, std::memory_order_relaxed);
      return r;
    }
    return AllocateFallback(bytes);
  }

  // Aligned for pointer-bearing structures (skip list nodes).
  char* AllocateAligned(size_t bytes) {
    constexpr size_t align = alignof(std::max_align_t);
    const size_t mod = reinterpret_cast<uintptr_t>(ptr_) & (align - 1);
    const size_t slop = mod == 0 ? 0 : align - mod;
    if (bytes + slop <= avail_) {
      char* r = ptr_ + slop;
      ptr_ += bytes + slop;
      avail_ -= bytes + slop;
      mem_.fetch_add(bytes + slop, std::memory_order_relaxed);
      return r;
    }
    return AllocateFallback(bytes);  // fresh blocks are max-aligned
  }

  size_t MemoryUsage() const { return mem_.load(std::memory_order_relaxed); }

 private:
  char* AllocateFallback(size_t bytes) {
    if (bytes > kBlockSize / 4) {
      // Large allocation gets its own block; keeps current block usable.
      blocks_.push_back(std::make_unique<char[]>(bytes));
      mem_.fetch_add(bytes, std::memory_order_relaxed);
      return blocks_.back().get();
    }
    blocks_.push_back(std::make_unique<char[]>(kBlockSize));
    ptr_ = blocks_.back().get();
    avail_ = kBlockSize;
    char* r = ptr_;
    ptr_ += bytes;
    avail_ -= bytes;
    mem_.fetch_add(bytes, std::memory_order_relaxed);
    return r;
  }

  char* ptr_ = nullptr;
  size_t avail_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> mem_{0};
};

}  // namespace gt::kv
