#include "src/kv/block.h"

#include <cassert>
#include <cstring>

#include "src/common/codec.h"

namespace gt::kv {

void BlockBuilder::Add(Slice key, Slice value) {
  assert(!finished_);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    const size_t min_len = std::min(last_key_.size(), key.size());
    while (shared < min_len && last_key_[shared] == key[shared]) shared++;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  counter_++;
}

Slice BlockBuilder::Finish() {
  for (uint32_t r : restarts_) PutFixed32(&buffer_, r);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  last_key_.clear();
  finished_ = false;
}

// ---------------------------------------------------------------------------

Block::Block(std::string contents) : data_(std::move(contents)) {
  if (data_.size() < 4) return;
  uint32_t num_restarts = 0;
  CheckedReader count(data_.data() + data_.size() - 4, 4);
  if (!count.GetFixed32(&num_restarts)) return;
  const uint64_t trailer = 4ull + 4ull * num_restarts;
  if (trailer > data_.size()) return;  // num_restarts_ stays 0: unhealthy
  const uint32_t restarts_offset = static_cast<uint32_t>(data_.size() - trailer);
  // Reject hostile restart offsets up front: every one must land inside the
  // entry region, or RestartKey/SeekToRestart would compute out-of-bounds
  // cursors (and `restarts_offset_ - off` would underflow).
  CheckedReader offsets(data_.data() + restarts_offset, 4ull * num_restarts);
  for (uint32_t i = 0; i < num_restarts; i++) {
    uint32_t off = 0;
    if (!offsets.GetFixed32(&off) || off > restarts_offset) return;
  }
  num_restarts_ = num_restarts;
  restarts_offset_ = restarts_offset;
}

class Block::Iter final : public Iterator {
 public:
  Iter(const Block* block, const InternalKeyComparator* cmp)
      : block_(block), cmp_(cmp), current_(block->restarts_offset_) {}

  bool Valid() const override { return current_ < block_->restarts_offset_ && status_.ok(); }

  void SeekToFirst() override {
    if (block_->num_restarts_ == 0) {
      current_ = block_->restarts_offset_;
      return;
    }
    SeekToRestart(0);
    ParseNextEntry();
  }

  void Seek(Slice target) override {
    // Binary search over restart points for the last restart whose key is
    // < target, then scan forward linearly.
    if (block_->num_restarts_ == 0) {
      current_ = block_->restarts_offset_;
      return;
    }
    uint32_t left = 0;
    uint32_t right = block_->num_restarts_ - 1;
    while (left < right) {
      const uint32_t mid = (left + right + 1) / 2;
      Slice mid_key = RestartKey(mid);
      if (cmp_->Compare(mid_key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestart(left);
    ParseNextEntry();
    while (Valid() && cmp_->Compare(key(), target) < 0) Next();
  }

  void Next() override {
    assert(Valid());
    ParseNextEntry();
  }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  // Offset of restart point `index`. In bounds for index < num_restarts_;
  // the offset value itself was validated (<= restarts_offset_) by the
  // Block constructor.
  uint32_t RestartPoint(uint32_t index) const {
    CheckedReader dec(block_->data_.data() + block_->restarts_offset_ + 4 * index, 4);
    uint32_t off = 0;
    (void)dec.GetFixed32(&off);
    return off;
  }

  void SeekToRestart(uint32_t index) {
    key_.clear();
    next_offset_ = RestartPoint(index);
  }

  // Key at a restart point (shared length is always 0 there). An empty
  // slice on a truncated entry degrades the binary search, never the
  // memory safety: ParseNextEntry re-validates before any key is returned.
  Slice RestartKey(uint32_t index) {
    const uint32_t off = RestartPoint(index);
    CheckedReader dec(block_->data_.data() + off, block_->restarts_offset_ - off);
    uint32_t shared = 0, non_shared = 0, vlen = 0;
    std::string_view key;
    if (!dec.GetVarint32(&shared) || !dec.GetVarint32(&non_shared) ||
        !dec.GetVarint32(&vlen) || !dec.GetBytes(non_shared, &key)) {
      return Slice();
    }
    return Slice(key);
  }

  void ParseNextEntry() {
    current_ = next_offset_;
    if (current_ >= block_->restarts_offset_) return;  // end
    CheckedReader dec(block_->data_.data() + current_, block_->restarts_offset_ - current_);
    uint32_t shared = 0, non_shared = 0, vlen = 0;
    if (!dec.GetVarint32(&shared) || !dec.GetVarint32(&non_shared) || !dec.GetVarint32(&vlen) ||
        shared > key_.size()) {
      status_ = Status::Corruption("bad block entry");
      current_ = block_->restarts_offset_;
      return;
    }
    std::string_view key_delta, val;
    if (!dec.GetBytes(non_shared, &key_delta) || !dec.GetBytes(vlen, &val)) {
      status_ = Status::Corruption("truncated block entry");
      current_ = block_->restarts_offset_;
      return;
    }
    key_.resize(shared);
    key_.append(key_delta);
    value_ = Slice(val);
    next_offset_ = static_cast<uint32_t>(dec.data() - block_->data_.data());
  }

  const Block* block_;
  const InternalKeyComparator* cmp_;
  uint32_t current_;          // offset of current entry; == restarts_offset_ when invalid
  uint32_t next_offset_ = 0;  // offset of next entry
  std::string key_;
  Slice value_;
  Status status_;
};

std::unique_ptr<Iterator> Block::NewIterator(const InternalKeyComparator* cmp) const {
  auto it = std::make_unique<Iter>(this, cmp);
  // Start invalid; caller seeks.
  return it;
}

}  // namespace gt::kv
