// Sorted key/value block with prefix compression and restart points — the
// unit of storage inside a table file and the unit of caching.
//
// Entry:   varint32 shared | varint32 non_shared | varint32 vlen
//          | key_delta(non_shared) | value(vlen)
// Trailer: fixed32 * num_restarts (offsets) | fixed32 num_restarts
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/kv/dbformat.h"
#include "src/kv/iterator.h"
#include "src/kv/slice.h"

namespace gt::kv {

class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16) : restart_interval_(restart_interval) {
    restarts_.push_back(0);
  }

  // Keys must be added in strictly increasing internal-key order.
  void Add(Slice key, Slice value);

  // Appends the restart array + count and returns the finished block.
  Slice Finish();

  void Reset();
  size_t CurrentSizeEstimate() const {
    return buffer_.size() + restarts_.size() * 4 + 4;
  }
  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  std::string last_key_;
  bool finished_ = false;
};

// Immutable parsed block; owns its contents.
class Block {
 public:
  explicit Block(std::string contents);

  size_t size() const { return data_.size(); }
  bool healthy() const { return num_restarts_ > 0 || data_.size() == 4; }

  // Iterates entries; Seek positions at the first key >= target (internal
  // key order).
  std::unique_ptr<Iterator> NewIterator(const InternalKeyComparator* cmp) const;

 private:
  class Iter;
  std::string data_;
  uint32_t restarts_offset_ = 0;
  uint32_t num_restarts_ = 0;
};

}  // namespace gt::kv
