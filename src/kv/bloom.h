// Bloom filter over user keys, stored per table file. Double hashing from a
// single 64-bit hash (Kirsch–Mitzenmacher) gives k probe positions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/kv/slice.h"

namespace gt::kv {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key = 10) : bits_per_key_(bits_per_key) {
    // k = bits_per_key * ln2, clamped to [1, 30].
    k_ = static_cast<int>(bits_per_key * 0.69);
    if (k_ < 1) k_ = 1;
    if (k_ > 30) k_ = 30;
  }

  void AddKey(Slice key) { hashes_.push_back(HashBytes(key.view())); }

  size_t NumKeys() const { return hashes_.size(); }

  // Layout: bit array | k (1 byte).
  std::string Finish() const {
    size_t bits = hashes_.size() * static_cast<size_t>(bits_per_key_);
    if (bits < 64) bits = 64;
    const size_t bytes = (bits + 7) / 8;
    bits = bytes * 8;

    std::string out(bytes, '\0');
    for (uint64_t h : hashes_) {
      const uint64_t delta = (h >> 17) | (h << 47);
      for (int j = 0; j < k_; j++) {
        const uint64_t bitpos = h % bits;
        out[bitpos / 8] |= static_cast<char>(1 << (bitpos % 8));
        h += delta;
      }
    }
    out.push_back(static_cast<char>(k_));
    return out;
  }

 private:
  int bits_per_key_;
  int k_;
  std::vector<uint64_t> hashes_;
};

// Returns true if the key MAY be present (false positives possible, false
// negatives not). An empty/undersized filter matches everything.
inline bool BloomMayContain(Slice filter, Slice key) {
  if (filter.size() < 2) return true;
  const size_t bytes = filter.size() - 1;
  const size_t bits = bytes * 8;
  const int k = static_cast<unsigned char>(filter[filter.size() - 1]);
  if (k > 30) return true;  // reserved for future encodings

  uint64_t h = HashBytes(key.view());
  const uint64_t delta = (h >> 17) | (h << 47);
  for (int j = 0; j < k; j++) {
    const uint64_t bitpos = h % bits;
    if ((filter[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace gt::kv
