#include "src/kv/crash_env.h"

#include <memory>
#include <utility>

namespace gt::kv {

namespace {

Status CrashedError(const std::string& path) {
  return Status::IOError(path + ": simulated crash (CrashFaultEnv kill point reached)");
}

}  // namespace

// Counts and gates every mutating call, and moves the env's durable-length
// watermark only on successful Sync.
class CrashWritableFile final : public WritableFile {
 public:
  CrashWritableFile(CrashFaultEnv* env, std::string path, std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(Slice data) override {
    if (!env_->ConsumeOp()) return CrashedError(path_);
    return base_->Append(data);
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    if (!env_->ConsumeOp()) return CrashedError(path_);
    GT_RETURN_IF_ERROR(base_->Sync());
    env_->RecordSynced(path_, base_->size());
    return Status::OK();
  }

  // Closing an fd needs no disk write; it stays possible after the "crash".
  Status Close() override { return base_->Close(); }

  uint64_t size() const override { return base_->size(); }

 private:
  CrashFaultEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

void CrashFaultEnv::ArmKillPoint(uint64_t ops) {
  MutexLock lk(&mu_);
  armed_ = true;
  kill_at_ = ops_ + ops;
}

void CrashFaultEnv::CrashNow() {
  MutexLock lk(&mu_);
  crashed_ = true;
}

bool CrashFaultEnv::crashed() const {
  MutexLock lk(&mu_);
  return crashed_;
}

uint64_t CrashFaultEnv::op_count() const {
  MutexLock lk(&mu_);
  return ops_;
}

bool CrashFaultEnv::ConsumeOp() {
  MutexLock lk(&mu_);
  if (crashed_) return false;
  if (armed_ && ops_ >= kill_at_) {
    crashed_ = true;
    return false;
  }
  ops_++;
  return true;
}

void CrashFaultEnv::RecordSynced(const std::string& path, uint64_t bytes) {
  MutexLock lk(&mu_);
  synced_bytes_[path] = bytes;
}

std::string CrashFaultEnv::ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

Status CrashFaultEnv::ReadAll(const std::string& path, std::string* out) {
  out->clear();
  std::unique_ptr<SequentialFile> file;
  GT_RETURN_IF_ERROR(target()->NewSequentialFile(path, &file));
  char buf[4096];
  Slice chunk;
  do {
    GT_RETURN_IF_ERROR(file->Read(sizeof(buf), &chunk, buf));
    out->append(chunk.data(), chunk.size());
  } while (chunk.size() > 0);
  return Status::OK();
}

Status CrashFaultEnv::WriteAll(const std::string& path, const std::string& bytes) {
  std::unique_ptr<WritableFile> file;
  GT_RETURN_IF_ERROR(target()->NewWritableFile(path, &file));
  GT_RETURN_IF_ERROR(file->Append(bytes));
  return file->Close();
}

Status CrashFaultEnv::NewWritableFile(const std::string& path,
                                      std::unique_ptr<WritableFile>* out) {
  if (!ConsumeOp()) return CrashedError(path);
  const bool existed = target()->FileExists(path);
  std::unique_ptr<WritableFile> base;
  GT_RETURN_IF_ERROR(target()->NewWritableFile(path, &base));
  {
    MutexLock lk(&mu_);
    // O_TRUNC re-creation of an existing entry: entry already durable, but
    // the content must be re-synced from zero.
    synced_bytes_[path] = 0;
    if (!existed) {
      dir_journal_[ParentDir(path)].push_back(DirOp{DirOp::kCreate, path, "", "", false, 0});
    }
  }
  *out = std::make_unique<CrashWritableFile>(this, path, std::move(base));
  return Status::OK();
}

Status CrashFaultEnv::RemoveFile(const std::string& path) {
  if (!ConsumeOp()) return CrashedError(path);
  // Keep the bytes so an un-synced unlink can be undone at DropUnsynced.
  std::string saved;
  GT_RETURN_IF_ERROR(ReadAll(path, &saved));
  GT_RETURN_IF_ERROR(target()->RemoveFile(path));
  MutexLock lk(&mu_);
  DirOp op{DirOp::kRemove, path, "", std::move(saved), true, 0};
  auto it = synced_bytes_.find(path);
  // Pre-existing files (not written through this env) count as fully durable.
  op.saved_synced = it != synced_bytes_.end() ? it->second : op.saved.size();
  dir_journal_[ParentDir(path)].push_back(std::move(op));
  return Status::OK();
}

Status CrashFaultEnv::RenameFile(const std::string& from, const std::string& to) {
  if (!ConsumeOp()) return CrashedError(from);
  DirOp op{DirOp::kRename, from, to, "", false, 0};
  if (target()->FileExists(to)) {
    // The rename clobbers `to`; keep its bytes so the undo can restore them.
    GT_RETURN_IF_ERROR(ReadAll(to, &op.saved));
    op.had_saved = true;
    MutexLock lk(&mu_);
    auto it = synced_bytes_.find(to);
    op.saved_synced = it != synced_bytes_.end() ? it->second : op.saved.size();
  }
  GT_RETURN_IF_ERROR(target()->RenameFile(from, to));
  MutexLock lk(&mu_);
  auto it = synced_bytes_.find(from);
  if (it != synced_bytes_.end()) {
    synced_bytes_[to] = it->second;
    synced_bytes_.erase(from);
  }
  dir_journal_[ParentDir(to)].push_back(std::move(op));
  return Status::OK();
}

Status CrashFaultEnv::TruncateFile(const std::string& path, uint64_t size) {
  if (!ConsumeOp()) return CrashedError(path);
  GT_RETURN_IF_ERROR(target()->TruncateFile(path, size));
  MutexLock lk(&mu_);
  auto it = synced_bytes_.find(path);
  if (it != synced_bytes_.end() && it->second > size) it->second = size;
  return Status::OK();
}

Status CrashFaultEnv::SyncDir(const std::string& path) {
  if (!ConsumeOp()) return CrashedError(path);
  GT_RETURN_IF_ERROR(target()->SyncDir(path));
  MutexLock lk(&mu_);
  dir_journal_.erase(path);  // every entry op so far is now durable
  return Status::OK();
}

Status CrashFaultEnv::CreateDirIfMissing(const std::string& path) {
  if (!ConsumeOp()) return CrashedError(path);
  // Directory creation itself is modeled as durable (the harness creates the
  // DB dir before arming interesting kill points anyway).
  return target()->CreateDirIfMissing(path);
}

Status CrashFaultEnv::DropUnsynced() {
  // Snapshot + clear the tracking under the lock, then repair the real
  // filesystem without holding it (ReadAll/WriteAll take mu_-free paths).
  std::map<std::string, std::vector<DirOp>> journal;
  std::map<std::string, uint64_t> synced;
  {
    MutexLock lk(&mu_);
    journal.swap(dir_journal_);
    synced.swap(synced_bytes_);
  }

  // 1. Undo un-synced directory-entry operations, newest first, restoring
  //    the durable names. Later renames may depend on earlier creates, so
  //    strict reverse order matters.
  for (auto& [dir, ops] : journal) {
    (void)dir;
    for (auto rit = ops.rbegin(); rit != ops.rend(); ++rit) {
      const DirOp& op = *rit;
      switch (op.kind) {
        case DirOp::kCreate:
          if (target()->FileExists(op.a)) GT_RETURN_IF_ERROR(target()->RemoveFile(op.a));
          synced.erase(op.a);
          break;
        case DirOp::kRename:
          if (target()->FileExists(op.b)) {
            GT_RETURN_IF_ERROR(target()->RenameFile(op.b, op.a));
            auto it = synced.find(op.b);
            if (it != synced.end()) {
              synced[op.a] = it->second;
              synced.erase(it);
            }
          }
          if (op.had_saved) {
            GT_RETURN_IF_ERROR(WriteAll(op.b, op.saved));
            GT_RETURN_IF_ERROR(target()->TruncateFile(op.b, op.saved_synced));
            synced.erase(op.b);
          }
          break;
        case DirOp::kRemove:
          GT_RETURN_IF_ERROR(WriteAll(op.a, op.saved));
          GT_RETURN_IF_ERROR(target()->TruncateFile(op.a, op.saved_synced));
          synced.erase(op.a);
          break;
      }
    }
  }

  // 2. Drop every byte above the durable watermark of surviving files.
  for (const auto& [path, bytes] : synced) {
    if (!target()->FileExists(path)) continue;
    auto size = target()->FileSize(path);
    GT_RETURN_IF_ERROR(size.status());
    if (*size > bytes) GT_RETURN_IF_ERROR(target()->TruncateFile(path, bytes));
  }
  return Status::OK();
}

}  // namespace gt::kv
