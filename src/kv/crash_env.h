// CrashFaultEnv: an Env decorator that emulates power loss underneath the
// store, in the spirit of LevelDB's fault-injection test env.
//
// It forwards everything to a base Env while tracking, per file, how many
// bytes have been made durable (Sync), and, per directory, which entry
// operations (create / rename / remove) have happened since the directory
// was last fsync'd. Two controls drive a test:
//
//   - ArmKillPoint(n): the first n mutating operations succeed; operation
//     n+1 and everything after fail with IOError ("the kernel died").
//     Mutating operations are Append/Sync on writable files plus
//     NewWritableFile/RemoveFile/RenameFile/TruncateFile/SyncDir/
//     CreateDirIfMissing.
//   - DropUnsynced(): after the DB object is gone, rewinds the real
//     directory to what the disk would hold after the crash — every tracked
//     file is truncated to its synced length and every directory-entry
//     operation that was never followed by a SyncDir is undone (created
//     entries vanish, renames revert, removed files reappear). This is the
//     most adversarial POSIX-legal outcome: nothing un-synced survives.
//
// Model simplifications (documented, deliberately optimistic): re-creating
// an existing path with O_TRUNC treats the truncation as immediately
// durable, and file contents below the synced watermark never rot. Both are
// refinements the harness does not need to catch the bug classes in scope.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/kv/env.h"

namespace gt::kv {

class CrashFaultEnv final : public EnvWrapper {
 public:
  explicit CrashFaultEnv(Env* base) : EnvWrapper(base) {}

  // The next `ops` mutating operations succeed; everything after fails.
  void ArmKillPoint(uint64_t ops) GT_EXCLUDES(mu_);
  // Fails every mutating operation from now on.
  void CrashNow() GT_EXCLUDES(mu_);
  bool crashed() const GT_EXCLUDES(mu_);
  // Mutating operations observed so far (use an unarmed dry run to size a
  // kill-point sweep).
  uint64_t op_count() const GT_EXCLUDES(mu_);

  // Materializes the post-crash state on the real filesystem. Call only
  // after every file handle from this env has been destroyed.
  Status DropUnsynced() GT_EXCLUDES(mu_);

  Status NewWritableFile(const std::string& path, std::unique_ptr<WritableFile>* out) override
      GT_EXCLUDES(mu_);
  Status RemoveFile(const std::string& path) override GT_EXCLUDES(mu_);
  Status RenameFile(const std::string& from, const std::string& to) override GT_EXCLUDES(mu_);
  Status TruncateFile(const std::string& path, uint64_t size) override GT_EXCLUDES(mu_);
  Status SyncDir(const std::string& path) override GT_EXCLUDES(mu_);
  Status CreateDirIfMissing(const std::string& path) override GT_EXCLUDES(mu_);

 private:
  friend class CrashWritableFile;

  struct DirOp {
    enum Kind { kCreate, kRename, kRemove } kind;
    std::string a;              // created/removed path, or rename source
    std::string b;              // rename target
    std::string saved;          // removed file's bytes / clobbered rename target's bytes
    bool had_saved = false;     // whether `saved` is meaningful
    uint64_t saved_synced = 0;  // durable prefix of the saved bytes
  };

  // Consumes one mutating-op credit. False when the env has (just) crashed;
  // the caller must fail without side effects.
  bool ConsumeOp() GT_EXCLUDES(mu_);

  // Bookkeeping hooks called by CrashWritableFile.
  void RecordSynced(const std::string& path, uint64_t bytes) GT_EXCLUDES(mu_);

  static std::string ParentDir(const std::string& path);
  Status ReadAll(const std::string& path, std::string* out);
  Status WriteAll(const std::string& path, const std::string& bytes);

  mutable Mutex mu_;
  bool armed_ GT_GUARDED_BY(mu_) = false;
  bool crashed_ GT_GUARDED_BY(mu_) = false;
  uint64_t kill_at_ GT_GUARDED_BY(mu_) = 0;
  uint64_t ops_ GT_GUARDED_BY(mu_) = 0;
  // Durable length of every file written through this env.
  std::map<std::string, uint64_t> synced_bytes_ GT_GUARDED_BY(mu_);
  // Entry ops not yet covered by a SyncDir, per parent directory, in order.
  std::map<std::string, std::vector<DirOp>> dir_journal_ GT_GUARDED_BY(mu_);
};

}  // namespace gt::kv
