#include "src/kv/db.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/codec.h"
#include "src/common/logging.h"
#include "src/kv/filename.h"

namespace gt::kv {

namespace {

// Collapses internal-key versions into a live user-key view: first version
// (highest sequence) of each user key wins; tombstoned keys are skipped.
// `seq` bounds visibility: versions newer than it do not exist for this
// iterator (kMaxSequenceNumber = read the latest state).
class DBIter final : public Iterator {
 public:
  // `mem` pins the memtable the internal iterator reads (table iterators
  // pin their own Table; the memtable iterator holds only a raw pointer,
  // so without this ref a racing flush could free it mid-scan).
  DBIter(std::unique_ptr<Iterator> internal, std::shared_ptr<MemTable> mem,
         SequenceNumber seq = kMaxSequenceNumber)
      : it_(std::move(internal)), mem_(std::move(mem)), seq_(seq) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    it_->SeekToFirst();
    FindNextLiveEntry();
  }

  void Seek(Slice target) override {
    std::string ikey;
    AppendInternalKey(&ikey, target, seq_, kTypeValue);
    it_->Seek(ikey);
    FindNextLiveEntry();
  }

  void Next() override {
    SkipRemainingVersions();
    FindNextLiveEntry();
  }

  Slice key() const override { return ExtractUserKey(it_->key()); }
  Slice value() const override { return it_->value(); }
  Status status() const override { return it_->status(); }

 private:
  // Advances past all remaining versions of the current user key.
  void SkipRemainingVersions() {
    std::string current(key().data(), key().size());
    while (it_->Valid() && ExtractUserKey(it_->key()) == Slice(current)) it_->Next();
  }

  // Positions at the newest live (non-deleted) user key at/after current pos.
  void FindNextLiveEntry() {
    valid_ = false;
    while (it_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(it_->key(), &parsed)) {
        it_->Next();
        continue;
      }
      if (parsed.sequence > seq_) {
        // Written after the snapshot was pinned: invisible. Skip just this
        // version — an older, visible version of the same user key may
        // follow and is then the authoritative one.
        it_->Next();
        continue;
      }
      if (parsed.type == kTypeDeletion) {
        // Skip all versions of this deleted key.
        std::string dead(parsed.user_key.data(), parsed.user_key.size());
        while (it_->Valid() && ExtractUserKey(it_->key()) == Slice(dead)) it_->Next();
        continue;
      }
      valid_ = true;
      return;
    }
  }

  std::unique_ptr<Iterator> it_;
  std::shared_ptr<MemTable> mem_;
  const SequenceNumber seq_;
  bool valid_ = false;
};

// Emits every KvStats counter for one live DB instance into the process
// registry, labelled db=<instance>. Exposition-time only: the write paths
// keep touching the plain KvStats atomics.
metrics::CollectorId RegisterKvCollector(const std::string& label,
                                         const KvStats* stats) {
  auto* reg = metrics::Registry::Default();
  reg->DescribeFamily("gt_kv_block_cache_hits_total", metrics::MetricType::kCounter,
                      "Block reads served from the block cache.");
  reg->DescribeFamily("gt_kv_wal_fsyncs_total", metrics::MetricType::kCounter,
                      "WAL fdatasyncs paid before write acks (sync_wal).");
  reg->DescribeFamily("gt_kv_compaction_bytes_total", metrics::MetricType::kCounter,
                      "Output bytes written by compactions.");
  reg->DescribeFamily("gt_kv_file_op_errors_total", metrics::MetricType::kCounter,
                      "Failed best-effort file operations (dying disk).");
  return reg->AddCollector([label, stats](std::vector<metrics::Sample>* out) {
    const metrics::Labels l = {{"db", label}};
    auto counter = [&](const char* name, const std::atomic<uint64_t>& v) {
      out->push_back({name, l, static_cast<double>(v.load()),
                      metrics::MetricType::kCounter});
    };
    counter("gt_kv_puts_total", stats->puts);
    counter("gt_kv_deletes_total", stats->deletes);
    counter("gt_kv_gets_total", stats->gets);
    counter("gt_kv_get_hits_total", stats->get_hits);
    counter("gt_kv_block_reads_total", stats->block_reads);
    counter("gt_kv_block_cache_hits_total", stats->block_cache_hits);
    counter("gt_kv_bloom_negatives_total", stats->bloom_negatives);
    counter("gt_kv_flushes_total", stats->flushes);
    counter("gt_kv_compactions_total", stats->compactions);
    counter("gt_kv_compaction_bytes_total", stats->compaction_bytes);
    counter("gt_kv_bytes_written_total", stats->bytes_written);
    counter("gt_kv_bytes_read_total", stats->bytes_read);
    counter("gt_kv_wal_records_total", stats->wal_records);
    counter("gt_kv_wal_fsyncs_total", stats->wal_fsyncs);
    counter("gt_kv_wal_torn_tails_total", stats->wal_torn_tails);
    counter("gt_kv_manifest_edits_total", stats->manifest_edits);
    counter("gt_kv_manifest_rotations_total", stats->manifest_rotations);
    counter("gt_kv_orphans_swept_total", stats->orphans_swept);
    counter("gt_kv_file_op_errors_total", stats->file_op_errors);
    counter("gt_kv_snapshots_taken_total", stats->snapshots_taken);
    counter("gt_kv_snapshots_released_total", stats->snapshots_released);
    counter("gt_kv_snapshot_preserved_versions_total",
            stats->snapshot_preserved_versions);
  });
}

}  // namespace

DB::DB(std::string dir, DBOptions opts) : dir_(std::move(dir)), opts_(opts) {
  if (opts_.block_cache_bytes > 0) {
    block_cache_ = std::make_unique<LruCache<Block>>(opts_.block_cache_bytes);
  }
  mem_ = std::make_shared<MemTable>();
  compaction_pool_ = std::make_unique<ThreadPool>(1);
  std::string label = opts_.metrics_label;
  if (label.empty()) {
    const size_t slash = dir_.find_last_of('/');
    label = slash == std::string::npos ? dir_ : dir_.substr(slash + 1);
  }
  metrics_collector_ = RegisterKvCollector(label, &stats_);
}

DB::~DB() {
  metrics::Registry::Default()->RemoveCollector(metrics_collector_);
  {
    // Final flush so reopening recovers without a WAL replay of a large log.
    MutexLock lk(&write_mu_);
    Status s = FlushLocked();
    if (!s.ok()) {
      // Not fatal — the WAL still holds the data and replays on reopen — but
      // a flush that fails at shutdown usually means a dying disk.
      GT_WARN << "kv: final flush failed (WAL will replay on reopen): " << s.ToString();
      stats_.file_op_errors.fetch_add(1);
    }
  }
  WaitForCompaction();
  compaction_pool_->Shutdown();
}

bool DB::RemoveFileLogged(const std::string& path, const char* what) {
  Status s = opts_.env->RemoveFile(path);
  if (!s.ok() && !s.IsNotFound()) {
    GT_WARN << "kv: removing " << what << " " << path << " failed: " << s.ToString();
    stats_.file_op_errors.fetch_add(1);
    return false;
  }
  return true;
}

TableReadOptions DB::MakeTableReadOptions() {
  TableReadOptions topts;
  topts.block_cache = block_cache_.get();
  topts.stats = &stats_;
  topts.device = opts_.device;
  topts.bloom_bits_per_key = opts_.bloom_bits_per_key;
  return topts;
}

std::string DB::TablePath(uint64_t id) const { return dir_ + "/" + TableFileName(id); }

std::string DB::WalPath() const { return dir_ + "/" + kWalFileName; }

Result<std::unique_ptr<DB>> DB::Open(const std::string& dir, DBOptions opts) {
  GT_RETURN_IF_ERROR(opts.env->CreateDirIfMissing(dir));
  auto db = std::unique_ptr<DB>(new DB(dir, opts));
  GT_RETURN_IF_ERROR(db->Recover());
  return db;
}

Status DB::Recover() {
  Env* env = opts_.env;
  // Open-time only, so the locks are uncontended — but taking them keeps the
  // guarded-by contracts honest instead of opting Recover out of analysis.
  MutexLock lk(&write_mu_);

  // The manifest names the exact live table set. Directories from before the
  // manifest existed (no CURRENT) bootstrap it once from a directory glob —
  // the only place globbing is still allowed. The glob happens up front and
  // is handed to Manifest::Open so the legacy tables land in the initial
  // snapshot before CURRENT is created; logging them as an edit afterwards
  // would open a crash window in which a durable CURRENT names an empty
  // live set and the orphan sweep deletes every legacy table.
  std::vector<uint64_t> legacy_tables;
  if (!env->FileExists(dir_ + "/" + kCurrentFileName)) {
    std::vector<std::string> names;
    GT_RETURN_IF_ERROR(env->ListDir(dir_, &names));
    for (const auto& name : names) {
      uint64_t id;
      if (ParseTableFileName(name, &id)) legacy_tables.push_back(id);
    }
  }
  ManifestState mstate;
  auto manifest = Manifest::Open(env, dir_, &mstate, &stats_, legacy_tables);
  if (!manifest.ok()) return manifest.status();
  manifest_ = std::move(*manifest);

  // Delete crash leftovers before loading anything.
  SweepOrphans(mstate.live_tables);

  // Load live tables, newest (highest id) first. Ids are allocated in
  // install order, so descending id == newest data first.
  std::vector<uint64_t> ids = mstate.live_tables;
  std::sort(ids.rbegin(), ids.rend());
  next_file_id_ = std::max(next_file_id_, mstate.next_file_id);
  last_sequence_ = std::max(last_sequence_, mstate.last_sequence);
  std::vector<std::shared_ptr<Table>> tables;
  for (uint64_t id : ids) {
    auto table = Table::Open(env, TablePath(id), id, MakeTableReadOptions());
    if (!table.ok()) return table.status();
    tables.push_back(*table);
    next_file_id_ = std::max(next_file_id_, id + 1);
    // Legacy dirs have no sequence watermark in the manifest; recover it
    // from the newest version in each table.
    ParsedInternalKey parsed;
    if (ParseInternalKey(Slice((*table)->largest()), &parsed)) {
      last_sequence_ = std::max(last_sequence_, parsed.sequence);
    }
    if (ParseInternalKey(Slice((*table)->smallest()), &parsed)) {
      last_sequence_ = std::max(last_sequence_, parsed.sequence);
    }
  }
  std::shared_ptr<MemTable> mem;
  {
    MutexLock slk(&state_mu_);
    tables_ = std::move(tables);
    mem = mem_;
  }

  // Replay the WAL into the memtable. A torn final record (crash mid-append)
  // ends the log cleanly; corruption in the middle is fatal.
  if (env->FileExists(WalPath())) {
    std::unique_ptr<SequentialFile> file;
    GT_RETURN_IF_ERROR(env->NewSequentialFile(WalPath(), &file));
    WalReader reader(std::move(file));
    std::string scratch;
    Slice record;
    while (reader.ReadRecord(&scratch, &record)) {
      auto batch = WriteBatch::FromRep(record);
      if (!batch.ok()) return batch.status();
      GT_RETURN_IF_ERROR(batch->InsertInto(mem.get()));
      last_sequence_ = std::max(last_sequence_, batch->sequence() + batch->Count() - 1);
      stats_.wal_records.fetch_add(1);
    }
    GT_RETURN_IF_ERROR(reader.status());
    if (reader.tail_dropped()) {
      GT_WARN << "kv: dropped torn tail of " << WalPath() << " (crash mid-append)";
      stats_.wal_torn_tails.fetch_add(1);
    }
  }

  // Open (append is emulated by rewriting: flush replayed entries first so
  // truncating the WAL loses nothing).
  if (!mem->empty()) {
    GT_RETURN_IF_ERROR(FlushLocked());  // also starts a fresh WAL
  }
  if (wal_ == nullptr) {
    std::unique_ptr<WritableFile> wal_file;
    GT_RETURN_IF_ERROR(env->NewWritableFile(WalPath(), &wal_file));
    wal_ = std::make_unique<WalWriter>(std::move(wal_file));
  }
  // One directory sync covers every entry created above (first WAL, first
  // manifest) so a fresh store survives power loss from its first write on.
  return env->SyncDir(dir_);
}

void DB::SweepOrphans(const std::vector<uint64_t>& live_tables) {
  std::vector<std::string> names;
  Status s = opts_.env->ListDir(dir_, &names);
  if (!s.ok()) {
    GT_WARN << "kv: orphan sweep could not list " << dir_ << ": " << s.ToString();
    stats_.file_op_errors.fetch_add(1);
    return;
  }
  const std::unordered_set<uint64_t> live(live_tables.begin(), live_tables.end());
  const std::string current_manifest = manifest_->current_file_name();
  for (const auto& name : names) {
    uint64_t id = 0;
    bool orphan = false;
    if (IsTempFileName(name)) {
      orphan = true;  // half-written table/CURRENT from a crashed install
    } else if (ParseTableFileName(name, &id)) {
      orphan = live.count(id) == 0;  // e.g. compaction input whose delete was cut short
    } else if (ParseManifestFileName(name, &id)) {
      orphan = name != current_manifest;  // leftover of an interrupted rotation
    }
    if (orphan && RemoveFileLogged(dir_ + "/" + name, "orphan")) {
      stats_.orphans_swept.fetch_add(1);
    }
  }
}

Status DB::Put(Slice key, Slice value) {
  WriteBatch batch;
  batch.Put(key, value);
  stats_.puts.fetch_add(1);
  return Write(std::move(batch));
}

Status DB::Delete(Slice key) {
  WriteBatch batch;
  batch.Delete(key);
  stats_.deletes.fetch_add(1);
  return Write(std::move(batch));
}

Status DB::Write(WriteBatch batch) {
  MutexLock lk(&write_mu_);
  batch.SetSequence(last_sequence_ + 1);
  last_sequence_ += batch.Count();

  GT_RETURN_IF_ERROR(wal_->AddRecord(batch.rep()));
  if (opts_.sync_wal) {
    GT_RETURN_IF_ERROR(wal_->Sync());
    stats_.wal_fsyncs.fetch_add(1);
  }
  stats_.bytes_written.fetch_add(batch.rep().size());

  std::shared_ptr<MemTable> mem;
  {
    MutexLock slk(&state_mu_);
    mem = mem_;
  }
  GT_RETURN_IF_ERROR(batch.InsertInto(mem.get()));

  if (mem->ApproximateMemoryUsage() >= opts_.memtable_bytes) {
    GT_RETURN_IF_ERROR(FlushLocked());
  }
  return Status::OK();
}

Status DB::Flush() {
  MutexLock lk(&write_mu_);
  return FlushLocked();
}

Status DB::FlushLocked() {
  std::shared_ptr<MemTable> mem;
  {
    MutexLock slk(&state_mu_);
    mem = mem_;
  }
  if (mem->empty()) return Status::OK();

  const uint64_t id = next_file_id_++;
  const std::string path = TablePath(id);
  const std::string tmp = path + kTempSuffix;

  std::unique_ptr<WritableFile> file;
  GT_RETURN_IF_ERROR(opts_.env->NewWritableFile(tmp, &file));
  TableBuilder builder(std::move(file), opts_.block_size, opts_.bloom_bits_per_key);

  Status s;
  auto it = mem->NewIterator();
  for (it->SeekToFirst(); s.ok() && it->Valid(); it->Next()) {
    s = builder.Add(it->key(), it->value());
  }
  if (s.ok()) s = builder.Finish();  // syncs the table file before closing
  if (s.ok()) s = opts_.env->RenameFile(tmp, path);
  // The rename (and the entry itself) must be durable before the manifest
  // references the file, or recovery could chase a name that power loss
  // erased.
  if (s.ok()) s = opts_.env->SyncDir(dir_);
  if (!s.ok()) {
    RemoveFileLogged(tmp, "aborted flush output");  // don't leak the temp
    return s;
  }

  auto table = Table::Open(opts_.env, path, id, MakeTableReadOptions());
  if (!table.ok()) return table.status();

  // Durably install the table in the live set. Until this edit is synced the
  // WAL must stay intact, so the rotation below strictly follows it; if we
  // crash in between, replay simply rebuilds the same data (the orphaned
  // table file is swept at the next open).
  VersionEdit edit;
  edit.added_tables.push_back(id);
  edit.next_file_id = next_file_id_;
  edit.last_sequence = last_sequence_;
  GT_RETURN_IF_ERROR(manifest_->LogEdit(edit));

  bool trigger_compaction = false;
  {
    MutexLock slk(&state_mu_);
    tables_.insert(tables_.begin(), *table);
    mem_ = std::make_shared<MemTable>();
    trigger_compaction = opts_.background_compaction &&
                         static_cast<int>(tables_.size()) >= opts_.l0_compaction_trigger &&
                         !compaction_scheduled_;
    if (trigger_compaction) compaction_scheduled_ = true;
  }
  stats_.flushes.fetch_add(1);

  // Start a fresh WAL: everything in the old one is now durably installed in
  // the table (the manifest edit above is fsync'd before we get here).
  std::unique_ptr<WritableFile> wal_file;
  GT_RETURN_IF_ERROR(opts_.env->NewWritableFile(WalPath(), &wal_file));
  wal_ = std::make_unique<WalWriter>(std::move(wal_file));

  if (trigger_compaction) {
    compaction_pool_->Submit([this] {
      Status s = DoCompaction();
      if (!s.ok()) {
        GT_WARN << "background compaction failed: " << s.ToString();
      }
      MutexLock slk(&state_mu_);
      compaction_scheduled_ = false;
    });
  }
  return Status::OK();
}

Status DB::CompactAll() {
  WaitForCompaction();
  GT_RETURN_IF_ERROR(Flush());
  return DoCompaction();
}

void DB::WaitForCompaction() { compaction_pool_->Wait(); }

Status DB::DoCompaction() {
  MutexLock run_lk(&compaction_run_mu_);

  std::vector<std::shared_ptr<Table>> inputs;
  // Versions at or below the smallest live pinned sequence can be
  // collapsed to one per user key; everything newer must survive so every
  // snapshot keeps its view. No snapshots = collapse everything (the
  // pre-snapshot behavior). A snapshot pinned after this read is safe: its
  // sequence is >= every sequence in `inputs`, so it only needs each key's
  // newest input version — which is always kept — and it additionally pins
  // the input tables themselves via its ReadState.
  SequenceNumber smallest_snapshot = 0;
  {
    MutexLock lk(&write_mu_);
    smallest_snapshot = last_sequence_;
    MutexLock slk(&state_mu_);
    inputs = tables_;
    if (!snapshot_seqs_.empty()) smallest_snapshot = *snapshot_seqs_.begin();
  }
  if (inputs.size() <= 1) return Status::OK();

  // Merge all inputs, keeping for each user key its newest version plus
  // every version some live snapshot can still see (tombstones included);
  // with no snapshots this collapses to newest-version-only with tombstones
  // dropped (this is a full compaction: nothing older exists).
  InternalKeyComparator icmp;
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(inputs.size());
  for (auto& t : inputs) children.push_back(t->NewIterator());
  MergingIterator merged(&icmp, std::move(children));

  uint64_t id;
  uint64_t next_id_after;
  {
    MutexLock lk(&write_mu_);
    id = next_file_id_++;
    next_id_after = next_file_id_;
  }
  const std::string path = TablePath(id);
  const std::string tmp = path + kTempSuffix;
  std::unique_ptr<WritableFile> file;
  GT_RETURN_IF_ERROR(opts_.env->NewWritableFile(tmp, &file));
  TableBuilder builder(std::move(file), opts_.block_size, opts_.bloom_bits_per_key);

  Status s;
  std::string last_user_key;
  bool has_last = false;
  // Sequence of the previous (newer) version of the current user key;
  // kMaxSequenceNumber while positioned at a key's newest version.
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
  for (merged.SeekToFirst(); s.ok() && merged.Valid(); merged.Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(merged.key(), &parsed)) {
      s = Status::Corruption("bad key during compaction");
      break;
    }
    if (!has_last || parsed.user_key != Slice(last_user_key)) {
      last_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_last = true;
      last_sequence_for_key = kMaxSequenceNumber;
    }
    const bool newest_of_key = last_sequence_for_key == kMaxSequenceNumber;
    bool drop = false;
    if (last_sequence_for_key <= smallest_snapshot) {
      // A newer version at/below every live snapshot already shadows this
      // one at every visible horizon.
      drop = true;
    } else if (parsed.type == kTypeDeletion && parsed.sequence <= smallest_snapshot) {
      // Tombstone visible to every snapshot: this is a full compaction, so
      // no older version survives outside the inputs and the deletion
      // marker itself can vanish (its older versions drop via the rule
      // above on the next iterations).
      drop = true;
    }
    last_sequence_for_key = parsed.sequence;
    if (drop) continue;
    if (!newest_of_key || parsed.type == kTypeDeletion) {
      // Kept only because a live snapshot may still read it; without
      // snapshots the old collapse-to-newest rule would have dropped it.
      stats_.snapshot_preserved_versions.fetch_add(1);
    }
    s = builder.Add(merged.key(), merged.value());
  }
  if (s.ok()) s = merged.status();
  if (s.ok()) s = builder.Finish();  // syncs the table file before closing
  if (s.ok()) stats_.compaction_bytes.fetch_add(builder.FileSize());
  if (s.ok()) s = opts_.env->RenameFile(tmp, path);
  if (s.ok()) s = opts_.env->SyncDir(dir_);  // entry durable before the manifest names it
  if (!s.ok()) {
    RemoveFileLogged(tmp, "aborted compaction output");  // don't leak the temp
    return s;
  }

  auto table = Table::Open(opts_.env, path, id, MakeTableReadOptions());
  if (!table.ok()) return table.status();

  // One durable edit swaps the inputs for the output. Ordering is the heart
  // of the tombstone-resurrection fix: the output (which dropped tombstones)
  // only becomes live in the same fsync'd edit that retires the inputs, and
  // the input files are physically deleted strictly afterwards — a crash
  // anywhere in between leaves either the old live set or the new one, never
  // a recovery that re-reads retired inputs.
  VersionEdit edit;
  edit.added_tables.push_back(id);
  for (const auto& in : inputs) edit.removed_tables.push_back(in->file_id());
  edit.next_file_id = next_id_after;
  GT_RETURN_IF_ERROR(manifest_->LogEdit(edit));

  // Install: replace exactly the input tables; keep any tables flushed since
  // the snapshot (they are newer and must stay in front).
  std::vector<std::shared_ptr<Table>> obsolete;
  {
    MutexLock slk(&state_mu_);
    std::vector<std::shared_ptr<Table>> next;
    for (auto& t : tables_) {
      const bool was_input =
          std::any_of(inputs.begin(), inputs.end(),
                      [&](const auto& in) { return in->file_id() == t->file_id(); });
      if (!was_input) next.push_back(t);
    }
    next.push_back(*table);
    tables_.swap(next);
    obsolete = std::move(inputs);
  }
  stats_.compactions.fetch_add(1);

  for (auto& t : obsolete) {
    // Failures are non-fatal (the file is already retired in the manifest
    // and will be swept at the next open) but must not be invisible.
    RemoveFileLogged(TablePath(t->file_id()), "compaction input");
  }
  return Status::OK();
}

DB::ReadState DB::SnapshotState() const {
  MutexLock slk(&state_mu_);
  return ReadState{mem_, tables_};
}

const DB::Snapshot* DB::GetSnapshot() {
  // write_mu_ freezes last_sequence_ while the matching state is copied, so
  // the pinned view holds exactly the versions at seq (lock order:
  // write_mu_ -> state_mu_).
  MutexLock lk(&write_mu_);
  const SequenceNumber seq = last_sequence_;
  MutexLock slk(&state_mu_);
  snapshot_seqs_.insert(seq);
  stats_.snapshots_taken.fetch_add(1);
  return new Snapshot(seq, ReadState{mem_, tables_});
}

void DB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  {
    MutexLock slk(&state_mu_);
    auto it = snapshot_seqs_.find(snapshot->seq_);
    if (it != snapshot_seqs_.end()) snapshot_seqs_.erase(it);
    stats_.snapshots_released.fetch_add(1);
  }
  // Deleting outside state_mu_: dropping the pinned table refs can close
  // (and unlink-finalize) files, which has no business under the state lock.
  delete snapshot;
}

size_t DB::NumLiveSnapshots() const {
  MutexLock slk(&state_mu_);
  return snapshot_seqs_.size();
}

SequenceNumber DB::LastSequence() {
  MutexLock lk(&write_mu_);
  return last_sequence_;
}

Status DB::Get(Slice key, std::string* value, const Snapshot* snap) {
  stats_.gets.fetch_add(1);
  ReadState local;
  if (snap == nullptr) local = SnapshotState();
  const ReadState& state = snap != nullptr ? snap->state_ : local;
  const SequenceNumber seq = snap != nullptr ? snap->seq_ : kMaxSequenceNumber;
  Status s = GetFromState(state, key, value, seq);
  if (s.ok()) stats_.get_hits.fetch_add(1);
  return s;
}

Status DB::MultiGet(const std::vector<Slice>& keys,
                    std::vector<std::optional<std::string>>* values,
                    const Snapshot* snap) {
  values->assign(keys.size(), std::nullopt);
  if (keys.empty()) return Status::OK();
  stats_.gets.fetch_add(keys.size());
  ReadState local;
  if (snap == nullptr) local = SnapshotState();
  const ReadState& state = snap != nullptr ? snap->state_ : local;
  const SequenceNumber seq = snap != nullptr ? snap->seq_ : kMaxSequenceNumber;
  std::string value;
  for (size_t i = 0; i < keys.size(); ++i) {
    Status s = GetFromState(state, keys[i], &value, seq);
    if (s.ok()) {
      stats_.get_hits.fetch_add(1);
      (*values)[i] = std::move(value);
    } else if (!s.IsNotFound()) {
      return s;
    }
  }
  return Status::OK();
}

Status DB::GetFromState(const ReadState& state, Slice key, std::string* value,
                        SequenceNumber seq) {
  LookupKey lkey(key, seq);

  Status st;
  if (state.mem->Get(lkey, value, &st)) return st;

  for (const auto& table : state.tables) {
    bool found = false;
    bool deleted = false;
    Status s = table->Get(lkey.internal_key(), [&](const ParsedInternalKey& parsed, Slice v) {
      found = true;
      if (parsed.type == kTypeDeletion) {
        deleted = true;
      } else {
        value->assign(v.data(), v.size());
      }
    });
    if (s.ok() && found) return deleted ? Status::NotFound() : Status::OK();
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  return Status::NotFound();
}

std::unique_ptr<Iterator> DB::NewIterator(const Snapshot* snap) {
  ReadState local;
  if (snap == nullptr) local = SnapshotState();
  const ReadState& state = snap != nullptr ? snap->state_ : local;
  const SequenceNumber seq = snap != nullptr ? snap->seq_ : kMaxSequenceNumber;
  static const InternalKeyComparator icmp;

  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(state.mem->NewIterator());
  for (const auto& t : state.tables) children.push_back(t->NewIterator());
  auto merged = std::make_unique<MergingIterator>(&icmp, std::move(children));
  return std::make_unique<DBIter>(std::move(merged), state.mem, seq);
}

Status DB::ScanPrefix(Slice prefix, const std::function<bool(Slice, Slice)>& fn,
                      const Snapshot* snap) {
  auto it = NewIterator(snap);
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    if (!it->key().starts_with(prefix)) break;
    if (!fn(it->key(), it->value())) break;
  }
  return it->status();
}

size_t DB::NumTableFiles() const {
  MutexLock slk(&state_mu_);
  return tables_.size();
}

uint64_t DB::ApproximateMemtableBytes() const {
  MutexLock slk(&state_mu_);
  return mem_->ApproximateMemoryUsage();
}

}  // namespace gt::kv
