#include "src/kv/db.h"

#include <algorithm>
#include <cstdio>

#include "src/common/codec.h"
#include "src/common/logging.h"

namespace gt::kv {

namespace {

// Collapses internal-key versions into a live user-key view: first version
// (highest sequence) of each user key wins; tombstoned keys are skipped.
class DBIter final : public Iterator {
 public:
  DBIter(std::unique_ptr<Iterator> internal) : it_(std::move(internal)) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    it_->SeekToFirst();
    FindNextLiveEntry();
  }

  void Seek(Slice target) override {
    std::string ikey;
    AppendInternalKey(&ikey, target, kMaxSequenceNumber, kTypeValue);
    it_->Seek(ikey);
    FindNextLiveEntry();
  }

  void Next() override {
    SkipRemainingVersions();
    FindNextLiveEntry();
  }

  Slice key() const override { return ExtractUserKey(it_->key()); }
  Slice value() const override { return it_->value(); }
  Status status() const override { return it_->status(); }

 private:
  // Advances past all remaining versions of the current user key.
  void SkipRemainingVersions() {
    std::string current(key().data(), key().size());
    while (it_->Valid() && ExtractUserKey(it_->key()) == Slice(current)) it_->Next();
  }

  // Positions at the newest live (non-deleted) user key at/after current pos.
  void FindNextLiveEntry() {
    valid_ = false;
    while (it_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(it_->key(), &parsed)) {
        it_->Next();
        continue;
      }
      if (parsed.type == kTypeDeletion) {
        // Skip all versions of this deleted key.
        std::string dead(parsed.user_key.data(), parsed.user_key.size());
        while (it_->Valid() && ExtractUserKey(it_->key()) == Slice(dead)) it_->Next();
        continue;
      }
      valid_ = true;
      return;
    }
  }

  std::unique_ptr<Iterator> it_;
  bool valid_ = false;
};

bool ParseTableFileName(const std::string& name, uint64_t* id) {
  if (name.size() != 10 || name.substr(6) != ".sst") return false;
  uint64_t v = 0;
  for (int i = 0; i < 6; i++) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *id = v;
  return true;
}

}  // namespace

DB::DB(std::string dir, DBOptions opts) : dir_(std::move(dir)), opts_(opts) {
  if (opts_.block_cache_bytes > 0) {
    block_cache_ = std::make_unique<LruCache<Block>>(opts_.block_cache_bytes);
  }
  mem_ = std::make_shared<MemTable>();
  compaction_pool_ = std::make_unique<ThreadPool>(1);
}

DB::~DB() {
  {
    // Final flush so reopening recovers without a WAL replay of a large log.
    MutexLock lk(&write_mu_);
    FlushLocked().ok();
  }
  WaitForCompaction();
  compaction_pool_->Shutdown();
}

TableReadOptions DB::MakeTableReadOptions() {
  TableReadOptions topts;
  topts.block_cache = block_cache_.get();
  topts.stats = &stats_;
  topts.device = opts_.device;
  topts.bloom_bits_per_key = opts_.bloom_bits_per_key;
  return topts;
}

std::string DB::TableFileName(uint64_t id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.sst", static_cast<unsigned long long>(id));
  return dir_ + "/" + buf;
}

Result<std::unique_ptr<DB>> DB::Open(const std::string& dir, DBOptions opts) {
  GT_RETURN_IF_ERROR(opts.env->CreateDirIfMissing(dir));
  auto db = std::unique_ptr<DB>(new DB(dir, opts));
  GT_RETURN_IF_ERROR(db->Recover());
  return db;
}

Status DB::Recover() {
  Env* env = opts_.env;
  // Open-time only, so the locks are uncontended — but taking them keeps the
  // guarded-by contracts honest instead of opting Recover out of analysis.
  MutexLock lk(&write_mu_);

  // Load table files, newest (highest id) first.
  std::vector<std::string> names;
  GT_RETURN_IF_ERROR(env->ListDir(dir_, &names));
  std::vector<uint64_t> ids;
  for (const auto& name : names) {
    uint64_t id;
    if (ParseTableFileName(name, &id)) ids.push_back(id);
  }
  std::sort(ids.rbegin(), ids.rend());
  std::vector<std::shared_ptr<Table>> tables;
  for (uint64_t id : ids) {
    auto table = Table::Open(env, TableFileName(id), id, MakeTableReadOptions());
    if (!table.ok()) return table.status();
    tables.push_back(*table);
    next_file_id_ = std::max(next_file_id_, id + 1);
    // Recover the sequence counter from the newest version in each table.
    ParsedInternalKey parsed;
    if (ParseInternalKey(Slice((*table)->largest()), &parsed)) {
      last_sequence_ = std::max(last_sequence_, parsed.sequence);
    }
    if (ParseInternalKey(Slice((*table)->smallest()), &parsed)) {
      last_sequence_ = std::max(last_sequence_, parsed.sequence);
    }
  }
  std::shared_ptr<MemTable> mem;
  {
    MutexLock slk(&state_mu_);
    tables_ = std::move(tables);
    mem = mem_;
  }

  // Replay the WAL into the memtable.
  if (env->FileExists(WalFileName())) {
    std::unique_ptr<SequentialFile> file;
    GT_RETURN_IF_ERROR(env->NewSequentialFile(WalFileName(), &file));
    WalReader reader(std::move(file));
    std::string scratch;
    Slice record;
    while (reader.ReadRecord(&scratch, &record)) {
      auto batch = WriteBatch::FromRep(record);
      if (!batch.ok()) return batch.status();
      GT_RETURN_IF_ERROR(batch->InsertInto(mem.get()));
      last_sequence_ = std::max(last_sequence_, batch->sequence() + batch->Count() - 1);
      stats_.wal_records.fetch_add(1);
    }
    GT_RETURN_IF_ERROR(reader.status());
  }

  // Open (append is emulated by rewriting: flush replayed entries first so
  // truncating the WAL loses nothing).
  if (!mem->empty()) {
    GT_RETURN_IF_ERROR(FlushLocked());
  }
  std::unique_ptr<WritableFile> wal_file;
  GT_RETURN_IF_ERROR(env->NewWritableFile(WalFileName(), &wal_file));
  wal_ = std::make_unique<WalWriter>(std::move(wal_file));
  return Status::OK();
}

Status DB::Put(Slice key, Slice value) {
  WriteBatch batch;
  batch.Put(key, value);
  stats_.puts.fetch_add(1);
  return Write(std::move(batch));
}

Status DB::Delete(Slice key) {
  WriteBatch batch;
  batch.Delete(key);
  stats_.deletes.fetch_add(1);
  return Write(std::move(batch));
}

Status DB::Write(WriteBatch batch) {
  MutexLock lk(&write_mu_);
  batch.SetSequence(last_sequence_ + 1);
  last_sequence_ += batch.Count();

  GT_RETURN_IF_ERROR(wal_->AddRecord(batch.rep()));
  if (opts_.sync_wal) GT_RETURN_IF_ERROR(wal_->Sync());
  stats_.bytes_written.fetch_add(batch.rep().size());

  std::shared_ptr<MemTable> mem;
  {
    MutexLock slk(&state_mu_);
    mem = mem_;
  }
  GT_RETURN_IF_ERROR(batch.InsertInto(mem.get()));

  if (mem->ApproximateMemoryUsage() >= opts_.memtable_bytes) {
    GT_RETURN_IF_ERROR(FlushLocked());
  }
  return Status::OK();
}

Status DB::Flush() {
  MutexLock lk(&write_mu_);
  return FlushLocked();
}

Status DB::FlushLocked() {
  std::shared_ptr<MemTable> mem;
  {
    MutexLock slk(&state_mu_);
    mem = mem_;
  }
  if (mem->empty()) return Status::OK();

  const uint64_t id = next_file_id_++;
  const std::string path = TableFileName(id);
  const std::string tmp = path + ".tmp";

  std::unique_ptr<WritableFile> file;
  GT_RETURN_IF_ERROR(opts_.env->NewWritableFile(tmp, &file));
  TableBuilder builder(std::move(file), opts_.block_size, opts_.bloom_bits_per_key);

  auto it = mem->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    GT_RETURN_IF_ERROR(builder.Add(it->key(), it->value()));
  }
  GT_RETURN_IF_ERROR(builder.Finish());
  GT_RETURN_IF_ERROR(opts_.env->RenameFile(tmp, path));

  auto table = Table::Open(opts_.env, path, id, MakeTableReadOptions());
  if (!table.ok()) return table.status();

  bool trigger_compaction = false;
  {
    MutexLock slk(&state_mu_);
    tables_.insert(tables_.begin(), *table);
    mem_ = std::make_shared<MemTable>();
    trigger_compaction = opts_.background_compaction &&
                         static_cast<int>(tables_.size()) >= opts_.l0_compaction_trigger &&
                         !compaction_scheduled_;
    if (trigger_compaction) compaction_scheduled_ = true;
  }
  stats_.flushes.fetch_add(1);

  // Start a fresh WAL: everything in the old one is now durable in the table.
  std::unique_ptr<WritableFile> wal_file;
  GT_RETURN_IF_ERROR(opts_.env->NewWritableFile(WalFileName(), &wal_file));
  wal_ = std::make_unique<WalWriter>(std::move(wal_file));

  if (trigger_compaction) {
    compaction_pool_->Submit([this] {
      Status s = DoCompaction();
      if (!s.ok()) {
        GT_WARN << "background compaction failed: " << s.ToString();
      }
      MutexLock slk(&state_mu_);
      compaction_scheduled_ = false;
    });
  }
  return Status::OK();
}

Status DB::CompactAll() {
  WaitForCompaction();
  GT_RETURN_IF_ERROR(Flush());
  return DoCompaction();
}

void DB::WaitForCompaction() { compaction_pool_->Wait(); }

Status DB::DoCompaction() {
  MutexLock run_lk(&compaction_run_mu_);

  std::vector<std::shared_ptr<Table>> inputs;
  {
    MutexLock slk(&state_mu_);
    inputs = tables_;
  }
  if (inputs.size() <= 1) return Status::OK();

  // Merge all inputs, keeping only the newest version of each user key and
  // dropping tombstones (this is a full compaction: nothing older exists).
  InternalKeyComparator icmp;
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(inputs.size());
  for (auto& t : inputs) children.push_back(t->NewIterator());
  MergingIterator merged(&icmp, std::move(children));

  uint64_t id;
  {
    MutexLock lk(&write_mu_);
    id = next_file_id_++;
  }
  const std::string path = TableFileName(id);
  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> file;
  GT_RETURN_IF_ERROR(opts_.env->NewWritableFile(tmp, &file));
  TableBuilder builder(std::move(file), opts_.block_size, opts_.bloom_bits_per_key);

  std::string last_user_key;
  bool has_last = false;
  for (merged.SeekToFirst(); merged.Valid(); merged.Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(merged.key(), &parsed)) {
      return Status::Corruption("bad key during compaction");
    }
    if (has_last && parsed.user_key == Slice(last_user_key)) continue;  // shadowed
    last_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
    has_last = true;
    if (parsed.type == kTypeDeletion) continue;  // drop tombstone
    GT_RETURN_IF_ERROR(builder.Add(merged.key(), merged.value()));
  }
  GT_RETURN_IF_ERROR(merged.status());
  GT_RETURN_IF_ERROR(builder.Finish());
  GT_RETURN_IF_ERROR(opts_.env->RenameFile(tmp, path));

  auto table = Table::Open(opts_.env, path, id, MakeTableReadOptions());
  if (!table.ok()) return table.status();

  // Install: replace exactly the input tables; keep any tables flushed since
  // the snapshot (they are newer and must stay in front).
  std::vector<std::shared_ptr<Table>> obsolete;
  {
    MutexLock slk(&state_mu_);
    std::vector<std::shared_ptr<Table>> next;
    for (auto& t : tables_) {
      const bool was_input =
          std::any_of(inputs.begin(), inputs.end(),
                      [&](const auto& in) { return in->file_id() == t->file_id(); });
      if (!was_input) next.push_back(t);
    }
    next.push_back(*table);
    tables_.swap(next);
    obsolete = std::move(inputs);
  }
  stats_.compactions.fetch_add(1);

  for (auto& t : obsolete) {
    opts_.env->RemoveFile(TableFileName(t->file_id())).ok();
  }
  return Status::OK();
}

DB::ReadState DB::SnapshotState() const {
  MutexLock slk(&state_mu_);
  return ReadState{mem_, tables_};
}

Status DB::Get(Slice key, std::string* value) {
  stats_.gets.fetch_add(1);
  ReadState state = SnapshotState();
  Status s = GetFromState(state, key, value);
  if (s.ok()) stats_.get_hits.fetch_add(1);
  return s;
}

Status DB::GetFromState(const ReadState& state, Slice key, std::string* value) {
  LookupKey lkey(key, kMaxSequenceNumber);

  Status st;
  if (state.mem->Get(lkey, value, &st)) return st;

  for (const auto& table : state.tables) {
    bool found = false;
    bool deleted = false;
    Status s = table->Get(lkey.internal_key(), [&](const ParsedInternalKey& parsed, Slice v) {
      found = true;
      if (parsed.type == kTypeDeletion) {
        deleted = true;
      } else {
        value->assign(v.data(), v.size());
      }
    });
    if (s.ok() && found) return deleted ? Status::NotFound() : Status::OK();
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  return Status::NotFound();
}

std::unique_ptr<Iterator> DB::NewIterator() {
  ReadState state = SnapshotState();
  static const InternalKeyComparator icmp;

  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(state.mem->NewIterator());
  for (auto& t : state.tables) children.push_back(t->NewIterator());
  auto merged = std::make_unique<MergingIterator>(&icmp, std::move(children));
  return std::make_unique<DBIter>(std::move(merged));
}

Status DB::ScanPrefix(Slice prefix, const std::function<bool(Slice, Slice)>& fn) {
  auto it = NewIterator();
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    if (!it->key().starts_with(prefix)) break;
    if (!fn(it->key(), it->value())) break;
  }
  return it->status();
}

size_t DB::NumTableFiles() const {
  MutexLock slk(&state_mu_);
  return tables_.size();
}

uint64_t DB::ApproximateMemtableBytes() const {
  MutexLock slk(&state_mu_);
  return mem_->ApproximateMemoryUsage();
}

}  // namespace gt::kv
