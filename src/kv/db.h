// Embedded ordered key/value store — the storage engine under each
// GraphTrek backend server (the role RocksDB plays in the paper).
//
// Architecture: a write-ahead log + arena skip-list memtable; memtables are
// flushed to immutable sorted-table files (newest first); a background
// compaction merges table files into a single run and drops shadowed
// versions and tombstones that no pinned snapshot can still see. Readers
// are lock-free against writers: they operate on a shared_ptr snapshot of
// {memtable, table list}; GetSnapshot() pins such a view together with a
// sequence-number ceiling for repeatable point-in-time reads.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/device_model.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/common/thread_pool.h"
#include "src/kv/dbformat.h"
#include "src/kv/env.h"
#include "src/kv/iterator.h"
#include "src/kv/lru_cache.h"
#include "src/kv/manifest.h"
#include "src/kv/memtable.h"
#include "src/kv/stats.h"
#include "src/kv/table.h"
#include "src/kv/wal.h"
#include "src/kv/write_batch.h"

namespace gt::kv {

struct DBOptions {
  Env* env = Env::Default();
  size_t memtable_bytes = 4 << 20;
  size_t block_size = 4096;
  size_t block_cache_bytes = 8 << 20;  // 0 disables the block cache
  int bloom_bits_per_key = 10;
  int l0_compaction_trigger = 4;  // table-file count that triggers compaction

  // Durability contract. Structural durability is unconditional: table files
  // are fsync'd before install, installs are recorded in a fsync'd MANIFEST,
  // and the parent directory is fsync'd after every create/rename — so a
  // crash at any instant can never resurrect deleted keys, load a
  // half-written table, or leave the store unopenable. sync_wal controls
  // only the durability of *individual writes*:
  //   sync_wal = true   every acked Put/Delete/Write is fdatasync'd in the
  //                     WAL before it returns; power loss loses nothing
  //                     that was acknowledged.
  //   sync_wal = false  (default) writes since the last flush ride the OS
  //                     page cache; power loss rolls the store back to a
  //                     consistent earlier point (at worst the last table
  //                     install), never to a torn or mixed state.
  // The per-call-site fsync matrix lives in DESIGN.md ("Durability & crash
  // recovery").
  bool sync_wal = false;
  bool background_compaction = true;
  DeviceModel* device = nullptr;  // charged per cold block read (optional)

  // `db` label this instance reports under in the process metrics registry
  // (gt_kv_* families). Empty: the basename of the DB directory.
  std::string metrics_label;
};

class DB {
 public:
  // Opens (creating if missing) a DB in `dir`, recovering table files and
  // replaying the WAL.
  static Result<std::unique_ptr<DB>> Open(const std::string& dir, DBOptions opts = {});

  ~DB();
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status Put(Slice key, Slice value);
  Status Delete(Slice key);
  Status Write(WriteBatch batch);

  // A pinned, immutable point-in-time view of the store: the sequence
  // number at pin time plus the {memtable, table list} version that held
  // it. Reads through a snapshot see exactly the versions visible at that
  // sequence — writes, flushes and compactions that land afterwards are
  // invisible. Obtained from GetSnapshot(); must be handed back to
  // ReleaseSnapshot() (a live snapshot also pins compaction garbage
  // collection, see DoCompaction).
  class Snapshot;

  // Pins the current view. Never fails; the caller owns the registration
  // and must release it exactly once.
  const Snapshot* GetSnapshot();
  void ReleaseSnapshot(const Snapshot* snapshot);

  // Sequence number of the most recent write — the visibility horizon a
  // snapshot pinned right now would get.
  SequenceNumber LastSequence();

  // Reads the newest live version; NotFound if absent or deleted. A
  // non-null `snap` bounds the read to the snapshot's sequence.
  Status Get(Slice key, std::string* value, const Snapshot* snap = nullptr);

  // Point-reads a batch of keys against ONE snapshot of the memtable/table
  // stack — the version-set handshake (mutex + shared_ptr copies) is paid
  // once instead of once per key. (*values)[i] is nullopt for keys that are
  // absent or deleted. Callers get the best locality by passing keys in
  // sorted order, but any order is correct. Only I/O errors are returned;
  // per-key NotFound is expressed through the nullopt slot.
  Status MultiGet(const std::vector<Slice>& keys,
                  std::vector<std::optional<std::string>>* values,
                  const Snapshot* snap = nullptr);

  // Iterator over live user keys in ascending order. key() is the user key.
  // A non-null `snap` yields the keys live at the snapshot's sequence.
  std::unique_ptr<Iterator> NewIterator(const Snapshot* snap = nullptr);

  // Calls fn(key, value) for every live key starting with `prefix`, in
  // order; stops early if fn returns false.
  Status ScanPrefix(Slice prefix, const std::function<bool(Slice, Slice)>& fn,
                    const Snapshot* snap = nullptr);

  // Forces the memtable to a table file (no-op when empty).
  Status Flush();

  // Merges all table files into one run, dropping shadowed versions and
  // tombstones no live snapshot can see. Blocks until done.
  Status CompactAll();

  // Blocks until any scheduled background compaction has finished.
  void WaitForCompaction();

  const KvStats& stats() const { return stats_; }
  KvStats& mutable_stats() { return stats_; }
  size_t NumTableFiles() const;
  uint64_t ApproximateMemtableBytes() const;
  size_t NumLiveSnapshots() const;

 private:
  struct ReadState {
    std::shared_ptr<MemTable> mem;
    std::vector<std::shared_ptr<Table>> tables;  // newest first
  };

  DB(std::string dir, DBOptions opts);

  Status Recover() GT_EXCLUDES(write_mu_, state_mu_);
  Status FlushLocked() GT_REQUIRES(write_mu_);
  Status DoCompaction() GT_EXCLUDES(compaction_run_mu_, write_mu_, state_mu_);
  // Deletes crash leftovers at open: *.tmp files, table files the manifest
  // does not reference (e.g. compaction inputs whose deletion was cut short
  // — reloading those is what used to resurrect tombstoned keys), and stale
  // MANIFEST-* from interrupted rotations.
  void SweepOrphans(const std::vector<uint64_t>& live_tables);
  // Removes `path` best-effort; failures are logged and counted in stats
  // (recovery re-sweeps them) instead of being silently dropped. Returns
  // true when the file is gone.
  bool RemoveFileLogged(const std::string& path, const char* what);
  std::string TablePath(uint64_t id) const;
  std::string WalPath() const;
  ReadState SnapshotState() const GT_EXCLUDES(state_mu_);
  Status GetFromState(const ReadState& state, Slice key, std::string* value,
                      SequenceNumber seq);
  TableReadOptions MakeTableReadOptions();

  const std::string dir_;
  const DBOptions opts_;
  std::unique_ptr<LruCache<Block>> block_cache_;
  KvStats stats_;
  metrics::CollectorId metrics_collector_ = 0;  // registry hookup (ctor/dtor)

  // Lock order (outermost first): compaction_run_mu_ -> write_mu_ -> state_mu_.
  // Manifest::mu_ is a leaf below all three (LogEdit is called with write_mu_
  // held on the flush path and with only compaction_run_mu_ held on the
  // compaction path, and never calls back into the DB).

  // Set once during Recover (before any other thread exists), then
  // effectively const; Manifest serializes its own writers internally.
  std::unique_ptr<Manifest> manifest_;

  // Serializes writers (Put/Delete/Write/Flush).
  Mutex write_mu_;
  std::unique_ptr<WalWriter> wal_ GT_GUARDED_BY(write_mu_);
  SequenceNumber last_sequence_ GT_GUARDED_BY(write_mu_) = 0;
  uint64_t next_file_id_ GT_GUARDED_BY(write_mu_) = 1;

  // Guards read-state swaps; readers copy the shared_ptrs under this lock.
  mutable Mutex state_mu_;
  std::shared_ptr<MemTable> mem_ GT_GUARDED_BY(state_mu_);
  std::vector<std::shared_ptr<Table>> tables_ GT_GUARDED_BY(state_mu_);  // newest first
  // Sequence numbers of live pinned snapshots (multiset: the same seq can
  // be pinned by several travels). The smallest entry bounds what
  // compaction may garbage-collect.
  std::multiset<SequenceNumber> snapshot_seqs_ GT_GUARDED_BY(state_mu_);

  std::unique_ptr<ThreadPool> compaction_pool_;
  bool compaction_scheduled_ GT_GUARDED_BY(state_mu_) = false;
  Mutex compaction_run_mu_;  // at most one compaction at a time
};

// Immutable once constructed: the pinned {memtable, table list} version
// keeps every file a reader may need alive (tables hold their fd open, so
// even inputs a later compaction unlinks stay readable), and the sequence
// bound hides every version written after the pin. Thread-safe to read
// from concurrently; destroyed only via DB::ReleaseSnapshot.
class DB::Snapshot {
 public:
  SequenceNumber sequence() const { return seq_; }

 private:
  friend class DB;
  Snapshot(SequenceNumber seq, ReadState state)
      : seq_(seq), state_(std::move(state)) {}

  const SequenceNumber seq_;
  const ReadState state_;
};

}  // namespace gt::kv
