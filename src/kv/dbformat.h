// Internal key format shared by the memtable, tables and iterators.
//
// InternalKey := user_key | fixed64le((sequence << 8) | value_type)
//
// Ordering: ascending user key, then DESCENDING sequence, so the newest
// version of a key is encountered first by forward iteration.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/codec.h"
#include "src/kv/slice.h"

namespace gt::kv {

using SequenceNumber = uint64_t;
constexpr SequenceNumber kMaxSequenceNumber = (1ULL << 56) - 1;

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};

inline uint64_t PackSeqAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;
};

inline void AppendInternalKey(std::string* dst, Slice user_key, SequenceNumber seq,
                              ValueType t) {
  dst->append(user_key.data(), user_key.size());
  PutFixed64(dst, PackSeqAndType(seq, t));
}

// The tag word, or 0 for a key shorter than the tag. Malformed keys occur
// only when parsing a corrupt/hostile block; the accessors here must stay
// memory-safe on them (the entry is rejected later by ParseInternalKey).
inline uint64_t ExtractTag(Slice internal_key) {
  uint64_t tag = 0;
  if (internal_key.size() >= 8) {
    CheckedReader dec(internal_key.data() + internal_key.size() - 8, 8);
    (void)dec.GetFixed64(&tag);
  }
  return tag;
}

inline bool ParseInternalKey(Slice internal_key, ParsedInternalKey* out) {
  if (internal_key.size() < 8) return false;
  const uint64_t tag = ExtractTag(internal_key);
  out->user_key = Slice(internal_key.data(), internal_key.size() - 8);
  out->sequence = tag >> 8;
  const uint8_t t = static_cast<uint8_t>(tag & 0xff);
  if (t > kTypeValue) return false;
  out->type = static_cast<ValueType>(t);
  return true;
}

inline Slice ExtractUserKey(Slice internal_key) {
  if (internal_key.size() < 8) return Slice(internal_key.data(), 0);
  return Slice(internal_key.data(), internal_key.size() - 8);
}

// Bytewise user-key order; ties broken by descending sequence.
class InternalKeyComparator {
 public:
  int Compare(Slice a, Slice b) const {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    const uint64_t atag = ExtractTag(a);
    const uint64_t btag = ExtractTag(b);
    if (atag > btag) return -1;  // higher seq sorts first
    if (atag < btag) return +1;
    return 0;
  }
};

// A lookup key targeting "newest version at or before `seq`" of user_key.
class LookupKey {
 public:
  LookupKey(Slice user_key, SequenceNumber seq) {
    key_.reserve(user_key.size() + 8);
    AppendInternalKey(&key_, user_key, seq, kTypeValue);
  }
  Slice internal_key() const { return Slice(key_); }
  Slice user_key() const { return Slice(key_.data(), key_.size() - 8); }

 private:
  std::string key_;
};

}  // namespace gt::kv
