#include "src/kv/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gt::kv {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) return Status::NotFound(context + ": " + std::strerror(err));
  return Status::IOError(context + ": " + std::strerror(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(Slice data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError(path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
      size_ += static_cast<uint64_t>(n);
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }  // no user-space buffer

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return PosixError(path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return PosixError(path_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  std::string path_;
  int fd_;
  uint64_t size_ = 0;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}
  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(path_, errno);
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  std::string path_;
  int fd_;
  uint64_t size_;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}
  ~PosixSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(size_t n, Slice* result, char* scratch) override {
    for (;;) {
      ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(path_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) < 0) return PosixError(path_, errno);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& path, std::unique_ptr<WritableFile>* out) override {
    int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
    if (fd < 0) return PosixError(path, errno);
    *out = std::make_unique<PosixWritableFile>(path, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return PosixError(path, errno);
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return PosixError(path, errno);
    }
    *out = std::make_unique<PosixRandomAccessFile>(path, fd, static_cast<uint64_t>(st.st_size));
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return PosixError(path, errno);
    *out = std::make_unique<PosixSequentialFile>(path, fd);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) return PosixError(path, errno);
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return PosixError(path, errno);
    return Status::OK();
  }

  Status RemoveDirRecursive(const std::string& path) override {
    std::vector<std::string> names;
    Status s = ListDir(path, &names);
    if (s.IsNotFound()) return Status::OK();
    GT_RETURN_IF_ERROR(s);
    for (const auto& name : names) {
      const std::string child = path + "/" + name;
      struct stat st {};
      if (::lstat(child.c_str(), &st) != 0) continue;
      if (S_ISDIR(st.st_mode)) {
        GT_RETURN_IF_ERROR(RemoveDirRecursive(child));
      } else {
        ::unlink(child.c_str());
      }
    }
    if (::rmdir(path.c_str()) != 0 && errno != ENOENT) return PosixError(path, errno);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override { return ::access(path.c_str(), F_OK) == 0; }

  Status ListDir(const std::string& path, std::vector<std::string>* names) override {
    names->clear();
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr) return PosixError(path, errno);
    struct dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names->push_back(std::move(name));
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) return PosixError(from, errno);
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0) return PosixError(path, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) return PosixError(path, errno);
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return PosixError(path, errno);
    Status s;
    if (::fsync(fd) != 0) s = PosixError(path, errno);
    ::close(fd);
    return s;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

}  // namespace gt::kv
