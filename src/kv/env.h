// Thin POSIX file-system wrappers used by the WAL and the sorted tables:
// append-only writable files, positional-read random-access files, and a few
// directory helpers. All operations return gt::Status.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/kv/slice.h"

namespace gt::kv {

// Append-only file with explicit Flush (to OS) and Sync (to device).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(Slice data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  virtual uint64_t size() const = 0;
};

// Positional reads; safe for concurrent use from multiple threads.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  // Reads up to n bytes at offset into scratch; *result points into scratch.
  virtual Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const = 0;
  virtual uint64_t size() const = 0;
};

// Sequential reader used for WAL replay.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

class Env {
 public:
  static Env* Default();

  virtual ~Env() = default;
  virtual Status NewWritableFile(const std::string& path, std::unique_ptr<WritableFile>* out) = 0;
  virtual Status NewRandomAccessFile(const std::string& path,
                                     std::unique_ptr<RandomAccessFile>* out) = 0;
  virtual Status NewSequentialFile(const std::string& path,
                                   std::unique_ptr<SequentialFile>* out) = 0;
  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RemoveDirRecursive(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status ListDir(const std::string& path, std::vector<std::string>* names) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  // Truncates the file to `size` bytes (used by fault injection to drop
  // un-synced tails; the store itself never shrinks files).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  // fsyncs the directory itself so entries created/renamed inside it survive
  // power loss. A file rename is only durable once its parent dir is synced.
  virtual Status SyncDir(const std::string& path) = 0;
};

// Forwards every call to a wrapped Env; decorators (fault injection, crash
// emulation) override only the operations they care about.
class EnvWrapper : public Env {
 public:
  explicit EnvWrapper(Env* target) : target_(target) {}
  Env* target() const { return target_; }

  Status NewWritableFile(const std::string& path, std::unique_ptr<WritableFile>* out) override {
    return target_->NewWritableFile(path, out);
  }
  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override {
    return target_->NewRandomAccessFile(path, out);
  }
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override {
    return target_->NewSequentialFile(path, out);
  }
  Status CreateDirIfMissing(const std::string& path) override {
    return target_->CreateDirIfMissing(path);
  }
  Status RemoveFile(const std::string& path) override { return target_->RemoveFile(path); }
  Status RemoveDirRecursive(const std::string& path) override {
    return target_->RemoveDirRecursive(path);
  }
  bool FileExists(const std::string& path) override { return target_->FileExists(path); }
  Status ListDir(const std::string& path, std::vector<std::string>* names) override {
    return target_->ListDir(path, names);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return target_->RenameFile(from, to);
  }
  Result<uint64_t> FileSize(const std::string& path) override { return target_->FileSize(path); }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return target_->TruncateFile(path, size);
  }
  Status SyncDir(const std::string& path) override { return target_->SyncDir(path); }

 private:
  Env* target_;
};

}  // namespace gt::kv
