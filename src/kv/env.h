// Thin POSIX file-system wrappers used by the WAL and the sorted tables:
// append-only writable files, positional-read random-access files, and a few
// directory helpers. All operations return gt::Status.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/kv/slice.h"

namespace gt::kv {

// Append-only file with explicit Flush (to OS) and Sync (to device).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(Slice data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  virtual uint64_t size() const = 0;
};

// Positional reads; safe for concurrent use from multiple threads.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  // Reads up to n bytes at offset into scratch; *result points into scratch.
  virtual Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const = 0;
  virtual uint64_t size() const = 0;
};

// Sequential reader used for WAL replay.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

class Env {
 public:
  static Env* Default();

  virtual ~Env() = default;
  virtual Status NewWritableFile(const std::string& path, std::unique_ptr<WritableFile>* out) = 0;
  virtual Status NewRandomAccessFile(const std::string& path,
                                     std::unique_ptr<RandomAccessFile>* out) = 0;
  virtual Status NewSequentialFile(const std::string& path,
                                   std::unique_ptr<SequentialFile>* out) = 0;
  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RemoveDirRecursive(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status ListDir(const std::string& path, std::vector<std::string>* names) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
};

}  // namespace gt::kv
