#include "src/kv/filename.h"

#include <cstdio>

namespace gt::kv {

namespace {

// Parses `digits` (1..20 decimal chars) into *v, rejecting overflow.
bool ParseDecimal(const std::string& digits, uint64_t* v) {
  if (digits.empty() || digits.size() > 20) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  *v = value;
  return true;
}

}  // namespace

std::string TableFileName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.sst", static_cast<unsigned long long>(id));
  return buf;
}

bool ParseTableFileName(const std::string& name, uint64_t* id) {
  if (name.size() < 5 || name.compare(name.size() - 4, 4, ".sst") != 0) return false;
  return ParseDecimal(name.substr(0, name.size() - 4), id);
}

std::string ManifestFileName(uint64_t number) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "MANIFEST-%06llu", static_cast<unsigned long long>(number));
  return buf;
}

bool ParseManifestFileName(const std::string& name, uint64_t* number) {
  static const std::string kPrefix = "MANIFEST-";
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  return ParseDecimal(name.substr(kPrefix.size()), number);
}

bool IsTempFileName(const std::string& name) {
  return name.size() > 4 && name.compare(name.size() - 4, 4, kTempSuffix) == 0;
}

}  // namespace gt::kv
