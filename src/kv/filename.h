// Canonical file names inside a DB directory and their parsers. Every file
// the store creates is named through these helpers so recovery can classify
// arbitrary directory listings (live tables, the manifest chain, the WAL,
// half-written temporaries) without guessing.
//
// Layout of a DB directory:
//   CURRENT            - name of the active manifest ("MANIFEST-<n>\n")
//   MANIFEST-<n>       - append-only log of version edits (see manifest.h)
//   wal.log            - write-ahead log for the active memtable
//   <id>.sst           - sorted table file; <id> is zero-padded to at least
//                        6 digits but grows naturally beyond 999999
//   *.tmp              - in-progress table/manifest/CURRENT writes; any
//                        *.tmp found at open is a crash leftover
#pragma once

#include <cstdint>
#include <string>

namespace gt::kv {

// "000007.sst" for 7, "1000000.sst" for 1000000. Zero-padding keeps small
// ids lexicographically sorted; ids past 6 digits widen without truncation.
std::string TableFileName(uint64_t id);

// Accepts both the padded 6-digit form and wider ids (up to 20 digits, the
// full uint64 range). Returns false for anything else.
bool ParseTableFileName(const std::string& name, uint64_t* id);

// "MANIFEST-000003" for 3 (same widening rule as table files).
std::string ManifestFileName(uint64_t number);
bool ParseManifestFileName(const std::string& name, uint64_t* number);

inline const char* kCurrentFileName = "CURRENT";
inline const char* kWalFileName = "wal.log";
inline const char* kTempSuffix = ".tmp";

// True when `name` ends in ".tmp" (crash leftover of an atomic write).
bool IsTempFileName(const std::string& name);

}  // namespace gt::kv
