// Abstract iterator over ordered key/value pairs, plus a merging iterator
// that yields the union of several children in internal-key order.
#pragma once

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/kv/dbformat.h"
#include "src/kv/slice.h"

namespace gt::kv {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;
  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void Seek(Slice target) = 0;
  virtual void Next() = 0;
  // REQUIRES: Valid().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual Status status() const = 0;
};

// Merges N children; on equal internal keys the child with the lowest index
// wins (callers order children newest-first so fresher data shadows older).
class MergingIterator final : public Iterator {
 public:
  MergingIterator(const InternalKeyComparator* cmp,
                  std::vector<std::unique_ptr<Iterator>> children)
      : cmp_(cmp), children_(std::move(children)) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& c : children_) c->SeekToFirst();
    FindSmallest();
  }

  void Seek(Slice target) override {
    for (auto& c : children_) c->Seek(target);
    FindSmallest();
  }

  void Next() override {
    // Advance every child positioned at a key equal to current (they are
    // duplicates shadowed by the winning child), then advance the winner.
    Slice k = current_->key();
    for (auto& c : children_) {
      if (c.get() != current_ && c->Valid() && cmp_->Compare(c->key(), k) == 0) {
        c->Next();
      }
    }
    current_->Next();
    FindSmallest();
  }

  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& c : children_) {
      Status s = c->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    current_ = nullptr;
    for (auto& c : children_) {
      if (!c->Valid()) continue;
      if (current_ == nullptr || cmp_->Compare(c->key(), current_->key()) < 0) {
        current_ = c.get();
      }
    }
  }

  const InternalKeyComparator* cmp_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_ = nullptr;
};

}  // namespace gt::kv
