// Sharded LRU cache keyed by (file_id, block_offset), holding parsed blocks.
// Thread-safe; capacity is in charged bytes.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"

namespace gt::kv {

template <typename V>
class LruCache {
 public:
  using Key = uint64_t;

  explicit LruCache(size_t capacity_bytes, int shards = 4)
      : shards_(static_cast<size_t>(shards)) {
    if (shards_ == 0) shards_ = 1;
    per_shard_capacity_ = capacity_bytes / shards_;
    shard_.reset(new Shard[shards_]);
  }

  static Key MakeKey(uint64_t file_id, uint64_t offset) {
    return HashCombine(Mix64(file_id), Mix64(offset));
  }

  // Inserts (replacing any existing entry) and returns the cached value.
  std::shared_ptr<V> Insert(Key key, std::shared_ptr<V> value, size_t charge) {
    Shard& s = shard_[key % shards_];
    MutexLock lk(&s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      s.usage -= it->second->charge;
      s.lru.erase(it->second->lru_pos);
      s.map.erase(it);
    }
    s.lru.push_front(key);
    auto entry = std::make_unique<Entry>();
    entry->value = value;
    entry->charge = charge;
    entry->lru_pos = s.lru.begin();
    s.map[key] = std::move(entry);
    s.usage += charge;
    EvictLocked(s);
    return value;
  }

  std::shared_ptr<V> Lookup(Key key) {
    Shard& s = shard_[key % shards_];
    MutexLock lk(&s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      s.misses++;
      return nullptr;
    }
    s.hits++;
    s.lru.erase(it->second->lru_pos);
    s.lru.push_front(key);
    it->second->lru_pos = s.lru.begin();
    return it->second->value;
  }

  void Erase(Key key) {
    Shard& s = shard_[key % shards_];
    MutexLock lk(&s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return;
    s.usage -= it->second->charge;
    s.lru.erase(it->second->lru_pos);
    s.map.erase(it);
  }

  size_t usage() const {
    size_t total = 0;
    for (size_t i = 0; i < shards_; i++) {
      MutexLock lk(&shard_[i].mu);
      total += shard_[i].usage;
    }
    return total;
  }

  uint64_t hits() const { return Sum(&Shard::hits); }
  uint64_t misses() const { return Sum(&Shard::misses); }

 private:
  struct Entry {
    std::shared_ptr<V> value;
    size_t charge = 0;
    std::list<Key>::iterator lru_pos;
  };

  struct Shard {
    mutable Mutex mu;  // leaf lock: nothing else is acquired while held
    std::list<Key> lru GT_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<Key, std::unique_ptr<Entry>> map GT_GUARDED_BY(mu);
    size_t usage GT_GUARDED_BY(mu) = 0;
    uint64_t hits GT_GUARDED_BY(mu) = 0;
    uint64_t misses GT_GUARDED_BY(mu) = 0;
  };

  void EvictLocked(Shard& s) GT_REQUIRES(s.mu) {
    while (s.usage > per_shard_capacity_ && !s.lru.empty()) {
      const Key victim = s.lru.back();
      s.lru.pop_back();
      auto it = s.map.find(victim);
      s.usage -= it->second->charge;
      s.map.erase(it);
    }
  }

  uint64_t Sum(uint64_t Shard::* field) const {
    uint64_t total = 0;
    for (size_t i = 0; i < shards_; i++) {
      MutexLock lk(&shard_[i].mu);
      total += shard_[i].*field;
    }
    return total;
  }

  size_t shards_;
  size_t per_shard_capacity_;
  std::unique_ptr<Shard[]> shard_;
};

}  // namespace gt::kv
