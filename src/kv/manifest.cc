#include "src/kv/manifest.h"

#include <algorithm>

#include "src/common/codec.h"
#include "src/common/logging.h"
#include "src/kv/filename.h"

namespace gt::kv {

namespace {

// Edit payload format (versioned so a future reader can evolve it):
//   varint32 format_version (= 1)
//   repeated: tag(1B) | varint64 value
constexpr uint32_t kEditFormatVersion = 1;

enum EditTag : uint8_t {
  kAddTable = 1,
  kRemoveTable = 2,
  kNextFileId = 3,
  kLastSequence = 4,
};

}  // namespace

void VersionEdit::EncodeTo(std::string* dst) const {
  PutVarint32(dst, kEditFormatVersion);
  for (uint64_t id : added_tables) {
    dst->push_back(static_cast<char>(kAddTable));
    PutVarint64(dst, id);
  }
  for (uint64_t id : removed_tables) {
    dst->push_back(static_cast<char>(kRemoveTable));
    PutVarint64(dst, id);
  }
  if (next_file_id != 0) {
    dst->push_back(static_cast<char>(kNextFileId));
    PutVarint64(dst, next_file_id);
  }
  if (last_sequence != 0) {
    dst->push_back(static_cast<char>(kLastSequence));
    PutVarint64(dst, last_sequence);
  }
}

Status VersionEdit::DecodeFrom(Slice src, VersionEdit* edit) {
  *edit = VersionEdit{};
  CheckedReader dec(src.data(), src.size());
  uint32_t version = 0;
  if (!dec.GetVarint32(&version)) return Status::Corruption("manifest edit: missing version");
  if (version != kEditFormatVersion) {
    return Status::Corruption("manifest edit: unsupported format version " +
                              std::to_string(version));
  }
  while (!dec.empty()) {
    uint8_t tag = 0;
    uint64_t value = 0;
    if (!dec.GetByte(&tag) || !dec.GetVarint64(&value)) {
      return Status::Corruption("manifest edit: truncated op");
    }
    switch (tag) {
      case kAddTable: edit->added_tables.push_back(value); break;
      case kRemoveTable: edit->removed_tables.push_back(value); break;
      case kNextFileId: edit->next_file_id = value; break;
      case kLastSequence: edit->last_sequence = value; break;
      default:
        return Status::Corruption("manifest edit: unknown tag " +
                                  std::to_string(static_cast<int>(tag)));
    }
  }
  return Status::OK();
}

void ManifestState::Apply(const VersionEdit& edit) {
  for (uint64_t id : edit.removed_tables) {
    live_tables.erase(std::remove(live_tables.begin(), live_tables.end(), id),
                      live_tables.end());
  }
  for (uint64_t id : edit.added_tables) {
    if (std::find(live_tables.begin(), live_tables.end(), id) == live_tables.end()) {
      live_tables.push_back(id);
    }
    next_file_id = std::max(next_file_id, id + 1);
  }
  next_file_id = std::max(next_file_id, edit.next_file_id);
  last_sequence = std::max(last_sequence, edit.last_sequence);
}

Result<std::unique_ptr<Manifest>> Manifest::Open(Env* env, const std::string& dir,
                                                 ManifestState* state, KvStats* stats,
                                                 const std::vector<uint64_t>& bootstrap_tables) {
  auto manifest = std::unique_ptr<Manifest>(new Manifest(env, dir, stats));
  MutexLock lk(&manifest->mu_);

  const std::string current_path = dir + "/" + kCurrentFileName;
  if (env->FileExists(current_path)) {
    // Read the pointer (to EOF — a single Read may legally return short),
    // then replay the named manifest log.
    std::string pointer;
    {
      std::unique_ptr<SequentialFile> file;
      GT_RETURN_IF_ERROR(env->NewSequentialFile(current_path, &file));
      char buf[64];
      Slice chunk;
      do {
        GT_RETURN_IF_ERROR(file->Read(sizeof(buf), &chunk, buf));
        pointer.append(chunk.data(), chunk.size());
      } while (!chunk.empty());
    }
    while (!pointer.empty() && (pointer.back() == '\n' || pointer.back() == '\r')) {
      pointer.pop_back();
    }
    uint64_t number = 0;
    if (!ParseManifestFileName(pointer, &number)) {
      return Status::Corruption("CURRENT names no manifest: '" + pointer + "'");
    }
    const std::string log_path = dir + "/" + pointer;
    std::unique_ptr<SequentialFile> log_file;
    Status s = env->NewSequentialFile(log_path, &log_file);
    if (!s.ok()) {
      return Status::Corruption("CURRENT points at missing " + pointer + ": " + s.ToString());
    }
    // The manifest shares the WAL's record framing and its tail semantics: a
    // torn final record is a LogEdit that never committed (the caller's file
    // operation is swept as an orphan), while mid-log corruption is fatal.
    WalReader reader(std::move(log_file));
    std::string scratch;
    Slice record;
    while (reader.ReadRecord(&scratch, &record)) {
      VersionEdit edit;
      GT_RETURN_IF_ERROR(VersionEdit::DecodeFrom(record, &edit));
      manifest->state_.Apply(edit);
    }
    GT_RETURN_IF_ERROR(reader.status());
    manifest->number_ = number;
  } else if (!bootstrap_tables.empty()) {
    // Pre-manifest directory: seed the live set with the legacy tables so
    // the rotation below writes them into the very first snapshot, before
    // CURRENT comes into existence. A crash anywhere in the upgrade then
    // leaves either no CURRENT (still legacy; the next open re-globs) or a
    // CURRENT whose manifest already names every legacy table — never a
    // durable empty live set that would get the tables swept as orphans.
    VersionEdit bootstrap;
    bootstrap.added_tables = bootstrap_tables;
    manifest->state_.Apply(bootstrap);
  }

  // Start every open from a compact snapshot in a fresh file; this also
  // exercises the rotation path constantly instead of only "at scale".
  GT_RETURN_IF_ERROR(manifest->RotateLocked());
  *state = manifest->state_;
  return manifest;
}

Status Manifest::LogEdit(const VersionEdit& edit) {
  MutexLock lk(&mu_);
  if (log_->size() >= kRotateBytes) {
    GT_RETURN_IF_ERROR(RotateLocked());
  }
  std::string payload;
  edit.EncodeTo(&payload);
  GT_RETURN_IF_ERROR(log_->AddRecord(payload));
  // Always durable, regardless of DBOptions::sync_wal: an un-synced edit
  // could otherwise point past table files that a later step deletes.
  GT_RETURN_IF_ERROR(log_->Sync());
  state_.Apply(edit);
  if (stats_ != nullptr) stats_->manifest_edits.fetch_add(1);
  return Status::OK();
}

std::string Manifest::current_file_name() const {
  MutexLock lk(&mu_);
  return ManifestFileName(number_);
}

Status Manifest::RotateLocked() {
  const uint64_t old_number = number_;
  const bool had_log = log_ != nullptr || old_number != 0;
  const uint64_t next = number_ + 1;
  const std::string path = dir_ + "/" + ManifestFileName(next);

  // 1. Write the snapshot into the new log and make its bytes durable.
  std::unique_ptr<WritableFile> file;
  GT_RETURN_IF_ERROR(env_->NewWritableFile(path, &file));
  auto log = std::make_unique<WalWriter>(std::move(file));
  VersionEdit snapshot;
  snapshot.added_tables = state_.live_tables;
  snapshot.next_file_id = state_.next_file_id;
  snapshot.last_sequence = state_.last_sequence;
  std::string payload;
  snapshot.EncodeTo(&payload);
  GT_RETURN_IF_ERROR(log->AddRecord(payload));
  GT_RETURN_IF_ERROR(log->Sync());
  GT_RETURN_IF_ERROR(env_->SyncDir(dir_));

  // 2. Atomically repoint CURRENT (tmp write + rename + dir sync).
  GT_RETURN_IF_ERROR(WriteCurrentPointerLocked(next));

  // 3. Only now is the old log garbage.
  log_ = std::move(log);
  number_ = next;
  if (had_log) {
    Status s = env_->RemoveFile(dir_ + "/" + ManifestFileName(old_number));
    if (!s.ok()) {
      // Not fatal — recovery sweeps stale MANIFEST-* files — but an operator
      // should hear about a disk that fails deletes.
      GT_WARN << "manifest: removing " << ManifestFileName(old_number)
              << " failed: " << s.ToString();
      if (stats_ != nullptr) stats_->file_op_errors.fetch_add(1);
    }
  }
  if (stats_ != nullptr) stats_->manifest_rotations.fetch_add(1);
  return Status::OK();
}

Status Manifest::WriteCurrentPointerLocked(uint64_t number) {
  const std::string current_path = dir_ + "/" + kCurrentFileName;
  const std::string tmp = current_path + kTempSuffix;
  {
    std::unique_ptr<WritableFile> file;
    GT_RETURN_IF_ERROR(env_->NewWritableFile(tmp, &file));
    Status s = file->Append(ManifestFileName(number) + "\n");
    if (s.ok()) s = file->Sync();
    if (s.ok()) s = file->Close();
    if (!s.ok()) {
      env_->RemoveFile(tmp).ok();  // best effort; sweep catches leftovers
      return s;
    }
  }
  GT_RETURN_IF_ERROR(env_->RenameFile(tmp, current_path));
  return env_->SyncDir(dir_);
}

}  // namespace gt::kv
