// The MANIFEST: an append-only, CRC-framed log of version edits that names
// the exact set of live table files. Recovery replays it instead of globbing
// `*.sst`, so a crash between a compaction install and the deletion of its
// input files can never resurrect tombstoned keys — the inputs are simply
// not in the live set and get swept as orphans.
//
// On-disk protocol:
//   CURRENT        - single line "MANIFEST-<n>\n"; updated by writing
//                    CURRENT.tmp, syncing it, renaming over CURRENT and
//                    syncing the directory (atomic pointer swap).
//   MANIFEST-<n>   - sequence of records framed exactly like WAL records
//                    (fixed32 crc | fixed32 len | payload); each payload is
//                    one encoded VersionEdit (see write format in
//                    manifest.cc). Torn final records are tolerated the same
//                    way as WAL tails: the edit never committed.
//
// Every LogEdit is fsync'd before it returns: table installs are rare (one
// per flush/compaction) and the live-set pointer must never lag the file
// operations it describes. Rotation (snapshot into MANIFEST-<n+1>, swap
// CURRENT, delete the old file) happens on every Open and when the log
// outgrows kRotateBytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/kv/env.h"
#include "src/kv/stats.h"
#include "src/kv/wal.h"

namespace gt::kv {

// One atomic change to the live-file set. Zero-valued counters mean
// "unchanged" (file ids and sequence numbers both start at 1).
struct VersionEdit {
  std::vector<uint64_t> added_tables;
  std::vector<uint64_t> removed_tables;
  uint64_t next_file_id = 0;   // floor for future allocations; 0 = unchanged
  uint64_t last_sequence = 0;  // durable sequence watermark; 0 = unchanged

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice src, VersionEdit* edit);
};

// Accumulated result of replaying a manifest log.
struct ManifestState {
  std::vector<uint64_t> live_tables;  // unordered; DB sorts newest-first
  uint64_t next_file_id = 1;
  uint64_t last_sequence = 0;

  void Apply(const VersionEdit& edit);
};

class Manifest {
 public:
  // Loads the state named by CURRENT, then rotates into a new manifest file
  // so the log starts from a compact snapshot. `*state` receives the
  // recovered state. When CURRENT does not exist (fresh or pre-manifest
  // directory), `bootstrap_tables` seeds the live set BEFORE that first
  // rotation writes the snapshot and creates CURRENT — the upgrade of a
  // legacy directory must be atomic: a durable CURRENT may never name a
  // live set that omits table files already on disk, or the orphan sweep
  // would delete real data after a crash. Ignored when CURRENT exists.
  static Result<std::unique_ptr<Manifest>> Open(Env* env, const std::string& dir,
                                                ManifestState* state, KvStats* stats,
                                                const std::vector<uint64_t>& bootstrap_tables = {});

  // Appends one edit, fsyncs it, and applies it to the in-memory state.
  // Rotates first when the log has outgrown kRotateBytes. Safe to call from
  // the writer and the compaction thread concurrently.
  Status LogEdit(const VersionEdit& edit) GT_EXCLUDES(mu_);

  // Name (not path) of the active MANIFEST-<n> file; recovery keeps it and
  // sweeps every other MANIFEST-* as a crashed-rotation leftover.
  std::string current_file_name() const GT_EXCLUDES(mu_);

  static constexpr uint64_t kRotateBytes = 1 << 20;

 private:
  Manifest(Env* env, std::string dir, KvStats* stats)
      : env_(env), dir_(std::move(dir)), stats_(stats) {}

  // Writes a fresh MANIFEST-<number_+1> seeded with a snapshot of state_,
  // points CURRENT at it and removes the previous file.
  Status RotateLocked() GT_REQUIRES(mu_);
  Status WriteCurrentPointerLocked(uint64_t number) GT_REQUIRES(mu_);

  Env* const env_;
  const std::string dir_;
  KvStats* const stats_;

  mutable Mutex mu_;
  ManifestState state_ GT_GUARDED_BY(mu_);
  uint64_t number_ GT_GUARDED_BY(mu_) = 0;  // active MANIFEST-<n>
  std::unique_ptr<WalWriter> log_ GT_GUARDED_BY(mu_);
};

}  // namespace gt::kv
