#include "src/kv/memtable.h"

#include <algorithm>

#include "src/common/codec.h"

namespace gt::kv {

namespace {

// Decodes the length-prefixed internal key at `p`. Memtable entries are
// trusted (this process encoded them into the arena), so the bound here is
// the encoding invariant, not an input length.
Slice GetLengthPrefixedSlice(const char* p) {
  CheckedReader dec(p, 5 + 8);  // varint32 is at most 5 bytes; key >= 8
  uint32_t len = 0;
  dec.GetVarint32(&len);
  return Slice(dec.data(), len);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* a, const char* b) const {
  return icmp->Compare(GetLengthPrefixedSlice(a), GetLengthPrefixedSlice(b));
}

void MemTable::Add(SequenceNumber seq, ValueType type, Slice user_key, Slice value) {
  std::string ikey;
  ikey.reserve(user_key.size() + 8);
  AppendInternalKey(&ikey, user_key, seq, type);

  std::string header;
  PutVarint32(&header, static_cast<uint32_t>(ikey.size()));

  std::string vheader;
  PutVarint32(&vheader, static_cast<uint32_t>(value.size()));

  const size_t total = header.size() + ikey.size() + vheader.size() + value.size();
  char* buf = arena_.Allocate(total);
  char* p = buf;
  p = std::copy(header.begin(), header.end(), p);
  p = std::copy(ikey.begin(), ikey.end(), p);
  p = std::copy(vheader.begin(), vheader.end(), p);
  std::copy(value.data(), value.data() + value.size(), p);
  table_.Insert(buf);
}

bool MemTable::Get(const LookupKey& key, std::string* value, Status* status) const {
  Table::Iterator it(&table_);

  // Seek needs an encoded entry; build "varint32 len | internal_key".
  std::string target;
  Slice ik = key.internal_key();
  PutVarint32(&target, static_cast<uint32_t>(ik.size()));
  target.append(ik.data(), ik.size());
  it.Seek(target.data());

  if (!it.Valid()) return false;

  const char* entry = it.key();
  Slice entry_ikey = GetLengthPrefixedSlice(entry);
  ParsedInternalKey parsed;
  if (!ParseInternalKey(entry_ikey, &parsed)) {
    *status = Status::Corruption("bad memtable entry");
    return true;
  }
  if (parsed.user_key != key.user_key()) return false;

  if (parsed.type == kTypeDeletion) {
    *status = Status::NotFound();
    return true;
  }
  // Value follows the internal key.
  const char* vstart = entry_ikey.data() + entry_ikey.size();
  CheckedReader dec(vstart, 5 + (1 << 30));
  uint32_t vlen = 0;
  dec.GetVarint32(&vlen);
  value->assign(dec.data(), vlen);
  *status = Status::OK();
  return true;
}

namespace {

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(const SkipList<const char*, MemTable::KeyComparator>* table)
      : it_(table) {}

  bool Valid() const override { return it_.Valid(); }
  void SeekToFirst() override { it_.SeekToFirst(); }
  void Seek(Slice target) override {
    scratch_.clear();
    PutVarint32(&scratch_, static_cast<uint32_t>(target.size()));
    scratch_.append(target.data(), target.size());
    it_.Seek(scratch_.data());
  }
  void Next() override { it_.Next(); }

  Slice key() const override {
    CheckedReader dec(it_.key(), 5 + 8);
    uint32_t len = 0;
    dec.GetVarint32(&len);
    return Slice(dec.data(), len);
  }

  Slice value() const override {
    Slice k = key();
    const char* vstart = k.data() + k.size();
    CheckedReader dec(vstart, 5 + (1 << 30));
    uint32_t vlen = 0;
    dec.GetVarint32(&vlen);
    return Slice(dec.data(), vlen);
  }

  Status status() const override { return Status::OK(); }

 private:
  SkipList<const char*, MemTable::KeyComparator>::Iterator it_;
  std::string scratch_;
};

}  // namespace

std::unique_ptr<Iterator> MemTable::NewIterator() const {
  return std::make_unique<MemTableIterator>(&table_);
}

}  // namespace gt::kv
