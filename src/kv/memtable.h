// In-memory write buffer: an arena-backed skip list of encoded entries.
// Entry layout (all in one arena allocation):
//   varint32 internal_key_len | internal_key | varint32 value_len | value
#pragma once

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/common/arena.h"
#include "src/kv/dbformat.h"
#include "src/kv/iterator.h"
#include "src/kv/skiplist.h"

namespace gt::kv {

class MemTable {
 public:
  MemTable() : table_(KeyComparator{&icmp_}, &arena_) {}
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Add(SequenceNumber seq, ValueType type, Slice user_key, Slice value);

  // Returns true if this memtable has an authoritative answer for `key`:
  // either a live value (status OK, *value filled) or a tombstone (NotFound).
  bool Get(const LookupKey& key, std::string* value, Status* status) const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  bool empty() const {
    Table::Iterator it(&table_);
    it.SeekToFirst();
    return !it.Valid();
  }

  // Iterates entries in internal-key order; key() returns the internal key.
  std::unique_ptr<Iterator> NewIterator() const;

  // Exposed for the iterator implementation; not part of the public API.
  struct KeyComparator {
    const InternalKeyComparator* icmp;
    // Entries are length-prefixed internal keys.
    int operator()(const char* a, const char* b) const;
  };
  using Table = SkipList<const char*, KeyComparator>;

 private:
  InternalKeyComparator icmp_;
  Arena arena_;
  Table table_;
};

}  // namespace gt::kv
