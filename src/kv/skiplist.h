// Concurrent-read skip list (single writer, lock-free readers), the data
// structure behind the memtable. Keys are opaque and ordered by Comparator.
// Modeled after the classic LevelDB design: nodes are arena-allocated and
// next pointers are released/acquired so readers never see torn nodes.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "src/common/rng.h"
#include "src/common/arena.h"

namespace gt::kv {

template <typename Key, class Comparator>
class SkipList {
 private:
  struct Node;

 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(Key(), kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; i++) head_->SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // REQUIRES: nothing equal to key is present. External synchronization for
  // writers; readers may run concurrently.
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || !Equal(key, x->key));
    (void)x;

    const int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; i++) prev[i] = head_;
      max_height_.store(height, std::memory_order_relaxed);
    }

    Node* n = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      n->NoBarrierSetNext(i, prev[i]->NoBarrierNext(i));
      prev[i]->SetNext(i, n);
    }
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Seek(const Key& target) { node_ = list_->FindGreaterOrEqual(target, nullptr); }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}
    Key const key;

    Node* Next(int n) { return next_[n].load(std::memory_order_acquire); }
    void SetNext(int n, Node* x) { next_[n].store(x, std::memory_order_release); }
    Node* NoBarrierNext(int n) { return next_[n].load(std::memory_order_relaxed); }
    void NoBarrierSetNext(int n, Node* x) { next_[n].store(x, std::memory_order_relaxed); }

   private:
    // Length == node height; allocated inline by NewNode.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(sizeof(Node) +
                                        sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.Uniform(kBranching) == 0) height++;
    return height;
  }

  int GetMaxHeight() const { return max_height_.load(std::memory_order_relaxed); }

  bool Equal(const Key& a, const Key& b) const { return compare_(a, b) == 0; }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        level--;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Rng rnd_;
};

}  // namespace gt::kv
