// KV-level statistics counters, shared by the DB, tables and cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace gt::kv {

struct KvStats {
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> get_hits{0};
  std::atomic<uint64_t> block_reads{0};       // cold reads from file
  std::atomic<uint64_t> block_cache_hits{0};
  std::atomic<uint64_t> bloom_negatives{0};   // table probes skipped by bloom
  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> wal_records{0};

  void Reset() {
    puts = deletes = gets = get_hits = 0;
    block_reads = block_cache_hits = bloom_negatives = 0;
    flushes = compactions = bytes_written = bytes_read = wal_records = 0;
  }

  std::string ToString() const {
    std::string s;
    s += "puts=" + std::to_string(puts.load());
    s += " deletes=" + std::to_string(deletes.load());
    s += " gets=" + std::to_string(gets.load());
    s += " get_hits=" + std::to_string(get_hits.load());
    s += " block_reads=" + std::to_string(block_reads.load());
    s += " block_cache_hits=" + std::to_string(block_cache_hits.load());
    s += " bloom_negatives=" + std::to_string(bloom_negatives.load());
    s += " flushes=" + std::to_string(flushes.load());
    s += " compactions=" + std::to_string(compactions.load());
    return s;
  }
};

}  // namespace gt::kv
