// KV-level statistics counters, shared by the DB, tables and cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace gt::kv {

struct KvStats {
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> get_hits{0};
  std::atomic<uint64_t> block_reads{0};       // cold reads from file
  std::atomic<uint64_t> block_cache_hits{0};
  std::atomic<uint64_t> bloom_negatives{0};   // table probes skipped by bloom
  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> compaction_bytes{0};  // output bytes written by compactions
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> wal_records{0};
  std::atomic<uint64_t> wal_fsyncs{0};         // WAL fdatasyncs paid before acks (sync_wal)
  std::atomic<uint64_t> wal_torn_tails{0};     // torn final WAL records dropped at recovery
  std::atomic<uint64_t> manifest_edits{0};     // version edits logged (flush/compaction installs)
  std::atomic<uint64_t> manifest_rotations{0};
  std::atomic<uint64_t> orphans_swept{0};      // leftover .tmp/unreferenced files removed at open
  std::atomic<uint64_t> file_op_errors{0};     // failed deletes/closes/flushes an operator
                                               // should investigate (dying disk)
  std::atomic<uint64_t> snapshots_taken{0};    // GetSnapshot calls (pins)
  std::atomic<uint64_t> snapshots_released{0};
  std::atomic<uint64_t> snapshot_preserved_versions{0};  // compaction entries kept
                                                         // only for a live snapshot

  void Reset() {
    puts = deletes = gets = get_hits = 0;
    block_reads = block_cache_hits = bloom_negatives = 0;
    flushes = compactions = compaction_bytes = 0;
    bytes_written = bytes_read = wal_records = wal_fsyncs = 0;
    wal_torn_tails = manifest_edits = manifest_rotations = 0;
    orphans_swept = file_op_errors = 0;
    snapshots_taken = snapshots_released = snapshot_preserved_versions = 0;
  }

  std::string ToString() const {
    std::string s;
    s += "puts=" + std::to_string(puts.load());
    s += " deletes=" + std::to_string(deletes.load());
    s += " gets=" + std::to_string(gets.load());
    s += " get_hits=" + std::to_string(get_hits.load());
    s += " block_reads=" + std::to_string(block_reads.load());
    s += " block_cache_hits=" + std::to_string(block_cache_hits.load());
    s += " bloom_negatives=" + std::to_string(bloom_negatives.load());
    s += " flushes=" + std::to_string(flushes.load());
    s += " compactions=" + std::to_string(compactions.load());
    s += " compaction_bytes=" + std::to_string(compaction_bytes.load());
    s += " wal_fsyncs=" + std::to_string(wal_fsyncs.load());
    s += " wal_torn_tails=" + std::to_string(wal_torn_tails.load());
    s += " orphans_swept=" + std::to_string(orphans_swept.load());
    s += " file_op_errors=" + std::to_string(file_op_errors.load());
    s += " snapshots_taken=" + std::to_string(snapshots_taken.load());
    s += " snapshots_released=" + std::to_string(snapshots_released.load());
    s += " snapshot_preserved_versions=" +
         std::to_string(snapshot_preserved_versions.load());
    return s;
  }
};

}  // namespace gt::kv
