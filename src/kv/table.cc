#include "src/kv/table.h"

#include <cassert>

#include "src/common/codec.h"

namespace gt::kv {

namespace {
constexpr size_t kFooterSize = 56;

void PutHandle(std::string* dst, uint64_t off, uint64_t size) {
  PutFixed64(dst, off);
  PutFixed64(dst, size);
}
}  // namespace

// ---------------------------------------------------------------------------
// TableBuilder
// ---------------------------------------------------------------------------

Status TableBuilder::Add(Slice internal_key, Slice value) {
  assert(!closed_);
  if (smallest_.empty() && num_entries_ == 0) smallest_.assign(internal_key.data(), internal_key.size());
  largest_.assign(internal_key.data(), internal_key.size());

  bloom_.AddKey(ExtractUserKey(internal_key));
  data_block_.Add(internal_key, value);
  last_key_.assign(internal_key.data(), internal_key.size());
  num_entries_++;

  if (data_block_.CurrentSizeEstimate() >= block_size_) {
    return FlushDataBlock();
  }
  return Status::OK();
}

Status TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  uint64_t off, size;
  GT_RETURN_IF_ERROR(WriteBlock(data_block_.Finish(), &off, &size));
  data_block_.Reset();

  std::string handle;
  PutHandle(&handle, off, size);
  index_block_.Add(last_key_, handle);
  return Status::OK();
}

Status TableBuilder::WriteBlock(Slice contents, uint64_t* off, uint64_t* size) {
  *off = offset_;
  *size = contents.size();
  GT_RETURN_IF_ERROR(file_->Append(contents));
  std::string trailer;
  PutFixed32(&trailer, Crc32c::Compute(contents.data(), contents.size()));
  GT_RETURN_IF_ERROR(file_->Append(trailer));
  offset_ += contents.size() + 4;
  return Status::OK();
}

Status TableBuilder::Finish() {
  assert(!closed_);
  closed_ = true;
  GT_RETURN_IF_ERROR(FlushDataBlock());

  uint64_t bloom_off, bloom_size;
  GT_RETURN_IF_ERROR(WriteBlock(bloom_.Finish(), &bloom_off, &bloom_size));

  std::string meta;
  PutLengthPrefixed(&meta, smallest_);
  PutLengthPrefixed(&meta, largest_);
  PutFixed64(&meta, num_entries_);
  uint64_t meta_off, meta_size;
  GT_RETURN_IF_ERROR(WriteBlock(meta, &meta_off, &meta_size));

  uint64_t index_off, index_size;
  GT_RETURN_IF_ERROR(WriteBlock(index_block_.Finish(), &index_off, &index_size));

  std::string footer;
  PutHandle(&footer, index_off, index_size);
  PutHandle(&footer, bloom_off, bloom_size);
  PutHandle(&footer, meta_off, meta_size);
  PutFixed64(&footer, kTableMagic);
  GT_RETURN_IF_ERROR(file_->Append(footer));
  offset_ += footer.size();

  GT_RETURN_IF_ERROR(file_->Sync());
  return file_->Close();
}

// ---------------------------------------------------------------------------
// Table reader
// ---------------------------------------------------------------------------

namespace {

// Reads a crc-trailed block from `file` without caching.
Status ReadRawBlock(RandomAccessFile* file, uint64_t off, uint64_t size, std::string* out) {
  // The handle is untrusted (it came out of a block on disk): bound it by
  // the actual file before allocating, so a hostile size can neither wrap
  // the `size + 4` arithmetic nor drive a multi-gigabyte resize.
  const uint64_t fsize = file->size();
  if (off > fsize || size > fsize - off || fsize - off - size < 4) {
    return Status::Corruption("block handle outside file");
  }
  out->resize(size + 4);
  Slice result;
  GT_RETURN_IF_ERROR(file->Read(off, size + 4, &result, out->data()));
  if (result.size() != size + 4) return Status::Corruption("short block read");
  uint32_t expected = 0;
  CheckedReader trailer(result.data() + size, 4);
  (void)trailer.GetFixed32(&expected);
  if (Crc32c::Compute(result.data(), size) != expected) {
    return Status::Corruption("block checksum mismatch");
  }
  out->resize(size);
  return Status::OK();
}

// Decodes a 16-byte (offset, size) index handle.
Status DecodeHandle(Slice handle, uint64_t* off, uint64_t* size) {
  CheckedReader dec(handle.data(), handle.size());
  if (handle.size() != 16 || !dec.GetFixed64(off) || !dec.GetFixed64(size)) {
    return Status::Corruption("bad index handle");
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<Table>> Table::Open(Env* env, const std::string& path,
                                           uint64_t file_id, TableReadOptions opts) {
  auto table = std::shared_ptr<Table>(new Table(file_id, opts));
  GT_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &table->file_));

  const uint64_t fsize = table->file_->size();
  if (fsize < kFooterSize) return Status::Corruption("table too small: " + path);

  char scratch[kFooterSize];
  Slice footer;
  GT_RETURN_IF_ERROR(table->file_->Read(fsize - kFooterSize, kFooterSize, &footer, scratch));
  if (footer.size() != kFooterSize) return Status::Corruption("short footer read");

  CheckedReader dec(footer.data(), footer.size());
  uint64_t index_off = 0, index_size = 0, bloom_off = 0, bloom_size = 0;
  uint64_t meta_off = 0, meta_size = 0, magic = 0;
  if (!dec.GetFixed64(&index_off) || !dec.GetFixed64(&index_size) ||
      !dec.GetFixed64(&bloom_off) || !dec.GetFixed64(&bloom_size) ||
      !dec.GetFixed64(&meta_off) || !dec.GetFixed64(&meta_size) ||
      !dec.GetFixed64(&magic)) {
    return Status::Corruption("short footer: " + path);
  }
  if (magic != kTableMagic) return Status::Corruption("bad table magic: " + path);

  std::string index_contents;
  GT_RETURN_IF_ERROR(ReadRawBlock(table->file_.get(), index_off, index_size, &index_contents));
  table->index_ = std::make_shared<Block>(std::move(index_contents));

  GT_RETURN_IF_ERROR(ReadRawBlock(table->file_.get(), bloom_off, bloom_size, &table->bloom_));

  std::string meta;
  GT_RETURN_IF_ERROR(ReadRawBlock(table->file_.get(), meta_off, meta_size, &meta));
  CheckedReader mdec(meta.data(), meta.size());
  std::string_view smallest, largest;
  uint64_t entries = 0;
  if (!mdec.GetLengthPrefixed(&smallest) || !mdec.GetLengthPrefixed(&largest) ||
      !mdec.GetFixed64(&entries)) {
    return Status::Corruption("bad meta block: " + path);
  }
  table->smallest_.assign(smallest);
  table->largest_.assign(largest);
  table->num_entries_ = entries;
  return table;
}

Result<std::shared_ptr<Block>> Table::ReadBlock(uint64_t off, uint64_t size) {
  const uint64_t cache_key = LruCache<Block>::MakeKey(file_id_, off);
  if (opts_.block_cache != nullptr) {
    if (auto cached = opts_.block_cache->Lookup(cache_key)) {
      if (opts_.stats != nullptr) opts_.stats->block_cache_hits.fetch_add(1);
      return cached;
    }
  }
  std::string contents;
  GT_RETURN_IF_ERROR(ReadRawBlock(file_.get(), off, size, &contents));
  if (opts_.stats != nullptr) {
    opts_.stats->block_reads.fetch_add(1);
    opts_.stats->bytes_read.fetch_add(size);
  }
  if (opts_.device != nullptr) opts_.device->ChargeAccess(size);
  auto block = std::make_shared<Block>(std::move(contents));
  if (opts_.block_cache != nullptr) {
    opts_.block_cache->Insert(cache_key, block, block->size());
  }
  return block;
}

Status Table::Get(Slice internal_key,
                  const std::function<void(const ParsedInternalKey&, Slice)>& found) {
  if (!BloomMayContain(bloom_, ExtractUserKey(internal_key))) {
    if (opts_.stats != nullptr) opts_.stats->bloom_negatives.fetch_add(1);
    return Status::NotFound();
  }

  auto index_it = index_->NewIterator(&icmp_);
  index_it->Seek(internal_key);
  if (!index_it->Valid()) return Status::NotFound();

  uint64_t off = 0, size = 0;
  GT_RETURN_IF_ERROR(DecodeHandle(index_it->value(), &off, &size));

  auto block = ReadBlock(off, size);
  if (!block.ok()) return block.status();

  auto it = (*block)->NewIterator(&icmp_);
  it->Seek(internal_key);
  if (!it->Valid()) return Status::NotFound();

  ParsedInternalKey parsed;
  if (!ParseInternalKey(it->key(), &parsed)) return Status::Corruption("bad key in block");
  if (parsed.user_key != ExtractUserKey(internal_key)) return Status::NotFound();
  found(parsed, it->value());
  return Status::OK();
}

// Two-level iterator: walks the index block, opening data blocks on demand.
class Table::TwoLevelIter final : public Iterator {
 public:
  explicit TwoLevelIter(std::shared_ptr<Table> table)
      : table_(std::move(table)), index_it_(table_->index_->NewIterator(&table_->icmp_)) {}

  bool Valid() const override { return data_it_ != nullptr && data_it_->Valid(); }

  void SeekToFirst() override {
    index_it_->SeekToFirst();
    InitDataBlock();
    if (data_it_ != nullptr) data_it_->SeekToFirst();
    SkipEmptyBlocksForward();
  }

  void Seek(Slice target) override {
    index_it_->Seek(target);
    InitDataBlock();
    if (data_it_ != nullptr) data_it_->Seek(target);
    SkipEmptyBlocksForward();
  }

  void Next() override {
    data_it_->Next();
    SkipEmptyBlocksForward();
  }

  Slice key() const override { return data_it_->key(); }
  Slice value() const override { return data_it_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    if (data_it_ != nullptr) return data_it_->status();
    return index_it_->status();
  }

 private:
  void InitDataBlock() {
    data_it_.reset();
    data_block_.reset();
    if (!index_it_->Valid()) return;
    uint64_t off = 0, size = 0;
    if (Status s = DecodeHandle(index_it_->value(), &off, &size); !s.ok()) {
      status_ = s;
      return;
    }
    auto block = table_->ReadBlock(off, size);
    if (!block.ok()) {
      status_ = block.status();
      return;
    }
    data_block_ = *block;
    data_it_ = data_block_->NewIterator(&table_->icmp_);
  }

  void SkipEmptyBlocksForward() {
    while (data_it_ == nullptr || !data_it_->Valid()) {
      if (!index_it_->Valid()) {
        data_it_.reset();
        return;
      }
      index_it_->Next();
      InitDataBlock();
      if (data_it_ != nullptr) data_it_->SeekToFirst();
    }
  }

  std::shared_ptr<Table> table_;
  std::unique_ptr<Iterator> index_it_;
  std::shared_ptr<Block> data_block_;
  std::unique_ptr<Iterator> data_it_;
  Status status_;
};

std::unique_ptr<Iterator> Table::NewIterator() {
  // Safe: Table instances are always managed by shared_ptr (Open).
  return std::make_unique<TwoLevelIter>(shared_from_this());
}

}  // namespace gt::kv
