// Sorted table files (the on-disk runs of the LSM tree).
//
// File layout:
//   data block 0 | crc32
//   ...                    (blocks carry a fixed32 crc trailer)
//   data block N | crc32
//   bloom block | crc32
//   meta block  | crc32   (smallest key, largest key, num_entries)
//   index block | crc32   (key = last internal key of the data block,
//                          value = fixed64 offset | fixed64 size)
//   footer (56 bytes):
//     fixed64 index_off | fixed64 index_size
//     fixed64 bloom_off | fixed64 bloom_size
//     fixed64 meta_off  | fixed64 meta_size | fixed64 magic
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "src/common/device_model.h"
#include "src/common/status.h"
#include "src/kv/block.h"
#include "src/kv/bloom.h"
#include "src/kv/dbformat.h"
#include "src/kv/env.h"
#include "src/kv/iterator.h"
#include "src/kv/lru_cache.h"
#include "src/kv/stats.h"

namespace gt::kv {

constexpr uint64_t kTableMagic = 0x477261706854726bULL;  // "GraphTrk"

struct TableReadOptions {
  LruCache<Block>* block_cache = nullptr;  // may be null (no caching)
  KvStats* stats = nullptr;
  DeviceModel* device = nullptr;  // charged per cold block read (optional)
  int bloom_bits_per_key = 10;
};

class TableBuilder {
 public:
  TableBuilder(std::unique_ptr<WritableFile> file, size_t block_size = 4096,
               int bloom_bits_per_key = 10)
      : file_(std::move(file)), block_size_(block_size), bloom_(bloom_bits_per_key) {}

  // Keys must arrive in strictly increasing internal-key order.
  Status Add(Slice internal_key, Slice value);

  // Flushes remaining data, writes bloom/index/footer, syncs and closes.
  Status Finish();

  uint64_t NumEntries() const { return num_entries_; }
  uint64_t FileSize() const { return offset_; }
  // Smallest/largest internal keys added (valid after at least one Add).
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }

 private:
  Status FlushDataBlock();
  Status WriteBlock(Slice contents, uint64_t* off, uint64_t* size);

  std::unique_ptr<WritableFile> file_;
  size_t block_size_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder bloom_;
  std::string last_key_;
  std::string smallest_, largest_;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  bool closed_ = false;
};

class Table : public std::enable_shared_from_this<Table> {
 public:
  // Opens a table file; reads footer, index and bloom eagerly (they are
  // resident for the table's lifetime, like RocksDB with pinned metadata).
  static Result<std::shared_ptr<Table>> Open(Env* env, const std::string& path,
                                             uint64_t file_id, TableReadOptions opts);

  // Point lookup for the newest visible version of the internal key.
  // Calls found(parsed_key, value) at most once; returns NotFound when the
  // table has no entry for the user key at all.
  Status Get(Slice internal_key,
             const std::function<void(const ParsedInternalKey&, Slice)>& found);

  // Iterator over the whole table in internal-key order.
  std::unique_ptr<Iterator> NewIterator();

  uint64_t file_id() const { return file_id_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  uint64_t num_entries() const { return num_entries_; }

 private:
  class TwoLevelIter;

  Table(uint64_t file_id, TableReadOptions opts) : file_id_(file_id), opts_(opts) {}

  Result<std::shared_ptr<Block>> ReadBlock(uint64_t off, uint64_t size);

  uint64_t file_id_;
  TableReadOptions opts_;
  std::unique_ptr<RandomAccessFile> file_;
  std::shared_ptr<Block> index_;
  std::string bloom_;
  InternalKeyComparator icmp_;
  std::string smallest_, largest_;
  uint64_t num_entries_ = 0;
};

}  // namespace gt::kv
