#include "src/kv/wal.h"

#include <algorithm>

#include "src/common/codec.h"

namespace gt::kv {

Status WalWriter::AddRecord(Slice payload) {
  std::string header;
  PutFixed32(&header, Crc32c::Compute(payload.data(), payload.size()));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  GT_RETURN_IF_ERROR(file_->Append(header));
  GT_RETURN_IF_ERROR(file_->Append(payload));
  return file_->Flush();
}

bool WalReader::AtEof() {
  char byte;
  Slice b;
  Status s = file_->Read(1, &b, &byte);
  return s.ok() && b.size() == 0;
}

bool WalReader::ReadRecord(std::string* scratch, Slice* record) {
  if (!status_.ok() || tail_dropped_) return false;

  char header[8];
  Slice h;
  status_ = file_->Read(8, &h, header);
  if (!status_.ok()) return false;
  if (h.size() == 0) return false;  // clean EOF
  if (h.size() < 8) {               // torn header: end of log
    tail_dropped_ = true;
    return false;
  }

  uint32_t crc = 0, len = 0;
  CheckedReader hdr(h.data(), h.size());
  if (!hdr.GetFixed32(&crc) || !hdr.GetFixed32(&len)) {
    tail_dropped_ = true;  // unreachable: h.size() == 8 here
    return false;
  }

  // Read the payload in bounded chunks: `len` may be garbage from a corrupt
  // header, so never trust it for a single huge allocation.
  scratch->clear();
  while (scratch->size() < len) {
    const size_t chunk = std::min<size_t>(len - scratch->size(), 1 << 20);
    const size_t off = scratch->size();
    scratch->resize(off + chunk);
    Slice part;
    status_ = file_->Read(chunk, &part, scratch->data() + off);
    if (!status_.ok()) return false;
    scratch->resize(off + part.size());
    if (part.size() < chunk) break;  // hit EOF inside the payload
  }
  if (scratch->size() < len) {  // torn payload: end of log
    tail_dropped_ = true;
    return false;
  }

  if (Crc32c::Compute(scratch->data(), len) != crc) {
    if (AtEof()) {
      // Torn final record (crash mid-append): drop it, end the log cleanly.
      tail_dropped_ = true;
      return false;
    }
    status_ = Status::Corruption("wal record checksum mismatch mid-log");
    return false;
  }
  *record = Slice(scratch->data(), len);
  return true;
}

}  // namespace gt::kv
