#include "src/kv/wal.h"

#include "src/common/codec.h"

namespace gt::kv {

Status WalWriter::AddRecord(Slice payload) {
  std::string header;
  PutFixed32(&header, Crc32c::Compute(payload.data(), payload.size()));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  GT_RETURN_IF_ERROR(file_->Append(header));
  GT_RETURN_IF_ERROR(file_->Append(payload));
  return file_->Flush();
}

bool WalReader::ReadRecord(std::string* scratch, Slice* record) {
  if (!status_.ok()) return false;

  char header[8];
  Slice h;
  status_ = file_->Read(8, &h, header);
  if (!status_.ok()) return false;
  if (h.size() == 0) return false;  // clean EOF
  if (h.size() < 8) return false;   // truncated tail: treat as end of log

  const uint32_t crc = DecodeFixed32(h.data());
  const uint32_t len = DecodeFixed32(h.data() + 4);

  scratch->resize(len);
  Slice payload;
  status_ = file_->Read(len, &payload, scratch->data());
  if (!status_.ok()) return false;
  if (payload.size() < len) return false;  // truncated tail

  if (Crc32c::Compute(payload.data(), payload.size()) != crc) {
    status_ = Status::Corruption("wal record checksum mismatch");
    return false;
  }
  *record = payload;
  return true;
}

}  // namespace gt::kv
