// Write-ahead log. Record format on disk:
//   fixed32 crc32c(payload) | fixed32 payload_len | payload
// The reader stops cleanly at EOF or a truncated tail (normal after crash)
// and reports corruption for checksum mismatches in the middle of the log.
#pragma once

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/kv/env.h"
#include "src/kv/slice.h"

namespace gt::kv {

class WalWriter {
 public:
  explicit WalWriter(std::unique_ptr<WritableFile> file) : file_(std::move(file)) {}

  Status AddRecord(Slice payload);
  Status Sync() { return file_->Sync(); }
  uint64_t size() const { return file_->size(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

class WalReader {
 public:
  explicit WalReader(std::unique_ptr<SequentialFile> file) : file_(std::move(file)) {}

  // Reads the next record into *record (backed by *scratch). Returns:
  //   true  - record read
  //   false - clean end of log (EOF or truncated tail); status() is OK
  //   false - with !status().ok() on mid-log corruption
  bool ReadRecord(std::string* scratch, Slice* record);

  Status status() const { return status_; }

 private:
  std::unique_ptr<SequentialFile> file_;
  Status status_;
};

}  // namespace gt::kv
