// Write-ahead log. Record format on disk:
//   fixed32 crc32c(payload) | fixed32 payload_len | payload
//
// Tail semantics (shared with the MANIFEST, which reuses this framing): the
// final record of a log may be torn by a crash mid-append — truncated bytes
// or a failing checksum with nothing after it — and reading treats that as a
// clean end of log (the record was never acknowledged as durable). A failing
// checksum with more log after it cannot be a torn append in an append-only,
// sync-ordered log, so it is reported as Corruption.
#pragma once

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/kv/env.h"
#include "src/kv/slice.h"

namespace gt::kv {

class WalWriter {
 public:
  explicit WalWriter(std::unique_ptr<WritableFile> file) : file_(std::move(file)) {}

  Status AddRecord(Slice payload);
  Status Sync() { return file_->Sync(); }
  uint64_t size() const { return file_->size(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

class WalReader {
 public:
  explicit WalReader(std::unique_ptr<SequentialFile> file) : file_(std::move(file)) {}

  // Reads the next record into *record (backed by *scratch). Returns:
  //   true  - record read
  //   false - clean end of log (EOF or torn final record); status() is OK
  //   false - with !status().ok() on mid-log corruption
  bool ReadRecord(std::string* scratch, Slice* record);

  Status status() const { return status_; }

  // True when the log ended at a torn final record (truncated or
  // CRC-failing) rather than a clean record boundary — i.e. the tail was
  // dropped. Recovery surfaces this to stats/logs.
  bool tail_dropped() const { return tail_dropped_; }

 private:
  // Consumes one byte to probe for end-of-file; only called when the current
  // record is already known bad, so the lost byte is never needed again.
  bool AtEof();

  std::unique_ptr<SequentialFile> file_;
  Status status_;
  bool tail_dropped_ = false;
};

}  // namespace gt::kv
