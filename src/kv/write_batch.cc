#include "src/kv/write_batch.h"

#include "src/common/codec.h"
#include "src/kv/memtable.h"

namespace gt::kv {

void WriteBatch::Put(Slice key, Slice value) {
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixed(&rep_, key.view());
  PutLengthPrefixed(&rep_, value.view());
  EncodeFixed32(rep_.data() + 8, Count() + 1);
}

void WriteBatch::Delete(Slice key) {
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixed(&rep_, key.view());
  EncodeFixed32(rep_.data() + 8, Count() + 1);
}

void WriteBatch::Clear() {
  rep_.assign(kHeader, '\0');
}

uint32_t WriteBatch::Count() const {
  uint32_t n = 0;
  CheckedReader dec(rep_.data() + 8, rep_.size() - 8);
  (void)dec.GetFixed32(&n);  // rep_ always holds the 12-byte header
  return n;
}

SequenceNumber WriteBatch::sequence() const {
  uint64_t seq = 0;
  CheckedReader dec(rep_.data(), rep_.size());
  (void)dec.GetFixed64(&seq);
  return seq;
}

void WriteBatch::SetSequence(SequenceNumber seq) { EncodeFixed64(rep_.data(), seq); }

Result<WriteBatch> WriteBatch::FromRep(Slice rep) {
  if (rep.size() < kHeader) return Status::Corruption("batch rep too small");
  WriteBatch b;
  b.rep_.assign(rep.data(), rep.size());
  // Validate by iterating.
  Status s = b.Iterate([](ValueType, Slice, Slice) {});
  if (!s.ok()) return s;
  return b;
}

Status WriteBatch::InsertInto(MemTable* mem) const {
  SequenceNumber seq = sequence();
  return Iterate([mem, &seq](ValueType type, Slice key, Slice value) {
    mem->Add(seq++, type, key, value);
  });
}

}  // namespace gt::kv
