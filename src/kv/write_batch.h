// WriteBatch: an ordered group of Put/Delete operations applied atomically.
// Serialized form (also the WAL payload):
//   fixed64 starting_sequence | fixed32 count | count * record
//   record := type(1B) | varint32 klen | key | [varint32 vlen | value]
#pragma once

#include <string>

#include "src/common/status.h"
#include "src/kv/dbformat.h"
#include "src/kv/slice.h"

namespace gt::kv {

class MemTable;

class WriteBatch {
 public:
  WriteBatch() { Clear(); }

  void Put(Slice key, Slice value);
  void Delete(Slice key);
  void Clear();

  uint32_t Count() const;
  size_t ApproximateSize() const { return rep_.size(); }

  // Serialized representation (header + records).
  const std::string& rep() const { return rep_; }
  static Result<WriteBatch> FromRep(Slice rep);

  SequenceNumber sequence() const;
  void SetSequence(SequenceNumber seq);

  // Applies every record to `mem`, assigning consecutive sequence numbers
  // starting at sequence().
  Status InsertInto(MemTable* mem) const;

  // Invokes handler(type, key, value) per record, in order.
  template <typename Handler>
  Status Iterate(Handler&& handler) const;

 private:
  static constexpr size_t kHeader = 12;  // 8B seq + 4B count
  std::string rep_;
};

template <typename Handler>
Status WriteBatch::Iterate(Handler&& handler) const {
  if (rep_.size() < kHeader) return Status::Corruption("batch too small");
  CheckedReader dec(rep_.data() + kHeader, rep_.size() - kHeader);
  uint32_t found = 0;
  while (!dec.empty()) {
    uint8_t t = 0;
    if (!dec.GetByte(&t)) return Status::Corruption("bad record type");
    const auto type = static_cast<ValueType>(t);
    std::string_view key, value;
    if (!dec.GetLengthPrefixed(&key)) return Status::Corruption("bad key");
    if (type == kTypeValue) {
      if (!dec.GetLengthPrefixed(&value)) return Status::Corruption("bad value");
    } else if (type != kTypeDeletion) {
      return Status::Corruption("unknown record type");
    }
    handler(type, Slice(key), Slice(value));
    found++;
  }
  if (found != Count()) return Status::Corruption("batch count mismatch");
  return Status::OK();
}

}  // namespace gt::kv
