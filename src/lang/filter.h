// Property filters — the va()/ea() predicates of the GTravel language.
// Filter types follow the paper: EQ, IN and RANGE; several filters on one
// step AND-compose (OR is expressed by issuing separate traversals).
#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/catalog.h"
#include "src/graph/encoding.h"
#include "src/graph/property.h"

namespace gt::lang {

enum class FilterOp : uint8_t {
  kEq = 0,     // property == values[0]
  kIn = 1,     // property ∈ values
  kRange = 2,  // values[0] <= property <= values[1]
};

struct Filter {
  graph::Catalog::Id key = graph::Catalog::kInvalidId;
  FilterOp op = FilterOp::kEq;
  std::vector<graph::PropValue> values;

  // A missing property never matches.
  bool Matches(const graph::PropMap& props) const {
    const graph::PropValue* v = props.Find(key);
    if (v == nullptr) return false;
    switch (op) {
      case FilterOp::kEq:
        return !values.empty() && *v == values[0];
      case FilterOp::kIn:
        for (const auto& candidate : values) {
          if (*v == candidate) return true;
        }
        return false;
      case FilterOp::kRange:
        return values.size() == 2 && v->Compare(values[0]) >= 0 && v->Compare(values[1]) <= 0;
    }
    return false;
  }

  bool operator==(const Filter& o) const {
    return key == o.key && op == o.op && values == o.values;
  }

  void EncodeTo(std::string* out) const {
    PutVarint32(out, key);
    out->push_back(static_cast<char>(op));
    PutVarint32(out, static_cast<uint32_t>(values.size()));
    for (const auto& v : values) v.EncodeTo(out);
  }

  static Status DecodeFrom(CheckedReader* dec, Filter* out) {
    uint8_t op = 0;
    uint32_t n = 0;
    if (!dec->GetVarint32(&out->key) || !dec->GetByte(&op) || !dec->GetCount(&n)) {
      return Status::Corruption("filter: truncated header");
    }
    if (op > static_cast<uint8_t>(FilterOp::kRange)) {
      return Status::Corruption("filter: unknown op " + std::to_string(op));
    }
    out->op = static_cast<FilterOp>(op);
    out->values.clear();
    out->values.reserve(n);
    for (uint32_t i = 0; i < n; i++) {
      graph::PropValue v;
      if (!graph::PropValue::DecodeFrom(dec, &v)) {
        return Status::Corruption("filter: bad value");
      }
      out->values.push_back(std::move(v));
    }
    return Status::OK();
  }
};

// AND-composition over a filter list (empty list matches everything).
inline bool MatchesAll(const std::vector<Filter>& filters, const graph::PropMap& props) {
  for (const auto& f : filters) {
    if (!f.Matches(props)) return false;
  }
  return true;
}

// Vertex-filter evaluation with the implicit "type" pseudo-property: a
// filter keyed on "type" matches against the vertex's label name rather
// than a stored property. `type_key` is catalog id of "type" (or
// kInvalidId to disable the pseudo-property).
inline bool VertexMatchesAll(const std::vector<Filter>& filters,
                             const graph::VertexRecord& rec,
                             const graph::Catalog& catalog,
                             graph::Catalog::Id type_key) {
  for (const auto& f : filters) {
    if (f.key == type_key && type_key != graph::Catalog::kInvalidId &&
        rec.props.Find(f.key) == nullptr) {
      auto name = catalog.Name(rec.label);
      if (!name.ok()) return false;
      graph::PropMap synthetic;
      synthetic.Set(f.key, graph::PropValue(*name));
      if (!f.Matches(synthetic)) return false;
    } else if (!f.Matches(rec.props)) {
      return false;
    }
  }
  return true;
}

}  // namespace gt::lang
