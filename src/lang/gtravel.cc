#include "src/lang/gtravel.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace gt::lang {

void GTravel::SetError(const std::string& msg) {
  if (chain_error_.empty()) chain_error_ = msg;
}

GTravel& GTravel::v(std::vector<graph::VertexId> ids) {
  if (is_alt_) {
    SetError("v() is not allowed inside a branch alternative");
    return *this;
  }
  if (has_v_) {
    v_repeated_ = true;
    return *this;
  }
  if (!hop_labels_.empty() || !filters_.empty() || !rtn_steps_.empty()) {
    v_first_error_ = true;
  }
  has_v_ = true;
  start_ids_ = std::move(ids);
  return *this;
}

GTravel& GTravel::e(const std::string& label) {
  if (terminal_) SetError("no steps may follow a terminal (count/group/path)");
  hop_labels_.push_back(label);
  hop_repeats_.push_back(1);
  return *this;
}

GTravel& GTravel::va(const std::string& key, FilterOp op,
                     std::vector<graph::PropValue> values) {
  if (terminal_) SetError("no steps may follow a terminal (count/group/path)");
  if (branch_step_ >= 0 && static_cast<int>(hop_labels_.size()) == branch_step_) {
    SetError("va() after branch() must follow an e() step");
  }
  PendingFilter f;
  f.is_edge = false;
  f.key = key;
  f.op = op;
  f.values = std::move(values);
  f.step = static_cast<int>(hop_labels_.size());
  filters_.push_back(std::move(f));
  return *this;
}

GTravel& GTravel::ea(const std::string& key, FilterOp op,
                     std::vector<graph::PropValue> values) {
  if (terminal_) SetError("no steps may follow a terminal (count/group/path)");
  if (branch_step_ >= 0 && static_cast<int>(hop_labels_.size()) == branch_step_) {
    SetError("ea() after branch() must follow an e() step");
  }
  PendingFilter f;
  f.is_edge = true;
  f.key = key;
  f.op = op;
  f.values = std::move(values);
  f.step = static_cast<int>(hop_labels_.size());  // filter on hop step-1 -> step
  filters_.push_back(std::move(f));
  return *this;
}

GTravel& GTravel::rtn() {
  if (terminal_) SetError("no steps may follow a terminal (count/group/path)");
  if (branch_step_ >= 0 && static_cast<int>(hop_labels_.size()) == branch_step_) {
    SetError("rtn() directly after branch() is not supported");
  }
  rtn_steps_.push_back(static_cast<int>(hop_labels_.size()));
  return *this;
}

GTravel& GTravel::repeat(uint32_t n) {
  if (terminal_) SetError("no steps may follow a terminal (count/group/path)");
  if (hop_labels_.empty() ||
      (branch_step_ >= 0 && static_cast<int>(hop_labels_.size()) == branch_step_)) {
    SetError("repeat() requires a preceding e()");
    return *this;
  }
  if (n == 0 || n > kMaxRepeat) {
    SetError("repeat() count must be in 1..64");
    return *this;
  }
  hop_repeats_.back() = n;
  return *this;
}

GTravel& GTravel::until(const std::string& key, FilterOp op,
                        std::vector<graph::PropValue> values) {
  if (terminal_) SetError("no steps may follow a terminal (count/group/path)");
  if (hop_labels_.empty() ||
      (branch_step_ >= 0 && static_cast<int>(hop_labels_.size()) == branch_step_)) {
    SetError("until() requires a preceding e()");
    return *this;
  }
  PendingFilter f;
  f.is_until = true;
  f.key = key;
  f.op = op;
  f.values = std::move(values);
  f.step = static_cast<int>(hop_labels_.size());
  filters_.push_back(std::move(f));
  return *this;
}

GTravel& GTravel::branch(std::vector<GTravel> alternatives) {
  if (terminal_) SetError("no steps may follow a terminal (count/group/path)");
  if (is_alt_) {
    SetError("branch() cannot nest inside an alternative");
    return *this;
  }
  if (branch_step_ >= 0) {
    SetError("at most one branch() per traversal");
    return *this;
  }
  if (alternatives.size() < 2 || alternatives.size() > kMaxBranchAlts) {
    SetError("branch() needs 2..8 alternatives");
    return *this;
  }
  for (const auto& alt : alternatives) {
    if (!alt.is_alt_) {
      SetError("branch() alternatives must be built with GTravel::Alt()");
      return *this;
    }
  }
  branch_step_ = static_cast<int>(hop_labels_.size());
  branch_alts_ = std::move(alternatives);
  return *this;
}

GTravel& GTravel::count() {
  if (terminal_) SetError("only one terminal (count/group/path) per traversal");
  terminal_ = true;
  result_mode_ = ResultMode::kCount;
  return *this;
}

GTravel& GTravel::group(const std::string& key) {
  if (terminal_) SetError("only one terminal (count/group/path) per traversal");
  if (key.empty()) SetError("group() requires a property key");
  terminal_ = true;
  result_mode_ = ResultMode::kGroup;
  group_key_ = key;
  return *this;
}

GTravel& GTravel::path() {
  if (terminal_) SetError("only one terminal (count/group/path) per traversal");
  terminal_ = true;
  result_mode_ = ResultMode::kPaths;
  return *this;
}

Status GTravel::CheckFilterShape(const PendingFilter& f) const {
  switch (f.op) {
    case FilterOp::kEq:
      if (f.values.size() != 1) return Status::InvalidArgument("EQ filter needs 1 value");
      break;
    case FilterOp::kIn:
      if (f.values.empty()) return Status::InvalidArgument("IN filter needs >= 1 value");
      break;
    case FilterOp::kRange:
      if (f.values.size() != 2) return Status::InvalidArgument("RANGE filter needs 2 values");
      break;
  }
  return Status::OK();
}

Result<TraversalPlan> GTravel::Build() const {
  if (!has_v_) return Status::InvalidArgument("traversal must start with v()");
  if (v_repeated_) return Status::InvalidArgument("v() may only be called once");
  if (v_first_error_) return Status::InvalidArgument("v() must be the first call");
  if (!chain_error_.empty()) return Status::InvalidArgument(chain_error_);
  if (is_alt_) return Status::InvalidArgument("branch alternatives cannot Build() alone");

  TraversalPlan plan;
  plan.start_ids = start_ids_;
  plan.result_mode = result_mode_;
  if (result_mode_ == ResultMode::kGroup) plan.group_key = catalog_->Intern(group_key_);

  // With a branch, the chain splits at branch_step_: hops before it form the
  // prefix (plan.hops), hops after it form the post-merge tail.
  const int prefix_hops =
      branch_step_ >= 0 ? branch_step_ : static_cast<int>(hop_labels_.size());
  plan.hops.resize(prefix_hops);
  plan.branch_tail.resize(hop_labels_.size() - prefix_hops);
  auto hop_at = [&](int idx) -> Hop& {
    return idx < prefix_hops ? plan.hops[idx] : plan.branch_tail[idx - prefix_hops];
  };
  for (size_t i = 0; i < hop_labels_.size(); i++) {
    hop_at(static_cast<int>(i)).edge_label = catalog_->Intern(hop_labels_[i]);
    hop_at(static_cast<int>(i)).repeat = hop_repeats_[i];
  }

  for (const auto& f : filters_) {
    GT_RETURN_IF_ERROR(CheckFilterShape(f));
    Filter compiled;
    compiled.key = catalog_->Intern(f.key);
    compiled.op = f.op;
    compiled.values = f.values;
    if (f.is_until) {
      hop_at(f.step - 1).until_filters.push_back(std::move(compiled));
    } else if (f.is_edge) {
      if (f.step == 0) return Status::InvalidArgument("ea() requires a preceding e()");
      hop_at(f.step - 1).edge_filters.push_back(std::move(compiled));
    } else if (f.step == 0) {
      plan.start_vertex_filters.push_back(std::move(compiled));
    } else {
      hop_at(f.step - 1).vertex_filters.push_back(std::move(compiled));
    }
  }

  for (int step : rtn_steps_) {
    if (step == 0) {
      plan.start_rtn = true;
    } else {
      hop_at(step - 1).rtn = true;
    }
  }

  if (branch_step_ >= 0) {
    for (const auto& alt : branch_alts_) {
      if (!alt.chain_error_.empty()) return Status::InvalidArgument(alt.chain_error_);
      if (!alt.rtn_steps_.empty()) {
        return Status::InvalidArgument("rtn() inside a branch alternative");
      }
      if (alt.terminal_) {
        return Status::InvalidArgument("terminal inside a branch alternative");
      }
      if (alt.hop_labels_.empty()) {
        return Status::InvalidArgument("branch alternatives need at least one e()");
      }
      std::vector<Hop> hops(alt.hop_labels_.size());
      for (size_t i = 0; i < alt.hop_labels_.size(); i++) {
        hops[i].edge_label = catalog_->Intern(alt.hop_labels_[i]);
        hops[i].repeat = alt.hop_repeats_[i];
      }
      for (const auto& f : alt.filters_) {
        GT_RETURN_IF_ERROR(CheckFilterShape(f));
        if (f.is_until) {
          return Status::InvalidArgument("until() inside a branch alternative");
        }
        if (f.step == 0 && !f.is_edge) {
          return Status::InvalidArgument(
              "va() at the head of an alternative must follow its first e()");
        }
        Filter compiled;
        compiled.key = catalog_->Intern(f.key);
        compiled.op = f.op;
        compiled.values = f.values;
        if (f.is_edge) {
          hops[f.step - 1].edge_filters.push_back(std::move(compiled));
        } else {
          hops[f.step - 1].vertex_filters.push_back(std::move(compiled));
        }
      }
      plan.branch_alts.push_back(std::move(hops));
    }
  }

  if (plan.start_ids.empty()) {
    // An unanchored v() must be scannable through the type index: require a
    // "type" EQ filter on the start step.
    const graph::Catalog::Id type_key = catalog_->Intern("type");
    const bool has_type_eq =
        std::any_of(plan.start_vertex_filters.begin(), plan.start_vertex_filters.end(),
                    [&](const Filter& f) { return f.key == type_key && f.op == FilterOp::kEq; });
    if (!has_type_eq) {
      return Status::InvalidArgument(
          "v() without ids requires a va(\"type\", EQ, ...) filter");
    }
  }

  GT_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

// ---------------------------------------------------------------------------
// Reference evaluator (oracle)
// ---------------------------------------------------------------------------

std::string GroupValueForVertex(const graph::VertexRecord& rec, graph::Catalog::Id group_key,
                                const graph::Catalog& catalog, graph::Catalog::Id type_key) {
  std::string out;
  if (group_key == type_key && type_key != graph::Catalog::kInvalidId &&
      rec.props.Find(group_key) == nullptr) {
    auto name = catalog.Name(rec.label);
    graph::PropValue(name.ok() ? *name : std::string()).EncodeTo(&out);
    return out;
  }
  const graph::PropValue* v = rec.props.Find(group_key);
  if (v == nullptr) {
    graph::PropValue(std::string()).EncodeTo(&out);
    return out;
  }
  v->EncodeTo(&out);
  return out;
}

namespace {

using graph::VertexId;

// Forward/backward evaluation of one linear (unrolled, branch-free) plan.
// until semantics: a vertex arriving at a step whose hop carries
// until_filters and matching them becomes a terminal result instead of
// joining the frontier; until plans never carry rtn, so the result set is
// exactly the matched vertices.
std::unordered_set<VertexId> EvalLinearVids(const TraversalPlan& plan,
                                            const graph::RefGraph& graph,
                                            const graph::Catalog& catalog) {
  const size_t n = plan.hops.size();
  const graph::Catalog::Id type_key = catalog.Lookup("type");

  std::vector<std::unordered_set<VertexId>> fwd(n + 1);
  std::unordered_set<VertexId> until_results;
  const bool has_until = plan.has_until();

  auto vertex_passes = [&](VertexId vid, const std::vector<Filter>& filters) {
    const graph::VertexRecord* rec = graph.FindVertex(vid);
    return rec != nullptr && VertexMatchesAll(filters, *rec, catalog, type_key);
  };

  if (!plan.start_ids.empty()) {
    for (VertexId vid : plan.start_ids) {
      if (vertex_passes(vid, plan.start_vertex_filters)) fwd[0].insert(vid);
    }
  } else {
    for (const auto& [vid, rec] : graph.vertices()) {
      if (VertexMatchesAll(plan.start_vertex_filters, rec, catalog, type_key)) fwd[0].insert(vid);
    }
  }

  for (size_t k = 0; k < n; k++) {
    const Hop& hop = plan.hops[k];
    for (VertexId src : fwd[k]) {
      for (const auto& [dst, eprops] : graph.Edges(src, hop.edge_label)) {
        if (!MatchesAll(hop.edge_filters, eprops)) continue;
        if (!vertex_passes(dst, hop.vertex_filters)) continue;
        if (!hop.until_filters.empty() && vertex_passes(dst, hop.until_filters)) {
          until_results.insert(dst);
          continue;  // terminal: matched vertices stop expanding
        }
        fwd[k + 1].insert(dst);
      }
    }
  }
  if (has_until) return until_results;

  // Backward pass: alive[k] = members of fwd[k] with a full path to step n.
  std::vector<std::unordered_set<VertexId>> alive(n + 1);
  alive[n] = fwd[n];
  for (size_t k = n; k-- > 0;) {
    const Hop& hop = plan.hops[k];
    for (VertexId src : fwd[k]) {
      for (const auto& [dst, eprops] : graph.Edges(src, hop.edge_label)) {
        if (!MatchesAll(hop.edge_filters, eprops)) continue;
        if (alive[k + 1].count(dst) != 0) {
          alive[k].insert(src);
          break;
        }
      }
    }
  }

  std::unordered_set<VertexId> result;
  if (!plan.has_rtn()) {
    result = alive[n];
  } else {
    if (plan.start_rtn) result.insert(alive[0].begin(), alive[0].end());
    for (size_t k = 0; k < n; k++) {
      if (plan.hops[k].rtn) result.insert(alive[k + 1].begin(), alive[k + 1].end());
    }
  }
  return result;
}

// Path enumeration for one linear plan (kPaths: no rtn, no until, <= 8
// expanded steps by validation).
std::set<std::vector<VertexId>> EvalLinearPaths(const TraversalPlan& plan,
                                                const graph::RefGraph& graph,
                                                const graph::Catalog& catalog) {
  const graph::Catalog::Id type_key = catalog.Lookup("type");
  auto vertex_passes = [&](VertexId vid, const std::vector<Filter>& filters) {
    const graph::VertexRecord* rec = graph.FindVertex(vid);
    return rec != nullptr && VertexMatchesAll(filters, *rec, catalog, type_key);
  };

  std::vector<std::vector<VertexId>> frontier;
  if (!plan.start_ids.empty()) {
    for (VertexId vid : plan.start_ids) {
      if (vertex_passes(vid, plan.start_vertex_filters)) frontier.push_back({vid});
    }
  } else {
    for (const auto& [vid, rec] : graph.vertices()) {
      if (VertexMatchesAll(plan.start_vertex_filters, rec, catalog, type_key)) {
        frontier.push_back({vid});
      }
    }
  }

  for (const Hop& hop : plan.hops) {
    std::vector<std::vector<VertexId>> next;
    for (const auto& path : frontier) {
      for (const auto& [dst, eprops] : graph.Edges(path.back(), hop.edge_label)) {
        if (!MatchesAll(hop.edge_filters, eprops)) continue;
        if (!vertex_passes(dst, hop.vertex_filters)) continue;
        std::vector<VertexId> extended = path;
        extended.push_back(dst);
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }
  return {frontier.begin(), frontier.end()};
}

}  // namespace

std::vector<graph::VertexId> EvaluatePlanOnRefGraph(const TraversalPlan& plan,
                                                    const graph::RefGraph& graph,
                                                    const graph::Catalog& catalog) {
  std::unordered_set<VertexId> result;
  for (const TraversalPlan& sub : plan.FlattenBranches()) {
    auto lin = sub.Unrolled();
    if (!lin.ok()) return {};
    auto part = EvalLinearVids(*lin, graph, catalog);
    result.insert(part.begin(), part.end());
  }
  std::vector<VertexId> out(result.begin(), result.end());
  std::sort(out.begin(), out.end());
  return out;
}

RefEvalResult EvaluatePlanExtOnRefGraph(const TraversalPlan& plan,
                                        const graph::RefGraph& graph,
                                        const graph::Catalog& catalog) {
  RefEvalResult out;
  if (plan.result_mode == ResultMode::kPaths) {
    std::set<std::vector<VertexId>> paths;
    for (const TraversalPlan& sub : plan.FlattenBranches()) {
      auto lin = sub.Unrolled();
      if (!lin.ok()) return out;
      auto part = EvalLinearPaths(*lin, graph, catalog);
      paths.insert(part.begin(), part.end());
    }
    out.paths.assign(paths.begin(), paths.end());
    out.count = out.paths.size();
    return out;
  }

  out.vids = EvaluatePlanOnRefGraph(plan, graph, catalog);
  out.count = out.vids.size();
  if (plan.result_mode == ResultMode::kGroup) {
    const graph::Catalog::Id type_key = catalog.Lookup("type");
    for (VertexId vid : out.vids) {
      const graph::VertexRecord* rec = graph.FindVertex(vid);
      if (rec == nullptr) continue;
      out.groups[GroupValueForVertex(*rec, plan.group_key, catalog, type_key)]++;
    }
  }
  return out;
}

}  // namespace gt::lang
