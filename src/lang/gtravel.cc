#include "src/lang/gtravel.h"

#include <algorithm>
#include <unordered_set>

namespace gt::lang {

GTravel& GTravel::v(std::vector<graph::VertexId> ids) {
  if (has_v_) {
    v_repeated_ = true;
    return *this;
  }
  if (!hop_labels_.empty() || !filters_.empty() || !rtn_steps_.empty()) {
    v_first_error_ = true;
  }
  has_v_ = true;
  start_ids_ = std::move(ids);
  return *this;
}

GTravel& GTravel::e(const std::string& label) {
  hop_labels_.push_back(label);
  return *this;
}

GTravel& GTravel::va(const std::string& key, FilterOp op,
                     std::vector<graph::PropValue> values) {
  PendingFilter f;
  f.is_edge = false;
  f.key = key;
  f.op = op;
  f.values = std::move(values);
  f.step = static_cast<int>(hop_labels_.size());
  filters_.push_back(std::move(f));
  return *this;
}

GTravel& GTravel::ea(const std::string& key, FilterOp op,
                     std::vector<graph::PropValue> values) {
  PendingFilter f;
  f.is_edge = true;
  f.key = key;
  f.op = op;
  f.values = std::move(values);
  f.step = static_cast<int>(hop_labels_.size());  // filter on hop step-1 -> step
  filters_.push_back(std::move(f));
  return *this;
}

GTravel& GTravel::rtn() {
  rtn_steps_.push_back(static_cast<int>(hop_labels_.size()));
  return *this;
}

Status GTravel::CheckFilterShape(const PendingFilter& f) const {
  switch (f.op) {
    case FilterOp::kEq:
      if (f.values.size() != 1) return Status::InvalidArgument("EQ filter needs 1 value");
      break;
    case FilterOp::kIn:
      if (f.values.empty()) return Status::InvalidArgument("IN filter needs >= 1 value");
      break;
    case FilterOp::kRange:
      if (f.values.size() != 2) return Status::InvalidArgument("RANGE filter needs 2 values");
      break;
  }
  return Status::OK();
}

Result<TraversalPlan> GTravel::Build() const {
  if (!has_v_) return Status::InvalidArgument("traversal must start with v()");
  if (v_repeated_) return Status::InvalidArgument("v() may only be called once");
  if (v_first_error_) return Status::InvalidArgument("v() must be the first call");

  TraversalPlan plan;
  plan.start_ids = start_ids_;
  plan.hops.resize(hop_labels_.size());
  for (size_t i = 0; i < hop_labels_.size(); i++) {
    plan.hops[i].edge_label = catalog_->Intern(hop_labels_[i]);
  }

  for (const auto& f : filters_) {
    GT_RETURN_IF_ERROR(CheckFilterShape(f));
    Filter compiled;
    compiled.key = catalog_->Intern(f.key);
    compiled.op = f.op;
    compiled.values = f.values;
    if (f.is_edge) {
      if (f.step == 0) return Status::InvalidArgument("ea() requires a preceding e()");
      plan.hops[f.step - 1].edge_filters.push_back(std::move(compiled));
    } else if (f.step == 0) {
      plan.start_vertex_filters.push_back(std::move(compiled));
    } else {
      plan.hops[f.step - 1].vertex_filters.push_back(std::move(compiled));
    }
  }

  for (int step : rtn_steps_) {
    if (step == 0) {
      plan.start_rtn = true;
    } else {
      plan.hops[step - 1].rtn = true;
    }
  }

  if (plan.start_ids.empty()) {
    // An unanchored v() must be scannable through the type index: require a
    // "type" EQ filter on the start step.
    const graph::Catalog::Id type_key = catalog_->Intern("type");
    const bool has_type_eq =
        std::any_of(plan.start_vertex_filters.begin(), plan.start_vertex_filters.end(),
                    [&](const Filter& f) { return f.key == type_key && f.op == FilterOp::kEq; });
    if (!has_type_eq) {
      return Status::InvalidArgument(
          "v() without ids requires a va(\"type\", EQ, ...) filter");
    }
  }

  if (plan.hops.empty() && plan.start_ids.empty()) {
    return Status::InvalidArgument("traversal needs at least one hop or explicit start ids");
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Reference evaluator (oracle)
// ---------------------------------------------------------------------------

std::vector<graph::VertexId> EvaluatePlanOnRefGraph(const TraversalPlan& plan,
                                                    const graph::RefGraph& graph,
                                                    const graph::Catalog& catalog) {
  using graph::VertexId;
  const size_t n = plan.hops.size();
  const graph::Catalog::Id type_key = catalog.Lookup("type");

  // Forward pass: fwd[k] = working set at step k (deduplicated).
  std::vector<std::unordered_set<VertexId>> fwd(n + 1);

  auto vertex_passes = [&](VertexId vid, const std::vector<Filter>& filters) {
    const graph::VertexRecord* rec = graph.FindVertex(vid);
    return rec != nullptr && VertexMatchesAll(filters, *rec, catalog, type_key);
  };

  if (!plan.start_ids.empty()) {
    for (VertexId vid : plan.start_ids) {
      if (vertex_passes(vid, plan.start_vertex_filters)) fwd[0].insert(vid);
    }
  } else {
    for (const auto& [vid, rec] : graph.vertices()) {
      if (VertexMatchesAll(plan.start_vertex_filters, rec, catalog, type_key)) fwd[0].insert(vid);
    }
  }

  for (size_t k = 0; k < n; k++) {
    const Hop& hop = plan.hops[k];
    for (VertexId src : fwd[k]) {
      for (const auto& [dst, eprops] : graph.Edges(src, hop.edge_label)) {
        if (!MatchesAll(hop.edge_filters, eprops)) continue;
        if (!vertex_passes(dst, hop.vertex_filters)) continue;
        fwd[k + 1].insert(dst);
      }
    }
  }

  // Backward pass: alive[k] = members of fwd[k] with a full path to step n.
  std::vector<std::unordered_set<VertexId>> alive(n + 1);
  alive[n] = fwd[n];
  for (size_t k = n; k-- > 0;) {
    const Hop& hop = plan.hops[k];
    for (VertexId src : fwd[k]) {
      for (const auto& [dst, eprops] : graph.Edges(src, hop.edge_label)) {
        if (!MatchesAll(hop.edge_filters, eprops)) continue;
        if (alive[k + 1].count(dst) != 0) {
          alive[k].insert(src);
          break;
        }
      }
    }
  }

  std::unordered_set<VertexId> result;
  if (!plan.has_rtn()) {
    result = alive[n];
  } else {
    if (plan.start_rtn) result.insert(alive[0].begin(), alive[0].end());
    for (size_t k = 0; k < n; k++) {
      if (plan.hops[k].rtn) result.insert(alive[k + 1].begin(), alive[k + 1].end());
    }
  }

  std::vector<VertexId> out(result.begin(), result.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gt::lang
