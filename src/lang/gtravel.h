// GTravel: the chainable traversal-building language from the paper,
// in C++ method-chaining form:
//
//   auto plan = GTravel(&catalog)
//                   .v({user_id})
//                   .e("run").ea("start_ts", FilterOp::kRange, {t_s, t_e})
//                   .e("read").va("type", FilterOp::kEq, {"text"})
//                   .rtn()
//                   .Build();
//
// Selectors/filters (paper surface):
//   v(ids)   - entry vertices by id; v() with a type va() scans the index
//   e(label) - follow edges of the given type (one traversal step)
//   va(...)  - filter the current working set's vertices (AND-composed)
//   ea(...)  - filter the edges just traversed (must follow e())
//   rtn()    - mark the current working set for return; returned vertices
//              are those whose traversals reach the end of the chain
//
// Language extensions (see DESIGN.md "GTravel language & planner"):
//   repeat(n)   - execute the most recent e() step n times in sequence
//   until(...)  - with repeat on the final step: vertices matching the
//                 filter at any iteration become terminal results
//   branch({A}) - fork the working set across alternative hop chains
//                 (built with GTravel::Alt) and merge them by union
//   count()     - terminal: return only the result-set cardinality
//   group(key)  - terminal: return result vertices grouped by a property
//   path()      - terminal: return full visited vertex chains
//
// Build() validates the chain and resolves names against the catalog.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/graph/ref_graph.h"
#include "src/lang/plan.h"

namespace gt::lang {

class GTravel {
 public:
  explicit GTravel(graph::Catalog* catalog) : catalog_(catalog) {}

  // Builds a branch alternative: a bare hop chain (e/ea/va/repeat only; no
  // v(), rtn(), until(), terminals or nested branch()) passed to branch().
  static GTravel Alt(graph::Catalog* catalog) {
    GTravel alt(catalog);
    alt.is_alt_ = true;
    alt.has_v_ = true;  // alternatives continue an existing working set
    return alt;
  }

  // Entry-point selector. Call exactly once, first.
  GTravel& v(std::vector<graph::VertexId> ids = {});

  // Follow edges with the given label into the next step.
  GTravel& e(const std::string& label);

  // Vertex property filter on the current working set.
  GTravel& va(const std::string& key, FilterOp op, std::vector<graph::PropValue> values);

  // Edge property filter on the edges most recently traversed.
  GTravel& ea(const std::string& key, FilterOp op, std::vector<graph::PropValue> values);

  // Mark the current working set for return.
  GTravel& rtn();

  // Execute the most recent e() step n times in sequence (1 <= n <= 64).
  GTravel& repeat(uint32_t n);

  // Terminate the repeat loop early: vertices matching the filter at any
  // iteration boundary become terminal results. Only valid on the final
  // step of the chain, and incompatible with rtn()/path()/branch().
  GTravel& until(const std::string& key, FilterOp op, std::vector<graph::PropValue> values);

  // Fork the working set across the alternatives' hop chains and merge the
  // outcomes by union. Alternatives are built with GTravel::Alt. At most
  // one branch per traversal; steps chained after branch() run on the
  // merged set.
  GTravel& branch(std::vector<GTravel> alternatives);

  // Terminal steps: set the result mode and end the chain.
  GTravel& count();
  GTravel& group(const std::string& key);
  GTravel& path();

  // Validates and compiles the chain. Errors:
  //  - v() missing, repeated, or not first
  //  - ea() before any e(); repeat()/until() before any e()
  //  - RANGE filters without exactly 2 values / EQ without exactly 1
  //  - v() without ids and without a type EQ filter (unindexable scan)
  //  - no steps at all; steps after a terminal; invalid extension composition
  //    (see TraversalPlan::Validate)
  Result<TraversalPlan> Build() const;

 private:
  struct PendingFilter {
    bool is_edge = false;
    bool is_until = false;
    std::string key;
    FilterOp op = FilterOp::kEq;
    std::vector<graph::PropValue> values;
    int step = -1;  // 0 = start, i = after hop i-1
  };

  Status CheckFilterShape(const PendingFilter& f) const;
  void SetError(const std::string& msg);

  graph::Catalog* catalog_;
  bool is_alt_ = false;
  bool has_v_ = false;
  bool v_first_error_ = false;   // a selector/filter preceded v()
  bool v_repeated_ = false;
  std::string chain_error_;      // first chain-shape error (checked in Build)
  std::vector<graph::VertexId> start_ids_;
  std::vector<std::string> hop_labels_;
  std::vector<uint32_t> hop_repeats_;
  std::vector<PendingFilter> filters_;
  std::vector<int> rtn_steps_;
  ResultMode result_mode_ = ResultMode::kVertices;
  std::string group_key_;
  bool terminal_ = false;
  int branch_step_ = -1;  // hop count at the branch point, -1 = none
  std::vector<GTravel> branch_alts_;
};

// Reference evaluator: runs a plan against an in-memory RefGraph, used as
// the oracle in engine tests and by small examples. Returns the rtn-marked
// working sets' vertices (or the final working set when no rtn is present),
// deduplicated and sorted. The catalog provides the "type" pseudo-property
// (vertex label) used by va("type", ...) filters. Handles only
// ResultMode::kVertices plans without branches (legacy surface); extended
// plans go through EvaluatePlanExtOnRefGraph.
std::vector<graph::VertexId> EvaluatePlanOnRefGraph(const TraversalPlan& plan,
                                                    const graph::RefGraph& graph,
                                                    const graph::Catalog& catalog);

// Extended reference evaluation covering every language extension: repeat
// and until unroll exactly as the engines unroll them, branches evaluate as
// the union of their flattened sub-plans, and the result mode renders the
// (deduplicated) result set.
struct RefEvalResult {
  // kVertices (and the basis for every other mode): sorted distinct ids.
  std::vector<graph::VertexId> vids;
  // kCount.
  uint64_t count = 0;
  // kGroup: encoded PropValue of the group key -> distinct result vertices
  // with that value. A vertex missing the key groups under PropValue("");
  // when group_key is the "type" pseudo-property the label name is used.
  std::map<std::string, uint64_t> groups;
  // kPaths: sorted distinct visited vertex chains (start..result).
  std::vector<std::vector<graph::VertexId>> paths;
};
RefEvalResult EvaluatePlanExtOnRefGraph(const TraversalPlan& plan,
                                        const graph::RefGraph& graph,
                                        const graph::Catalog& catalog);

// Renders the group value of one vertex exactly as the engines do: the
// stored property encoded, the label name for the "type" pseudo-property,
// and PropValue("") when the property is missing.
std::string GroupValueForVertex(const graph::VertexRecord& rec, graph::Catalog::Id group_key,
                                const graph::Catalog& catalog, graph::Catalog::Id type_key);

}  // namespace gt::lang
