// GTravel: the chainable traversal-building language from the paper,
// in C++ method-chaining form:
//
//   auto plan = GTravel(&catalog)
//                   .v({user_id})
//                   .e("run").ea("start_ts", FilterOp::kRange, {t_s, t_e})
//                   .e("read").va("type", FilterOp::kEq, {"text"})
//                   .rtn()
//                   .Build();
//
// Selectors/filters:
//   v(ids)   - entry vertices by id; v() with a type va() scans the index
//   e(label) - follow edges of the given type (one traversal step)
//   va(...)  - filter the current working set's vertices (AND-composed)
//   ea(...)  - filter the edges just traversed (must follow e())
//   rtn()    - mark the current working set for return; returned vertices
//              are those whose traversals reach the end of the chain
//
// Build() validates the chain and resolves names against the catalog.
#pragma once

#include <string>
#include <vector>

#include "src/graph/ref_graph.h"
#include "src/lang/plan.h"

namespace gt::lang {

class GTravel {
 public:
  explicit GTravel(graph::Catalog* catalog) : catalog_(catalog) {}

  // Entry-point selector. Call exactly once, first.
  GTravel& v(std::vector<graph::VertexId> ids = {});

  // Follow edges with the given label into the next step.
  GTravel& e(const std::string& label);

  // Vertex property filter on the current working set.
  GTravel& va(const std::string& key, FilterOp op, std::vector<graph::PropValue> values);

  // Edge property filter on the edges most recently traversed.
  GTravel& ea(const std::string& key, FilterOp op, std::vector<graph::PropValue> values);

  // Mark the current working set for return.
  GTravel& rtn();

  // Validates and compiles the chain. Errors:
  //  - v() missing, repeated, or not first
  //  - ea() before any e()
  //  - RANGE filters without exactly 2 values / EQ without exactly 1
  //  - v() without ids and without a type EQ filter (unindexable scan)
  //  - no steps at all
  Result<TraversalPlan> Build() const;

 private:
  struct PendingFilter {
    bool is_edge = false;
    std::string key;
    FilterOp op = FilterOp::kEq;
    std::vector<graph::PropValue> values;
    int step = -1;  // 0 = start, i = after hop i-1
  };

  Status CheckFilterShape(const PendingFilter& f) const;

  graph::Catalog* catalog_;
  bool has_v_ = false;
  bool v_first_error_ = false;   // a selector/filter preceded v()
  bool v_repeated_ = false;
  std::vector<graph::VertexId> start_ids_;
  std::vector<std::string> hop_labels_;
  std::vector<PendingFilter> filters_;
  std::vector<int> rtn_steps_;
};

// Reference evaluator: runs a plan against an in-memory RefGraph, used as
// the oracle in engine tests and by small examples. Returns the rtn-marked
// working sets' vertices (or the final working set when no rtn is present),
// deduplicated and sorted. The catalog provides the "type" pseudo-property
// (vertex label) used by va("type", ...) filters.
std::vector<graph::VertexId> EvaluatePlanOnRefGraph(const TraversalPlan& plan,
                                                    const graph::RefGraph& graph,
                                                    const graph::Catalog& catalog);

}  // namespace gt::lang
