#include "src/lang/plan.h"

#include <algorithm>

namespace gt::lang {

namespace {

constexpr uint8_t kPlanExtVersion = 1;
constexpr uint8_t kExtFlagPushdown = 1u << 0;
// fetch_hint occupies bits 1-2; bits 3+ must be zero (canonical encoding).
constexpr uint8_t kExtFetchShift = 1;
constexpr uint8_t kExtKnownFlags = 0x07;

bool HopsHaveExt(const std::vector<Hop>& hs) {
  for (const auto& h : hs) {
    if (h.has_ext()) return true;
  }
  return false;
}

}  // namespace

bool TraversalPlan::has_ext() const {
  return result_mode != ResultMode::kVertices || group_key != 0 || push_start_filters ||
         fetch_hint != 0 || !branch_alts.empty() || !branch_tail.empty() ||
         HopsHaveExt(hops);
}

void TraversalPlan::EncodeFilters(std::string* out, const std::vector<Filter>& filters) {
  PutVarint32(out, static_cast<uint32_t>(filters.size()));
  for (const auto& f : filters) f.EncodeTo(out);
}

Status TraversalPlan::DecodeFilters(CheckedReader* dec, std::vector<Filter>* out) {
  uint32_t n = 0;
  // 3 = minimum encoded filter (key varint + op byte + count varint).
  if (!dec->GetCount(&n, 3)) return Status::Corruption("plan: filter count");
  out->resize(n);
  for (uint32_t i = 0; i < n; i++) {
    GT_RETURN_IF_ERROR(Filter::DecodeFrom(dec, &(*out)[i]));
  }
  return Status::OK();
}

// Full hop encoding used inside the extension tail (branch alternatives and
// the post-merge tail): the legacy hop fields followed by the extension
// fields, so alternatives can themselves carry repeat counts.
void TraversalPlan::EncodeHopExt(std::string* out, const Hop& h) {
  PutVarint32(out, h.edge_label);
  EncodeFilters(out, h.edge_filters);
  EncodeFilters(out, h.vertex_filters);
  out->push_back(h.rtn ? 1 : 0);
  PutVarint32(out, h.repeat);
  EncodeFilters(out, h.until_filters);
}

Status TraversalPlan::DecodeHopExt(CheckedReader* dec, Hop* h) {
  uint8_t flag = 0;
  if (!dec->GetVarint32(&h->edge_label)) return Status::Corruption("plan: ext hop label");
  GT_RETURN_IF_ERROR(DecodeFilters(dec, &h->edge_filters));
  GT_RETURN_IF_ERROR(DecodeFilters(dec, &h->vertex_filters));
  if (!dec->GetByte(&flag)) return Status::Corruption("plan: ext hop rtn");
  h->rtn = flag != 0;
  if (!dec->GetVarint32(&h->repeat)) return Status::Corruption("plan: ext hop repeat");
  if (h->repeat == 0 || h->repeat > kMaxRepeat) {
    return Status::Corruption("plan: ext hop repeat out of range");
  }
  GT_RETURN_IF_ERROR(DecodeFilters(dec, &h->until_filters));
  return Status::OK();
}

std::string TraversalPlan::Encode() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(start_ids.size()));
  for (auto vid : start_ids) PutVarint64(&out, vid);
  EncodeFilters(&out, start_vertex_filters);
  out.push_back(start_rtn ? 1 : 0);
  PutVarint32(&out, static_cast<uint32_t>(hops.size()));
  for (const auto& h : hops) {
    PutVarint32(&out, h.edge_label);
    EncodeFilters(&out, h.edge_filters);
    EncodeFilters(&out, h.vertex_filters);
    out.push_back(h.rtn ? 1 : 0);
  }

  // Versioned extension tail, present exactly when some extension field is
  // non-default (keeps legacy plans byte-identical, and makes the encoding
  // canonical: Decode rejects an all-default tail).
  if (!has_ext()) return out;
  out.push_back(static_cast<char>(kPlanExtVersion));
  out.push_back(static_cast<char>(result_mode));
  PutVarint32(&out, group_key);
  uint8_t flags = 0;
  if (push_start_filters) flags |= kExtFlagPushdown;
  flags |= static_cast<uint8_t>((fetch_hint & 0x3) << kExtFetchShift);
  out.push_back(static_cast<char>(flags));
  // Per-hop extensions, one entry per legacy hop (count re-stated so a
  // truncated tail cannot silently drop entries).
  PutVarint32(&out, static_cast<uint32_t>(hops.size()));
  for (const auto& h : hops) {
    PutVarint32(&out, h.repeat);
    EncodeFilters(&out, h.until_filters);
  }
  PutVarint32(&out, static_cast<uint32_t>(branch_alts.size()));
  if (!branch_alts.empty()) {
    for (const auto& alt : branch_alts) {
      PutVarint32(&out, static_cast<uint32_t>(alt.size()));
      for (const auto& h : alt) EncodeHopExt(&out, h);
    }
    PutVarint32(&out, static_cast<uint32_t>(branch_tail.size()));
    for (const auto& h : branch_tail) EncodeHopExt(&out, h);
  }
  return out;
}

Status TraversalPlan::DecodeExtTail(CheckedReader* dec) {
  uint8_t version = 0;
  if (!dec->GetByte(&version)) return Status::Corruption("plan: ext version");
  if (version != kPlanExtVersion) return Status::Corruption("plan: unknown ext version");
  uint8_t mode = 0;
  if (!dec->GetByte(&mode)) return Status::Corruption("plan: ext result mode");
  if (mode > static_cast<uint8_t>(ResultMode::kPaths)) {
    return Status::Corruption("plan: bad result mode");
  }
  result_mode = static_cast<ResultMode>(mode);
  if (!dec->GetVarint32(&group_key)) return Status::Corruption("plan: ext group key");
  uint8_t flags = 0;
  if (!dec->GetByte(&flags)) return Status::Corruption("plan: ext flags");
  if ((flags & ~kExtKnownFlags) != 0) return Status::Corruption("plan: unknown ext flags");
  push_start_filters = (flags & kExtFlagPushdown) != 0;
  fetch_hint = static_cast<uint8_t>((flags >> kExtFetchShift) & 0x3);

  uint32_t n = 0;
  // 2 = minimum per-hop extension (repeat varint + empty until list).
  if (!dec->GetCount(&n, 2)) return Status::Corruption("plan: ext hop count");
  if (n != hops.size()) return Status::Corruption("plan: ext hop count mismatch");
  for (auto& h : hops) {
    if (!dec->GetVarint32(&h.repeat)) return Status::Corruption("plan: hop repeat");
    if (h.repeat == 0 || h.repeat > kMaxRepeat) {
      return Status::Corruption("plan: hop repeat out of range");
    }
    GT_RETURN_IF_ERROR(DecodeFilters(dec, &h.until_filters));
  }
  if (ExpandedSteps(hops) > kMaxExpandedSteps) {
    return Status::Corruption("plan: expanded step cap exceeded");
  }

  uint32_t n_alts = 0;
  // 7 = minimum encoded alternative (count + one minimal ext hop).
  if (!dec->GetCount(&n_alts, 7)) return Status::Corruption("plan: branch count");
  if (n_alts != 0) {
    if (n_alts < 2 || n_alts > kMaxBranchAlts) {
      return Status::Corruption("plan: branch alternative count out of range");
    }
    branch_alts.resize(n_alts);
    for (auto& alt : branch_alts) {
      uint32_t n_hops = 0;
      // 6 = minimum encoded ext hop (label + 3 empty filter lists + rtn + repeat).
      if (!dec->GetCount(&n_hops, 6)) return Status::Corruption("plan: alt hop count");
      if (n_hops == 0) return Status::Corruption("plan: empty branch alternative");
      alt.resize(n_hops);
      for (auto& h : alt) GT_RETURN_IF_ERROR(DecodeHopExt(dec, &h));
    }
    uint32_t n_tail = 0;
    if (!dec->GetCount(&n_tail, 6)) return Status::Corruption("plan: branch tail count");
    branch_tail.resize(n_tail);
    for (auto& h : branch_tail) GT_RETURN_IF_ERROR(DecodeHopExt(dec, &h));
    for (const auto& alt : branch_alts) {
      if (ExpandedSteps(hops) + ExpandedSteps(alt) + ExpandedSteps(branch_tail) >
          kMaxExpandedSteps) {
        return Status::Corruption("plan: branch expanded step cap exceeded");
      }
    }
  }
  return Status::OK();
}

Result<TraversalPlan> TraversalPlan::Decode(std::string_view data) {
  TraversalPlan plan;
  CheckedReader dec(data);
  uint32_t n = 0;
  if (!dec.GetCount(&n)) return Status::Corruption("plan: start ids");
  plan.start_ids.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    uint64_t vid;
    if (!dec.GetVarint64(&vid)) return Status::Corruption("plan: start id");
    plan.start_ids.push_back(vid);
  }
  GT_RETURN_IF_ERROR(DecodeFilters(&dec, &plan.start_vertex_filters));
  uint8_t flag = 0;
  if (!dec.GetByte(&flag)) return Status::Corruption("plan: start rtn");
  plan.start_rtn = flag != 0;

  uint32_t hops = 0;
  // 4 = minimum encoded hop: label varint + two empty filter lists + rtn.
  if (!dec.GetCount(&hops, 4)) return Status::Corruption("plan: hop count");
  plan.hops.resize(hops);
  for (uint32_t i = 0; i < hops; i++) {
    Hop& h = plan.hops[i];
    if (!dec.GetVarint32(&h.edge_label)) return Status::Corruption("plan: hop label");
    GT_RETURN_IF_ERROR(DecodeFilters(&dec, &h.edge_filters));
    GT_RETURN_IF_ERROR(DecodeFilters(&dec, &h.vertex_filters));
    if (!dec.GetByte(&flag)) return Status::Corruption("plan: hop rtn");
    h.rtn = flag != 0;
  }

  // Absent tail = legacy plan; present tail = full extension decode. A tail
  // whose fields are all defaults is rejected so the encoding stays
  // canonical (Encode omits the tail in that case).
  if (!dec.empty()) {
    GT_RETURN_IF_ERROR(plan.DecodeExtTail(&dec));
    if (!plan.has_ext()) return Status::Corruption("plan: redundant ext tail");
  }
  if (!dec.empty()) return Status::Corruption("plan: trailing bytes");
  return plan;
}

Status TraversalPlan::Validate() const {
  if (hops.empty() && start_ids.empty() && !has_branch()) {
    return Status::InvalidArgument("traversal needs at least one hop or explicit start ids");
  }
  // group_key 0 is a legitimate catalog id (the first interned name), so a
  // missing key cannot be detected here; GTravel::group() rejects empty key
  // names at build time instead. The inverse direction stays checkable: a
  // nonzero key on a non-group plan is always a composition error.
  if (result_mode != ResultMode::kGroup && group_key != 0) {
    return Status::InvalidArgument("group key without group result mode");
  }
  if (!branch_alts.empty() &&
      (branch_alts.size() < 2 || branch_alts.size() > kMaxBranchAlts)) {
    return Status::InvalidArgument("branch() needs 2..8 alternatives");
  }
  if (branch_alts.empty() && !branch_tail.empty()) {
    return Status::InvalidArgument("branch tail without branch alternatives");
  }

  // until: only on the final hop of the whole chain, and the plan must use
  // the direct result protocol (no rtn) so matches can complete as terminal
  // results. Branches fork the tail, so until cannot compose with branch.
  bool any_until = false;
  for (size_t i = 0; i < hops.size(); i++) {
    if (hops[i].until_filters.empty()) continue;
    any_until = true;
    if (has_branch() || i + 1 != hops.size()) {
      return Status::InvalidArgument("until() must terminate the chain");
    }
  }
  for (const auto& alt : branch_alts) {
    if (alt.empty()) return Status::InvalidArgument("empty branch alternative");
    for (const auto& h : alt) {
      if (h.rtn) return Status::InvalidArgument("rtn() inside a branch alternative");
      if (!h.until_filters.empty()) {
        return Status::InvalidArgument("until() inside a branch alternative");
      }
    }
  }
  for (const auto& h : branch_tail) {
    if (!h.until_filters.empty()) {
      return Status::InvalidArgument("until() after a branch merge");
    }
  }
  if (any_until && has_rtn()) {
    return Status::InvalidArgument("until() cannot compose with rtn()");
  }
  if (any_until && result_mode == ResultMode::kPaths) {
    return Status::InvalidArgument("path() cannot compose with until()");
  }

  if (result_mode == ResultMode::kPaths || result_mode == ResultMode::kGroup) {
    if (has_rtn()) {
      return Status::InvalidArgument("path()/group() cannot compose with rtn()");
    }
  }

  // Step caps (per flattened linear sub-plan).
  size_t max_alt = 0;
  for (const auto& alt : branch_alts) max_alt = std::max(max_alt, ExpandedSteps(alt));
  const size_t total = ExpandedSteps(hops) + max_alt + ExpandedSteps(branch_tail);
  if (total > kMaxExpandedSteps) {
    return Status::InvalidArgument("plan exceeds the expanded step cap");
  }
  if (result_mode == ResultMode::kPaths && total > kMaxPathSteps) {
    return Status::InvalidArgument("path() plans are capped at 8 steps");
  }
  for (const auto& h : hops) {
    if (h.repeat == 0 || h.repeat > kMaxRepeat) {
      return Status::InvalidArgument("repeat() out of range");
    }
  }
  for (const auto& alt : branch_alts) {
    for (const auto& h : alt) {
      if (h.repeat == 0 || h.repeat > kMaxRepeat) {
        return Status::InvalidArgument("repeat() out of range");
      }
    }
  }
  for (const auto& h : branch_tail) {
    if (h.repeat == 0 || h.repeat > kMaxRepeat) {
      return Status::InvalidArgument("repeat() out of range");
    }
  }
  return Status::OK();
}

Result<TraversalPlan> TraversalPlan::Unrolled() const {
  if (has_branch()) {
    return Status::InvalidArgument("cannot unroll a branch plan; flatten first");
  }
  if (expanded_num_steps() > kMaxExpandedSteps) {
    return Status::InvalidArgument("plan exceeds the expanded step cap");
  }
  TraversalPlan out = *this;
  out.hops.clear();
  out.hops.reserve(expanded_num_steps());
  for (const auto& h : hops) {
    const uint32_t r = h.repeat == 0 ? 1 : h.repeat;
    for (uint32_t i = 0; i < r; i++) {
      Hop copy = h;
      copy.repeat = 1;
      // rtn marks the working set after the whole repeat block.
      copy.rtn = h.rtn && i + 1 == r;
      out.hops.push_back(std::move(copy));
    }
  }
  return out;
}

std::vector<TraversalPlan> TraversalPlan::FlattenBranches() const {
  if (!has_branch()) return {*this};
  std::vector<TraversalPlan> out;
  out.reserve(branch_alts.size());
  for (const auto& alt : branch_alts) {
    TraversalPlan sub = *this;
    sub.branch_alts.clear();
    sub.branch_tail.clear();
    sub.hops = hops;
    sub.hops.insert(sub.hops.end(), alt.begin(), alt.end());
    sub.hops.insert(sub.hops.end(), branch_tail.begin(), branch_tail.end());
    out.push_back(std::move(sub));
  }
  return out;
}

}  // namespace gt::lang
