// TraversalPlan: the compiled form of a GTravel query that travels between
// servers. A plan has a start step (explicit vertex ids, or a typed vertex
// scan) followed by hops; each hop names the edge type to follow, filters on
// those edges, filters on the destination vertices, and whether the step's
// working set is marked rtn().
//
// Step numbering matches the paper: step 0 is the start working set; step i
// (i >= 1) is the working set after following hops[i-1].
#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/encoding.h"
#include "src/lang/filter.h"

namespace gt::lang {

struct Hop {
  graph::LabelId edge_label = 0;
  std::vector<Filter> edge_filters;    // ea() on the traversed edges
  std::vector<Filter> vertex_filters;  // va() on the destination vertices
  bool rtn = false;

  bool operator==(const Hop& o) const {
    return edge_label == o.edge_label && edge_filters == o.edge_filters &&
           vertex_filters == o.vertex_filters && rtn == o.rtn;
  }
};

struct TraversalPlan {
  // Start working set: explicit ids, or (when empty) every vertex passing
  // start_vertex_filters — the validator requires a type EQ filter in that
  // case so the scan can use the type index.
  std::vector<graph::VertexId> start_ids;
  std::vector<Filter> start_vertex_filters;
  bool start_rtn = false;

  std::vector<Hop> hops;

  // Number of traversal steps in the paper's sense (edge hops).
  size_t num_steps() const { return hops.size(); }

  // True if any step is marked rtn(); otherwise the engines return the
  // final working set.
  bool has_rtn() const {
    if (start_rtn) return true;
    for (const auto& h : hops) {
      if (h.rtn) return true;
    }
    return false;
  }

  // Index of the last rtn-marked step, or -1 when none.
  int last_rtn_step() const {
    int last = start_rtn ? 0 : -1;
    for (size_t i = 0; i < hops.size(); i++) {
      if (hops[i].rtn) last = static_cast<int>(i) + 1;
    }
    return last;
  }

  bool operator==(const TraversalPlan& o) const {
    return start_ids == o.start_ids && start_vertex_filters == o.start_vertex_filters &&
           start_rtn == o.start_rtn && hops == o.hops;
  }

  std::string Encode() const {
    std::string out;
    PutVarint32(&out, static_cast<uint32_t>(start_ids.size()));
    for (auto vid : start_ids) PutVarint64(&out, vid);
    EncodeFilters(&out, start_vertex_filters);
    out.push_back(start_rtn ? 1 : 0);
    PutVarint32(&out, static_cast<uint32_t>(hops.size()));
    for (const auto& h : hops) {
      PutVarint32(&out, h.edge_label);
      EncodeFilters(&out, h.edge_filters);
      EncodeFilters(&out, h.vertex_filters);
      out.push_back(h.rtn ? 1 : 0);
    }
    return out;
  }

  static Result<TraversalPlan> Decode(std::string_view data) {
    TraversalPlan plan;
    CheckedReader dec(data);
    uint32_t n = 0;
    if (!dec.GetCount(&n)) return Status::Corruption("plan: start ids");
    plan.start_ids.reserve(n);
    for (uint32_t i = 0; i < n; i++) {
      uint64_t vid;
      if (!dec.GetVarint64(&vid)) return Status::Corruption("plan: start id");
      plan.start_ids.push_back(vid);
    }
    GT_RETURN_IF_ERROR(DecodeFilters(&dec, &plan.start_vertex_filters));
    uint8_t flag = 0;
    if (!dec.GetByte(&flag)) return Status::Corruption("plan: start rtn");
    plan.start_rtn = flag != 0;

    uint32_t hops = 0;
    // 4 = minimum encoded hop: label varint + two empty filter lists + rtn.
    if (!dec.GetCount(&hops, 4)) return Status::Corruption("plan: hop count");
    plan.hops.resize(hops);
    for (uint32_t i = 0; i < hops; i++) {
      Hop& h = plan.hops[i];
      if (!dec.GetVarint32(&h.edge_label)) return Status::Corruption("plan: hop label");
      GT_RETURN_IF_ERROR(DecodeFilters(&dec, &h.edge_filters));
      GT_RETURN_IF_ERROR(DecodeFilters(&dec, &h.vertex_filters));
      if (!dec.GetByte(&flag)) return Status::Corruption("plan: hop rtn");
      h.rtn = flag != 0;
    }
    if (!dec.empty()) return Status::Corruption("plan: trailing bytes");
    return plan;
  }

 private:
  static void EncodeFilters(std::string* out, const std::vector<Filter>& filters) {
    PutVarint32(out, static_cast<uint32_t>(filters.size()));
    for (const auto& f : filters) f.EncodeTo(out);
  }

  static Status DecodeFilters(CheckedReader* dec, std::vector<Filter>* out) {
    uint32_t n = 0;
    // 3 = minimum encoded filter (key varint + op byte + count varint).
    if (!dec->GetCount(&n, 3)) return Status::Corruption("plan: filter count");
    out->resize(n);
    for (uint32_t i = 0; i < n; i++) {
      GT_RETURN_IF_ERROR(Filter::DecodeFrom(dec, &(*out)[i]));
    }
    return Status::OK();
  }
};

}  // namespace gt::lang
