// TraversalPlan: the compiled form of a GTravel query that travels between
// servers. A plan has a start step (explicit vertex ids, or a typed vertex
// scan) followed by hops; each hop names the edge type to follow, filters on
// those edges, filters on the destination vertices, and whether the step's
// working set is marked rtn().
//
// Step numbering matches the paper: step 0 is the start working set; step i
// (i >= 1) is the working set after following hops[i-1].
//
// Language extensions beyond the paper's v/e/va/ea/rtn surface ride in a
// versioned tail appended after the legacy encoding (absent tail = legacy
// defaults, truncated tail = error; see DESIGN.md "GTravel language &
// planner"):
//   - repeat(n)/until(filter): a hop may carry a repeat count (unrolled
//     server-side into ordinary hop cohorts by Unrolled()) and an until
//     filter set checked at each iteration boundary; matches are terminal
//     results.
//   - result modes: kVertices (legacy), kCount, kGroup (group_key), kPaths.
//   - branch: the working set forks across alternative hop chains after the
//     `hops` prefix and merges (union) before `branch_tail`; executed as
//     one flattened linear sub-plan per alternative (FlattenBranches()).
//   - planner hints: push_start_filters (apply start filters inside the
//     type-index scan) and fetch_hint (batched-vs-single frontier fetch);
//     hints never change results, only how the engines execute.
#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/encoding.h"
#include "src/lang/filter.h"

namespace gt::lang {

// What the completion protocol delivers to the client.
enum class ResultMode : uint8_t {
  kVertices = 0,  // sorted distinct vertex ids (legacy)
  kCount = 1,     // just |result set|
  kGroup = 2,     // result vertices grouped by the group_key property value
  kPaths = 3,     // full visited vertex chains (start..result)
};

// Hard caps enforced at decode time and by the builder: the plan codec is an
// untrusted surface, and repeat unrolling multiplies work server-side.
inline constexpr uint32_t kMaxRepeat = 64;
inline constexpr uint32_t kMaxExpandedSteps = 128;
inline constexpr uint32_t kMaxPathSteps = 8;
inline constexpr uint32_t kMaxBranchAlts = 8;

struct Hop {
  graph::LabelId edge_label = 0;
  std::vector<Filter> edge_filters;    // ea() on the traversed edges
  std::vector<Filter> vertex_filters;  // va() on the destination vertices
  bool rtn = false;

  // Extension fields (versioned codec tail; defaults = legacy semantics).
  // repeat > 1 executes this hop that many times in sequence; until_filters
  // (AND-composed) are checked after each iteration's vertex filters, and a
  // matching vertex becomes a terminal result instead of expanding further.
  uint32_t repeat = 1;
  std::vector<Filter> until_filters;

  bool has_ext() const { return repeat != 1 || !until_filters.empty(); }

  bool operator==(const Hop& o) const {
    return edge_label == o.edge_label && edge_filters == o.edge_filters &&
           vertex_filters == o.vertex_filters && rtn == o.rtn && repeat == o.repeat &&
           until_filters == o.until_filters;
  }
};

struct TraversalPlan {
  // Start working set: explicit ids, or (when empty) every vertex passing
  // start_vertex_filters — the validator requires a type EQ filter in that
  // case so the scan can use the type index.
  std::vector<graph::VertexId> start_ids;
  std::vector<Filter> start_vertex_filters;
  bool start_rtn = false;

  std::vector<Hop> hops;

  // --- extensions (versioned codec tail; defaults = legacy semantics) ---
  ResultMode result_mode = ResultMode::kVertices;
  graph::Catalog::Id group_key = 0;  // property key for ResultMode::kGroup

  // Planner hints. push_start_filters: the scan-start applies every start
  // vertex filter inside the type-index scan, so only matching vertices
  // become root execs. fetch_hint: 0 = server default, 1 = force batched
  // MultiGet frontier fetch, 2 = force single-vertex fetch. Both are
  // result-identical by construction.
  bool push_start_filters = false;
  uint8_t fetch_hint = 0;

  // Branch/union step: when branch_alts is non-empty (>= 2 alternatives),
  // the chain is `hops` (prefix), then a fork across the alternatives, then
  // a union-merge, then `branch_tail`. Executed via FlattenBranches().
  std::vector<std::vector<Hop>> branch_alts;
  std::vector<Hop> branch_tail;

  // Number of traversal steps in the paper's sense (edge hops) of the
  // prefix chain. For branch plans the per-alternative totals come from
  // FlattenBranches(); for repeat hops see expanded_num_steps().
  size_t num_steps() const { return hops.size(); }

  bool has_branch() const { return !branch_alts.empty(); }

  // Steps after repeat expansion (prefix chain only; no branch).
  static size_t ExpandedSteps(const std::vector<Hop>& hs) {
    size_t n = 0;
    for (const auto& h : hs) n += h.repeat == 0 ? 1 : h.repeat;
    return n;
  }
  size_t expanded_num_steps() const { return ExpandedSteps(hops); }

  bool has_until() const {
    for (const auto& h : hops) {
      if (!h.until_filters.empty()) return true;
    }
    return false;
  }

  // True if any step is marked rtn(); otherwise the engines return the
  // final working set.
  bool has_rtn() const {
    if (start_rtn) return true;
    for (const auto& h : hops) {
      if (h.rtn) return true;
    }
    for (const auto& h : branch_tail) {
      if (h.rtn) return true;
    }
    return false;
  }

  // Index of the last rtn-marked step, or -1 when none (prefix chain only).
  int last_rtn_step() const {
    int last = start_rtn ? 0 : -1;
    for (size_t i = 0; i < hops.size(); i++) {
      if (hops[i].rtn) last = static_cast<int>(i) + 1;
    }
    return last;
  }

  // True when any extension field differs from its legacy default; the
  // codec appends the versioned tail exactly in this case, keeping legacy
  // plans byte-identical to the pre-extension encoding.
  bool has_ext() const;

  bool operator==(const TraversalPlan& o) const {
    return start_ids == o.start_ids && start_vertex_filters == o.start_vertex_filters &&
           start_rtn == o.start_rtn && hops == o.hops && result_mode == o.result_mode &&
           group_key == o.group_key && push_start_filters == o.push_start_filters &&
           fetch_hint == o.fetch_hint && branch_alts == o.branch_alts &&
           branch_tail == o.branch_tail;
  }

  std::string Encode() const;
  static Result<TraversalPlan> Decode(std::string_view data);

  // Semantic validation beyond what Decode's structural checks enforce;
  // called by GTravel::Build() and again by the coordinator on every
  // wire-delivered plan (the decode surface is untrusted).
  Status Validate() const;

  // Expands repeat hops into ordinary linear hop cohorts so step
  // attribution and snapshot pinning work unchanged. REQUIRES: no branch.
  // rtn transfers to the last copy; until_filters are stamped on every copy
  // (the check applies at each iteration boundary). Fails when the expanded
  // chain exceeds kMaxExpandedSteps.
  Result<TraversalPlan> Unrolled() const;

  // Branch execution: one linear sub-plan per alternative
  // (prefix + alternative + tail), each preserving start, filters, result
  // mode and planner hints. Returns {*this} for non-branch plans. The union
  // of the sub-plans' results is exactly the branch semantics because hops
  // and filters distribute over union.
  std::vector<TraversalPlan> FlattenBranches() const;

 private:
  static void EncodeFilters(std::string* out, const std::vector<Filter>& filters);
  static Status DecodeFilters(CheckedReader* dec, std::vector<Filter>* out);
  static void EncodeHopExt(std::string* out, const Hop& h);
  static Status DecodeHopExt(CheckedReader* dec, Hop* h);
  Status DecodeExtTail(CheckedReader* dec);
};

}  // namespace gt::lang
