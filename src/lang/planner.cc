#include "src/lang/planner.h"

#include <algorithm>

namespace gt::lang {

namespace {

// Per-op selectivity priors, used when the statistics cannot say anything
// sharper (non-type keys have no per-value histograms yet). The absolute
// values matter less than the ordering: EQ < IN < RANGE, and a type-EQ
// filter gets its true per-type fraction.
constexpr double kEqPrior = 0.05;
constexpr double kRangePrior = 0.35;

// Frontier width at which batched MultiGet wins over single-vertex fetch
// (below it the batch setup cost dominates; matches the Table II-style
// degree statistics the fetch batching was measured against).
constexpr double kBatchedFetchWidth = 4.0;

}  // namespace

PlanStats CollectPlanStats(const graph::RefGraph& graph, const graph::Catalog& catalog) {
  PlanStats stats;
  for (const auto& [vid, rec] : graph.vertices()) {
    (void)vid;
    stats.total_vertices++;
    stats.vertices_per_type[rec.label]++;
  }
  stats.total_edges = graph.num_edges();
  const auto num_labels = static_cast<graph::LabelId>(catalog.size());
  for (const auto& [vid, rec] : graph.vertices()) {
    (void)rec;
    for (graph::LabelId label = 0; label < num_labels; label++) {
      const size_t n = graph.Edges(vid, label).size();
      if (n != 0) stats.edges_per_label[label] += n;
    }
  }
  return stats;
}

double EstimateSelectivity(const Filter& f, const PlanStats& stats,
                           const graph::Catalog& catalog, graph::Catalog::Id type_key) {
  if (f.key == type_key && f.op == FilterOp::kEq && !f.values.empty() &&
      stats.total_vertices > 0) {
    // True fraction from the per-type counts when the value names a known
    // label; a type nobody has eliminates everything.
    if (f.values[0].is_string()) {
      const graph::Catalog::Id label = catalog.Lookup(f.values[0].as_string());
      if (label == graph::Catalog::kInvalidId) return 0.0;
      auto it = stats.vertices_per_type.find(label);
      const uint64_t n = it == stats.vertices_per_type.end() ? 0 : it->second;
      return static_cast<double>(n) / static_cast<double>(stats.total_vertices);
    }
  }
  switch (f.op) {
    case FilterOp::kEq:
      return kEqPrior;
    case FilterOp::kIn:
      return std::min(1.0, kEqPrior * static_cast<double>(f.values.size()));
    case FilterOp::kRange:
      return kRangePrior;
  }
  return 1.0;
}

namespace {

double ListSelectivity(const std::vector<Filter>& filters, const PlanStats& stats,
                       const graph::Catalog& catalog, graph::Catalog::Id type_key) {
  double sel = 1.0;
  for (const auto& f : filters) sel *= EstimateSelectivity(f, stats, catalog, type_key);
  return sel;
}

// Stable-sorts one AND list by ascending selectivity (most selective filter
// evaluates first, so non-matching candidates are rejected cheapest).
bool ReorderList(std::vector<Filter>* filters, const PlanStats& stats,
                 const graph::Catalog& catalog, graph::Catalog::Id type_key) {
  if (filters->size() < 2) return false;
  std::vector<Filter> before = *filters;
  std::stable_sort(filters->begin(), filters->end(),
                   [&](const Filter& a, const Filter& b) {
                     return EstimateSelectivity(a, stats, catalog, type_key) <
                            EstimateSelectivity(b, stats, catalog, type_key);
                   });
  return !(*filters == before);
}

void ReorderHops(std::vector<Hop>* hops, const PlanStats& stats,
                 const graph::Catalog& catalog, graph::Catalog::Id type_key,
                 PlannerReport* report) {
  for (auto& h : *hops) {
    if (ReorderList(&h.edge_filters, stats, catalog, type_key)) {
      report->filter_lists_reordered++;
    }
    if (ReorderList(&h.vertex_filters, stats, catalog, type_key)) {
      report->filter_lists_reordered++;
    }
    if (ReorderList(&h.until_filters, stats, catalog, type_key)) {
      report->filter_lists_reordered++;
    }
  }
}

}  // namespace

TraversalPlan RewritePlan(const TraversalPlan& plan, const PlanStats& stats,
                          const graph::Catalog& catalog, graph::Catalog::Id type_key,
                          PlannerReport* report) {
  PlannerReport local;
  if (report == nullptr) report = &local;
  *report = PlannerReport();
  TraversalPlan out = plan;

  // 1. Selectivity-ordered AND lists, everywhere filters appear.
  if (ReorderList(&out.start_vertex_filters, stats, catalog, type_key)) {
    report->filter_lists_reordered++;
  }
  ReorderHops(&out.hops, stats, catalog, type_key, report);
  for (auto& alt : out.branch_alts) {
    ReorderHops(&alt, stats, catalog, type_key, report);
  }
  ReorderHops(&out.branch_tail, stats, catalog, type_key, report);

  // 2. Predicate pushdown into the type-index scan: only worth it when the
  // scan start carries filters beyond the type anchor (otherwise the scan
  // already yields exactly the start set).
  if (out.start_ids.empty() && out.start_vertex_filters.size() > 1) {
    out.push_start_filters = true;
    report->pushed_down = true;
  }

  // 3. Fetch strategy from the expected frontier width after the first hop.
  double width = 0.0;
  if (!out.start_ids.empty()) {
    width = static_cast<double>(out.start_ids.size());
    width *= ListSelectivity(out.start_vertex_filters, stats, catalog, type_key);
  } else if (stats.total_vertices > 0) {
    width = static_cast<double>(stats.total_vertices) *
            ListSelectivity(out.start_vertex_filters, stats, catalog, type_key);
  }
  report->est_start_width = width;
  const std::vector<Hop>* first_hops = &out.hops;
  if (out.hops.empty() && !out.branch_alts.empty()) first_hops = &out.branch_alts[0];
  if (out.hops.empty() && out.branch_alts.empty()) first_hops = &out.branch_tail;
  if (!first_hops->empty()) {
    const Hop& h = first_hops->front();
    width *= stats.avg_out_degree(h.edge_label);
    width *= ListSelectivity(h.edge_filters, stats, catalog, type_key);
    width *= ListSelectivity(h.vertex_filters, stats, catalog, type_key);
    report->est_first_hop_width = width;
    out.fetch_hint = width >= kBatchedFetchWidth ? 1 : 2;
    report->fetch_hint = out.fetch_hint;
  }
  return out;
}

}  // namespace gt::lang
