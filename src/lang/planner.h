// Statistics-driven plan rewriting. The planner consumes the same graph
// statistics the Table II generator benches compute (vertex counts per
// type, edge counts per label) and applies three result-identical rewrites:
//
//   1. Filter reordering: AND-composed va()/ea() filter lists are
//      stable-sorted by estimated selectivity (cheapest-to-eliminate
//      first). AND is commutative, so the rewrite cannot change results.
//   2. Predicate pushdown: scan-start plans with filters beyond the type
//      anchor set push_start_filters, so the engines apply every start
//      filter inside the type-index scan and only matching vertices become
//      root execs. Engines re-apply the filters at processing time
//      (idempotent), so this is result-identical by construction.
//   3. Fetch strategy: the expected frontier width after the first hop
//      decides batched MultiGet vs single-vertex fetch (fetch_hint); both
//      paths read the same records from the same snapshot.
//
// The differential harness enforces planner-on == planner-off equality on
// randomized plans; test_planner.cc pins the rewrite goldens.
#pragma once

#include <cstdint>
#include <map>

#include "src/graph/ref_graph.h"
#include "src/lang/plan.h"

namespace gt::lang {

// Graph statistics the planner consumes. On a server these come from the
// local shard (hash partitioning makes the shard a uniform sample, so the
// ratios are representative); tests and benches build them from a RefGraph.
struct PlanStats {
  uint64_t total_vertices = 0;
  uint64_t total_edges = 0;
  std::map<graph::LabelId, uint64_t> vertices_per_type;
  std::map<graph::LabelId, uint64_t> edges_per_label;

  double avg_out_degree(graph::LabelId edge_label) const {
    if (total_vertices == 0) return 0.0;
    auto it = edges_per_label.find(edge_label);
    const double edges = it == edges_per_label.end()
                             ? static_cast<double>(total_edges)
                             : static_cast<double>(it->second);
    return edges / static_cast<double>(total_vertices);
  }
};

// Which rewrites ran (for goldens and for the bench's self-report).
struct PlannerReport {
  uint32_t filter_lists_reordered = 0;
  bool pushed_down = false;
  uint8_t fetch_hint = 0;
  double est_start_width = 0.0;
  double est_first_hop_width = 0.0;
};

// Builds PlanStats by counting a RefGraph (tests, benches, clients). The
// catalog bounds the label-id space for the per-label edge counts.
PlanStats CollectPlanStats(const graph::RefGraph& graph, const graph::Catalog& catalog);

// Estimated fraction of candidate vertices/edges a filter keeps. Type-EQ
// filters use the per-type counts; the rest use fixed per-op priors scaled
// by IN-list width. `catalog` resolves type filter values to label ids.
double EstimateSelectivity(const Filter& f, const PlanStats& stats,
                           const graph::Catalog& catalog, graph::Catalog::Id type_key);

// Applies the rewrites above. Never changes plan semantics; the returned
// plan passes Validate() whenever the input did.
TraversalPlan RewritePlan(const TraversalPlan& plan, const PlanStats& stats,
                          const graph::Catalog& catalog, graph::Catalog::Id type_key,
                          PlannerReport* report = nullptr);

}  // namespace gt::lang
