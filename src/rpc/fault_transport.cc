#include "src/rpc/fault_transport.h"

#include "src/common/clock.h"

namespace gt::rpc {

FaultInjectingTransport::FaultInjectingTransport(Transport* inner, uint64_t seed)
    : inner_(inner), rng_(seed), timer_cv_(&mu_) {
  timer_ = std::thread([this] { TimerLoop(); });
}

FaultInjectingTransport::~FaultInjectingTransport() { Shutdown(); }

Status FaultInjectingTransport::RegisterEndpoint(EndpointId id, MessageHandler handler) {
  // Wrap the handler so receive-side traffic shows up in this decorator's
  // stats too (the inner transport keeps its own, narrower view).
  return inner_->RegisterEndpoint(
      id, [this, h = std::move(handler)](Message&& msg) mutable {
        stats_.messages_received.fetch_add(1);
        stats_.bytes_received.fetch_add(msg.WireSize());
        const size_t wire_size = msg.WireSize();
        link_stats_.Update(msg.src, msg.dst, [wire_size](LinkStats& ls) {
          ls.messages_received++;
          ls.bytes_received += wire_size;
        });
        h(std::move(msg));
      });
}

void FaultInjectingTransport::UnregisterEndpoint(EndpointId id) {
  inner_->UnregisterEndpoint(id);
}

const LinkFault* FaultInjectingTransport::MatchLocked(const Message& msg) const {
  const LinkKey candidates[4] = {{msg.src, msg.dst},
                                 {kAnyEndpoint, msg.dst},
                                 {msg.src, kAnyEndpoint},
                                 {kAnyEndpoint, kAnyEndpoint}};
  for (const auto& key : candidates) {
    auto it = rules_.find(key);
    if (it == rules_.end()) continue;
    if (it->second.only_type != MsgType::kInvalid && it->second.only_type != msg.type) {
      continue;
    }
    return &it->second;
  }
  return nullptr;
}

Status FaultInjectingTransport::Send(Message msg) {
  bool duplicate = false;
  uint64_t delay_us = 0;
  {
    MutexLock lk(&mu_);
    if (stop_) return Status::Unavailable("transport shut down");
    const LinkFault* fault = MatchLocked(msg);
    if (fault != nullptr) {
      if (fault->blocked ||
          (fault->drop_probability > 0.0 && rng_.Bernoulli(fault->drop_probability))) {
        stats_.messages_dropped.fetch_add(1);
        link_stats_.Update(msg.src, msg.dst, [](LinkStats& ls) { ls.dropped++; });
        return Status::OK();  // silent loss, like a dead link
      }
      if (fault->duplicate_probability > 0.0 &&
          rng_.Bernoulli(fault->duplicate_probability)) {
        duplicate = true;
      }
      if (fault->delay_us > 0 || fault->jitter_us > 0) {
        delay_us = fault->delay_us;
        if (fault->jitter_us > 0) delay_us += rng_.Uniform(fault->jitter_us);
      }
    }
  }

  stats_.messages_sent.fetch_add(1);
  stats_.bytes_sent.fetch_add(msg.WireSize());
  const size_t wire_size = msg.WireSize();
  link_stats_.Update(msg.src, msg.dst, [wire_size, duplicate](LinkStats& ls) {
    ls.messages_sent++;
    ls.bytes_sent += wire_size;
    if (duplicate) ls.duplicated++;
  });
  if (duplicate) stats_.messages_duplicated.fetch_add(1);

  if (delay_us > 0) {
    link_stats_.Update(msg.src, msg.dst, [](LinkStats& ls) { ls.delayed++; });
    const uint64_t deliver_at = NowMicros() + delay_us;
    MutexLock lk(&mu_);
    if (stop_) return Status::Unavailable("transport shut down");
    if (duplicate) delayed_.emplace(deliver_at, msg);
    delayed_.emplace(deliver_at, std::move(msg));
    timer_cv_.Signal();
    return Status::OK();
  }

  if (duplicate) {
    Message copy = msg;
    Status first = inner_->Send(std::move(copy));
    if (!first.ok()) return first;
  }
  return inner_->Send(std::move(msg));
}

void FaultInjectingTransport::TimerLoop() {
  mu_.Lock();
  while (!stop_) {
    if (delayed_.empty()) {
      timer_cv_.Wait();
      continue;
    }
    const uint64_t now = NowMicros();
    const uint64_t deadline = delayed_.begin()->first;
    if (deadline > now) {
      timer_cv_.WaitFor(std::chrono::microseconds(deadline - now));
      continue;
    }
    Message msg = std::move(delayed_.begin()->second);
    delayed_.erase(delayed_.begin());
    // Never call into the inner transport with mu_ held: its own locks sit
    // below ours in the sanctioned order, and Send may block on real I/O.
    mu_.Unlock();
    inner_->Send(std::move(msg)).ok();  // at-most-once: late failures are loss
    mu_.Lock();
  }
  mu_.Unlock();
}

void FaultInjectingTransport::SetLinkFault(EndpointId src, EndpointId dst,
                                           LinkFault fault) {
  MutexLock lk(&mu_);
  rules_[{src, dst}] = fault;
}

void FaultInjectingTransport::ClearFault(EndpointId src, EndpointId dst) {
  MutexLock lk(&mu_);
  rules_.erase({src, dst});
  partition_keys_.erase({src, dst});
}

void FaultInjectingTransport::ClearAllFaults() {
  MutexLock lk(&mu_);
  rules_.clear();
  partition_keys_.clear();
}

void FaultInjectingTransport::PartitionBetween(const std::vector<EndpointId>& a,
                                               const std::vector<EndpointId>& b) {
  MutexLock lk(&mu_);
  for (EndpointId x : a) {
    for (EndpointId y : b) {
      for (const LinkKey& key : {LinkKey{x, y}, LinkKey{y, x}}) {
        rules_[key].blocked = true;
        partition_keys_.insert(key);
      }
    }
  }
}

void FaultInjectingTransport::Heal() {
  MutexLock lk(&mu_);
  for (const auto& key : partition_keys_) {
    auto it = rules_.find(key);
    if (it == rules_.end()) continue;
    it->second.blocked = false;
    // Drop rules the partition created outright (no other effects left).
    const LinkFault& f = it->second;
    if (f.drop_probability == 0.0 && f.duplicate_probability == 0.0 &&
        f.delay_us == 0 && f.jitter_us == 0) {
      rules_.erase(it);
    }
  }
  partition_keys_.clear();
}

void FaultInjectingTransport::Shutdown() {
  {
    MutexLock lk(&mu_);
    if (stop_) return;
    stop_ = true;
    // Pending delayed messages are lost, like frames in flight on a dying
    // fabric; count them so tests can account for every message.
    stats_.messages_dropped.fetch_add(delayed_.size());
    delayed_.clear();
  }
  timer_cv_.SignalAll();
  if (timer_.joinable()) timer_.join();
  // The inner transport is owned by the caller; shutting it down here keeps
  // decorator semantics ("the whole stack stops") without owning it.
  inner_->Shutdown();
}

}  // namespace gt::rpc
