// FaultInjectingTransport: a Transport decorator that injects deterministic,
// seeded faults per link before handing messages to the wrapped transport.
// Tests and the straggler benches use it to model lossy/slow/partitioned
// fabrics on top of *any* concrete transport (in-process or TCP) instead of
// hacking ad-hoc failure paths into each one.
//
// Fault kinds, matched per (src, dst) link with kAnyEndpoint wildcards:
//   - drop:      Bernoulli(drop_probability) messages vanish silently
//   - duplicate: Bernoulli(duplicate_probability) messages delivered twice
//   - delay:     fixed delay_us (+ uniform jitter) before the inner Send
//   - partition: blocked links drop everything until healed
//
// All randomness comes from one seeded Rng, so a given (seed, traffic)
// sequence replays identically. Delayed messages are re-sent from a single
// timer thread: messages with equal deadlines keep FIFO order, but — like a
// real network — a delayed link can reorder against undelayed traffic.
#pragma once

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/rpc/transport.h"

namespace gt::rpc {

struct LinkFault {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  uint32_t delay_us = 0;
  uint32_t jitter_us = 0;        // uniform extra [0, jitter_us)
  bool blocked = false;          // partition: drop everything on the link
  MsgType only_type = MsgType::kInvalid;  // kInvalid = match all types
};

class FaultInjectingTransport final : public Transport {
 public:
  explicit FaultInjectingTransport(Transport* inner, uint64_t seed = 42);
  ~FaultInjectingTransport() override;

  Status RegisterEndpoint(EndpointId id, MessageHandler handler) override;
  void UnregisterEndpoint(EndpointId id) override;
  Status Send(Message msg) override;
  void Shutdown() override;

  // Installs (or replaces) the fault rule for a link. kAnyEndpoint acts as
  // a wildcard on either side; the most specific rule wins:
  // (src,dst) > (*,dst) > (src,*) > (*,*).
  void SetLinkFault(EndpointId src, EndpointId dst, LinkFault fault);
  void ClearFault(EndpointId src, EndpointId dst);
  void ClearAllFaults();

  // Blocks every link crossing the two groups, both directions. Heal()
  // removes exactly the rules the partition installed.
  void PartitionBetween(const std::vector<EndpointId>& a,
                        const std::vector<EndpointId>& b);
  void Heal();

  Transport* inner() { return inner_; }

 private:
  const LinkFault* MatchLocked(const Message& msg) const GT_REQUIRES(mu_);
  void TimerLoop() GT_EXCLUDES(mu_);

  Transport* inner_;
  mutable Mutex mu_;  // guards rules, rng, delay queue
  std::map<LinkKey, LinkFault> rules_ GT_GUARDED_BY(mu_);
  std::set<LinkKey> partition_keys_ GT_GUARDED_BY(mu_);
  Rng rng_ GT_GUARDED_BY(mu_);
  // Delayed messages awaiting their inner Send, ordered by deadline;
  // multimap keeps FIFO order among equal deadlines.
  std::multimap<uint64_t, Message> delayed_ GT_GUARDED_BY(mu_);
  CondVar timer_cv_;
  std::thread timer_;  // sanctioned raw thread: the delayed-send timer
  bool stop_ GT_GUARDED_BY(mu_) = false;
};

}  // namespace gt::rpc
