#include "src/rpc/inproc_transport.h"

#include "src/common/clock.h"
#include "src/common/logging.h"

namespace gt::rpc {

InProcTransport::InProcTransport(InProcConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

InProcTransport::~InProcTransport() { Shutdown(); }

Status InProcTransport::RegisterEndpoint(EndpointId id, MessageHandler handler) {
  MutexLock lk(&mu_);
  if (shutdown_) return Status::Unavailable("transport shut down");
  if (endpoints_.count(id) != 0) {
    return Status::AlreadyExists("endpoint " + std::to_string(id));
  }
  auto ep = std::make_shared<Endpoint>(std::move(handler));
  Endpoint* raw = ep.get();
  ep->worker = std::thread([this, raw] { DeliveryLoop(raw); });
  endpoints_.emplace(id, std::move(ep));
  return Status::OK();
}

void InProcTransport::UnregisterEndpoint(EndpointId id) {
  std::shared_ptr<Endpoint> ep;
  {
    MutexLock lk(&mu_);
    auto it = endpoints_.find(id);
    if (it == endpoints_.end()) return;
    ep = std::move(it->second);
    endpoints_.erase(it);
  }
  {
    MutexLock elk(&ep->mu);
    ep->stop = true;
  }
  ep->cv.SignalAll();
  if (ep->worker.joinable()) ep->worker.join();
}

void InProcTransport::SetFaultHook(std::function<bool(const Message&)> hook) {
  MutexLock lk(&mu_);
  fault_hook_ = std::move(hook);
}

Status InProcTransport::Send(Message msg) {
  // Pinning the shared_ptr (not a raw pointer) keeps the endpoint alive even
  // if it is unregistered between releasing mu_ and locking ep->mu below.
  std::shared_ptr<Endpoint> ep;
  uint64_t extra_us = 0;
  {
    MutexLock lk(&mu_);
    if (shutdown_) return Status::Unavailable("transport shut down");
    if ((fault_hook_ && fault_hook_(msg)) ||
        (cfg_.drop_probability > 0.0 && rng_.Bernoulli(cfg_.drop_probability))) {
      stats_.messages_dropped.fetch_add(1);
      link_stats_.Update(msg.src, msg.dst, [](LinkStats& ls) { ls.dropped++; });
      return Status::OK();  // silent drop, like a lost datagram
    }
    auto it = endpoints_.find(msg.dst);
    if (it == endpoints_.end()) {
      return Status::NotFound("no endpoint " + std::to_string(msg.dst));
    }
    ep = it->second;
    if (cfg_.jitter_us > 0) extra_us = rng_.Uniform(cfg_.jitter_us);
  }

  stats_.messages_sent.fetch_add(1);
  stats_.bytes_sent.fetch_add(msg.WireSize());
  const size_t wire_size = msg.WireSize();
  link_stats_.Update(msg.src, msg.dst, [wire_size](LinkStats& ls) {
    ls.messages_sent++;
    ls.bytes_sent += wire_size;
  });

  const uint64_t deliver_at = NowMicros() + cfg_.latency_us + extra_us;
  {
    MutexLock elk(&ep->mu);
    if (ep->stop) return Status::Unavailable("endpoint closing");
    ep->queue.emplace_back(deliver_at, std::move(msg));
  }
  ep->cv.Signal();
  return Status::OK();
}

void InProcTransport::DeliveryLoop(Endpoint* ep) {
  for (;;) {
    Message msg;
    {
      MutexLock lk(&ep->mu);
      while (!ep->stop && ep->queue.empty()) ep->cv.Wait();
      if (ep->stop) return;  // undelivered messages are dropped at teardown

      const uint64_t deliver_at = ep->queue.front().first;
      const uint64_t now = NowMicros();
      if (deliver_at > now) {
        // Model link latency: hold the message until its delivery time.
        ep->cv.WaitFor(std::chrono::microseconds(deliver_at - now));
        continue;  // re-check queue/stop
      }
      msg = std::move(ep->queue.front().second);
      ep->queue.pop_front();
    }
    stats_.messages_received.fetch_add(1);
    stats_.bytes_received.fetch_add(msg.WireSize());
    const size_t wire_size = msg.WireSize();
    link_stats_.Update(msg.src, msg.dst, [wire_size](LinkStats& ls) {
      ls.messages_received++;
      ls.bytes_received += wire_size;
    });
    ep->handler(std::move(msg));
  }
}

std::map<LinkKey, LinkStats> InProcTransport::LinkSnapshot() const {
  auto rows = link_stats_.Snapshot();
  MutexLock lk(&mu_);
  for (const auto& [id, ep] : endpoints_) {
    MutexLock elk(&ep->mu);
    if (!ep->queue.empty()) {
      rows[{kAnyEndpoint, id}].queue_depth = ep->queue.size();
    }
  }
  return rows;
}

void InProcTransport::Shutdown() {
  std::unordered_map<EndpointId, std::shared_ptr<Endpoint>> eps;
  {
    MutexLock lk(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
    eps = std::move(endpoints_);
    endpoints_.clear();
  }
  for (auto& [id, ep] : eps) {
    (void)id;
    {
      MutexLock elk(&ep->mu);
      ep->stop = true;
    }
    ep->cv.SignalAll();
  }
  for (auto& [id, ep] : eps) {
    (void)id;
    if (ep->worker.joinable()) ep->worker.join();
  }
}

}  // namespace gt::rpc
