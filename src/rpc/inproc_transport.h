// In-process transport: per-endpoint inboxes drained by dedicated delivery
// threads. Models the paper's ZeroMQ fabric with configurable per-message
// latency/jitter and a fault hook used by failure-detection tests.
#pragma once

#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/rpc/transport.h"

namespace gt::rpc {

struct InProcConfig {
  uint32_t latency_us = 0;  // one-way delivery latency
  uint32_t jitter_us = 0;   // uniform extra [0, jitter_us)
  uint64_t seed = 42;       // for jitter and probabilistic drops
  double drop_probability = 0.0;  // applies to every message (tests only)
};

class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(InProcConfig cfg = {});
  ~InProcTransport() override;

  Status RegisterEndpoint(EndpointId id, MessageHandler handler) override;
  void UnregisterEndpoint(EndpointId id) override;
  Status Send(Message msg) override;
  void Shutdown() override;

  // Per-link counters plus the current inbox depth of every endpoint
  // (reported on the (kAnyEndpoint, id) row).
  std::map<LinkKey, LinkStats> LinkSnapshot() const override;

  // Fault injection: if set and returns true, the message is silently
  // dropped (counts in stats().messages_dropped). Called on the send path.
  // Kept for targeted message-level predicates; richer per-link faults
  // (delay/duplicate/partition) live in FaultInjectingTransport.
  void SetFaultHook(std::function<bool(const Message&)> hook);

 private:
  struct Endpoint {
    explicit Endpoint(MessageHandler h) : cv(&mu), handler(std::move(h)) {}

    Mutex mu;
    CondVar cv;
    MessageHandler handler;  // invoked by the delivery thread only
    // (deliver_at_us, message); FIFO within the queue, deliver_at is
    // monotone because latency is applied at enqueue time.
    std::deque<std::pair<uint64_t, Message>> queue GT_GUARDED_BY(mu);
    bool stop GT_GUARDED_BY(mu) = false;
    std::thread worker;  // delivery thread; joined by the unregister/shutdown path
  };

  void DeliveryLoop(Endpoint* ep);

  InProcConfig cfg_;
  mutable Mutex mu_;  // guards the endpoint table, fault hook and rng
  // shared_ptr, not unique_ptr: Send() pins the endpoint it resolved so a
  // concurrent UnregisterEndpoint() cannot destroy it mid-enqueue.
  std::unordered_map<EndpointId, std::shared_ptr<Endpoint>> endpoints_ GT_GUARDED_BY(mu_);
  std::function<bool(const Message&)> fault_hook_ GT_GUARDED_BY(mu_);
  Rng rng_ GT_GUARDED_BY(mu_);
  bool shutdown_ GT_GUARDED_BY(mu_) = false;
};

}  // namespace gt::rpc
