// In-process transport: per-endpoint inboxes drained by dedicated delivery
// threads. Models the paper's ZeroMQ fabric with configurable per-message
// latency/jitter and a fault hook used by failure-detection tests.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/rpc/transport.h"

namespace gt::rpc {

struct InProcConfig {
  uint32_t latency_us = 0;  // one-way delivery latency
  uint32_t jitter_us = 0;   // uniform extra [0, jitter_us)
  uint64_t seed = 42;       // for jitter and probabilistic drops
  double drop_probability = 0.0;  // applies to every message (tests only)
};

class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(InProcConfig cfg = {});
  ~InProcTransport() override;

  Status RegisterEndpoint(EndpointId id, MessageHandler handler) override;
  void UnregisterEndpoint(EndpointId id) override;
  Status Send(Message msg) override;
  void Shutdown() override;

  // Per-link counters plus the current inbox depth of every endpoint
  // (reported on the (kAnyEndpoint, id) row).
  std::map<LinkKey, LinkStats> LinkSnapshot() const override;

  // Fault injection: if set and returns true, the message is silently
  // dropped (counts in stats().messages_dropped). Called on the send path.
  // Kept for targeted message-level predicates; richer per-link faults
  // (delay/duplicate/partition) live in FaultInjectingTransport.
  void SetFaultHook(std::function<bool(const Message&)> hook);

 private:
  struct Endpoint {
    explicit Endpoint(MessageHandler h) : handler(std::move(h)) {}

    MessageHandler handler;
    std::mutex mu;
    std::condition_variable cv;
    // (deliver_at_us, message); FIFO within the queue, deliver_at is
    // monotone because latency is applied at enqueue time.
    std::deque<std::pair<uint64_t, Message>> queue;
    bool stop = false;
    std::thread worker;
  };

  void DeliveryLoop(Endpoint* ep);

  InProcConfig cfg_;
  mutable std::mutex mu_;  // guards endpoints_ and fault hook
  std::unordered_map<EndpointId, std::unique_ptr<Endpoint>> endpoints_;
  std::function<bool(const Message&)> fault_hook_;
  Rng rng_;
  bool shutdown_ = false;
};

}  // namespace gt::rpc
