#include "src/rpc/mailbox.h"

#include <chrono>

namespace gt::rpc {

Mailbox::Mailbox(Transport* transport, EndpointId id) : transport_(transport), id_(id) {
  Status s = transport_->RegisterEndpoint(id_, [this](Message&& m) { OnMessage(std::move(m)); });
  (void)s;  // AlreadyExists only happens on programmer error; surfaced in tests
}

Mailbox::~Mailbox() {
  transport_->UnregisterEndpoint(id_);
  std::lock_guard<std::mutex> lk(mu_);
  closed_ = true;
  cv_.notify_all();
}

void Mailbox::OnMessage(Message&& msg) {
  std::lock_guard<std::mutex> lk(mu_);
  if (msg.rpc_id != 0) {
    responses_.emplace(msg.rpc_id, std::move(msg));
  } else {
    inbox_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Status Mailbox::Send(EndpointId dst, MsgType type, std::string payload) {
  Message m;
  m.type = type;
  m.src = id_;
  m.dst = dst;
  m.payload = std::move(payload);
  return transport_->Send(std::move(m));
}

Result<Message> Mailbox::Call(EndpointId dst, MsgType type, std::string payload,
                              uint32_t timeout_ms) {
  const uint64_t rpc_id = next_rpc_id_.fetch_add(1);
  Message m;
  m.type = type;
  m.src = id_;
  m.dst = dst;
  m.rpc_id = rpc_id;
  m.payload = std::move(payload);
  GT_RETURN_IF_ERROR(transport_->Send(std::move(m)));

  std::unique_lock<std::mutex> lk(mu_);
  const bool got = cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms), [&] {
    return closed_ || responses_.count(rpc_id) != 0;
  });
  if (!got || closed_) return Status::Timeout("rpc " + std::to_string(rpc_id));
  Message reply = std::move(responses_.at(rpc_id));
  responses_.erase(rpc_id);
  return reply;
}

Result<Message> Mailbox::Receive(uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  const bool got = cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                                [&] { return closed_ || !inbox_.empty(); });
  if (!got || inbox_.empty()) return Status::Timeout("mailbox receive");
  Message m = std::move(inbox_.front());
  inbox_.pop_front();
  return m;
}

Result<Message> Mailbox::TryReceive() {
  std::lock_guard<std::mutex> lk(mu_);
  if (inbox_.empty()) return Status::Timeout("mailbox empty");
  Message m = std::move(inbox_.front());
  inbox_.pop_front();
  return m;
}

}  // namespace gt::rpc
