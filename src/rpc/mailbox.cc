#include "src/rpc/mailbox.h"

#include <chrono>

namespace gt::rpc {

Mailbox::Mailbox(Transport* transport, EndpointId id)
    : transport_(transport), id_(id), cv_(&mu_) {
  Status s = transport_->RegisterEndpoint(id_, [this](Message&& m) { OnMessage(std::move(m)); });
  (void)s;  // AlreadyExists only happens on programmer error; surfaced in tests
}

Mailbox::~Mailbox() {
  transport_->UnregisterEndpoint(id_);
  {
    MutexLock lk(&mu_);
    closed_ = true;
  }
  cv_.SignalAll();
}

void Mailbox::OnMessage(Message&& msg) {
  {
    MutexLock lk(&mu_);
    if (msg.rpc_id != 0) {
      responses_.emplace(msg.rpc_id, std::move(msg));
    } else {
      inbox_.push_back(std::move(msg));
    }
  }
  cv_.SignalAll();
}

Status Mailbox::Send(EndpointId dst, MsgType type, std::string payload) {
  Message m;
  m.type = type;
  m.src = id_;
  m.dst = dst;
  m.payload = std::move(payload);
  return transport_->Send(std::move(m));
}

Result<Message> Mailbox::Call(EndpointId dst, MsgType type, std::string payload,
                              uint32_t timeout_ms) {
  const uint64_t rpc_id = next_rpc_id_.fetch_add(1);
  Message m;
  m.type = type;
  m.src = id_;
  m.dst = dst;
  m.rpc_id = rpc_id;
  m.payload = std::move(payload);
  GT_RETURN_IF_ERROR(transport_->Send(std::move(m)));

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  MutexLock lk(&mu_);
  while (!closed_ && responses_.count(rpc_id) == 0) {
    if (!cv_.WaitUntil(deadline)) break;
  }
  if (closed_ || responses_.count(rpc_id) == 0) {
    return Status::Timeout("rpc " + std::to_string(rpc_id));
  }
  Message reply = std::move(responses_.at(rpc_id));
  responses_.erase(rpc_id);
  return reply;
}

Result<Message> Mailbox::Receive(uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  MutexLock lk(&mu_);
  while (!closed_ && inbox_.empty()) {
    if (!cv_.WaitUntil(deadline)) break;
  }
  if (inbox_.empty()) return Status::Timeout("mailbox receive");
  Message m = std::move(inbox_.front());
  inbox_.pop_front();
  return m;
}

Result<Message> Mailbox::TryReceive() {
  MutexLock lk(&mu_);
  if (inbox_.empty()) return Status::Timeout("mailbox empty");
  Message m = std::move(inbox_.front());
  inbox_.pop_front();
  return m;
}

size_t Mailbox::DrainInboxIf(const std::function<bool(const Message&)>& pred) {
  MutexLock lk(&mu_);
  size_t removed = 0;
  for (auto it = inbox_.begin(); it != inbox_.end();) {
    if (pred(*it)) {
      it = inbox_.erase(it);
      removed++;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace gt::rpc
