// Mailbox: endpoint helper that correlates request/response pairs and
// queues unsolicited messages. Used by GraphTrek clients to talk to
// coordinator servers (submit, progress, streamed results).
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <unordered_map>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/rpc/transport.h"

namespace gt::rpc {

class Mailbox {
 public:
  // Registers `id` on `transport`; the transport must outlive the mailbox.
  Mailbox(Transport* transport, EndpointId id);
  ~Mailbox();

  EndpointId id() const { return id_; }

  // Sends a one-way message (rpc_id = 0).
  Status Send(EndpointId dst, MsgType type, std::string payload);

  // Sends a request and waits for the message that echoes its rpc_id.
  Result<Message> Call(EndpointId dst, MsgType type, std::string payload,
                       uint32_t timeout_ms = 30000);

  // Blocks for the next unsolicited (rpc_id == 0 or unmatched) message.
  Result<Message> Receive(uint32_t timeout_ms = 30000);

  // Non-blocking variant; returns Timeout immediately when empty.
  Result<Message> TryReceive();

  // Removes every queued unsolicited message matching `pred` (stale frames
  // from finished/cancelled travels). Returns the number removed.
  size_t DrainInboxIf(const std::function<bool(const Message&)>& pred);

 private:
  void OnMessage(Message&& msg) GT_EXCLUDES(mu_);

  Transport* transport_;
  EndpointId id_;
  std::atomic<uint64_t> next_rpc_id_{1};

  Mutex mu_;
  CondVar cv_;
  std::unordered_map<uint64_t, Message> responses_ GT_GUARDED_BY(mu_);  // rpc_id -> reply
  std::deque<Message> inbox_ GT_GUARDED_BY(mu_);
  bool closed_ GT_GUARDED_BY(mu_) = false;
};

}  // namespace gt::rpc
