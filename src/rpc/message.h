// RPC message and wire format shared by all transports.
//
// Frame on the wire:
//   fixed32 frame_len (bytes after this field)
//   fixed16 type | fixed32 src | fixed32 dst | fixed64 rpc_id | payload
#pragma once

#include <cstdint>
#include <string>

#include "src/common/codec.h"
#include "src/common/status.h"

namespace gt::rpc {

// Endpoint ids: backend servers use [0, num_servers); clients allocate ids
// at kClientIdBase and above.
using EndpointId = uint32_t;
constexpr EndpointId kClientIdBase = 1u << 20;

// Fixed message-header layout after the frame_len prefix:
// type (packed as fixed32) + src + dst + rpc_id. Every frame body is at
// least this long; transports reject shorter (or absurdly long) frames as
// protocol errors instead of trying to resynchronize the stream.
constexpr uint32_t kMsgHeaderBytes = 4 + 4 + 4 + 8;
constexpr uint32_t kMinFrameBody = kMsgHeaderBytes;
constexpr uint32_t kMaxFrameBody = 64u << 20;

enum class MsgType : uint16_t {
  kInvalid = 0,

  // Client <-> coordinator.
  kSubmitTraversal = 1,   // client -> coordinator: serialized plan
  kTraversalAccepted = 2, // coordinator -> client
  kResultChunk = 3,       // coordinator -> client: streamed result vertices
  kTraversalComplete = 4, // coordinator -> client: final status
  kProgressRequest = 5,   // client -> coordinator
  kProgressReply = 6,     // coordinator -> client

  // Asynchronous engine, server <-> server.
  kTraverse = 16,         // frontier hand-off for one step
  kTraverseAck = 17,      // receiver buffered the request
  kExecCreated = 18,      // creation event -> coordinator
  kExecTerminated = 19,   // termination event -> coordinator / report dest
  kReturnVertices = 20,   // final/rtn vertices -> report destination
  kExecDispatched = 21,   // combined created(children)+terminated(self) event

  // Synchronous engine control plane.
  kSyncStepStart = 32,    // controller -> all servers
  kSyncStepDone = 33,     // server -> controller (includes sent-batch counts)
  kSyncBatch = 34,        // server -> server frontier batch
  kSyncExpect = 35,       // controller -> server: batch count to expect
  kSyncReady = 36,        // server -> controller: batches received

  // Management.
  kAbortTraversal = 48,
  kPing = 49,
  kPong = 50,
  kPinTravel = 51,      // coordinator -> all servers: pin a read snapshot

  // Live updates + point queries (client -> owning server).
  kPutVertex = 64,
  kPutEdge = 65,
  kMutateAck = 66,
  kGetVertex = 67,
  kVertexReply = 68,
  kDeleteVertex = 69,

  // Distributed catalog (any process -> authority server).
  kCatalogIntern = 80,
  kCatalogPull = 81,
  kCatalogReply = 82,
};

struct Message {
  MsgType type = MsgType::kInvalid;
  EndpointId src = 0;
  EndpointId dst = 0;
  uint64_t rpc_id = 0;  // nonzero correlates a request with its response
  std::string payload;

  // Header: frame_len(4) + type(4, low 16 bits used) + src(4) + dst(4) + rpc_id(8).
  size_t WireSize() const { return 4 + kMsgHeaderBytes + payload.size(); }

  void EncodeTo(std::string* out) const {
    const uint32_t frame_len = static_cast<uint32_t>(kMsgHeaderBytes + payload.size());
    PutFixed32(out, frame_len);
    PutFixed32(out, (static_cast<uint32_t>(type) & 0xffff));
    // type packed as fixed32 for alignment simplicity; high 16 bits zero.
    PutFixed32(out, src);
    PutFixed32(out, dst);
    PutFixed64(out, rpc_id);
    out->append(payload);
  }

  // Decodes the body of a frame (everything after frame_len).
  static Result<Message> DecodeBody(std::string_view frame_body) {
    Message m;
    if (Status s = DecodeHeader(frame_body, &m); !s.ok()) return s;
    m.payload.assign(frame_body.substr(kMsgHeaderBytes));
    return m;
  }

  // Zero-copy variant for transports that own the frame buffer: steals
  // `frame_body` as the payload (after trimming the 20-byte header in
  // place) instead of copying it. The hot kTraverse frames carry the
  // frontier and the plan, so the reader thread avoids an allocation +
  // memcpy per frame.
  static Result<Message> DecodeBody(std::string&& frame_body) {
    Message m;
    if (Status s = DecodeHeader(frame_body, &m); !s.ok()) return s;
    frame_body.erase(0, kMsgHeaderBytes);
    m.payload = std::move(frame_body);
    return m;
  }

  // Decodes the fixed header prefix of a frame body into *m (payload is
  // left untouched). `frame_body` is the whole frame after the frame_len
  // prefix, of which the first kMsgHeaderBytes are the header; anything
  // shorter — a frame_len that promised more than the header, or a
  // truncated read — is a Corruption, never an out-of-bounds access: both
  // DecodeBody variants only slice the payload off after this succeeds, so
  // a header-vs-body size mismatch can never turn into UB downstream.
  static Status DecodeHeader(std::string_view frame_body, Message* m) {
    CheckedReader reader(frame_body);
    uint32_t type32 = 0;
    if (!reader.GetFixed32(&type32) || !reader.GetFixed32(&m->src) ||
        !reader.GetFixed32(&m->dst) || !reader.GetFixed64(&m->rpc_id)) {
      return Status::Corruption("short message header");
    }
    m->type = static_cast<MsgType>(type32 & 0xffff);
    return Status::OK();
  }
};

inline const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kInvalid: return "Invalid";
    case MsgType::kSubmitTraversal: return "SubmitTraversal";
    case MsgType::kTraversalAccepted: return "TraversalAccepted";
    case MsgType::kResultChunk: return "ResultChunk";
    case MsgType::kTraversalComplete: return "TraversalComplete";
    case MsgType::kProgressRequest: return "ProgressRequest";
    case MsgType::kProgressReply: return "ProgressReply";
    case MsgType::kTraverse: return "Traverse";
    case MsgType::kTraverseAck: return "TraverseAck";
    case MsgType::kExecCreated: return "ExecCreated";
    case MsgType::kExecTerminated: return "ExecTerminated";
    case MsgType::kReturnVertices: return "ReturnVertices";
    case MsgType::kExecDispatched: return "ExecDispatched";
    case MsgType::kSyncStepStart: return "SyncStepStart";
    case MsgType::kSyncStepDone: return "SyncStepDone";
    case MsgType::kSyncBatch: return "SyncBatch";
    case MsgType::kSyncExpect: return "SyncExpect";
    case MsgType::kSyncReady: return "SyncReady";
    case MsgType::kAbortTraversal: return "AbortTraversal";
    case MsgType::kPing: return "Ping";
    case MsgType::kPong: return "Pong";
    case MsgType::kPinTravel: return "PinTravel";
    case MsgType::kPutVertex: return "PutVertex";
    case MsgType::kPutEdge: return "PutEdge";
    case MsgType::kMutateAck: return "MutateAck";
    case MsgType::kGetVertex: return "GetVertex";
    case MsgType::kVertexReply: return "VertexReply";
    case MsgType::kDeleteVertex: return "DeleteVertex";
    case MsgType::kCatalogIntern: return "CatalogIntern";
    case MsgType::kCatalogPull: return "CatalogPull";
    case MsgType::kCatalogReply: return "CatalogReply";
  }
  return "Unknown";
}

}  // namespace gt::rpc
