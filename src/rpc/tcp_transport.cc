#include "src/rpc/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/common/codec.h"
#include "src/common/logging.h"

namespace gt::rpc {

namespace {

// Connection hello: magic + version + dialed endpoint id. The listener
// verifies it hosts that endpoint and answers with the ack magic; anything
// else is a protocol error and the connection is refused. This catches
// stale registry entries whose port has been recycled by another process.
constexpr uint32_t kHelloMagic = 0x4754524b;  // "GTRK"
constexpr uint32_t kHelloAck = 0x4754414b;    // "GTAK"
constexpr uint32_t kWireVersion = 1;
constexpr size_t kHelloBytes = 12;

Status SockError(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

// Both helpers honor SO_RCVTIMEO / SO_SNDTIMEO: a timed-out syscall shows
// up as EAGAIN and fails the transfer rather than blocking forever.
bool ReadFull(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return false;  // peer closed
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

bool WriteFull(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

void SetSocketTimeout(int fd, int which, uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

// --- port registry (cross-process endpoint discovery) ------------------------

bool EnsureDir(const std::string& path) {
  std::string partial;
  for (size_t i = 0; i <= path.size(); i++) {
    if (i == path.size() || path[i] == '/') {
      if (!partial.empty() && ::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
        return false;
      }
    }
    if (i < path.size()) partial += path[i];
  }
  return true;
}

std::string RegistryPath(const std::string& dir, EndpointId id) {
  return dir + "/ep-" + std::to_string(id) + ".port";
}

Status PublishPort(const std::string& dir, EndpointId id, uint16_t port) {
  if (!EnsureDir(dir)) return SockError("mkdir registry");
  const std::string path = RegistryPath(dir, id);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return SockError("registry open");
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return SockError("registry rename");
  }
  return Status::OK();
}

void RetractPort(const std::string& dir, EndpointId id) {
  ::unlink(RegistryPath(dir, id).c_str());
}

Result<uint16_t> ReadPortFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("no registry entry at " + path);
  unsigned port = 0;
  const int n = std::fscanf(f, "%u", &port);
  std::fclose(f);
  if (n != 1 || port == 0 || port > 65535) {
    return Status::Corruption("bad registry entry at " + path);
  }
  return static_cast<uint16_t>(port);
}

}  // namespace

// --- inbound side -------------------------------------------------------------

struct TcpTransport::Listener {
  Listener() : conn_cv(&conn_mu) {}

  TcpTransport* owner = nullptr;
  EndpointId id = 0;
  int listen_fd = -1;
  uint16_t port = 0;
  MessageHandler handler;
  std::thread accept_thread;  // sanctioned raw thread: the accept loop
  std::atomic<bool> stop{false};

  Mutex conn_mu;
  CondVar conn_cv;
  uint64_t next_token GT_GUARDED_BY(conn_mu) = 0;
  std::map<uint64_t, int> live_fds GT_GUARDED_BY(conn_mu);         // open connection fds
  std::map<uint64_t, std::thread> readers GT_GUARDED_BY(conn_mu);  // their reader threads
  std::vector<std::thread> finished GT_GUARDED_BY(conn_mu);  // exited readers awaiting join

  // Joins readers that already exited; called from the accept loop so the
  // thread/fd tables stay bounded by the number of *live* connections.
  void ReapFinished() GT_EXCLUDES(conn_mu) {
    std::vector<std::thread> done;
    {
      MutexLock lk(&conn_mu);
      done.swap(finished);
    }
    for (auto& t : done) {
      if (t.joinable()) t.join();
    }
  }

  void AcceptLoop() GT_EXCLUDES(conn_mu) {
    while (!stop) {
      ReapFinished();
      int conn = ::accept(listen_fd, nullptr, nullptr);
      if (conn < 0) {
        if (stop) return;
        continue;
      }
      int one = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      MutexLock lk(&conn_mu);
      if (stop) {
        ::close(conn);
        return;
      }
      const uint64_t token = next_token++;
      live_fds.emplace(token, conn);
      readers.emplace(token, std::thread([this, token, conn] { ReaderLoop(token, conn); }));
    }
  }

  void ReaderLoop(uint64_t token, int conn) GT_EXCLUDES(conn_mu) {
    ReadConnection(conn);
    // Reap ourselves: close the fd, drop it from the live table, and hand
    // the (still running) thread object to the accept loop for joining.
    ::close(conn);
    {
      MutexLock lk(&conn_mu);
      live_fds.erase(token);
      auto it = readers.find(token);
      if (it != readers.end()) {
        finished.push_back(std::move(it->second));
        readers.erase(it);
      }
    }
    conn_cv.SignalAll();
  }

  void ReadConnection(int conn) {
    // Handshake first, under a bounded receive timeout.
    SetSocketTimeout(conn, SO_RCVTIMEO, owner->cfg_.connect_timeout_ms);
    char hello[kHelloBytes];
    if (!ReadFull(conn, hello, sizeof(hello))) return;
    CheckedReader hello_reader(hello, sizeof(hello));
    uint32_t magic = 0, version = 0;
    EndpointId dialed = 0;
    if (!hello_reader.GetFixed32(&magic) || !hello_reader.GetFixed32(&version) ||
        !hello_reader.GetFixed32(&dialed)) {
      owner->CountDecodeError();
      return;  // unreachable with kHelloBytes == 12, but keep the reads checked
    }
    if (magic != kHelloMagic || version != kWireVersion) {
      owner->CountDecodeError();
      GT_WARN << "tcp: protocol error on endpoint " << id
              << ": bad hello (magic=" << magic << " version=" << version << ")";
      return;
    }
    if (dialed != id) {
      owner->CountDecodeError();
      GT_WARN << "tcp: endpoint " << id << " refused connection dialed for endpoint "
              << dialed << " (stale registry entry?)";
      return;
    }
    char ack[4];
    EncodeFixed32(ack, kHelloAck);
    if (!WriteFull(conn, ack, sizeof(ack))) return;
    SetSocketTimeout(conn, SO_RCVTIMEO, 0);  // frames may be arbitrarily spaced

    // Reader loop: one frame at a time.
    for (;;) {
      char lenbuf[4];
      if (!ReadFull(conn, lenbuf, 4)) return;
      uint32_t frame_len = 0;
      CheckedReader len_reader(lenbuf, sizeof(lenbuf));
      (void)len_reader.GetFixed32(&frame_len);  // 4 bytes present by construction
      if (frame_len < kMinFrameBody || frame_len > kMaxFrameBody) {
        owner->CountDecodeError();
        GT_WARN << "tcp: protocol error on endpoint " << id << ": frame length "
                << frame_len << " outside [" << kMinFrameBody << ", " << kMaxFrameBody
                << "]; closing connection";
        return;
      }
      std::string body(frame_len, '\0');
      if (!ReadFull(conn, body.data(), frame_len)) return;
      auto msg = Message::DecodeBody(std::move(body));  // steals body as payload
      if (!msg.ok()) {
        owner->CountDecodeError();
        GT_WARN << "tcp: protocol error on endpoint " << id << ": "
                << msg.status().ToString() << "; closing connection";
        return;
      }
      if (stop) return;
      owner->stats_.messages_received.fetch_add(1);
      owner->stats_.bytes_received.fetch_add(4 + frame_len);
      owner->link_stats_.Update(msg->src, msg->dst, [frame_len](LinkStats& ls) {
        ls.messages_received++;
        ls.bytes_received += 4 + frame_len;
      });
      handler(std::move(*msg));
    }
  }

  ~Listener() {
    stop = true;
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
    }
    {
      // Wound live connections; their readers wake, close, and self-reap.
      MutexLock lk(&conn_mu);
      for (auto& [token, fd] : live_fds) {
        (void)token;
        ::shutdown(fd, SHUT_RDWR);
      }
    }
    if (accept_thread.joinable()) accept_thread.join();
    std::vector<std::thread> done;
    {
      MutexLock lk(&conn_mu);
      while (!readers.empty()) conn_cv.Wait();
      done.swap(finished);
    }
    for (auto& t : done) {
      if (t.joinable()) t.join();
    }
  }
};

// --- outbound side ------------------------------------------------------------

// Per-destination connection state. fd is only touched under mu, which also
// serializes frame writes per link (preserving the per-(src, dst) ordering
// contract) without coupling independent links to each other.
struct TcpTransport::Link {
  Mutex mu;
  int fd GT_GUARDED_BY(mu) = -1;
  bool ever_connected GT_GUARDED_BY(mu) = false;
};

TcpTransport::TcpTransport(TcpConfig cfg) : cfg_(std::move(cfg)) {}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::RegisterEndpoint(EndpointId id, MessageHandler handler) {
  MutexLock lk(&mu_);
  if (shutdown_) return Status::Unavailable("transport shut down");
  if (listeners_.count(id) != 0) return Status::AlreadyExists("endpoint exists");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SockError("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  // Ephemeral bind: the kernel picks a free port, so concurrent processes
  // (e.g. test binaries under ctest -j) can never collide.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return SockError("bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return SockError("getsockname");
  }
  const uint16_t port = ntohs(addr.sin_port);
  if (::listen(fd, cfg_.listen_backlog) != 0) {
    ::close(fd);
    return SockError("listen");
  }

  if (!cfg_.registry_dir.empty()) {
    if (Status s = PublishPort(cfg_.registry_dir, id, port); !s.ok()) {
      ::close(fd);
      return s;
    }
  }

  auto listener = std::make_unique<Listener>();
  listener->owner = this;
  listener->id = id;
  listener->listen_fd = fd;
  listener->port = port;
  listener->handler = std::move(handler);
  Listener* raw = listener.get();
  listener->accept_thread = std::thread([raw] { raw->AcceptLoop(); });

  listeners_.emplace(id, std::move(listener));
  local_ports_[id] = port;
  return Status::OK();
}

void TcpTransport::UnregisterEndpoint(EndpointId id) {
  std::unique_ptr<Listener> listener;
  {
    MutexLock lk(&mu_);
    auto it = listeners_.find(id);
    if (it == listeners_.end()) return;
    listener = std::move(it->second);
    listeners_.erase(it);
    local_ports_.erase(id);
  }
  if (!cfg_.registry_dir.empty()) RetractPort(cfg_.registry_dir, id);
  listener.reset();  // joins threads
}

uint16_t TcpTransport::PortOf(EndpointId id) const {
  MutexLock lk(&mu_);
  auto it = local_ports_.find(id);
  return it == local_ports_.end() ? 0 : it->second;
}

void TcpTransport::InjectLinkFailure(EndpointId dst) {
  std::shared_ptr<Link> link;
  {
    MutexLock lk(&mu_);
    auto it = links_.find(dst);
    if (it == links_.end()) return;
    link = it->second;
  }
  MutexLock lk(&link->mu);
  if (link->fd >= 0) ::shutdown(link->fd, SHUT_RDWR);
}

Result<uint16_t> TcpTransport::ResolvePort(EndpointId dst) {
  {
    MutexLock lk(&mu_);
    auto it = local_ports_.find(dst);
    if (it != local_ports_.end()) return it->second;
  }
  if (cfg_.registry_dir.empty()) {
    return Status::NotFound("no endpoint " + std::to_string(dst) +
                            " (and no registry configured)");
  }
  return ReadPortFile(RegistryPath(cfg_.registry_dir, dst));
}

Result<int> TcpTransport::ConnectAndHandshake(uint16_t port, EndpointId dst) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SockError("socket");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return SockError("connect");
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(cfg_.connect_timeout_ms));
    if (ready <= 0) {
      ::close(fd);
      return Status::Timeout("connect to endpoint " + std::to_string(dst));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      errno = err;
      return SockError("connect");
    }
  }
  ::fcntl(fd, F_SETFL, flags);

  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetSocketTimeout(fd, SO_SNDTIMEO, cfg_.send_timeout_ms);
  SetSocketTimeout(fd, SO_RCVTIMEO, cfg_.connect_timeout_ms);

  char hello[kHelloBytes];
  EncodeFixed32(hello, kHelloMagic);
  EncodeFixed32(hello + 4, kWireVersion);
  EncodeFixed32(hello + 8, dst);
  if (!WriteFull(fd, hello, sizeof(hello))) {
    ::close(fd);
    return SockError("handshake send");
  }
  char ack[4];
  uint32_t ack_word = 0;
  CheckedReader ack_reader(ack, sizeof(ack));
  if (!ReadFull(fd, ack, sizeof(ack)) || !ack_reader.GetFixed32(&ack_word) ||
      ack_word != kHelloAck) {
    ::close(fd);
    return Status::IOError("handshake rejected by peer on port " + std::to_string(port));
  }
  return fd;
}

bool TcpTransport::BackoffSleep(uint32_t attempt) {
  uint64_t delay_ms = cfg_.backoff_initial_ms;
  for (uint32_t i = 1; i < attempt && delay_ms < cfg_.backoff_max_ms; i++) delay_ms *= 2;
  if (delay_ms > cfg_.backoff_max_ms) delay_ms = cfg_.backoff_max_ms;
  // Sleep in small slices so Shutdown never waits out a full backoff.
  while (delay_ms > 0) {
    if (stopping_.load()) return false;
    const uint64_t slice = delay_ms < 10 ? delay_ms : 10;
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    delay_ms -= slice;
  }
  return !stopping_.load();
}

Status TcpTransport::Send(Message msg) {
  std::shared_ptr<Link> link;
  {
    MutexLock lk(&mu_);
    if (shutdown_) return Status::Unavailable("transport shut down");
    auto& slot = links_[msg.dst];
    if (slot == nullptr) slot = std::make_shared<Link>();
    link = slot;
  }

  std::string frame;
  frame.reserve(msg.WireSize());
  msg.EncodeTo(&frame);

  MutexLock slk(&link->mu);
  Status last = Status::Unavailable("send not attempted");
  for (uint32_t attempt = 0; attempt < cfg_.max_send_attempts; attempt++) {
    if (stopping_.load()) return Status::Unavailable("transport shut down");
    if (attempt > 0 && !BackoffSleep(attempt)) {
      return Status::Unavailable("transport shut down");
    }

    if (link->fd < 0) {
      auto port = ResolvePort(msg.dst);
      if (!port.ok()) {
        last = port.status();
        stats_.send_failures.fetch_add(1);
        link_stats_.Update(msg.src, msg.dst, [](LinkStats& ls) { ls.send_failures++; });
        // Without a registry the endpoint could only ever be in-process;
        // an unknown id stays unknown, so fail fast instead of backing off.
        if (cfg_.registry_dir.empty()) break;
        continue;
      }
      auto conn = ConnectAndHandshake(*port, msg.dst);
      if (!conn.ok()) {
        last = conn.status();
        stats_.send_failures.fetch_add(1);
        link_stats_.Update(msg.src, msg.dst, [](LinkStats& ls) { ls.send_failures++; });
        continue;
      }
      link->fd = *conn;
      if (link->ever_connected) {
        stats_.reconnects.fetch_add(1);
        link_stats_.Update(msg.src, msg.dst, [](LinkStats& ls) { ls.reconnects++; });
        GT_INFO << "tcp: reconnected to endpoint " << msg.dst;
      }
      link->ever_connected = true;
    }

    if (WriteFull(link->fd, frame.data(), frame.size())) {
      stats_.messages_sent.fetch_add(1);
      stats_.bytes_sent.fetch_add(frame.size());
      const size_t frame_size = frame.size();
      link_stats_.Update(msg.src, msg.dst, [frame_size](LinkStats& ls) {
        ls.messages_sent++;
        ls.bytes_sent += frame_size;
      });
      return Status::OK();
    }

    // Write failed: retire this connection and retry on a fresh one. The
    // fd lives and dies under link->mu, so no other thread can be writing
    // to (or recycling) it while we close.
    last = SockError("tcp send");
    stats_.send_failures.fetch_add(1);
    link_stats_.Update(msg.src, msg.dst, [](LinkStats& ls) { ls.send_failures++; });
    ::close(link->fd);
    link->fd = -1;
  }
  return last;
}

void TcpTransport::Shutdown() {
  std::map<EndpointId, std::unique_ptr<Listener>> listeners;
  std::map<EndpointId, std::shared_ptr<Link>> links;
  {
    MutexLock lk(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
    stopping_.store(true);  // aborts backoff sleeps + further attempts
    listeners = std::move(listeners_);
    listeners_.clear();
    links = std::move(links_);
    links_.clear();
  }
  for (auto& [id, link] : links) {
    (void)id;
    MutexLock lk(&link->mu);
    if (link->fd >= 0) {
      ::close(link->fd);
      link->fd = -1;
    }
  }
  if (!cfg_.registry_dir.empty()) {
    for (auto& [id, listener] : listeners) {
      (void)listener;
      RetractPort(cfg_.registry_dir, id);
    }
  }
  listeners.clear();  // joins all threads
}

}  // namespace gt::rpc
