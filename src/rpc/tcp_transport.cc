#include "src/rpc/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/codec.h"
#include "src/common/logging.h"

namespace gt::rpc {

namespace {

Status SockError(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

bool ReadFull(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return false;  // peer closed
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

bool WriteFull(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

struct TcpTransport::Listener {
  int listen_fd = -1;
  MessageHandler handler;
  std::thread accept_thread;
  std::mutex conn_mu;
  std::vector<std::thread> conn_threads;
  std::vector<int> conn_fds;
  std::atomic<bool> stop{false};

  ~Listener() {
    stop = true;
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
    }
    {
      std::lock_guard<std::mutex> lk(conn_mu);
      for (int fd : conn_fds) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
      }
      conn_fds.clear();
    }
    if (accept_thread.joinable()) accept_thread.join();
    std::lock_guard<std::mutex> lk(conn_mu);
    for (auto& t : conn_threads) {
      if (t.joinable()) t.join();
    }
  }
};

TcpTransport::TcpTransport(TcpConfig cfg) : cfg_(cfg) {}

TcpTransport::~TcpTransport() { Shutdown(); }

uint16_t TcpTransport::PortFor(EndpointId id) const {
  // Clients get ports after the server range via the high id bits folded in.
  return static_cast<uint16_t>(cfg_.base_port + (id % 10000));
}

Status TcpTransport::RegisterEndpoint(EndpointId id, MessageHandler handler) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shutdown_) return Status::Unavailable("transport shut down");
  if (listeners_.count(id) != 0) return Status::AlreadyExists("endpoint exists");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SockError("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(PortFor(id));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return SockError("bind");
  }
  if (::listen(fd, cfg_.listen_backlog) != 0) {
    ::close(fd);
    return SockError("listen");
  }

  auto listener = std::make_unique<Listener>();
  listener->listen_fd = fd;
  listener->handler = std::move(handler);
  Listener* raw = listener.get();

  listener->accept_thread = std::thread([raw] {
    while (!raw->stop) {
      int conn = ::accept(raw->listen_fd, nullptr, nullptr);
      if (conn < 0) {
        if (raw->stop) return;
        continue;
      }
      int one2 = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one2, sizeof(one2));
      std::lock_guard<std::mutex> lk(raw->conn_mu);
      raw->conn_fds.push_back(conn);
      raw->conn_threads.emplace_back([raw, conn] {
        // Reader loop: one frame at a time.
        for (;;) {
          char lenbuf[4];
          if (!ReadFull(conn, lenbuf, 4)) return;
          const uint32_t frame_len = DecodeFixed32(lenbuf);
          if (frame_len < 20 || frame_len > (64u << 20)) return;  // sanity
          std::string body(frame_len, '\0');
          if (!ReadFull(conn, body.data(), frame_len)) return;
          auto msg = Message::DecodeBody(body);
          if (!msg.ok()) {
            GT_WARN << "tcp: bad frame: " << msg.status().ToString();
            return;
          }
          if (raw->stop) return;
          raw->handler(std::move(*msg));
        }
      });
    }
  });

  listeners_.emplace(id, std::move(listener));
  return Status::OK();
}

void TcpTransport::UnregisterEndpoint(EndpointId id) {
  std::unique_ptr<Listener> listener;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = listeners_.find(id);
    if (it == listeners_.end()) return;
    listener = std::move(it->second);
    listeners_.erase(it);
  }
  listener.reset();  // joins threads
}

Result<int> TcpTransport::ConnectTo(EndpointId id) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SockError("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(PortFor(id));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return SockError("connect");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status TcpTransport::Send(Message msg) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) return Status::Unavailable("transport shut down");
    auto it = out_fds_.find(msg.dst);
    if (it != out_fds_.end()) fd = it->second;
  }
  if (fd < 0) {
    auto r = ConnectTo(msg.dst);
    if (!r.ok()) return r.status();
    fd = *r;
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = out_fds_.emplace(msg.dst, fd);
    if (!inserted) {
      // Raced with another sender: keep the existing connection.
      ::close(fd);
      fd = it->second;
    }
  }

  std::string frame;
  frame.reserve(msg.WireSize());
  msg.EncodeTo(&frame);

  std::lock_guard<std::mutex> slk(send_mu_);
  stats_.messages_sent.fetch_add(1);
  stats_.bytes_sent.fetch_add(frame.size());
  if (!WriteFull(fd, frame.data(), frame.size())) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = out_fds_.find(msg.dst);
    if (it != out_fds_.end() && it->second == fd) {
      ::close(fd);
      out_fds_.erase(it);
    }
    return Status::IOError("tcp send failed");
  }
  return Status::OK();
}

void TcpTransport::Shutdown() {
  std::map<EndpointId, std::unique_ptr<Listener>> listeners;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    listeners = std::move(listeners_);
    for (auto& [id, fd] : out_fds_) {
      (void)id;
      ::close(fd);
    }
    out_fds_.clear();
  }
  listeners.clear();  // joins all threads
}

}  // namespace gt::rpc
