// TCP transport: every endpoint listens on 127.0.0.1:(base_port + id) and
// senders maintain one outbound connection per destination. Frames are
// length-prefixed (see Message::EncodeTo). Used to run a GraphTrek cluster
// over real sockets; the in-process transport remains the default for
// benches because it offers controlled latency injection.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/rpc/transport.h"

namespace gt::rpc {

struct TcpConfig {
  uint16_t base_port = 47600;
  int listen_backlog = 64;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpConfig cfg = {});
  ~TcpTransport() override;

  Status RegisterEndpoint(EndpointId id, MessageHandler handler) override;
  void UnregisterEndpoint(EndpointId id) override;
  Status Send(Message msg) override;
  void Shutdown() override;

 private:
  struct Listener;

  uint16_t PortFor(EndpointId id) const;
  Result<int> ConnectTo(EndpointId id);

  TcpConfig cfg_;
  std::mutex mu_;
  std::map<EndpointId, std::unique_ptr<Listener>> listeners_;
  std::map<EndpointId, int> out_fds_;  // connection pool, one per destination
  std::mutex send_mu_;                 // serializes frame writes per transport
  bool shutdown_ = false;
};

}  // namespace gt::rpc
