// TCP transport over 127.0.0.1 with production-shaped failure semantics.
//
// Endpoint discovery: every endpoint binds an *ephemeral* port (no fixed
// port arithmetic, so concurrent processes never collide). The bound port
// is recorded in an in-process table and — when TcpConfig::registry_dir is
// set — published as "<registry_dir>/ep-<id>.port" so other processes can
// resolve it. A 12-byte hello handshake on every new connection verifies
// the peer really hosts the dialed endpoint, which guards against stale
// registry entries pointing at recycled ports.
//
// Sending: one Link per destination endpoint, each with its own mutex, so
// traffic to different peers never serializes on a shared lock. A Send
// (re)connects with a bounded number of attempts under exponential backoff,
// with explicit connect/send timeouts; a transient peer failure is retried
// instead of dropping the frame. Per-(src, dst) metrics are kept in the
// base-class LinkStatsMap.
//
// Frames are length-prefixed (see Message::EncodeTo). The in-process
// transport remains the default for benches because it offers controlled
// latency injection.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/rpc/transport.h"

namespace gt::rpc {

struct TcpConfig {
  // Directory for cross-process endpoint discovery. Empty: endpoints are
  // only resolvable inside this process (enough for tests that share one
  // transport instance). The directory is created if missing.
  std::string registry_dir;

  int listen_backlog = 64;

  // Failure semantics. A Send makes up to `max_send_attempts` passes of
  // resolve -> connect (bounded by connect_timeout_ms) -> handshake ->
  // write (bounded by send_timeout_ms), sleeping an exponentially growing
  // backoff between attempts.
  uint32_t connect_timeout_ms = 2000;
  uint32_t send_timeout_ms = 5000;
  uint32_t max_send_attempts = 4;
  uint32_t backoff_initial_ms = 10;
  uint32_t backoff_max_ms = 500;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpConfig cfg = {});
  ~TcpTransport() override;

  Status RegisterEndpoint(EndpointId id, MessageHandler handler) override;
  void UnregisterEndpoint(EndpointId id) override;
  Status Send(Message msg) override;
  void Shutdown() override;

  // Bound port of a locally registered endpoint (0 if not registered).
  uint16_t PortOf(EndpointId id) const;

  // Chaos/test hook: forcibly wound the cached outbound connection to `dst`
  // (half-close, leaving the fd in place) so the next Send experiences a
  // real write failure and must reconnect. No-op without a cached link.
  void InjectLinkFailure(EndpointId dst);

 private:
  struct Listener;
  struct Link;

  // Every malformed inbound frame (bad hello, out-of-range frame length,
  // undecodable header) bumps gt_rpc_decode_errors_total and costs the peer
  // its connection — the stream is never resynchronized.
  void CountDecodeError() { stats_.decode_errors.fetch_add(1); }

  Result<uint16_t> ResolvePort(EndpointId dst) GT_EXCLUDES(mu_);
  Result<int> ConnectAndHandshake(uint16_t port, EndpointId dst);
  bool BackoffSleep(uint32_t attempt);  // false if shutdown interrupted it

  TcpConfig cfg_;
  std::atomic<bool> stopping_{false};
  // Lock order: a Link::mu may be held while ResolvePort briefly takes mu_;
  // mu_ is therefore never held while acquiring a Link::mu (callers copy the
  // shared_ptr under mu_, release it, then lock the link).
  mutable Mutex mu_;  // guards the three maps below
  std::map<EndpointId, std::unique_ptr<Listener>> listeners_ GT_GUARDED_BY(mu_);
  std::map<EndpointId, uint16_t> local_ports_ GT_GUARDED_BY(mu_);
  std::map<EndpointId, std::shared_ptr<Link>> links_ GT_GUARDED_BY(mu_);  // one per destination
  bool shutdown_ GT_GUARDED_BY(mu_) = false;
};

}  // namespace gt::rpc
