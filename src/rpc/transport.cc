#include "src/rpc/transport.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace gt::rpc {

namespace {

std::string EndpointName(EndpointId id) {
  if (id == kAnyEndpoint) return "*";
  if (id >= kClientIdBase) return "c" + std::to_string(id - kClientIdBase);
  return "s" + std::to_string(id);
}

}  // namespace

std::string TransportStatsSummary(const Transport& t) {
  const TransportStats& s = t.stats();
  std::ostringstream os;
  os << "net{sent=" << s.messages_sent.load() << "/" << s.bytes_sent.load()
     << "B recv=" << s.messages_received.load() << "/" << s.bytes_received.load()
     << "B dropped=" << s.messages_dropped.load()
     << " duplicated=" << s.messages_duplicated.load()
     << " reconnects=" << s.reconnects.load()
     << " send_failures=" << s.send_failures.load() << "}";
  return os.str();
}

std::string FormatLinkStats(const Transport& t, size_t top_n) {
  auto snapshot = t.LinkSnapshot();
  std::vector<std::pair<LinkKey, LinkStats>> rows(snapshot.begin(), snapshot.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.bytes_sent + a.second.bytes_received >
           b.second.bytes_sent + b.second.bytes_received;
  });
  if (top_n != 0 && rows.size() > top_n) rows.resize(top_n);

  std::ostringstream os;
  for (const auto& [key, ls] : rows) {
    os << "  link " << EndpointName(key.first) << "->" << EndpointName(key.second)
       << ": sent=" << ls.messages_sent << "/" << ls.bytes_sent
       << "B recv=" << ls.messages_received << "/" << ls.bytes_received << "B";
    if (ls.reconnects != 0) os << " reconnects=" << ls.reconnects;
    if (ls.send_failures != 0) os << " send_failures=" << ls.send_failures;
    if (ls.dropped != 0) os << " dropped=" << ls.dropped;
    if (ls.duplicated != 0) os << " duplicated=" << ls.duplicated;
    if (ls.delayed != 0) os << " delayed=" << ls.delayed;
    if (ls.queue_depth != 0) os << " queue=" << ls.queue_depth;
    os << "\n";
  }
  if (snapshot.size() > rows.size()) {
    os << "  (" << (snapshot.size() - rows.size()) << " quieter links elided)\n";
  }
  return os.str();
}

}  // namespace gt::rpc
