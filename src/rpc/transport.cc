#include "src/rpc/transport.h"

#include <atomic>

namespace gt::rpc {

std::string EndpointName(EndpointId id) {
  if (id == kAnyEndpoint) return "*";
  if (id >= kClientIdBase) return "c" + std::to_string(id - kClientIdBase);
  return "s" + std::to_string(id);
}

Transport::Transport() {
  static std::atomic<uint64_t> next_instance{0};
  auto* reg = metrics::Registry::Default();
  reg->DescribeFamily("gt_rpc_messages_sent_total", metrics::MetricType::kCounter,
                      "Messages accepted for delivery.");
  reg->DescribeFamily("gt_rpc_messages_received_total",
                      metrics::MetricType::kCounter, "Messages delivered to handlers.");
  reg->DescribeFamily("gt_rpc_messages_dropped_total", metrics::MetricType::kCounter,
                      "Messages dropped by fault injection or partitions.");
  reg->DescribeFamily("gt_rpc_reconnects_total", metrics::MetricType::kCounter,
                      "Re-established connections.");
  reg->DescribeFamily("gt_rpc_decode_errors_total", metrics::MetricType::kCounter,
                      "Malformed or truncated frames received from peers "
                      "(the connection is dropped, never resynchronized).");
  RegisterMetricsCollector("t" + std::to_string(next_instance.fetch_add(1)));
}

Transport::~Transport() {
  metrics::Registry::Default()->RemoveCollector(metrics_collector_);
}

void Transport::SetMetricsLabel(const std::string& label) {
  metrics::Registry::Default()->RemoveCollector(metrics_collector_);
  RegisterMetricsCollector(label);
}

void Transport::RegisterMetricsCollector(const std::string& label) {
  metrics_collector_ = metrics::Registry::Default()->AddCollector(
      [this, label](std::vector<metrics::Sample>* out) {
        const metrics::Labels l = {{"transport", label}};
        auto counter = [&](const char* name, uint64_t v) {
          out->push_back({name, l, static_cast<double>(v),
                          metrics::MetricType::kCounter});
        };
        counter("gt_rpc_messages_sent_total", stats_.messages_sent.load());
        counter("gt_rpc_bytes_sent_total", stats_.bytes_sent.load());
        counter("gt_rpc_messages_received_total", stats_.messages_received.load());
        counter("gt_rpc_bytes_received_total", stats_.bytes_received.load());
        counter("gt_rpc_messages_dropped_total", stats_.messages_dropped.load());
        counter("gt_rpc_messages_duplicated_total",
                stats_.messages_duplicated.load());
        counter("gt_rpc_reconnects_total", stats_.reconnects.load());
        counter("gt_rpc_send_failures_total", stats_.send_failures.load());
        counter("gt_rpc_decode_errors_total", stats_.decode_errors.load());
        // Per-link rows, keyed by the endpoint pair carried on the messages.
        // Read from the base-class map (not the LinkSnapshot virtual): this
        // collector may fire while a derived transport is partway through
        // construction or destruction.
        for (const auto& [key, ls] : link_stats_.Snapshot()) {
          metrics::Labels ll = l;
          ll.emplace_back("src", EndpointName(key.first));
          ll.emplace_back("dst", EndpointName(key.second));
          auto link = [&](const char* name, uint64_t v,
                          metrics::MetricType type = metrics::MetricType::kCounter) {
            out->push_back({name, ll, static_cast<double>(v), type});
          };
          link("gt_rpc_link_messages_sent_total", ls.messages_sent);
          link("gt_rpc_link_bytes_sent_total", ls.bytes_sent);
          link("gt_rpc_link_messages_received_total", ls.messages_received);
          link("gt_rpc_link_bytes_received_total", ls.bytes_received);
          if (ls.reconnects) link("gt_rpc_link_reconnects_total", ls.reconnects);
          if (ls.send_failures) {
            link("gt_rpc_link_send_failures_total", ls.send_failures);
          }
          if (ls.dropped) link("gt_rpc_link_dropped_total", ls.dropped);
          if (ls.duplicated) link("gt_rpc_link_duplicated_total", ls.duplicated);
          if (ls.delayed) link("gt_rpc_link_delayed_total", ls.delayed);
          if (ls.queue_depth) {
            link("gt_rpc_link_queue_depth", ls.queue_depth,
                 metrics::MetricType::kGauge);
          }
        }
      });
}

}  // namespace gt::rpc
