// Transport abstraction connecting GraphTrek endpoints (backend servers and
// clients). Implementations: InProcTransport (default; models an RPC fabric
// with configurable latency and fault injection) and TcpTransport (real
// localhost sockets).
//
// Delivery contract shared by all implementations:
//  - Send() is asynchronous and returns once the message is accepted.
//  - Messages between a given (src, dst) pair are delivered in send order.
//  - The handler for an endpoint is invoked on a transport-owned thread;
//    handlers must be fast or hand work off to their own queues.
#pragma once

#include <atomic>
#include <functional>

#include "src/common/status.h"
#include "src/rpc/message.h"

namespace gt::rpc {

using MessageHandler = std::function<void(Message&&)>;

struct TransportStats {
  std::atomic<uint64_t> messages_sent{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> messages_dropped{0};  // fault injection
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Registers the handler invoked for messages addressed to `id`.
  virtual Status RegisterEndpoint(EndpointId id, MessageHandler handler) = 0;
  virtual void UnregisterEndpoint(EndpointId id) = 0;

  // Queues `msg` for delivery to msg.dst. Unknown destinations are an error.
  virtual Status Send(Message msg) = 0;

  // Stops delivery and joins internal threads. Idempotent.
  virtual void Shutdown() = 0;

  const TransportStats& stats() const { return stats_; }

 protected:
  TransportStats stats_;
};

}  // namespace gt::rpc
