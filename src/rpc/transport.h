// Transport abstraction connecting GraphTrek endpoints (backend servers and
// clients). Implementations: InProcTransport (default; models an RPC fabric
// with configurable latency and fault injection), TcpTransport (real
// localhost sockets with reconnection + timeouts), and
// FaultInjectingTransport (a decorator that injects deterministic
// drop/delay/duplicate/partition faults per link).
//
// Delivery contract shared by all implementations:
//  - Send() is asynchronous and returns once the message is accepted.
//  - Messages between a given (src, dst) pair are delivered in send order.
//    (FaultInjectingTransport relaxes this only for messages it delays.)
//  - The handler for an endpoint is invoked on a transport-owned thread;
//    handlers must be fast or hand work off to their own queues.
//  - Delivery is at-most-once: a Send() that returns OK may still be lost
//    if the peer fails before draining it. Higher layers (the engine's
//    status tracer) own end-to-end failure detection.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/rpc/message.h"

namespace gt::rpc {

using MessageHandler = std::function<void(Message&&)>;

// Wildcard endpoint for per-link fault rules and stats rows that are not
// attributable to a single endpoint.
constexpr EndpointId kAnyEndpoint = 0xffffffffu;

// Aggregate counters for one transport instance.
struct TransportStats {
  std::atomic<uint64_t> messages_sent{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> messages_received{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> messages_dropped{0};     // fault injection / partitions
  std::atomic<uint64_t> messages_duplicated{0};  // fault injection
  std::atomic<uint64_t> reconnects{0};           // re-established connections
  std::atomic<uint64_t> send_failures{0};        // failed write/connect attempts
  std::atomic<uint64_t> decode_errors{0};        // malformed frames from peers
};

// Per-link counters, keyed by the (src, dst) endpoint pair carried on the
// messages themselves. Plain integers: rows are only touched under the
// owning LinkStatsMap's mutex.
struct LinkStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_received = 0;
  uint64_t reconnects = 0;
  uint64_t send_failures = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t delayed = 0;
  size_t queue_depth = 0;  // receive-side inbox depth (snapshot time)
};

using LinkKey = std::pair<EndpointId, EndpointId>;  // (src, dst)

// Mutex-guarded (src, dst) -> LinkStats registry shared by all transport
// implementations. Updates are a map probe plus a few integer adds; the
// actual I/O on every path dwarfs that.
class LinkStatsMap {
 public:
  template <typename F>
  void Update(EndpointId src, EndpointId dst, F&& f) GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    f(rows_[{src, dst}]);
  }

  std::map<LinkKey, LinkStats> Snapshot() const GT_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    return rows_;
  }

 private:
  mutable Mutex mu_;
  std::map<LinkKey, LinkStats> rows_ GT_GUARDED_BY(mu_);
};

class Transport {
 public:
  // Every transport instance reports into the process metrics registry
  // (gt_rpc_* aggregate counters plus gt_rpc_link_* per-(src,dst) rows),
  // distinguished by a {transport="..."} label: "t<n>" in construction
  // order unless SetMetricsLabel renames it.
  Transport();
  virtual ~Transport();

  // Registers the handler invoked for messages addressed to `id`.
  virtual Status RegisterEndpoint(EndpointId id, MessageHandler handler) = 0;
  virtual void UnregisterEndpoint(EndpointId id) = 0;

  // Queues `msg` for delivery to msg.dst. Unknown destinations are an error.
  virtual Status Send(Message msg) = 0;

  // Stops delivery and joins internal threads. Idempotent.
  virtual void Shutdown() = 0;

  const TransportStats& stats() const { return stats_; }

  // Per-link counters as seen by this transport instance. Implementations
  // that track send queues fold the current depth into the snapshot.
  virtual std::map<LinkKey, LinkStats> LinkSnapshot() const {
    return link_stats_.Snapshot();
  }

  void SetMetricsLabel(const std::string& label);

 protected:
  TransportStats stats_;
  LinkStatsMap link_stats_;

 private:
  // (Re-)registers the registry collector. Reads only base-class state
  // (stats_, link_stats_) so it stays safe during derived
  // construction/destruction windows.
  void RegisterMetricsCollector(const std::string& label);

  metrics::CollectorId metrics_collector_ = 0;
};

// Human-readable endpoint name for stats labels: "s<id>" for servers,
// "c<n>" for clients, "*" for kAnyEndpoint.
std::string EndpointName(EndpointId id);

}  // namespace gt::rpc
