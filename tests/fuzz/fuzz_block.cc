// Fuzzes the table-block decoder: hostile restart arrays, varint entry
// headers and prefix-compression lengths. Walks every entry forward, then
// seeks with keys lifted from the input — both paths chase restart offsets
// and shared/non-shared lengths that the fuzz input controls.
#include <memory>
#include <string>

#include "src/kv/block.h"
#include "tests/fuzz/harness.h"

GT_FUZZ_HARNESS(FuzzBlock) {
  gt::kv::Block block(std::string(reinterpret_cast<const char*>(data), size));
  gt::kv::InternalKeyComparator cmp;
  auto it = block.NewIterator(&cmp);

  int steps = 0;
  std::string last_key;
  for (it->SeekToFirst(); it->Valid() && steps < 10000; it->Next(), steps++) {
    last_key.assign(it->key().data(), it->key().size());
    (void)it->value();
  }
  (void)it->status();

  // Seek with a key the block itself produced and with a fragment of the
  // raw input (binary-searches the restart array either way).
  if (!last_key.empty()) {
    it->Seek(last_key);
    if (it->Valid()) (void)it->value();
  }
  if (size > 4) {
    it->Seek(gt::kv::Slice(reinterpret_cast<const char*>(data), size / 2));
    if (it->Valid()) (void)it->value();
  }
  (void)it->status();
  return 0;
}
