// Fuzzes the property-graph storage codec: KV key parsers (vertex, edge,
// type-index), the vertex/edge value decoders, and the PropMap/PropValue
// wire format they share with the RPC payloads.
#include <string>
#include <string_view>

#include "src/common/codec.h"
#include "src/graph/encoding.h"
#include "src/graph/property.h"
#include "tests/fuzz/harness.h"

GT_FUZZ_HARNESS(FuzzGraphCodec) {
  if (size == 0) return 0;
  const std::string_view input(reinterpret_cast<const char*>(data) + 1, size - 1);

  switch (data[0] % 4) {
    case 0: {  // key parsers (all three run: they dispatch on the ns byte)
      gt::graph::VertexId vid = 0, src = 0, dst = 0;
      gt::graph::LabelId label = 0;
      (void)gt::graph::ParseVertexKey(input, &vid);
      (void)gt::graph::ParseEdgeKey(input, &src, &label, &dst);
      (void)gt::graph::ParseTypeIndexKey(input, &label, &vid);
      break;
    }
    case 1: {  // vertex value: varint label + props
      gt::graph::LabelId label = 0;
      gt::graph::PropMap props;
      if (gt::graph::DecodeVertexValue(input, &label, &props)) {
        const std::string wire = gt::graph::EncodeVertexValue(label, props);
        gt::graph::LabelId label2 = 0;
        gt::graph::PropMap props2;
        if (!gt::graph::DecodeVertexValue(wire, &label2, &props2)) __builtin_trap();
      }
      break;
    }
    case 2: {  // edge value: bare props
      gt::graph::PropMap props;
      if (gt::graph::DecodeEdgeValue(input, &props)) {
        const std::string wire = gt::graph::EncodeEdgeValue(props);
        gt::graph::PropMap props2;
        if (!gt::graph::DecodeEdgeValue(wire, &props2)) __builtin_trap();
      }
      break;
    }
    case 3: {  // single PropValue
      gt::CheckedReader dec(input);
      gt::graph::PropValue value;
      if (gt::graph::PropValue::DecodeFrom(&dec, &value)) {
        std::string wire;
        value.EncodeTo(&wire);
        gt::CheckedReader dec2(wire);
        gt::graph::PropValue value2;
        if (!gt::graph::PropValue::DecodeFrom(&dec2, &value2)) __builtin_trap();
      }
      break;
    }
  }
  return 0;
}
