// Fuzzes MANIFEST recovery: VersionEdit::DecodeFrom on one untrusted
// payload, applied into a ManifestState like replay does. Accepted edits
// must round-trip through EncodeTo.
#include <string>

#include "src/kv/manifest.h"
#include "tests/fuzz/harness.h"

GT_FUZZ_HARNESS(FuzzManifest) {
  const gt::kv::Slice input(reinterpret_cast<const char*>(data), size);

  gt::kv::VersionEdit edit;
  if (!gt::kv::VersionEdit::DecodeFrom(input, &edit).ok()) return 0;

  gt::kv::ManifestState state;
  state.Apply(edit);

  std::string wire;
  edit.EncodeTo(&wire);
  gt::kv::VersionEdit again;
  if (!gt::kv::VersionEdit::DecodeFrom(wire, &again).ok() ||
      again.added_tables != edit.added_tables ||
      again.removed_tables != edit.removed_tables ||
      again.next_file_id != edit.next_file_id ||
      again.last_sequence != edit.last_sequence) {
    __builtin_trap();
  }
  return 0;
}
