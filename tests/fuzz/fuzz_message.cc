// Fuzzes the RPC frame-body decoder: Message::DecodeHeader plus both
// DecodeBody variants (copying and buffer-stealing), and checks that a
// successfully decoded message round-trips through EncodeTo bit-for-bit.
#include <string>
#include <string_view>

#include "src/rpc/message.h"
#include "tests/fuzz/harness.h"

GT_FUZZ_HARNESS(FuzzMessage) {
  const std::string_view body(reinterpret_cast<const char*>(data), size);

  auto copied = gt::rpc::Message::DecodeBody(body);
  auto stolen = gt::rpc::Message::DecodeBody(std::string(body));

  // The two variants must agree on decodability and content.
  if (copied.ok() != stolen.ok()) __builtin_trap();
  if (!copied.ok()) return 0;
  if (copied->type != stolen->type || copied->src != stolen->src ||
      copied->dst != stolen->dst || copied->rpc_id != stolen->rpc_id ||
      copied->payload != stolen->payload) {
    __builtin_trap();
  }

  // Round-trip: re-encoding and re-decoding must reproduce the message.
  // (EncodeTo masks the type to 16 bits, exactly like DecodeHeader does, so
  // the wire bytes may legitimately differ from the fuzz input in the type
  // word's high half — compare decoded fields, not bytes.)
  std::string wire;
  copied->EncodeTo(&wire);
  auto again = gt::rpc::Message::DecodeBody(std::string_view(wire).substr(4));
  if (!again.ok() || again->type != copied->type || again->src != copied->src ||
      again->dst != copied->dst || again->rpc_id != copied->rpc_id ||
      again->payload != copied->payload) {
    __builtin_trap();
  }
  return 0;
}
