// Fuzzes the serialized traversal-plan parser (TraversalPlan::Decode, which
// pulls in Filter::DecodeFrom), the decode surface behind kSubmitTraversal.
// Accepted plans must round-trip: Encode(Decode(x)) decodes to a plan whose
// re-encoding is byte-identical (the encoding is canonical).
#include <string>
#include <string_view>

#include "src/lang/plan.h"
#include "tests/fuzz/harness.h"

GT_FUZZ_HARNESS(FuzzPlan) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto plan = gt::lang::TraversalPlan::Decode(input);
  if (!plan.ok()) return 0;

  const std::string wire = plan->Encode();
  auto again = gt::lang::TraversalPlan::Decode(wire);
  if (!again.ok() || again->Encode() != wire) __builtin_trap();
  return 0;
}
