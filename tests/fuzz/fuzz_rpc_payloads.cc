// Fuzzes every engine RPC payload decoder. The first input byte selects the
// payload type (so the corpus can steer coverage per decoder) and the rest
// is handed to that decoder as an untrusted wire payload. Successful decodes
// are re-encoded and re-decoded: Encode(Decode(x)) must itself decode, and
// for the tail-tolerant payloads (Submit/Complete/Abort) must reproduce the
// decoded fields.
#include <string>
#include <string_view>

#include "src/engine/mutation.h"
#include "src/engine/types.h"
#include "tests/fuzz/harness.h"

namespace {

using namespace gt::engine;  // NOLINT: fuzz harness brevity

// Decode, then round-trip the re-encoded form. P must have Encode() and
// static Decode(). Traps when a decoder accepts bytes whose re-encoding it
// then rejects — that asymmetry is how truncation bugs hide.
template <typename P>
void RoundTrip(std::string_view payload) {
  auto decoded = P::Decode(payload);
  if (!decoded.ok()) return;
  const std::string wire = decoded->Encode();
  if (!P::Decode(wire).ok()) __builtin_trap();
}

}  // namespace

GT_FUZZ_HARNESS(FuzzRpcPayloads) {
  if (size == 0) return 0;
  const std::string_view payload(reinterpret_cast<const char*>(data) + 1, size - 1);

  switch (data[0] % 18) {
    case 0: RoundTrip<SubmitPayload>(payload); break;
    case 1: RoundTrip<TraversePayload>(payload); break;
    case 2: RoundTrip<AnswerPayload>(payload); break;
    case 3: RoundTrip<ExecEventPayload>(payload); break;
    case 4: RoundTrip<TraceBatchPayload>(payload); break;
    case 5: RoundTrip<ResultChunkPayload>(payload); break;
    case 6: RoundTrip<CompletePayload>(payload); break;
    case 7: RoundTrip<AbortPayload>(payload); break;
    case 8: RoundTrip<ProgressPayload>(payload); break;
    case 9: RoundTrip<SyncStepPayload>(payload); break;
    case 10: RoundTrip<SyncBatchPayload>(payload); break;
    case 11: RoundTrip<PutVertexPayload>(payload); break;
    case 12: RoundTrip<PutEdgePayload>(payload); break;
    case 13: RoundTrip<MutateAckPayload>(payload); break;
    case 14: RoundTrip<GetVertexPayload>(payload); break;
    case 15: RoundTrip<VertexReplyPayload>(payload); break;
    case 16: RoundTrip<CatalogInternPayload>(payload); break;
    case 17: RoundTrip<CatalogReplyPayload>(payload); break;
  }
  return 0;
}
