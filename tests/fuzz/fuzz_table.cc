// Fuzzes the sorted-table reader against a hostile file image: footer
// parsing, index/bloom/meta block handles, per-block CRC trailers, and the
// two-level iterator. The whole file is the fuzz input, served from memory.
#include <memory>
#include <string>

#include "src/kv/dbformat.h"
#include "src/kv/table.h"
#include "tests/fuzz/harness.h"
#include "tests/fuzz/mem_files.h"

GT_FUZZ_HARNESS(FuzzTable) {
  gt::fuzz::OneFileEnv env(std::string(reinterpret_cast<const char*>(data), size));

  auto table = gt::kv::Table::Open(&env, "fuzz.sst", 1, gt::kv::TableReadOptions{});
  if (!table.ok()) return 0;

  // Full scan through the two-level iterator.
  auto it = (*table)->NewIterator();
  int steps = 0;
  std::string probe_key;
  for (it->SeekToFirst(); it->Valid() && steps < 10000; it->Next(), steps++) {
    probe_key.assign(it->key().data(), it->key().size());
    (void)it->value();
  }
  (void)it->status();

  // Point lookups: a key the table yielded, plus its stored boundary keys
  // (all attacker-controlled, so Get must survive whatever they contain).
  auto ignore = [](const gt::kv::ParsedInternalKey&, gt::kv::Slice) {};
  if (!probe_key.empty()) (void)(*table)->Get(probe_key, ignore);
  if (!(*table)->smallest().empty()) (void)(*table)->Get((*table)->smallest(), ignore);
  if (!(*table)->largest().empty()) (void)(*table)->Get((*table)->largest(), ignore);
  return 0;
}
