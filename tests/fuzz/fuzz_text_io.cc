// Fuzzes the text graph-ingest parser (ImportText): header/record framing,
// %xx escapes, typed property literals, and vertex/edge reference checks.
// The import either yields a graph or a clean InvalidArgument.
#include <sstream>
#include <string>

#include "src/graph/catalog.h"
#include "src/graph/text_io.h"
#include "tests/fuzz/harness.h"

GT_FUZZ_HARNESS(FuzzTextIo) {
  std::istringstream in(std::string(reinterpret_cast<const char*>(data), size));
  gt::graph::Catalog catalog;
  auto g = gt::graph::ImportText(&in, &catalog);
  if (!g.ok()) return 0;

  // Whatever imported must export and re-import to the same shape.
  std::ostringstream out;
  if (!gt::graph::ExportText(*g, catalog, &out).ok()) __builtin_trap();
  std::istringstream in2(out.str());
  gt::graph::Catalog catalog2;
  auto g2 = gt::graph::ImportText(&in2, &catalog2);
  if (!g2.ok() || g2->num_vertices() != g->num_vertices() ||
      g2->num_edges() != g->num_edges()) {
    __builtin_trap();
  }
  return 0;
}
