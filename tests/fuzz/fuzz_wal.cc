// Fuzzes WAL recovery end to end: the CRC-framed record reader over an
// arbitrary byte stream, then WriteBatch::FromRep + Iterate on every record
// it yields — exactly the path a crash-recovering DB walks over an
// attacker- or bitrot-shaped log file.
#include <memory>
#include <string>

#include "src/kv/wal.h"
#include "src/kv/write_batch.h"
#include "tests/fuzz/harness.h"
#include "tests/fuzz/mem_files.h"

GT_FUZZ_HARNESS(FuzzWal) {
  gt::kv::WalReader reader(std::make_unique<gt::fuzz::MemSequentialFile>(
      std::string(reinterpret_cast<const char*>(data), size)));

  std::string scratch;
  gt::kv::Slice record;
  int records = 0;
  while (reader.ReadRecord(&scratch, &record)) {
    if (++records > 10000) break;  // fuzz input can't frame more than size/8
    auto batch = gt::kv::WriteBatch::FromRep(record);
    if (!batch.ok()) continue;
    (void)batch->Count();
    (void)batch->sequence();
    gt::Status s = batch->Iterate([](gt::kv::ValueType, gt::kv::Slice, gt::kv::Slice) {});
    (void)s;
  }
  // A mid-log CRC failure must be Corruption, never a crash; a torn tail is
  // a clean end. Either way status() is well-formed here.
  (void)reader.status();
  (void)reader.tail_dropped();
  return 0;
}
