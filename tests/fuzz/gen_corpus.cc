// Writes the seed corpora for every fuzz harness, using the real encoders so
// each seed is a structurally valid input the mutator can degrade from.
// Regenerate with:  gt_fuzz_gen_corpus tests/fuzz/corpus
// The output is checked in: test_corpus_replay replays it as a plain ctest
// target, and gt_fuzz/libFuzzer use it as the mutation base.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/mutation.h"
#include "src/engine/types.h"
#include "src/graph/encoding.h"
#include "src/graph/property.h"
#include "src/kv/manifest.h"
#include "src/kv/table.h"
#include "src/kv/wal.h"
#include "src/kv/write_batch.h"
#include "src/lang/plan.h"
#include "src/rpc/message.h"
#include "tests/fuzz/mem_files.h"

namespace {

int g_files = 0;

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const std::string& contents) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  g_files++;
}

gt::lang::TraversalPlan SamplePlan() {
  gt::lang::TraversalPlan plan;
  plan.start_ids = {1, 2, 42};
  gt::lang::Filter type_eq;
  type_eq.key = 7;
  type_eq.op = gt::lang::FilterOp::kEq;
  type_eq.values = {gt::graph::PropValue(std::string("file"))};
  plan.start_vertex_filters.push_back(type_eq);

  gt::lang::Hop hop;
  hop.edge_label = 3;
  gt::lang::Filter range;
  range.key = 9;
  range.op = gt::lang::FilterOp::kRange;
  range.values = {gt::graph::PropValue(int64_t{10}), gt::graph::PropValue(int64_t{99})};
  hop.edge_filters.push_back(range);
  hop.rtn = true;
  plan.hops.push_back(hop);
  return plan;
}

std::vector<gt::engine::FrontierEntry> SampleFrontier() {
  return {{100, {1, 2}}, {101, {}}, {102, {3}}};
}

// Extended-language plans (versioned ext tail): every new field appears in
// at least one seed so the mutator starts from the full wire surface.
gt::lang::TraversalPlan RepeatUntilCountPlan() {
  gt::lang::TraversalPlan plan;
  plan.start_ids = {1};
  gt::lang::Hop h1;
  h1.edge_label = 3;
  h1.repeat = 4;
  gt::lang::Hop h2;
  h2.edge_label = 3;
  gt::lang::Filter until;
  until.key = 9;
  until.op = gt::lang::FilterOp::kRange;
  until.values = {gt::graph::PropValue(int64_t{5}), gt::graph::PropValue(int64_t{30})};
  h2.until_filters.push_back(until);
  plan.hops = {h1, h2};
  plan.result_mode = gt::lang::ResultMode::kCount;
  return plan;
}

gt::lang::TraversalPlan BranchGroupPlan() {
  gt::lang::TraversalPlan plan;
  gt::lang::Filter type_eq;
  type_eq.key = 0;
  type_eq.op = gt::lang::FilterOp::kEq;
  type_eq.values = {gt::graph::PropValue(std::string("file"))};
  plan.start_vertex_filters.push_back(type_eq);
  gt::lang::Hop a1;
  a1.edge_label = 3;
  gt::lang::Hop a2;
  a2.edge_label = 4;
  a2.repeat = 2;
  plan.branch_alts = {{a1}, {a2}};
  gt::lang::Hop tail;
  tail.edge_label = 5;
  plan.branch_tail = {tail};
  plan.result_mode = gt::lang::ResultMode::kGroup;
  plan.group_key = 9;
  plan.push_start_filters = true;
  plan.fetch_hint = 1;
  return plan;
}

gt::lang::TraversalPlan PathsPlan() {
  gt::lang::TraversalPlan plan;
  plan.start_ids = {1, 2};
  gt::lang::Hop h;
  h.edge_label = 3;
  plan.hops = {h, h};
  plan.result_mode = gt::lang::ResultMode::kPaths;
  plan.fetch_hint = 2;
  return plan;
}

void GenMessage(const std::filesystem::path& root) {
  gt::rpc::Message m;
  m.type = gt::rpc::MsgType::kSubmitTraversal;
  m.src = 1u << 20;
  m.dst = 0;
  m.rpc_id = 7;
  m.payload = "payload-bytes";
  std::string wire;
  m.EncodeTo(&wire);
  WriteSeed(root / "message", "submit", wire.substr(4));  // body = after frame_len

  m.type = gt::rpc::MsgType::kTraverse;
  m.rpc_id = 0;
  m.payload.clear();
  wire.clear();
  m.EncodeTo(&wire);
  WriteSeed(root / "message", "empty_payload", wire.substr(4));
}

void GenRpcPayloads(const std::filesystem::path& root) {
  using namespace gt::engine;  // NOLINT
  const std::filesystem::path dir = root / "rpc_payloads";
  const std::string plan = SamplePlan().Encode();

  // Selector byte (see fuzz_rpc_payloads.cc) + encoded payload.
  auto seed = [&](uint8_t selector, const std::string& name, const std::string& body) {
    WriteSeed(dir, name, std::string(1, static_cast<char>(selector)) + body);
  };

  SubmitPayload submit;
  submit.mode = 1;
  submit.timeout_ms = 500;
  submit.plan = plan;
  submit.priority_class = 1;
  submit.deadline_ms = 2000;
  seed(0, "submit", submit.Encode());

  TraversePayload traverse;
  traverse.travel_id = 9;
  traverse.step = 2;
  traverse.mode = 1;
  std::string plan_store = plan;
  traverse.plan = plan_store;
  traverse.entries = SampleFrontier();
  seed(1, "traverse", traverse.Encode());

  AnswerPayload answer;
  answer.travel_id = 9;
  answer.reached_parents = {1, 2};
  answer.result_vids = {100, 101};
  seed(2, "answer", answer.Encode());

  AnswerPayload answer_ext;
  answer_ext.travel_id = 9;
  answer_ext.result_vids = {100, 101};
  answer_ext.result_values = {"bucket-a", "bucket-b"};
  answer_ext.result_paths = {{1, 50, 100}, {2, 101}};
  seed(2, "answer_ext", answer_ext.Encode());

  ExecEventPayload event;
  event.travel_id = 9;
  event.step = 1;
  event.exec_ids = {11, 12, 13};
  seed(3, "exec_event", event.Encode());

  TraceBatchPayload trace;
  trace.travel_id = 9;
  trace.items = {{21, 0, 1}, {22, 1, 0}};
  seed(4, "trace_batch", trace.Encode());

  ResultChunkPayload chunk;
  chunk.travel_id = 9;
  chunk.vids = {5, 6, 7};
  seed(5, "result_chunk", chunk.Encode());

  ResultChunkPayload chunk_ext;
  chunk_ext.travel_id = 9;
  chunk_ext.groups = {{"file", 12}, {"dir", 3}};
  chunk_ext.paths = {{1, 5}, {2, 6, 7}};
  seed(5, "result_chunk_ext", chunk_ext.Encode());

  CompletePayload complete;
  complete.travel_id = 9;
  complete.ok = 0;
  complete.error = "deadline exceeded";
  complete.code = 4;
  complete.total_results = 42;
  seed(6, "complete", complete.Encode());

  AbortPayload abort_p;
  abort_p.travel_id = 9;
  seed(7, "abort", abort_p.Encode());

  ProgressPayload progress;
  progress.travel_id = 9;
  progress.unfinished_per_step = {4, 2, 0};
  progress.total_created = 10;
  progress.total_terminated = 6;
  seed(8, "progress", progress.Encode());

  SyncStepPayload step;
  step.travel_id = 9;
  step.step = 1;
  step.plan = plan;
  step.batches_sent = {1, 0};
  seed(9, "sync_step", step.Encode());

  SyncStepPayload step_ext;
  step_ext.travel_id = 9;
  step_ext.step = 2;
  step_ext.result_vids = {100, 101};
  step_ext.result_values = {"bucket-a", "bucket-b"};
  step_ext.result_paths = {{1, 100}, {2, 50, 101}};
  seed(9, "sync_step_ext", step_ext.Encode());

  SyncBatchPayload batch;
  batch.travel_id = 9;
  batch.step = 1;
  batch.entries = SampleFrontier();
  seed(10, "sync_batch", batch.Encode());

  PutVertexPayload put_v;
  put_v.vid = 4;
  put_v.label = "file";
  put_v.props = {{"size", gt::graph::PropValue(int64_t{4096})},
                 {"name", gt::graph::PropValue(std::string("a.txt"))}};
  seed(11, "put_vertex", put_v.Encode());

  PutEdgePayload put_e;
  put_e.src = 4;
  put_e.label = "contains";
  put_e.dst = 5;
  put_e.props = {{"ts", gt::graph::PropValue(3.5)}};
  seed(12, "put_edge", put_e.Encode());

  MutateAckPayload ack;
  ack.ok = 0;
  ack.error = "not the owner";
  seed(13, "mutate_ack", ack.Encode());

  GetVertexPayload get_v;
  get_v.vid = 4;
  seed(14, "get_vertex", get_v.Encode());

  VertexReplyPayload reply;
  reply.found = 1;
  reply.vid = 4;
  reply.label = "file";
  reply.props = {{"size", gt::graph::PropValue(int64_t{4096})}};
  seed(15, "vertex_reply", reply.Encode());

  CatalogInternPayload intern;
  intern.name = "contains";
  seed(16, "catalog_intern", intern.Encode());

  CatalogReplyPayload cat;
  cat.id = 3;
  cat.names = {"file", "dir", "contains"};
  seed(17, "catalog_reply", cat.Encode());
}

void GenPlan(const std::filesystem::path& root) {
  WriteSeed(root / "plan", "two_step", SamplePlan().Encode());
  gt::lang::TraversalPlan empty_start;
  gt::lang::Filter type_eq;
  type_eq.key = 1;
  type_eq.op = gt::lang::FilterOp::kEq;
  type_eq.values = {gt::graph::PropValue(std::string("dir"))};
  empty_start.start_vertex_filters.push_back(type_eq);
  empty_start.start_rtn = true;
  WriteSeed(root / "plan", "scan_start", empty_start.Encode());

  // Extended-language tails.
  WriteSeed(root / "plan", "repeat_until_count", RepeatUntilCountPlan().Encode());
  WriteSeed(root / "plan", "branch_group", BranchGroupPlan().Encode());
  WriteSeed(root / "plan", "paths", PathsPlan().Encode());
}

void GenWal(const std::filesystem::path& root) {
  std::string log;
  gt::kv::WalWriter writer(std::make_unique<gt::fuzz::MemWritableFile>(&log));

  gt::kv::WriteBatch batch;
  batch.SetSequence(1);
  batch.Put("vertex/1", "props-a");
  batch.Put("vertex/2", "props-b");
  batch.Delete("vertex/1");
  (void)writer.AddRecord(batch.rep());

  gt::kv::WriteBatch batch2;
  batch2.SetSequence(4);
  batch2.Put("edge/1/3/2", "");
  (void)writer.AddRecord(batch2.rep());
  WriteSeed(root / "wal", "two_batches", log);

  // Torn tail: a record whose payload was half-written at crash time.
  WriteSeed(root / "wal", "torn_tail", log.substr(0, log.size() - 5));
}

void GenManifest(const std::filesystem::path& root) {
  gt::kv::VersionEdit edit;
  edit.added_tables = {3, 4};
  edit.removed_tables = {1};
  edit.next_file_id = 5;
  edit.last_sequence = 900;
  std::string wire;
  edit.EncodeTo(&wire);
  WriteSeed(root / "manifest", "compaction_install", wire);
}

void GenBlockAndTable(const std::filesystem::path& root) {
  // Valid internal keys: user key + fixed64 (sequence<<8 | type).
  auto ikey = [](const std::string& user, uint64_t seq) {
    std::string k = user;
    gt::PutFixed64(&k, (seq << 8) | 1);
    return k;
  };

  gt::kv::BlockBuilder bb(4);
  bb.Add(ikey("alpha", 9), "value-a");
  bb.Add(ikey("beta", 8), "value-b");
  bb.Add(ikey("betas", 7), "value-c");  // exercises prefix compression
  gt::kv::Slice finished = bb.Finish();
  WriteSeed(root / "block", "three_entries", std::string(finished.data(), finished.size()));

  std::string table;
  gt::kv::TableBuilder tb(std::make_unique<gt::fuzz::MemWritableFile>(&table), 64);
  for (int i = 0; i < 20; i++) {
    char user[16];
    std::snprintf(user, sizeof(user), "key%04d", i);
    (void)tb.Add(ikey(user, 100 - i), "value");
  }
  (void)tb.Finish();
  WriteSeed(root / "table", "twenty_keys", table);
}

void GenTextIo(const std::filesystem::path& root) {
  WriteSeed(root / "text_io", "small_graph",
            "V\t1\tfile\tname=s:a.txt\tsize=i:4096\n"
            "V\t2\tdir\tname=s:home%09dir\n"
            "E\t2\tcontains\t1\tts=d:3.5\n");
}

void GenGraphCodec(const std::filesystem::path& root) {
  const std::filesystem::path dir = root / "graph_codec";
  // Selector byte (see fuzz_graph_codec.cc) + encoded input. ('\0' selects
  // the key parsers; a "\x00" literal would be an empty C string.)
  WriteSeed(dir, "vertex_key", std::string(1, '\0') + gt::graph::VertexKey(42));
  WriteSeed(dir, "edge_key", std::string(1, '\0') + gt::graph::EdgeKey(42, 3, 43));

  gt::graph::PropMap props;
  props.Set(1, gt::graph::PropValue(int64_t{7}));
  props.Set(2, gt::graph::PropValue(std::string("abc")));
  WriteSeed(dir, "vertex_value",
            std::string(1, 1) + gt::graph::EncodeVertexValue(5, props));
  WriteSeed(dir, "edge_value", std::string(1, 2) + gt::graph::EncodeEdgeValue(props));

  std::string value;
  gt::graph::PropValue(3.25).EncodeTo(&value);
  WriteSeed(dir, "prop_double", std::string(1, 3) + value);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: gt_fuzz_gen_corpus <corpus-root-dir>\n");
    return 2;
  }
  const std::filesystem::path root = argv[1];
  GenMessage(root);
  GenRpcPayloads(root);
  GenPlan(root);
  GenWal(root);
  GenManifest(root);
  GenBlockAndTable(root);
  GenTextIo(root);
  GenGraphCodec(root);
  std::printf("gt_fuzz_gen_corpus: wrote %d seed file(s) under %s\n", g_files,
              root.string().c_str());
  return 0;
}
