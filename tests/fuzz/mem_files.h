// In-memory Env/file shims for fuzzing the storage decoders without a
// filesystem: the WAL reader wants a SequentialFile, Table::Open wants an
// Env that serves one RandomAccessFile. Fuzz inputs are served straight
// from the mutated byte buffer.
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "src/kv/env.h"

namespace gt::fuzz {

class MemSequentialFile final : public kv::SequentialFile {
 public:
  explicit MemSequentialFile(std::string contents) : contents_(std::move(contents)) {}

  Status Read(size_t n, kv::Slice* result, char* scratch) override {
    const size_t avail = contents_.size() - pos_;
    const size_t take = n < avail ? n : avail;
    std::memcpy(scratch, contents_.data() + pos_, take);
    pos_ += take;
    *result = kv::Slice(scratch, take);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    const size_t avail = contents_.size() - pos_;
    pos_ += n < avail ? static_cast<size_t>(n) : avail;
    return Status::OK();
  }

 private:
  std::string contents_;
  size_t pos_ = 0;
};

class MemRandomAccessFile final : public kv::RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::string contents) : contents_(std::move(contents)) {}

  Status Read(uint64_t offset, size_t n, kv::Slice* result, char* scratch) const override {
    if (offset > contents_.size()) {
      *result = kv::Slice();
      return Status::OK();  // read past EOF yields empty, like pread
    }
    const size_t avail = contents_.size() - static_cast<size_t>(offset);
    const size_t take = n < avail ? n : avail;
    std::memcpy(scratch, contents_.data() + offset, take);
    *result = kv::Slice(scratch, take);
    return Status::OK();
  }

  uint64_t size() const override { return contents_.size(); }

 private:
  std::string contents_;
};

// Collects appends into an owned string (gen_corpus uses this to run the
// real WalWriter/TableBuilder encoders without touching disk).
class MemWritableFile final : public kv::WritableFile {
 public:
  explicit MemWritableFile(std::string* out) : out_(out) {}

  Status Append(kv::Slice data) override {
    out_->append(data.data(), data.size());
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }
  uint64_t size() const override { return out_->size(); }

 private:
  std::string* out_;
};

// Env that serves exactly one read-only in-memory file, for Table::Open.
// Everything unrelated fails loudly: a fuzz target reaching for the real
// filesystem is a bug in the harness.
class OneFileEnv final : public kv::Env {
 public:
  explicit OneFileEnv(std::string contents) : contents_(std::move(contents)) {}

  Status NewRandomAccessFile(const std::string&,
                             std::unique_ptr<kv::RandomAccessFile>* out) override {
    *out = std::make_unique<MemRandomAccessFile>(contents_);
    return Status::OK();
  }
  Status NewSequentialFile(const std::string&,
                           std::unique_ptr<kv::SequentialFile>* out) override {
    *out = std::make_unique<MemSequentialFile>(contents_);
    return Status::OK();
  }
  Result<uint64_t> FileSize(const std::string&) override {
    return static_cast<uint64_t>(contents_.size());
  }
  bool FileExists(const std::string&) override { return true; }

  Status NewWritableFile(const std::string&, std::unique_ptr<kv::WritableFile>*) override {
    return Status::Internal("OneFileEnv is read-only");
  }
  Status CreateDirIfMissing(const std::string&) override {
    return Status::Internal("OneFileEnv has no directories");
  }
  Status RemoveFile(const std::string&) override {
    return Status::Internal("OneFileEnv is read-only");
  }
  Status RemoveDirRecursive(const std::string&) override {
    return Status::Internal("OneFileEnv is read-only");
  }
  Status ListDir(const std::string&, std::vector<std::string>*) override {
    return Status::Internal("OneFileEnv has no directories");
  }
  Status RenameFile(const std::string&, const std::string&) override {
    return Status::Internal("OneFileEnv is read-only");
  }
  Status TruncateFile(const std::string&, uint64_t) override {
    return Status::Internal("OneFileEnv is read-only");
  }
  Status SyncDir(const std::string&) override { return Status::OK(); }

 private:
  std::string contents_;
};

}  // namespace gt::fuzz
