#include "tests/fuzz/harness.h"

// One declaration per harness translation unit (the definitions live at
// global scope, where GT_FUZZ_HARNESS expands them). Adding a harness means
// adding a fuzz_<name>.cc, a line in each of the two lists below, and a
// seed corpus under tests/fuzz/corpus/<name>/ (gen_corpus.cc writes one).
GT_FUZZ_HARNESS(FuzzMessage);
GT_FUZZ_HARNESS(FuzzRpcPayloads);
GT_FUZZ_HARNESS(FuzzPlan);
GT_FUZZ_HARNESS(FuzzWal);
GT_FUZZ_HARNESS(FuzzManifest);
GT_FUZZ_HARNESS(FuzzBlock);
GT_FUZZ_HARNESS(FuzzTable);
GT_FUZZ_HARNESS(FuzzTextIo);
GT_FUZZ_HARNESS(FuzzGraphCodec);

namespace gt::fuzz {

const std::vector<Harness>& AllHarnesses() {
  static const std::vector<Harness> kHarnesses = {
      {"message", FuzzMessage},
      {"rpc_payloads", FuzzRpcPayloads},
      {"plan", FuzzPlan},
      {"wal", FuzzWal},
      {"manifest", FuzzManifest},
      {"block", FuzzBlock},
      {"table", FuzzTable},
      {"text_io", FuzzTextIo},
      {"graph_codec", FuzzGraphCodec},
  };
  return kHarnesses;
}

const Harness* FindHarness(std::string_view name) {
  for (const Harness& h : AllHarnesses()) {
    if (name == h.name) return &h;
  }
  return nullptr;
}

}  // namespace gt::fuzz
