// gt_fuzz: standalone mutational fuzz driver for the harness registry.
//
// The container toolchain is GCC-only, so coverage-guided libFuzzer is not
// always available; this driver provides the fallback everyone can run:
// replay the checked-in corpus, then mutate corpus inputs with a
// deterministic PRNG for a time-boxed loop, under whatever sanitizer the
// build was configured with (scripts/fuzz.sh uses ASan+UBSan). A sanitizer
// report or harness trap aborts the process with a nonzero exit; rerunning
// with the same --seed reproduces the exact input sequence.
//
// Usage:
//   gt_fuzz --harness=NAME [--corpus=DIR] [--max_total_time=SECS]
//           [--runs=N] [--seed=N] [--max_len=N] [file...]
//
// With positional file arguments the driver only replays those files (crash
// reproduction); otherwise it replays the corpus then fuzzes.
#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "tests/fuzz/harness.h"

namespace {

using gt::fuzz::FindHarness;
using gt::fuzz::Harness;

// Crash-artifact plumbing: the handler dumps the input being executed when a
// harness traps (SIGILL from __builtin_trap, SIGABRT from sanitizers with
// abort_on_error, SIGSEGV/SIGBUS on a missed bounds check) so the reproducer
// can be replayed (`gt_fuzz --harness=NAME crash-NAME`) and, once minimized,
// checked in under tests/fuzz/corpus/<NAME>/. Only async-signal-safe calls.
const std::string* g_current_input = nullptr;
char g_crash_path[256] = "crash-unknown";

void DumpCrashInput(int sig) {
  if (g_current_input != nullptr) {
    const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ssize_t ignored = ::write(fd, g_current_input->data(), g_current_input->size());
      (void)ignored;
      ::close(fd);
    }
    const char msg[] = "gt_fuzz: crashing input written to ./";
    ssize_t ignored = ::write(2, msg, sizeof(msg) - 1);
    ignored = ::write(2, g_crash_path, std::strlen(g_crash_path));
    ignored = ::write(2, "\n", 1);
    (void)ignored;
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void InstallCrashHandler(const char* harness_name) {
  std::snprintf(g_crash_path, sizeof(g_crash_path), "crash-%s", harness_name);
  for (int sig : {SIGILL, SIGABRT, SIGSEGV, SIGBUS, SIGFPE}) {
    std::signal(sig, DumpCrashInput);
  }
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// One mutation step; the mix favors small local edits (what checked readers
// are most sensitive to: truncations, length-byte bumps, bit flips).
void Mutate(std::string* input, std::mt19937_64* rng,
            const std::vector<std::string>& corpus, size_t max_len) {
  auto rand_index = [&](size_t n) { return static_cast<size_t>((*rng)() % n); };
  switch ((*rng)() % 8) {
    case 0:  // flip one bit
      if (!input->empty()) {
        (*input)[rand_index(input->size())] ^= static_cast<char>(1u << ((*rng)() % 8));
      }
      break;
    case 1:  // overwrite one byte
      if (!input->empty()) {
        (*input)[rand_index(input->size())] = static_cast<char>((*rng)());
      }
      break;
    case 2:  // truncate
      if (!input->empty()) input->resize(rand_index(input->size()));
      break;
    case 3:  // insert a byte
      if (input->size() < max_len) {
        input->insert(input->begin() + static_cast<long>(rand_index(input->size() + 1)),
                      static_cast<char>((*rng)()));
      }
      break;
    case 4:  // erase a byte
      if (!input->empty()) {
        input->erase(input->begin() + static_cast<long>(rand_index(input->size())));
      }
      break;
    case 5: {  // overwrite with an interesting length/count value
      if (input->size() >= 4) {
        static const uint32_t kInteresting[] = {0xff, 0x7f, 0x80, 0xffff, 0x7fffffff,
                                                0xffffffff, 0xfffffffe, 1u << 20};
        const uint32_t v = kInteresting[(*rng)() % (sizeof(kInteresting) / 4)];
        std::memcpy(input->data() + rand_index(input->size() - 3), &v, 4);
      }
      break;
    }
    case 6: {  // duplicate a span
      if (!input->empty() && input->size() < max_len) {
        const size_t start = rand_index(input->size());
        const size_t len = 1 + rand_index(input->size() - start);
        input->insert(rand_index(input->size()), input->substr(start, len));
      }
      break;
    }
    case 7: {  // splice a prefix of another corpus input onto ours
      if (!corpus.empty()) {
        const std::string& other = corpus[rand_index(corpus.size())];
        if (!other.empty()) {
          const size_t keep = rand_index(input->size() + 1);
          input->resize(keep);
          input->append(other.substr(0, rand_index(other.size() + 1)));
        }
      }
      break;
    }
  }
  if (input->size() > max_len) input->resize(max_len);
}

int Run(const Harness& harness, const std::string& input) {
  g_current_input = &input;
  const int rc =
      harness.fn(reinterpret_cast<const uint8_t*>(input.data()), input.size());
  g_current_input = nullptr;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string harness_name, corpus_dir;
  uint64_t max_total_time = 60, runs = 0, seed = 1, max_len = 4096;
  std::vector<std::string> replay_files;

  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.size() > std::strlen(prefix) ? arg.c_str() + std::strlen(prefix)
                                              : "";
    };
    if (arg.rfind("--harness=", 0) == 0) {
      harness_name = value("--harness=");
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = value("--corpus=");
    } else if (arg.rfind("--max_total_time=", 0) == 0) {
      max_total_time = std::strtoull(value("--max_total_time="), nullptr, 10);
    } else if (arg.rfind("--runs=", 0) == 0) {
      runs = std::strtoull(value("--runs="), nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(value("--seed="), nullptr, 10);
    } else if (arg.rfind("--max_len=", 0) == 0) {
      max_len = std::strtoull(value("--max_len="), nullptr, 10);
    } else if (arg == "--list") {
      for (const Harness& h : gt::fuzz::AllHarnesses()) std::printf("%s\n", h.name);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "gt_fuzz: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      replay_files.push_back(arg);
    }
  }

  const Harness* harness = FindHarness(harness_name);
  if (harness == nullptr) {
    std::fprintf(stderr, "gt_fuzz: --harness=NAME required; known harnesses:\n");
    for (const Harness& h : gt::fuzz::AllHarnesses()) {
      std::fprintf(stderr, "  %s\n", h.name);
    }
    return 2;
  }

  InstallCrashHandler(harness->name);

  // Crash-reproduction mode: replay the named files and exit.
  if (!replay_files.empty()) {
    for (const std::string& file : replay_files) {
      std::fprintf(stderr, "gt_fuzz: replaying %s\n", file.c_str());
      Run(*harness, ReadFile(file));
    }
    std::fprintf(stderr, "gt_fuzz: %zu file(s) replayed clean\n", replay_files.size());
    return 0;
  }

  // Seed corpus: every checked-in input replays before any fuzzing, so a
  // regression on a known input fails immediately and deterministically.
  std::vector<std::string> corpus;
  if (!corpus_dir.empty() && std::filesystem::is_directory(corpus_dir)) {
    std::vector<std::filesystem::path> paths;
    for (const auto& entry : std::filesystem::directory_iterator(corpus_dir)) {
      if (entry.is_regular_file()) paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());  // deterministic replay order
    for (const auto& path : paths) corpus.push_back(ReadFile(path));
  }
  for (const std::string& input : corpus) Run(*harness, input);
  std::fprintf(stderr, "gt_fuzz[%s]: %zu corpus input(s) replayed; fuzzing for %llus\n",
               harness->name, corpus.size(),
               static_cast<unsigned long long>(max_total_time));

  // Deterministic mutation loop (time- or run-boxed, whichever ends first).
  std::mt19937_64 rng(seed);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(max_total_time);
  uint64_t execs = 0;
  std::string input;
  while ((runs == 0 || execs < runs) &&
         (execs % 256 != 0 || std::chrono::steady_clock::now() < deadline)) {
    input = corpus.empty() ? std::string() : corpus[rng() % corpus.size()];
    const int mutations = 1 + static_cast<int>(rng() % 8);
    for (int m = 0; m < mutations; m++) Mutate(&input, &rng, corpus, max_len);
    Run(*harness, input);
    execs++;
  }
  std::fprintf(stderr, "gt_fuzz[%s]: done, %llu exec(s), no crashes\n", harness->name,
               static_cast<unsigned long long>(execs));
  return 0;
}
