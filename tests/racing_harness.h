// Shared mutate-while-traversing differential leg (transport-agnostic).
//
// A seeded mutation stream — Darshan-style trickle ingest through the
// live-update RPCs (src/engine/mutation.h) plus churn (overwrites, edge
// inserts, vertex deletes) on the queried subgraph — races random travels.
// Per-travel snapshot pinning makes each travel's answer well-defined even
// though the graph moves underneath it: the travel must equal the reference
// evaluator run on the frozen copy of the graph taken at its pin point
// (Cluster::DumpAtTravelPin or the TCP-fixture equivalent). The leg is
// deterministic despite racing because every travel is judged against its
// OWN pin, never against a global notion of "current" state.
//
// Both the in-process cluster leg (test_engine_differential.cc) and the TCP
// leg (test_distributed.cc) instantiate this via the hook struct below.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/client.h"
#include "src/gen/darshan.h"
#include "src/graph/catalog.h"
#include "src/graph/ref_graph.h"
#include "src/lang/gtravel.h"

namespace gt::testing {

// Trickled Darshan vids live far above the queried base range so churn
// deletes and trickle inserts never collide.
inline constexpr graph::VertexId kTrickleVidBase = 1u << 20;

struct RacingEnv {
  engine::GraphTrekClient* mutator = nullptr;   // carries the mutation stream
  engine::GraphTrekClient* traveler = nullptr;  // runs the racing travels
  graph::Catalog* catalog = nullptr;            // the interning authority
  // Frozen copy of the graph at `travel`'s pin point (one pinned snapshot
  // per shard, composed).
  std::function<Result<graph::RefGraph>(engine::TravelId)> dump_at_pin;
  // True while any server still holds live (non-retained) travel state.
  std::function<bool(engine::TravelId)> has_residue;
};

// One flat op of the precomputed mutation stream.
struct MutationOp {
  enum Kind { kVertex, kEdge } kind = kVertex;
  graph::VertexId src = 0;
  graph::VertexId dst = 0;
  std::string label;
  engine::NamedProps props;
};

// Flattens a small Darshan graph into trickle order: every vertex first,
// then every edge (so each edge lands with both endpoints present and the
// ingest validation accepts it). Vids are offset into the trickle range.
inline std::vector<MutationOp> BuildTrickleStream(graph::Catalog* catalog,
                                                  uint64_t seed) {
  gen::DarshanConfig dcfg;
  dcfg.users = 4;
  dcfg.jobs_per_user_max = 4;
  dcfg.execs_per_job_max = 3;
  dcfg.files = 64;
  dcfg.reads_per_exec_max = 3;
  dcfg.writes_per_exec_max = 2;
  dcfg.seed = seed;
  gen::DarshanGenerator generator(dcfg);
  graph::RefGraph g = generator.Build(catalog);

  auto name_of = [&](graph::Catalog::Id id) {
    auto name = catalog->Name(id);
    EXPECT_TRUE(name.ok()) << id;
    return name.ok() ? *name : std::string();
  };
  auto named_props = [&](const graph::PropMap& props) {
    engine::NamedProps out;
    for (const auto& [k, v] : props) out.emplace_back(name_of(k), v);
    return out;
  };

  std::vector<MutationOp> ops;
  for (const auto& [vid, rec] : g.vertices()) {
    MutationOp op;
    op.kind = MutationOp::kVertex;
    op.src = vid + kTrickleVidBase;
    op.label = name_of(rec.label);
    op.props = named_props(rec.props);
    ops.push_back(std::move(op));
  }
  const char* kEdgeLabels[] = {"run", "hasExecutions", "exe",
                               "read", "readBy",        "write"};
  for (const auto& [vid, rec] : g.vertices()) {
    for (const char* label : kEdgeLabels) {
      for (const auto& [dst, props] : g.Edges(vid, catalog->Lookup(label))) {
        MutationOp op;
        op.kind = MutationOp::kEdge;
        op.src = vid + kTrickleVidBase;
        op.dst = dst + kTrickleVidBase;
        op.label = label;
        op.props = named_props(props);
        ops.push_back(std::move(op));
      }
    }
  }
  return ops;
}

// Seeds the queried base graph through the live-update API: vids
// [0, n) with labels A/B and an integer w, then 3n x/y edges with an
// integer p — the vocabulary the random plans below traverse.
inline void SeedBaseGraph(engine::GraphTrekClient* client, Rng* rng, uint32_t n) {
  for (graph::VertexId v = 0; v < n; v++) {
    const auto w = static_cast<int64_t>(rng->Uniform(100));
    ASSERT_TRUE(client
                    ->PutVertex(v, rng->Bernoulli(0.6) ? "A" : "B",
                                {{"w", graph::PropValue(w)}})
                    .ok())
        << v;
  }
  for (uint32_t i = 0; i < 3 * n; i++) {
    const auto p = static_cast<int64_t>(rng->Uniform(100));
    ASSERT_TRUE(client
                    ->PutEdge(rng->Uniform(n), rng->Bernoulli(0.5) ? "x" : "y",
                              rng->Uniform(n), {{"p", graph::PropValue(p)}})
                    .ok())
        << i;
  }
}

// Random plan over the base vocabulary: anchored or type-scan start,
// 2-3 x/y hops, optional w/p filters, then one of three flavors — legacy
// (optional, incl. intermediate, rtn()), repeat/until (seeded bounded loops
// terminating the chain), or aggregate (count()/group() terminals). Branch
// plans are deliberately absent here: branch children pin their own
// snapshots, so under racing mutations their union is not a single frozen
// graph the pinned oracle could replay (see DESIGN.md).
inline lang::TraversalPlan BuildRacingPlan(graph::Catalog* catalog, Rng* rng,
                                           uint32_t n) {
  lang::GTravel travel(catalog);
  if (rng->Bernoulli(0.75)) {
    std::vector<graph::VertexId> ids;
    const uint32_t k = 1 + static_cast<uint32_t>(rng->Uniform(3));
    for (uint32_t i = 0; i < k; i++) ids.push_back(rng->Uniform(n));
    travel.v(ids);
  } else {
    travel.v().va("type", lang::FilterOp::kEq,
                  {graph::PropValue(rng->Bernoulli(0.5) ? "A" : "B")});
  }
  const uint32_t flavor = rng->Uniform(3);
  if (flavor == 0 && rng->Bernoulli(0.15)) travel.rtn();
  const uint32_t hops = 2 + static_cast<uint32_t>(rng->Uniform(2));
  for (uint32_t h = 0; h < hops; h++) {
    travel.e(rng->Bernoulli(0.5) ? "x" : "y");
    if (flavor == 1 && rng->Bernoulli(0.3)) {
      travel.repeat(2 + static_cast<uint32_t>(rng->Uniform(2)));
    }
    if (rng->Bernoulli(0.25)) {
      const auto lo = static_cast<int64_t>(rng->Uniform(40));
      travel.ea("p", lang::FilterOp::kRange,
                {graph::PropValue(lo), graph::PropValue(lo + 55)});
    }
    if (rng->Bernoulli(0.2)) {
      travel.va("w", lang::FilterOp::kRange,
                {graph::PropValue(int64_t{0}), graph::PropValue(int64_t{85})});
    }
    if (flavor == 0 && rng->Bernoulli(0.3)) travel.rtn();
  }
  if (flavor == 1 && rng->Bernoulli(0.5)) {
    const auto lo = static_cast<int64_t>(rng->Uniform(60));
    travel.until("w", lang::FilterOp::kRange,
                 {graph::PropValue(lo), graph::PropValue(lo + 30)});
  }
  if (flavor == 2) {
    rng->Bernoulli(0.5) ? travel.count() : travel.group(rng->Bernoulli(0.5) ? "w" : "type");
  }
  auto plan = travel.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

// Compares one finished travel against the extended reference evaluation of
// the frozen graph at its pin point, per the plan's result mode.
inline void ExpectMatchesOracle(const lang::TraversalPlan& plan,
                                const engine::TraversalResult& result,
                                const graph::RefGraph& frozen,
                                const graph::Catalog& catalog) {
  const lang::RefEvalResult oracle = lang::EvaluatePlanExtOnRefGraph(plan, frozen, catalog);
  switch (plan.result_mode) {
    case lang::ResultMode::kVertices:
      EXPECT_EQ(result.vids, oracle.vids);
      break;
    case lang::ResultMode::kCount:
      EXPECT_EQ(result.count, oracle.count);
      EXPECT_TRUE(result.vids.empty());  // count() ships no vertex stream
      break;
    case lang::ResultMode::kGroup:
      EXPECT_EQ(result.groups, oracle.groups);
      break;
    case lang::ResultMode::kPaths:
      EXPECT_EQ(result.paths, oracle.paths);
      break;
  }
}

// The leg itself. `travels` traversals (cycling through the three engine
// modes) race the stream; each must equal the oracle on its pin-point dump.
inline void RunMutateRacingLeg(const RacingEnv& env, uint64_t seed,
                               int travels) {
  Rng rng(seed * 2654435761u);
  const uint32_t n = 48;
  SeedBaseGraph(env.mutator, &rng, n);
  if (::testing::Test::HasFatalFailure()) return;

  const std::vector<MutationOp> trickle = BuildTrickleStream(env.catalog, seed);
  ASSERT_GT(trickle.size(), 100u);

  // Mutator thread: trickle the Darshan stream and interleave churn on the
  // base range. It is the only writer, so it knows the live vid set exactly
  // and every mutation status is deterministic (EXPECT, not tolerated).
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    Rng mrng(seed * 7919 + 1);
    std::vector<graph::VertexId> live(n);
    for (uint32_t v = 0; v < n; v++) live[v] = v;
    uint32_t deletes = 0;
    size_t next = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (next < trickle.size()) {
        const MutationOp& op = trickle[next++];
        if (op.kind == MutationOp::kVertex) {
          EXPECT_TRUE(env.mutator->PutVertex(op.src, op.label, op.props).ok());
        } else {
          EXPECT_TRUE(
              env.mutator->PutEdge(op.src, op.label, op.dst, op.props).ok());
        }
      }
      // Churn on the queried range: this is what the pin protects against.
      switch (mrng.Uniform(4)) {
        case 0: {  // overwrite a live vertex (new w, maybe new type)
          const graph::VertexId v = live[mrng.Uniform(live.size())];
          const auto w = static_cast<int64_t>(mrng.Uniform(100));
          EXPECT_TRUE(env.mutator
                          ->PutVertex(v, mrng.Bernoulli(0.6) ? "A" : "B",
                                      {{"w", graph::PropValue(w)}})
                          .ok());
          break;
        }
        case 1:
        case 2: {  // new/overwritten edge between live vertices
          const graph::VertexId src = live[mrng.Uniform(live.size())];
          const graph::VertexId dst = live[mrng.Uniform(live.size())];
          const auto p = static_cast<int64_t>(mrng.Uniform(100));
          EXPECT_TRUE(env.mutator
                          ->PutEdge(src, mrng.Bernoulli(0.5) ? "x" : "y", dst,
                                    {{"p", graph::PropValue(p)}})
                          .ok());
          break;
        }
        case 3: {  // delete a live vertex (bounded so the graph stays dense)
          if (deletes >= n / 4) break;
          const size_t idx = mrng.Uniform(live.size());
          EXPECT_TRUE(env.mutator->DeleteVertex(live[idx]).ok());
          live[idx] = live.back();
          live.pop_back();
          deletes++;
          break;
        }
      }
    }
  });

  constexpr engine::EngineMode kModes[] = {engine::EngineMode::kSync,
                                           engine::EngineMode::kAsyncPlain,
                                           engine::EngineMode::kGraphTrek};
  std::vector<engine::TravelId> travel_ids;
  Rng prng(seed * 104729 + 7);
  for (int t = 0; t < travels; t++) {
    SCOPED_TRACE("travel=" + std::to_string(t));
    const lang::TraversalPlan plan = BuildRacingPlan(env.catalog, &prng, n);
    engine::RunOptions opts;
    opts.mode = kModes[t % 3];
    SCOPED_TRACE(engine::EngineModeName(opts.mode));
    auto result = env.traveler->Run(plan, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // A restart re-pins mid-stream; with no fault injection there are none,
    // so every travel has exactly one pin point.
    ASSERT_EQ(result->restarts, 0u);
    travel_ids.push_back(result->travel_id);

    auto frozen = env.dump_at_pin(result->travel_id);
    ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
    ExpectMatchesOracle(plan, *result, *frozen, *env.catalog);
  }
  stop.store(true);
  mutator.join();

  // Completion must have moved every pin out of live state (the retained
  // test-hook map is not residue); lint check-7's erase-path contract.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (engine::TravelId travel : travel_ids) {
    while (env.has_residue(travel)) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "travel " << travel << " still has live pinned state";
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

}  // namespace gt::testing
