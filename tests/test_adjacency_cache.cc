// Tests for the CSR adjacency cache (src/graph/adjacency_cache.h) and its
// GraphStore integration: lazy fill, all-labels row slicing, byte-budgeted
// eviction, invalidation on PutEdge/DeleteVertex, bulk warm-up, batched
// MultiGetVertices, type-scan warm accounting, and a randomized
// mutate-while-traversing leg.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <vector>

#include "src/common/device_model.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/graph/adjacency_cache.h"
#include "src/graph/graph_store.h"
#include "tests/test_util.h"

namespace gt::graph {
namespace {

using EdgeList = std::vector<std::pair<VertexId, int64_t>>;  // (dst, weight)

constexpr LabelId kTypeA = 1;
constexpr LabelId kEdgeX = 10;
constexpr LabelId kEdgeY = 11;
constexpr PropMap::KeyId kWeightKey = 100;

class AdjacencyCacheTest : public ::testing::Test {
 protected:
  std::unique_ptr<GraphStore> OpenStore(const std::string& dir,
                                        size_t cache_bytes,
                                        DeviceModel* device = nullptr) {
    GraphStoreOptions opts;
    opts.adjacency_cache_bytes = cache_bytes;
    opts.device = device;
    auto store = GraphStore::Open(dir, opts);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(*store);
  }

  static VertexRecord MakeVertex(VertexId vid) {
    VertexRecord v;
    v.id = vid;
    v.label = kTypeA;
    return v;
  }

  static EdgeRecord MakeEdge(VertexId src, LabelId label, VertexId dst,
                             int64_t weight) {
    EdgeRecord e;
    e.src = src;
    e.label = label;
    e.dst = dst;
    e.props.Set(kWeightKey, PropValue(weight));
    return e;
  }

  // Out-edges of (src, label) as the store reports them.
  static EdgeList Scan(GraphStore* store, VertexId src, LabelId label,
                       const GraphStore::ReadSnapshot* snap = nullptr) {
    EdgeList out;
    store
        ->ScanEdges(
            src, label,
            [&](VertexId dst, const PropMap& props) {
              const PropValue* w = props.Find(kWeightKey);
              out.emplace_back(dst, w != nullptr ? w->as_int() : -1);
              return true;
            },
            /*warm=*/false, snap)
        .ok();
    return out;
  }

  static EdgeList ScanAll(GraphStore* store, VertexId src,
                          const GraphStore::ReadSnapshot* snap = nullptr) {
    EdgeList out;
    store
        ->ScanAllEdges(
            src,
            [&](LabelId label, VertexId dst, const PropMap& props) {
              const PropValue* w = props.Find(kWeightKey);
              out.emplace_back(dst * 1000 + label, w != nullptr ? w->as_int() : -1);
              return true;
            },
            /*warm=*/false, snap)
        .ok();
    return out;
  }
};

TEST_F(AdjacencyCacheTest, LazyFillServesSameEdgesAsUncachedStore) {
  testing::ScopedTempDir dir;
  auto cached = OpenStore(dir.sub("cached"), 1 << 20);
  auto raw = OpenStore(dir.sub("raw"), 0);
  ASSERT_EQ(raw->adjacency_cache(), nullptr);
  ASSERT_NE(cached->adjacency_cache(), nullptr);

  for (auto* s : {cached.get(), raw.get()}) {
    for (VertexId v = 1; v <= 20; v++) {
      ASSERT_TRUE(s->PutVertex(MakeVertex(v)).ok());
      for (VertexId d = 1; d <= 5; d++) {
        ASSERT_TRUE(s->PutEdge(MakeEdge(v, kEdgeX, v * 100 + d, int64_t(d))).ok());
        if (d % 2 == 0) {
          ASSERT_TRUE(s->PutEdge(MakeEdge(v, kEdgeY, v * 100 + d, int64_t(-d))).ok());
        }
      }
    }
  }

  // First scan = miss + build; second scan = hit. Both match the raw store.
  for (int pass = 0; pass < 2; pass++) {
    for (VertexId v = 1; v <= 20; v++) {
      EXPECT_EQ(Scan(cached.get(), v, kEdgeX), Scan(raw.get(), v, kEdgeX));
      EXPECT_EQ(Scan(cached.get(), v, kEdgeY), Scan(raw.get(), v, kEdgeY));
      EXPECT_EQ(ScanAll(cached.get(), v), ScanAll(raw.get(), v));
    }
  }
  EXPECT_GT(cached->adjacency_cache()->hits(), 0u);
  EXPECT_GT(cached->adjacency_cache()->builds(), 0u);
  EXPECT_GT(cached->adjacency_cache()->usage(), 0u);
}

TEST_F(AdjacencyCacheTest, AllLabelsRowServesPerLabelScan) {
  testing::ScopedTempDir dir;
  auto store = OpenStore(dir.sub("s"), 1 << 20);
  ASSERT_TRUE(store->PutVertex(MakeVertex(1)).ok());
  for (VertexId d = 1; d <= 4; d++) {
    ASSERT_TRUE(store->PutEdge(MakeEdge(1, kEdgeX, d, int64_t(d))).ok());
    ASSERT_TRUE(store->PutEdge(MakeEdge(1, kEdgeY, d + 10, int64_t(d))).ok());
  }

  // Build the all-labels row, then per-label scans must be cache hits that
  // slice it (no new builds).
  (void)ScanAll(store.get(), 1);
  const uint64_t builds = store->adjacency_cache()->builds();
  const uint64_t hits_before = store->adjacency_cache()->hits();

  EdgeList x = Scan(store.get(), 1, kEdgeX);
  ASSERT_EQ(x.size(), 4u);
  EXPECT_EQ(x[0].first, 1u);
  EdgeList y = Scan(store.get(), 1, kEdgeY);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_EQ(y[0].first, 11u);

  EXPECT_EQ(store->adjacency_cache()->builds(), builds);
  EXPECT_GT(store->adjacency_cache()->hits(), hits_before);
}

TEST_F(AdjacencyCacheTest, EvictionUnderBytePressure) {
  testing::ScopedTempDir dir;
  // A budget far smaller than the working set: rows must LRU out.
  auto store = OpenStore(dir.sub("s"), 8 << 10);
  const int kVertices = 200;
  for (VertexId v = 1; v <= kVertices; v++) {
    ASSERT_TRUE(store->PutVertex(MakeVertex(v)).ok());
    for (VertexId d = 1; d <= 8; d++) {
      ASSERT_TRUE(store->PutEdge(MakeEdge(v, kEdgeX, v * 100 + d, int64_t(d))).ok());
    }
  }

  for (VertexId v = 1; v <= kVertices; v++) {
    ASSERT_EQ(Scan(store.get(), v, kEdgeX).size(), 8u);
  }
  AdjacencyCache* cache = store->adjacency_cache();
  EXPECT_GT(cache->evictions(), 0u);
  EXPECT_LE(cache->usage(), cache->capacity_bytes());

  // Evicted rows rebuild correctly.
  for (VertexId v = 1; v <= kVertices; v++) {
    EdgeList edges = Scan(store.get(), v, kEdgeX);
    ASSERT_EQ(edges.size(), 8u);
    EXPECT_EQ(edges.front().first, v * 100 + 1);
  }
}

TEST_F(AdjacencyCacheTest, PutEdgeInvalidatesCachedRows) {
  testing::ScopedTempDir dir;
  auto store = OpenStore(dir.sub("s"), 1 << 20);
  ASSERT_TRUE(store->PutVertex(MakeVertex(1)).ok());
  ASSERT_TRUE(store->PutEdge(MakeEdge(1, kEdgeX, 2, 1)).ok());

  ASSERT_EQ(Scan(store.get(), 1, kEdgeX).size(), 1u);  // row cached
  ASSERT_EQ(ScanAll(store.get(), 1).size(), 1u);       // all-labels row cached

  ASSERT_TRUE(store->PutEdge(MakeEdge(1, kEdgeX, 3, 2)).ok());
  EdgeList after = Scan(store.get(), 1, kEdgeX);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1].first, 3u);
  EXPECT_EQ(ScanAll(store.get(), 1).size(), 2u);

  // Overwriting an edge's properties must be visible too.
  ASSERT_TRUE(store->PutEdge(MakeEdge(1, kEdgeX, 2, 99)).ok());
  EXPECT_EQ(Scan(store.get(), 1, kEdgeX).front().second, 99);
}

TEST_F(AdjacencyCacheTest, DeleteVertexInvalidatesAndRecountsMisses) {
  testing::ScopedTempDir dir;
  auto store = OpenStore(dir.sub("s"), 1 << 20);
  ASSERT_TRUE(store->PutVertex(MakeVertex(1)).ok());
  ASSERT_TRUE(store->PutEdge(MakeEdge(1, kEdgeX, 2, 1)).ok());
  ASSERT_EQ(Scan(store.get(), 1, kEdgeX).size(), 1u);

  const uint64_t misses = store->adjacency_cache()->misses();
  ASSERT_TRUE(store->DeleteVertex(1).ok());
  // The rows of vid 1 are gone: the next scan misses and rebuilds (from the
  // still-present edge keys — DeleteVertex removes the record + type index).
  ASSERT_EQ(Scan(store.get(), 1, kEdgeX).size(), 1u);
  EXPECT_GT(store->adjacency_cache()->misses(), misses);
  EXPECT_FALSE(store->GetVertex(1).ok());
}

TEST_F(AdjacencyCacheTest, WarmAdjacencyMakesScansHit) {
  testing::ScopedTempDir dir;
  auto store = OpenStore(dir.sub("s"), 4 << 20);
  for (VertexId v = 1; v <= 50; v++) {
    ASSERT_TRUE(store->PutVertex(MakeVertex(v)).ok());
    for (VertexId d = 1; d <= 4; d++) {
      ASSERT_TRUE(store->PutEdge(MakeEdge(v, kEdgeX, v * 10 + d, int64_t(d))).ok());
    }
  }
  ASSERT_TRUE(store->WarmAdjacency().ok());
  EXPECT_GE(store->adjacency_cache()->builds(), 50u);

  const uint64_t misses = store->adjacency_cache()->misses();
  for (VertexId v = 1; v <= 50; v++) {
    ASSERT_EQ(ScanAll(store.get(), v).size(), 4u);
    ASSERT_EQ(Scan(store.get(), v, kEdgeX).size(), 4u);
  }
  EXPECT_EQ(store->adjacency_cache()->misses(), misses);
}

TEST_F(AdjacencyCacheTest, CacheHitsChargeWarmDeviceAccesses) {
  testing::ScopedTempDir dir;
  DeviceModelConfig dcfg;  // zero latency: counters only
  DeviceModel device(dcfg);
  auto store = OpenStore(dir.sub("s"), 1 << 20, &device);
  ASSERT_TRUE(store->PutVertex(MakeVertex(1)).ok());
  ASSERT_TRUE(store->PutEdge(MakeEdge(1, kEdgeX, 2, 1)).ok());

  ASSERT_EQ(Scan(store.get(), 1, kEdgeX).size(), 1u);  // cold: builds the row
  const uint64_t warm_before = device.warm_accesses();
  ASSERT_EQ(Scan(store.get(), 1, kEdgeX).size(), 1u);  // hit: charged warm
  EXPECT_EQ(device.warm_accesses(), warm_before + 1);
}

TEST_F(AdjacencyCacheTest, MultiGetVerticesMatchesGetVertex) {
  testing::ScopedTempDir dir;
  auto store = OpenStore(dir.sub("s"), 1 << 20);
  for (VertexId v = 1; v <= 30; v += 2) {  // odd vids only
    VertexRecord rec = MakeVertex(v);
    rec.props.Set(kWeightKey, PropValue(int64_t(v) * 7));
    ASSERT_TRUE(store->PutVertex(rec).ok());
  }

  // Unsorted batch with present and absent vids.
  std::vector<GraphStore::VertexLookup> lookups;
  for (VertexId v : {29u, 2u, 1u, 15u, 16u, 3u}) {
    GraphStore::VertexLookup lk;
    lk.vid = v;
    lookups.push_back(lk);
  }
  ASSERT_TRUE(store->MultiGetVertices(&lookups).ok());
  for (const auto& lk : lookups) {
    auto single = store->GetVertex(lk.vid);
    ASSERT_EQ(lk.found, single.ok()) << "vid " << lk.vid;
    if (lk.found) {
      EXPECT_EQ(lk.rec.label, single->label);
      EXPECT_EQ(lk.rec.props.Find(kWeightKey)->as_int(),
                single->props.Find(kWeightKey)->as_int());
    }
  }
}

TEST_F(AdjacencyCacheTest, ScanVerticesByTypeWarmFlagChargesWarm) {
  testing::ScopedTempDir dir;
  DeviceModelConfig dcfg;
  DeviceModel device(dcfg);
  auto store = OpenStore(dir.sub("s"), 1 << 20, &device);
  for (VertexId v = 1; v <= 10; v++) {
    ASSERT_TRUE(store->PutVertex(MakeVertex(v)).ok());
  }

  size_t n = 0;
  const uint64_t warm_before = device.warm_accesses();
  ASSERT_TRUE(store->ScanVerticesByType(kTypeA, [&](VertexId) { ++n; return true; }).ok());
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(device.warm_accesses(), warm_before);  // first scan is cold

  ASSERT_TRUE(store
                  ->ScanVerticesByType(kTypeA, [&](VertexId) { return true; },
                                       /*warm=*/true)
                  .ok());
  EXPECT_EQ(device.warm_accesses(), warm_before + 1);
}

// Regression for the torn-read bug this PR fixes. The cache used to be
// snapshot-oblivious: a pinned reader whose scan missed would build a row
// from the LIVE store and be handed post-pin edges. Rows now carry the
// sequence they were built at; a row newer than the reader's snapshot is
// bypassed (the reader falls back to an uncached scan of the KV snapshot),
// while rows built at or before the pin are served from cache as usual.
TEST_F(AdjacencyCacheTest, PinnedSnapshotNeverSeesPostPinRows) {
  testing::ScopedTempDir dir;
  auto store = OpenStore(dir.sub("s"), 1 << 20);
  for (VertexId v : {1u, 2u, 4u}) {
    ASSERT_TRUE(store->PutVertex(MakeVertex(v)).ok());
  }
  ASSERT_TRUE(store->PutEdge(MakeEdge(1, kEdgeX, 2, 1)).ok());
  ASSERT_TRUE(store->PutEdge(MakeEdge(2, kEdgeX, 1, 1)).ok());
  ASSERT_TRUE(store->PutEdge(MakeEdge(4, kEdgeX, 1, 1)).ok());

  // Rows for vids 2 and 4 are resident before the pin; vid 1 stays cold.
  ASSERT_EQ(Scan(store.get(), 2, kEdgeX).size(), 1u);
  ASSERT_EQ(Scan(store.get(), 4, kEdgeX).size(), 1u);

  const GraphStore::ReadSnapshot* snap = store->GetSnapshot();

  // Post-pin mutations: vid 1's row will be built fresh (too new), vid 2's
  // resident row is invalidated and also rebuilds too new. Vid 4 untouched.
  ASSERT_TRUE(store->PutEdge(MakeEdge(1, kEdgeX, 3, 2)).ok());
  ASSERT_TRUE(store->PutEdge(MakeEdge(2, kEdgeX, 3, 2)).ok());

  // Cold scan under the pin: the freshly built row carries a build sequence
  // newer than the snapshot, so the pinned reader must not be served it.
  EdgeList pinned = Scan(store.get(), 1, kEdgeX, snap);
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0].first, 2u);
  EXPECT_EQ(ScanAll(store.get(), 1, snap).size(), 1u);

  // Same for the invalidated-then-rebuilt row of vid 2.
  EdgeList pinned2 = Scan(store.get(), 2, kEdgeX, snap);
  ASSERT_EQ(pinned2.size(), 1u);
  EXPECT_EQ(pinned2[0].first, 1u);

  // A row built before the pin and never invalidated is still a plain cache
  // hit for the pinned reader.
  const uint64_t builds_before = store->adjacency_cache()->builds();
  const uint64_t hits_before = store->adjacency_cache()->hits();
  EdgeList pinned4 = Scan(store.get(), 4, kEdgeX, snap);
  ASSERT_EQ(pinned4.size(), 1u);
  EXPECT_EQ(pinned4[0].first, 1u);
  EXPECT_GT(store->adjacency_cache()->hits(), hits_before);
  EXPECT_EQ(store->adjacency_cache()->builds(), builds_before);

  // Live readers see the post-pin edges, served by the rows the pinned
  // scans populated (no additional build).
  EXPECT_EQ(Scan(store.get(), 1, kEdgeX).size(), 2u);
  EXPECT_EQ(Scan(store.get(), 2, kEdgeX).size(), 2u);
  EXPECT_EQ(store->adjacency_cache()->builds(), builds_before);

  store->ReleaseSnapshot(snap);
}

// Concurrent scanners + a mutator: scans must never crash, never observe a
// torn row, and once the mutator is done every scan must match a fresh
// cache-less store (no stale rows survive — the epoch token in
// AdjacencyCache::Insert is what this leg exercises).
TEST_F(AdjacencyCacheTest, MutateWhileTraversingConverges) {
  testing::ScopedTempDir dir;
  auto store = OpenStore(dir.sub("s"), 64 << 10);  // small: eviction in play
  const int kVertices = 40;
  for (VertexId v = 1; v <= kVertices; v++) {
    ASSERT_TRUE(store->PutVertex(MakeVertex(v)).ok());
    for (VertexId d = 1; d <= 4; d++) {
      ASSERT_TRUE(store->PutEdge(MakeEdge(v, kEdgeX, (v % kVertices) + d, 1)).ok());
    }
  }

  std::atomic<bool> stop{false};
  ThreadPool pool(4);
  for (int t = 0; t < 3; t++) {
    pool.Submit([&, t] {
      Rng rng(1234 + t);
      while (!stop.load()) {
        const VertexId v = 1 + rng.Uniform(kVertices);
        EdgeList edges = Scan(store.get(), v, kEdgeX);
        // Rows are immutable: a scan sees a consistent dst order even while
        // the mutator rewrites the vertex.
        for (size_t i = 1; i < edges.size(); i++) {
          ASSERT_LT(edges[i - 1].first, edges[i].first);
        }
        (void)ScanAll(store.get(), v);
      }
    });
  }

  Rng rng(999);
  for (int op = 0; op < 500; op++) {
    const VertexId v = 1 + rng.Uniform(kVertices);
    switch (rng.Uniform(3)) {
      case 0:
        ASSERT_TRUE(
            store->PutEdge(MakeEdge(v, kEdgeX, 500 + rng.Uniform(50), int64_t(op)))
                .ok());
        break;
      case 1:
        ASSERT_TRUE(store->PutEdge(MakeEdge(v, kEdgeY, 900 + rng.Uniform(10), 1)).ok());
        break;
      case 2:
        ASSERT_TRUE(store->PutVertex(MakeVertex(v)).ok());
        break;
    }
  }
  stop.store(true);
  pool.Shutdown();

  // Every cached answer now equals a store that never caches.
  auto raw = OpenStore(dir.sub("s"), 0);  // same directory, cache off
  for (VertexId v = 1; v <= kVertices; v++) {
    EXPECT_EQ(Scan(store.get(), v, kEdgeX), Scan(raw.get(), v, kEdgeX)) << "vid " << v;
    EXPECT_EQ(ScanAll(store.get(), v), ScanAll(raw.get(), v)) << "vid " << v;
  }
}

}  // namespace
}  // namespace gt::graph
