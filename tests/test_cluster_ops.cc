// Operational-surface tests: dumping a live cluster back into staging form
// (the inverse of Load), text export of the dump, and the stats report.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <tuple>

#include "src/engine/cluster.h"
#include "src/gen/darshan.h"
#include "src/graph/text_io.h"
#include "src/lang/gtravel.h"

namespace gt::engine {
namespace {

using graph::Catalog;
using graph::RefGraph;

TEST(ClusterOpsTest, DumpInvertsLoad) {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();

  gen::DarshanConfig dcfg;
  dcfg.users = 8;
  dcfg.files = 128;
  gen::DarshanGenerator generator(dcfg);
  RefGraph g = generator.Build(catalog);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  // The store keys edges by (src, label, dst), so parallel edges emitted by
  // the generator collapse to one; compare against the deduplicated count.
  std::set<std::tuple<graph::VertexId, graph::LabelId, graph::VertexId>> unique_edges;
  for (const auto& [vid, rec] : g.vertices()) {
    (void)rec;
    for (uint32_t label = 0; label < catalog->size(); label++) {
      for (const auto& [dst, props] : g.Edges(vid, label)) {
        (void)props;
        unique_edges.insert({vid, label, dst});
      }
    }
  }

  auto dumped = (*cluster)->Dump();
  ASSERT_TRUE(dumped.ok()) << dumped.status().ToString();
  EXPECT_EQ(dumped->num_vertices(), g.num_vertices());
  EXPECT_EQ(dumped->num_edges(), unique_edges.size());

  // Spot-check structure: every user's run edges survive the round trip.
  const auto run = catalog->Lookup("run");
  for (uint32_t u = 0; u < dcfg.users; u++) {
    EXPECT_EQ(dumped->Edges(generator.UserVid(u), run).size(),
              g.Edges(generator.UserVid(u), run).size())
        << "user " << u;
  }

  // And the dump is text-exportable / re-importable losslessly.
  std::ostringstream out;
  ASSERT_TRUE(graph::ExportText(*dumped, *catalog, &out).ok());
  Catalog fresh;
  std::istringstream in(out.str());
  auto reimported = graph::ImportText(&in, &fresh);
  ASSERT_TRUE(reimported.ok());
  EXPECT_EQ(reimported->num_vertices(), g.num_vertices());
  EXPECT_EQ(reimported->num_edges(), unique_edges.size());
}

TEST(ClusterOpsTest, DumpedGraphEvaluatesLikeTheOriginal) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  gen::DarshanConfig dcfg;
  dcfg.users = 6;
  dcfg.files = 64;
  gen::DarshanGenerator generator(dcfg);
  RefGraph g = generator.Build(catalog);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  auto dumped = (*cluster)->Dump();
  ASSERT_TRUE(dumped.ok());

  auto plan = lang::GTravel(catalog)
                  .v({generator.UserVid(1)})
                  .e("run")
                  .e("hasExecutions")
                  .e("read")
                  .Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(lang::EvaluatePlanOnRefGraph(*plan, *dumped, *catalog),
            lang::EvaluatePlanOnRefGraph(*plan, g, *catalog));
}

TEST(ClusterOpsTest, StatsReportCoversEveryServer) {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  gen::DarshanConfig dcfg;
  dcfg.users = 6;
  dcfg.files = 64;
  gen::DarshanGenerator generator(dcfg);
  RefGraph g = generator.Build(catalog);
  ASSERT_TRUE((*cluster)->Load(g).ok());

  auto plan = lang::GTravel(catalog).v({generator.UserVid(0)}).e("run").Build();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE((*cluster)->Run(*plan, EngineMode::kGraphTrek).ok());

  std::ostringstream out;
  (*cluster)->DumpMetrics(&out);
  const std::string report = out.str();
  // One exposition document covers every layer: kv, rpc, engine visits and
  // per-travel durations, with one labelled series per server instance.
  for (const char* needle :
       {"server=\"s0\"", "server=\"s1\"", "server=\"s2\"",
        "gt_engine_visits_received_total", "gt_engine_travel_cache_misses_total",
        "gt_kv_puts_total", "gt_rpc_messages_sent_total",
        "gt_travel_duration_ms_bucket", "gt_travel_completed_total",
        "# TYPE gt_travel_duration_ms histogram", "# device model s2:"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }

  // The archived coordinator trace renders as Chrome trace-event JSON.
  std::string json;
  ASSERT_TRUE((*cluster)->ExportTraceJson(0, &json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("GraphTrek"), std::string::npos);
}

}  // namespace
}  // namespace gt::engine
