// Unit tests for src/common: codecs, hashing, RNG, thread pool, sync
// primitives, status/result types, device model.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/common/clock.h"
#include "src/common/codec.h"
#include "src/common/device_model.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/thread_pool.h"

namespace gt {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::Timeout("").IsTimeout());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("disk");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

// --- Codecs -----------------------------------------------------------------

TEST(CodecTest, Fixed32RoundTrip) {
  std::string s;
  PutFixed32(&s, 0xdeadbeef);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(DecodeFixed32(s.data()), 0xdeadbeefu);
}

TEST(CodecTest, Fixed64RoundTrip) {
  std::string s;
  PutFixed64(&s, 0x0123456789abcdefULL);
  EXPECT_EQ(DecodeFixed64(s.data()), 0x0123456789abcdefULL);
}

TEST(CodecTest, BigEndianPreservesOrder) {
  // Key property: encoded byte order must equal numeric order.
  std::vector<uint64_t> values = {0, 1, 255, 256, 1ull << 20, 1ull << 40, UINT64_MAX};
  std::vector<std::string> encoded;
  for (auto v : values) {
    std::string s;
    PutFixed64BE(&s, v);
    encoded.push_back(s);
  }
  for (size_t i = 1; i < encoded.size(); i++) {
    EXPECT_LT(encoded[i - 1], encoded[i]) << "values " << values[i - 1] << "," << values[i];
  }
  for (size_t i = 0; i < values.size(); i++) {
    EXPECT_EQ(DecodeFixed64BE(encoded[i].data()), values[i]);
  }
}

TEST(CodecTest, BigEndian32PreservesOrder) {
  std::string a, b;
  PutFixed32BE(&a, 0x00ffffffu);
  PutFixed32BE(&b, 0x01000000u);
  EXPECT_LT(a, b);
  EXPECT_EQ(DecodeFixed32BE(a.data()), 0x00ffffffu);
}

class VarintParam : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintParam, RoundTrip64) {
  std::string s;
  PutVarint64(&s, GetParam());
  Decoder dec(s);
  uint64_t v = 0;
  ASSERT_TRUE(dec.GetVarint64(&v));
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(dec.empty());
}

TEST_P(VarintParam, SignedZigZagRoundTrip) {
  const auto raw = static_cast<int64_t>(GetParam());
  for (int64_t v : {raw, -raw}) {
    std::string s;
    PutVarSigned64(&s, v);
    Decoder dec(s);
    int64_t out = 0;
    ASSERT_TRUE(dec.GetVarSigned64(&out));
    EXPECT_EQ(out, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Values, VarintParam,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                                           (1ull << 21) - 1, 1ull << 21, 1ull << 35,
                                           UINT64_MAX / 2, UINT64_MAX));

TEST(CodecTest, VarintTruncatedInputFails) {
  std::string s;
  PutVarint64(&s, UINT64_MAX);
  for (size_t cut = 0; cut < s.size(); cut++) {
    Decoder dec(s.data(), cut);
    uint64_t v;
    EXPECT_FALSE(dec.GetVarint64(&v)) << "cut=" << cut;
  }
}

TEST(CodecTest, LengthPrefixedRoundTrip) {
  std::string s;
  PutLengthPrefixed(&s, "hello");
  PutLengthPrefixed(&s, "");
  PutLengthPrefixed(&s, std::string(1000, 'x'));
  Decoder dec(s);
  std::string_view a, b, c;
  ASSERT_TRUE(dec.GetLengthPrefixed(&a));
  ASSERT_TRUE(dec.GetLengthPrefixed(&b));
  ASSERT_TRUE(dec.GetLengthPrefixed(&c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(dec.empty());
}

TEST(CodecTest, DecoderSkipAndBounds) {
  std::string s = "abcdef";
  Decoder dec(s);
  EXPECT_TRUE(dec.Skip(3));
  EXPECT_EQ(dec.remaining(), 3u);
  EXPECT_FALSE(dec.Skip(4));
  EXPECT_EQ(dec.remaining(), 3u);  // failed skip does not advance
}

TEST(Crc32cTest, KnownProperties) {
  // Deterministic, sensitive to every byte, and seed-chainable.
  const uint32_t c1 = Crc32c::Compute("hello world");
  EXPECT_EQ(c1, Crc32c::Compute("hello world"));
  EXPECT_NE(c1, Crc32c::Compute("hello worle"));
  EXPECT_NE(c1, Crc32c::Compute("hello worl"));
  EXPECT_NE(Crc32c::Compute(""), Crc32c::Compute("\0", 1));
}

TEST(Crc32cTest, StandardVector) {
  // CRC-32C of "123456789" is 0xE3069283 (well-known check value).
  EXPECT_EQ(Crc32c::Compute("123456789"), 0xE3069283u);
}

// --- Hashing ----------------------------------------------------------------

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; bit++) {
    const uint64_t a = Mix64(12345);
    const uint64_t b = Mix64(12345 ^ (1ull << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, BytesHashDiffersBySeed) {
  EXPECT_NE(HashBytes("abc", 0), HashBytes("abc", 1));
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
}

// --- RNG --------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; i++) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewedTowardSmallValues) {
  Rng rng(7);
  const uint64_t n = 1000;
  uint64_t low = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; i++) {
    const uint64_t v = rng.Zipf(n, 1.1);
    ASSERT_LT(v, n);
    if (v < n / 10) low++;
  }
  // Far more than 10% of the mass must land in the lowest decile.
  EXPECT_GT(low, static_cast<uint64_t>(samples) / 2);
}

TEST(RngTest, ZipfDegenerateFallsBackToUniform) {
  Rng rng(7);
  for (int i = 0; i < 100; i++) {
    EXPECT_LT(rng.Zipf(10, 0.0), 10u);
    EXPECT_EQ(rng.Zipf(1, 2.0), 0u);
  }
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; i++) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitWithResultReturnsFuture) {
  ThreadPool pool(2);
  auto fut = pool.SubmitWithResult([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, WaitBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; i++) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  pool.Shutdown();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

// --- sync primitives ----------------------------------------------------------

TEST(SyncTest, CountDownLatchReleasesAtZero) {
  CountDownLatch latch(3);
  std::thread t([&] {
    latch.CountDown();
    latch.CountDown();
    latch.CountDown();
  });
  latch.Wait();
  t.join();
}

TEST(SyncTest, CountDownLatchWaitForTimesOut) {
  CountDownLatch latch(1);
  EXPECT_FALSE(latch.WaitFor(std::chrono::milliseconds(10)));
  latch.CountDown();
  EXPECT_TRUE(latch.WaitFor(std::chrono::milliseconds(10)));
}

TEST(SyncTest, NotificationWakesWaiter) {
  Notification n;
  EXPECT_FALSE(n.HasBeenNotified());
  std::thread t([&] { n.Notify(); });
  n.Wait();
  EXPECT_TRUE(n.HasBeenNotified());
  t.join();
}

TEST(SyncTest, BlockingCounterWaitsForAllDone) {
  BlockingCounter bc;
  bc.Add(5);
  std::thread t([&] {
    for (int i = 0; i < 5; i++) bc.Done();
  });
  bc.Wait();
  t.join();
}

// --- DeviceModel --------------------------------------------------------------

TEST(DeviceModelTest, ChargesConfiguredLatency) {
  DeviceModel dev(DeviceModelConfig{.access_latency_us = 2000, .per_kib_us = 0});
  Stopwatch watch;
  dev.ChargeAccess(100);
  EXPECT_GE(watch.ElapsedMicros(), 1500u);
  EXPECT_EQ(dev.total_accesses(), 1u);
  EXPECT_EQ(dev.total_us(), 2000u);
}

TEST(DeviceModelTest, PerKibCostScalesWithBytes) {
  DeviceModel dev(DeviceModelConfig{.access_latency_us = 0, .per_kib_us = 10});
  dev.ChargeAccess(4096);
  EXPECT_EQ(dev.total_us(), 40u);
}

TEST(DeviceModelTest, ZeroCostDoesNotSleep) {
  DeviceModel dev;
  Stopwatch watch;
  for (int i = 0; i < 1000; i++) dev.ChargeAccess(128);
  EXPECT_LT(watch.ElapsedMicros(), 100000u);
  EXPECT_EQ(dev.total_accesses(), 1000u);
}

TEST(DeviceModelTest, WarmAccessesChargeWarmLatency) {
  DeviceModel dev(DeviceModelConfig{.access_latency_us = 1000, .per_kib_us = 0,
                                    .warm_latency_us = 100});
  dev.ChargeAccess(64, /*warm=*/true);
  EXPECT_EQ(dev.total_us(), 100u);
  EXPECT_EQ(dev.warm_accesses(), 1u);
  // Default warm cost derives as access/10.
  DeviceModel dev2(DeviceModelConfig{.access_latency_us = 1000});
  dev2.ChargeAccess(64, /*warm=*/true);
  EXPECT_EQ(dev2.total_us(), 100u);
}

TEST(DeviceModelTest, TailAccessesMultiplyColdLatency) {
  DeviceModelConfig cfg;
  cfg.access_latency_us = 10;
  cfg.tail_prob = 1.0;  // every cold access is a tail
  cfg.tail_mult = 5;
  DeviceModel dev(cfg);
  dev.ChargeAccess(0, /*warm=*/false);
  EXPECT_EQ(dev.total_us(), 50u);
  EXPECT_EQ(dev.tail_accesses(), 1u);
  // Warm accesses never take the tail path.
  dev.ChargeAccess(0, /*warm=*/true);
  EXPECT_EQ(dev.tail_accesses(), 1u);
}

TEST(DeviceModelTest, TailProbabilityIsApproximatelyRespected) {
  DeviceModelConfig cfg;
  cfg.access_latency_us = 0;  // no sleeping, just counting
  cfg.tail_prob = 0.2;
  DeviceModel dev(cfg);
  for (int i = 0; i < 5000; i++) dev.ChargeAccess(0, false);
  const double rate = static_cast<double>(dev.tail_accesses()) / 5000.0;
  EXPECT_GT(rate, 0.1);
  EXPECT_LT(rate, 0.3);
}

TEST(DeviceModelTest, InjectedDelaysTrackedSeparately) {
  DeviceModel dev;
  dev.ChargeInjectedDelay(1000);
  EXPECT_EQ(dev.injected_us(), 1000u);
  EXPECT_EQ(dev.total_us(), 0u);
  dev.ResetStats();
  EXPECT_EQ(dev.injected_us(), 0u);
}

}  // namespace
}  // namespace gt
