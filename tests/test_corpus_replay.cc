// Replays every checked-in fuzz corpus input (tests/fuzz/corpus/<name>/*)
// through its harness. This is the non-fuzzing decode gate: it runs in the
// default build on every ctest invocation, so a decoder regression on a
// known-interesting input (including past crash reproducers promoted into
// the corpus) fails CI even on machines that never run scripts/fuzz.sh.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/fuzz/harness.h"

namespace gt::fuzz {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(CorpusReplayTest, CorpusDirExists) {
  ASSERT_TRUE(fs::is_directory(GT_FUZZ_CORPUS_DIR))
      << GT_FUZZ_CORPUS_DIR << " missing — regenerate with gt_fuzz_gen_corpus "
      << "(scripts/fuzz.sh does this) and check the seeds in";
}

TEST(CorpusReplayTest, EveryHarnessHasSeeds) {
  // An empty per-harness corpus would make the replay gate pass vacuously
  // and give the fuzzers nothing to mutate from.
  for (const Harness& h : AllHarnesses()) {
    const fs::path dir = fs::path(GT_FUZZ_CORPUS_DIR) / h.name;
    ASSERT_TRUE(fs::is_directory(dir)) << "no corpus directory for harness " << h.name;
    size_t files = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) files++;
    }
    EXPECT_GT(files, 0u) << "empty corpus for harness " << h.name;
  }
}

TEST(CorpusReplayTest, AllInputsReplayClean) {
  size_t replayed = 0;
  for (const Harness& h : AllHarnesses()) {
    const fs::path dir = fs::path(GT_FUZZ_CORPUS_DIR) / h.name;
    if (!fs::is_directory(dir)) continue;  // EveryHarnessHasSeeds reports it
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string input = ReadFile(entry.path());
      SCOPED_TRACE(h.name + std::string("/") + entry.path().filename().string());
      // A crash/trap aborts the test binary; a nonzero return is a harness
      // contract violation either way.
      EXPECT_EQ(0, h.fn(reinterpret_cast<const uint8_t*>(input.data()), input.size()));
      replayed++;
    }
  }
  EXPECT_GT(replayed, 0u);
}

}  // namespace
}  // namespace gt::fuzz
