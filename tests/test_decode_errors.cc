// Adversarial decode tests: every wire decoder must hand back a clean
// Status (or bool) on malformed input — truncated frames, hostile length
// prefixes, bit flips — and must never crash, read out of bounds, or accept
// bytes whose re-encoding it then rejects. The table covers each decode
// surface once; the fuzz harnesses (tests/fuzz/) explore the same surfaces
// with mutation, and the corpus-replay gate pins known-interesting inputs.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/codec.h"
#include "src/engine/mutation.h"
#include "src/engine/types.h"
#include "src/graph/encoding.h"
#include "src/kv/manifest.h"
#include "src/kv/write_batch.h"
#include "src/lang/plan.h"
#include "src/rpc/message.h"
#include "src/rpc/tcp_transport.h"

namespace gt {
namespace {

// One decode surface: decode() returns whether the input was accepted and
// (on acceptance) the canonical re-encoding, so the harness can check that
// accepted variants re-decode. `strict_prefix` is the largest prefix length
// below which truncation MUST be rejected (payloads with optional tails
// accept some truncations by design — that boundary is the interesting bit
// to pin down explicitly, not to hand-wave).
struct Surface {
  std::string name;
  std::string valid;
  size_t strict_prefix;  // decode(valid[0:k]) must fail for k < this
  std::function<bool(std::string_view, std::string* reencoded)> decode;
};

template <typename P>
Surface PayloadSurface(std::string name, const P& sample, size_t strict_prefix) {
  const std::string valid = sample.Encode();
  return Surface{
      std::move(name), valid, strict_prefix,
      [](std::string_view in, std::string* reencoded) {
        auto decoded = P::Decode(in);
        if (!decoded.ok()) return false;
        *reencoded = decoded->Encode();
        return true;
      }};
}

// Sample plans for the extension-tail surfaces. StripExt resets every
// versioned-tail field so Encode() yields exactly the legacy prefix bytes.
lang::TraversalPlan ExtSamplePlan() {
  lang::TraversalPlan plan;
  plan.start_ids = {1, 2};
  lang::Filter f;
  f.key = 3;
  f.op = lang::FilterOp::kRange;
  f.values = {graph::PropValue(int64_t{1}), graph::PropValue(int64_t{5})};
  lang::Hop h1;
  h1.edge_label = 4;
  h1.repeat = 3;
  lang::Hop h2;
  h2.edge_label = 5;
  h2.until_filters.push_back(f);
  plan.hops = {h1, h2};
  plan.result_mode = lang::ResultMode::kCount;
  return plan;
}

lang::TraversalPlan BranchSamplePlan() {
  lang::TraversalPlan plan;
  plan.start_ids = {9};
  lang::Hop alt_hop;
  alt_hop.edge_label = 4;
  lang::Hop alt_hop2;
  alt_hop2.edge_label = 5;
  alt_hop2.repeat = 2;
  plan.branch_alts = {{alt_hop}, {alt_hop2}};
  lang::Hop tail_hop;
  tail_hop.edge_label = 6;
  plan.branch_tail = {tail_hop};
  plan.result_mode = lang::ResultMode::kGroup;
  plan.group_key = 7;
  plan.push_start_filters = true;
  plan.fetch_hint = 1;
  return plan;
}

void StripExt(lang::TraversalPlan* plan) {
  for (auto& h : plan->hops) {
    h.repeat = 1;
    h.until_filters.clear();
  }
  plan->result_mode = lang::ResultMode::kVertices;
  plan->group_key = 0;
  plan->push_start_filters = false;
  plan->fetch_hint = 0;
  plan->branch_alts.clear();
  plan->branch_tail.clear();
}

std::vector<Surface> AllSurfaces() {
  std::vector<Surface> surfaces;

  // RPC frame body: header is mandatory, payload is the tail.
  {
    rpc::Message m;
    m.type = rpc::MsgType::kSubmitTraversal;
    m.src = 5;
    m.dst = 0;
    m.rpc_id = 9;
    m.payload = "payload";
    std::string wire;
    m.EncodeTo(&wire);
    const std::string body = wire.substr(4);
    surfaces.push_back(Surface{
        "message", body, rpc::kMsgHeaderBytes,
        [](std::string_view in, std::string* reencoded) {
          auto decoded = rpc::Message::DecodeBody(in);
          if (!decoded.ok()) return false;
          std::string w;
          decoded->EncodeTo(&w);
          *reencoded = w.substr(4);
          return true;
        }});
  }

  // Serialized traversal plan (the kSubmitTraversal payload's inner format).
  {
    lang::TraversalPlan plan;
    plan.start_ids = {1, 2};
    lang::Filter f;
    f.key = 3;
    f.op = lang::FilterOp::kRange;
    f.values = {graph::PropValue(int64_t{1}), graph::PropValue(int64_t{5})};
    lang::Hop hop;
    hop.edge_label = 4;
    hop.vertex_filters.push_back(f);
    hop.rtn = true;
    plan.hops.push_back(hop);
    const std::string valid = plan.Encode();
    surfaces.push_back(Surface{
        "plan", valid, valid.size(),
        [](std::string_view in, std::string* reencoded) {
          auto decoded = lang::TraversalPlan::Decode(in);
          if (!decoded.ok()) return false;
          *reencoded = decoded->Encode();
          return true;
        }});
  }

  // Extended plan (versioned ext tail): repeat + until + aggregate result
  // mode. The strict prefix stops at the legacy boundary — decoding exactly
  // the legacy bytes is the documented tail-tolerant case (covered by the
  // dedicated ext-tail tests below), any shorter prefix must fail.
  {
    lang::TraversalPlan plan = ExtSamplePlan();
    lang::TraversalPlan legacy = plan;
    StripExt(&legacy);
    surfaces.push_back(Surface{
        "plan_ext", plan.Encode(), legacy.Encode().size(),
        [](std::string_view in, std::string* reencoded) {
          auto decoded = lang::TraversalPlan::Decode(in);
          if (!decoded.ok()) return false;
          *reencoded = decoded->Encode();
          return true;
        }});
  }

  // Branch plan: alternatives + tail + group mode + planner flags, so the
  // bit-flip sweep walks every branch row and the flags byte.
  {
    lang::TraversalPlan plan = BranchSamplePlan();
    lang::TraversalPlan legacy = plan;
    StripExt(&legacy);
    surfaces.push_back(Surface{
        "plan_branch", plan.Encode(), legacy.Encode().size(),
        [](std::string_view in, std::string* reencoded) {
          auto decoded = lang::TraversalPlan::Decode(in);
          if (!decoded.ok()) return false;
          *reencoded = decoded->Encode();
          return true;
        }});
  }

  // Engine payloads. Tail-tolerant ones (Submit / Complete / Abort read a
  // legacy-optional tail) get a strict prefix that stops before the tail.
  {
    engine::SubmitPayload submit;
    submit.mode = 1;
    submit.timeout_ms = 100;
    submit.plan = "plan-bytes";
    submit.priority_class = 1;
    submit.deadline_ms = 50;
    // Strict part: mode + timeout + plan; priority/deadline tail optional.
    std::string strict_part;
    strict_part.push_back(static_cast<char>(submit.mode));
    PutVarint32(&strict_part, submit.timeout_ms);
    PutLengthPrefixed(&strict_part, submit.plan);
    surfaces.push_back(PayloadSurface("submit", submit, strict_part.size()));
  }
  {
    engine::TraversePayload traverse;
    traverse.travel_id = 7;
    traverse.step = 1;
    traverse.mode = 1;
    std::string plan = "abcdef";
    traverse.plan = plan;
    traverse.entries = {{10, {1}}, {11, {}}};
    surfaces.push_back(
        PayloadSurface("traverse", traverse, traverse.Encode().size()));
  }
  {
    engine::AnswerPayload answer;
    answer.travel_id = 7;
    answer.reached_parents = {1, 2};
    answer.result_vids = {10};
    surfaces.push_back(PayloadSurface("answer", answer, answer.Encode().size()));
  }
  {
    // Result-mode tail: group values (parallel to result_vids) + path
    // chains. Strict up to the legacy boundary; the tail itself is
    // all-or-nothing (see ResultTailTruncationIsRejected).
    engine::AnswerPayload answer;
    answer.travel_id = 7;
    answer.exec_id = 3;
    answer.result_vids = {10, 11};
    engine::AnswerPayload legacy = answer;
    answer.result_values = {"va", "vb"};
    answer.result_paths = {{1, 2, 10}, {4, 11}};
    surfaces.push_back(PayloadSurface("answer_ext", answer, legacy.Encode().size()));
  }
  {
    engine::ExecEventPayload event;
    event.travel_id = 7;
    event.step = 2;
    event.exec_ids = {5, 6};
    surfaces.push_back(PayloadSurface("exec_event", event, event.Encode().size()));
  }
  {
    engine::TraceBatchPayload trace;
    trace.travel_id = 7;
    trace.items = {{1, 0, 1}, {2, 1, 0}};
    surfaces.push_back(PayloadSurface("trace_batch", trace, trace.Encode().size()));
  }
  {
    engine::ResultChunkPayload chunk;
    chunk.travel_id = 7;
    chunk.vids = {1, 2, 3};
    surfaces.push_back(PayloadSurface("result_chunk", chunk, chunk.Encode().size()));
  }
  {
    engine::ResultChunkPayload chunk;
    chunk.travel_id = 7;
    engine::ResultChunkPayload legacy = chunk;
    chunk.groups = {{"bucket-a", 2}, {"", 5}};
    chunk.paths = {{1, 2}, {3}};
    surfaces.push_back(
        PayloadSurface("result_chunk_ext", chunk, legacy.Encode().size()));
  }
  {
    engine::CompletePayload complete;
    complete.travel_id = 7;
    complete.ok = 0;
    complete.error = "boom";
    complete.total_results = 3;
    complete.code = 2;
    engine::CompletePayload tailless = complete;
    tailless.code = 0;
    surfaces.push_back(
        PayloadSurface("complete", complete, tailless.Encode().size() - 1));
  }
  {
    engine::AbortPayload abort_p;
    abort_p.travel_id = 7;
    abort_p.reason = engine::AbortPayload::kCancel;
    // travel_id is mandatory; the reason byte is the optional tail.
    std::string travel_only;
    PutVarint64(&travel_only, abort_p.travel_id);
    surfaces.push_back(
        PayloadSurface("abort", abort_p, travel_only.size()));
  }
  {
    engine::ProgressPayload progress;
    progress.travel_id = 7;
    progress.unfinished_per_step = {3, 1};
    progress.total_created = 9;
    progress.total_terminated = 5;
    surfaces.push_back(
        PayloadSurface("progress", progress, progress.Encode().size()));
  }
  {
    engine::SyncStepPayload step;
    step.travel_id = 7;
    step.step = 1;
    step.plan = "plan";
    step.batches_sent = {2, 0};
    step.result_vids = {4};
    surfaces.push_back(PayloadSurface("sync_step", step, step.Encode().size()));
  }
  {
    engine::SyncStepPayload step;
    step.travel_id = 7;
    step.step = 2;
    step.result_vids = {4};
    engine::SyncStepPayload legacy = step;
    step.result_values = {"gv"};
    step.result_paths = {{1, 4}};
    surfaces.push_back(
        PayloadSurface("sync_step_ext", step, legacy.Encode().size()));
  }
  {
    engine::SyncBatchPayload batch;
    batch.travel_id = 7;
    batch.step = 1;
    batch.entries = {{10, {1, 2}}};
    surfaces.push_back(PayloadSurface("sync_batch", batch, batch.Encode().size()));
  }
  {
    engine::PutVertexPayload put_v;
    put_v.vid = 3;
    put_v.label = "file";
    put_v.props = {{"size", graph::PropValue(int64_t{1})}};
    surfaces.push_back(PayloadSurface("put_vertex", put_v, put_v.Encode().size()));
  }
  {
    engine::PutEdgePayload put_e;
    put_e.src = 3;
    put_e.label = "contains";
    put_e.dst = 4;
    surfaces.push_back(PayloadSurface("put_edge", put_e, put_e.Encode().size()));
  }
  {
    engine::MutateAckPayload ack;
    ack.ok = 0;
    ack.error = "nope";
    surfaces.push_back(PayloadSurface("mutate_ack", ack, ack.Encode().size()));
  }
  {
    engine::GetVertexPayload get_v;
    get_v.vid = 3;
    surfaces.push_back(PayloadSurface("get_vertex", get_v, get_v.Encode().size()));
  }
  {
    engine::VertexReplyPayload reply;
    reply.found = 1;
    reply.vid = 3;
    reply.label = "file";
    reply.props = {{"size", graph::PropValue(int64_t{1})}};
    surfaces.push_back(PayloadSurface("vertex_reply", reply, reply.Encode().size()));
  }
  {
    engine::CatalogInternPayload intern;
    intern.name = "contains";
    surfaces.push_back(PayloadSurface("catalog_intern", intern, intern.Encode().size()));
  }
  {
    engine::CatalogReplyPayload cat;
    cat.id = 2;
    cat.names = {"a", "b", "c"};
    surfaces.push_back(PayloadSurface("catalog_reply", cat, cat.Encode().size()));
  }

  // MANIFEST version edit.
  {
    kv::VersionEdit edit;
    edit.added_tables = {3};
    edit.removed_tables = {1, 2};
    edit.next_file_id = 4;
    edit.last_sequence = 10;
    std::string valid;
    edit.EncodeTo(&valid);
    // Tag-based format: truncation at any tag boundary is a legal (shorter)
    // edit, so only the leading format-version byte is strictly required.
    surfaces.push_back(Surface{
        "version_edit", valid, 1,
        [](std::string_view in, std::string* reencoded) {
          kv::VersionEdit e;
          if (!kv::VersionEdit::DecodeFrom(kv::Slice(in.data(), in.size()), &e).ok()) {
            return false;
          }
          e.EncodeTo(reencoded);
          return true;
        }});
  }

  // WriteBatch rep (the WAL payload).
  {
    kv::WriteBatch batch;
    batch.SetSequence(5);
    batch.Put("key-a", "value-a");
    batch.Delete("key-b");
    surfaces.push_back(Surface{
        "write_batch", batch.rep(), batch.rep().size(),
        [](std::string_view in, std::string* reencoded) {
          auto decoded = kv::WriteBatch::FromRep(kv::Slice(in.data(), in.size()));
          if (!decoded.ok()) return false;
          *reencoded = decoded->rep();
          return true;
        }});
  }

  // Graph storage values.
  {
    graph::PropMap props;
    props.Set(1, graph::PropValue(int64_t{9}));
    props.Set(2, graph::PropValue(std::string("xyz")));
    const std::string valid = graph::EncodeVertexValue(4, props);
    surfaces.push_back(Surface{
        "vertex_value", valid, valid.size(),
        [](std::string_view in, std::string* reencoded) {
          graph::LabelId label = 0;
          graph::PropMap decoded;
          if (!graph::DecodeVertexValue(in, &label, &decoded)) return false;
          *reencoded = graph::EncodeVertexValue(label, decoded);
          return true;
        }});
  }

  return surfaces;
}

class DecodeErrorsTest : public ::testing::Test {};

TEST(DecodeErrorsTest, ValidInputsDecodeAndRoundTrip) {
  for (const Surface& s : AllSurfaces()) {
    SCOPED_TRACE(s.name);
    std::string reencoded;
    ASSERT_TRUE(s.decode(s.valid, &reencoded));
    // Canonical encodings round-trip bit-for-bit.
    EXPECT_EQ(reencoded, s.valid);
  }
}

TEST(DecodeErrorsTest, EveryTruncationIsRejectedOrTailTolerant) {
  for (const Surface& s : AllSurfaces()) {
    for (size_t k = 0; k < s.valid.size(); k++) {
      SCOPED_TRACE(s.name + " truncated to " + std::to_string(k) + "/" +
                   std::to_string(s.valid.size()) + " bytes");
      std::string reencoded;
      const bool ok = s.decode(std::string_view(s.valid).substr(0, k), &reencoded);
      if (k < s.strict_prefix) {
        // Below the strict prefix the decoder must reject — accepting here
        // means a length/field was never validated.
        EXPECT_FALSE(ok);
      } else if (ok) {
        // Tail-tolerant acceptance is fine, but what was accepted must
        // itself re-decode (no half-read state escapes the decoder).
        std::string again;
        EXPECT_TRUE(s.decode(reencoded, &again));
      }
    }
  }
}

TEST(DecodeErrorsTest, SingleBitFlipsNeverCrashAndAcceptedFlipsRoundTrip) {
  for (const Surface& s : AllSurfaces()) {
    for (size_t i = 0; i < s.valid.size(); i++) {
      for (uint8_t mask : {0x01, 0x80}) {
        std::string flipped = s.valid;
        flipped[i] = static_cast<char>(flipped[i] ^ mask);
        SCOPED_TRACE(s.name + " bit-flip at byte " + std::to_string(i));
        std::string reencoded;
        if (s.decode(flipped, &reencoded)) {
          std::string again;
          EXPECT_TRUE(s.decode(reencoded, &again));
        }
      }
    }
  }
}

TEST(DecodeErrorsTest, HostileCountPrefixesFailWithoutAllocating) {
  // A count prefix promising ~4 billion elements backed by zero bytes must
  // be rejected up front (CheckedReader::GetCount), not discovered after a
  // multi-gigabyte reserve. These run under ASan in the sanitizer legs, so
  // an attempted giant allocation would abort the test.
  std::string hostile_count;
  PutVarint32(&hostile_count, 0xfffffff0u);

  {  // result chunk: varint travel_id | count | vids
    std::string in;
    PutVarint64(&in, 7);
    in += hostile_count;
    EXPECT_FALSE(engine::ResultChunkPayload::Decode(in).ok());
  }
  {  // traversal plan: count of start ids first
    EXPECT_FALSE(lang::TraversalPlan::Decode(hostile_count).ok());
  }
  {  // catalog reply: id | count | names
    std::string in;
    PutVarint32(&in, 1);
    in += hostile_count;
    EXPECT_FALSE(engine::CatalogReplyPayload::Decode(in).ok());
  }
  {  // frontier entries: travel | step | mode | scan_start | plan | count
    engine::TraversePayload traverse;
    traverse.travel_id = 1;
    std::string plan = "p";
    traverse.plan = plan;
    std::string in = traverse.Encode();
    // Rewrite the (empty) entry count at the end with the hostile one.
    in.pop_back();
    in += hostile_count;
    EXPECT_FALSE(engine::TraversePayload::Decode(in).ok());
  }
  {  // prop map: count | entries
    std::string in = hostile_count;
    graph::PropMap props;
    CheckedReader dec(in);
    EXPECT_FALSE(graph::PropMap::DecodeFrom(&dec, &props));
  }
}

// The new result-mode / plan-extension tails are all-or-nothing: absent
// means legacy defaults, but once the first tail byte is present the whole
// tail must parse. The generic truncation sweep only checks acceptance
// re-decodes; these pin the rejection side explicitly for every new field.
TEST(DecodeErrorsTest, ExtTailTruncationIsRejected) {
  const std::set<std::string> ext_surfaces = {
      "plan_ext", "plan_branch", "answer_ext", "result_chunk_ext", "sync_step_ext"};
  size_t seen = 0;
  for (const Surface& s : AllSurfaces()) {
    if (ext_surfaces.count(s.name) == 0) continue;
    seen++;
    SCOPED_TRACE(s.name);
    std::string reencoded;
    // Exactly the legacy prefix: tail-tolerant accept.
    EXPECT_TRUE(s.decode(std::string_view(s.valid).substr(0, s.strict_prefix),
                         &reencoded));
    // Any nonempty partial tail: hard error.
    for (size_t k = s.strict_prefix + 1; k < s.valid.size(); k++) {
      SCOPED_TRACE("tail truncated to " + std::to_string(k) + "/" +
                   std::to_string(s.valid.size()) + " bytes");
      EXPECT_FALSE(s.decode(std::string_view(s.valid).substr(0, k), &reencoded));
    }
  }
  EXPECT_EQ(seen, ext_surfaces.size());
}

TEST(DecodeErrorsTest, ExtPlanAbsentTailDecodesAsLegacy) {
  const lang::TraversalPlan plan = ExtSamplePlan();
  lang::TraversalPlan legacy = plan;
  StripExt(&legacy);
  const std::string valid = plan.Encode();
  const std::string legacy_bytes = legacy.Encode();
  // The ext encoding is the legacy encoding plus a pure suffix.
  ASSERT_LT(legacy_bytes.size(), valid.size());
  ASSERT_EQ(valid.compare(0, legacy_bytes.size(), legacy_bytes), 0);

  auto decoded = lang::TraversalPlan::Decode(legacy_bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->has_ext());
  EXPECT_EQ(decoded->result_mode, lang::ResultMode::kVertices);
  EXPECT_EQ(decoded->hops[0].repeat, 1u);
  EXPECT_TRUE(decoded->hops[1].until_filters.empty());
}

TEST(DecodeErrorsTest, ExtPlanTailSemanticRows) {
  const lang::TraversalPlan plan = ExtSamplePlan();
  lang::TraversalPlan legacy = plan;
  StripExt(&legacy);
  const std::string valid = plan.Encode();
  const std::string legacy_bytes = legacy.Encode();
  const size_t ext_at = legacy_bytes.size();

  {  // Unknown ext version byte.
    std::string bad = valid;
    bad[ext_at] = 2;
    EXPECT_FALSE(lang::TraversalPlan::Decode(bad).ok());
  }
  {  // Unknown flag bit (flags byte = version + mode + 1-byte group key varint).
    std::string bad = valid;
    bad[ext_at + 3] = static_cast<char>(0x80);
    EXPECT_FALSE(lang::TraversalPlan::Decode(bad).ok());
  }
  {  // Bad result mode.
    std::string bad = valid;
    bad[ext_at + 1] = 9;
    EXPECT_FALSE(lang::TraversalPlan::Decode(bad).ok());
  }

  // Hand-built tails over the legacy prefix.
  auto tail = [&](uint32_t hop_count, uint32_t repeat, uint8_t mode) {
    std::string out = legacy_bytes;
    out.push_back(1);  // kPlanExtVersion
    out.push_back(static_cast<char>(mode));
    PutVarint32(&out, 0);  // group key
    out.push_back(0);      // flags
    PutVarint32(&out, hop_count);
    for (uint32_t i = 0; i < hop_count; i++) {
      PutVarint32(&out, repeat);
      PutVarint32(&out, 0);  // empty until-filter list
    }
    PutVarint32(&out, 0);  // no branch
    return out;
  };
  const uint32_t hops = static_cast<uint32_t>(legacy.hops.size());
  // An all-default tail is non-canonical (Encode would have omitted it).
  EXPECT_FALSE(lang::TraversalPlan::Decode(tail(hops, 1, 0)).ok());
  // Per-hop count must re-state the legacy hop count exactly.
  EXPECT_FALSE(lang::TraversalPlan::Decode(tail(hops + 1, 2, 1)).ok());
  // Repeat bounds: 0 and kMaxRepeat+1 are rejected at decode time.
  EXPECT_FALSE(lang::TraversalPlan::Decode(tail(hops, 0, 1)).ok());
  EXPECT_FALSE(lang::TraversalPlan::Decode(tail(hops, lang::kMaxRepeat + 1, 1)).ok());
  // The same tail with a valid repeat is accepted (the rows above fail for
  // the right reason, not because the scaffold is malformed).
  EXPECT_TRUE(lang::TraversalPlan::Decode(tail(hops, 2, 1)).ok());
}

TEST(DecodeErrorsTest, ResultTailParallelArrayMismatchIsRejected) {
  {  // Answer: group values must ride one-per-result-vid.
    engine::AnswerPayload answer;
    answer.travel_id = 7;
    answer.result_vids = {10, 11};
    answer.result_values = {"only-one"};
    EXPECT_FALSE(engine::AnswerPayload::Decode(answer.Encode()).ok());
    answer.result_values = {"a", "b"};
    EXPECT_TRUE(engine::AnswerPayload::Decode(answer.Encode()).ok());
  }
  {  // Sync step: same invariant on the barrier path.
    engine::SyncStepPayload step;
    step.travel_id = 7;
    step.result_vids = {4};
    step.result_values = {"a", "b"};
    EXPECT_FALSE(engine::SyncStepPayload::Decode(step.Encode()).ok());
    step.result_values = {"a"};
    EXPECT_TRUE(engine::SyncStepPayload::Decode(step.Encode()).ok());
  }
}

TEST(DecodeErrorsTest, MessageHeaderVsBodyMismatchIsError) {
  // A frame body shorter than the fixed header is Corruption from
  // DecodeHeader — DecodeBody must never slice the payload first.
  rpc::Message m;
  m.type = rpc::MsgType::kPing;
  m.src = 1;
  m.dst = 2;
  std::string wire;
  m.EncodeTo(&wire);
  const std::string body = wire.substr(4);
  for (size_t k = 0; k < rpc::kMsgHeaderBytes; k++) {
    rpc::Message out;
    EXPECT_TRUE(
        rpc::Message::DecodeHeader(std::string_view(body).substr(0, k), &out)
            .IsCorruption())
        << "header prefix of " << k << " bytes";
    EXPECT_FALSE(rpc::Message::DecodeBody(std::string_view(body).substr(0, k)).ok());
  }
}

// --- malformed TCP frames ---------------------------------------------------

// Raw client socket helper: connect to a TcpTransport listener port.
int DialRaw(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  return fd;
}

// Reads until EOF or error; returns bytes read. Used to observe the server
// dropping the connection.
size_t DrainUntilClose(int fd) {
  char buf[256];
  size_t total = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return total;
    total += static_cast<size_t>(n);
  }
}

TEST(TcpMalformedFrameTest, GarbageHelloCountsAndDropsConnection) {
  rpc::TcpTransport transport;
  ASSERT_TRUE(transport.RegisterEndpoint(1, [](rpc::Message&&) {}).ok());
  const uint16_t port = transport.PortOf(1);
  ASSERT_NE(0, port);

  const uint64_t before = transport.stats().decode_errors.load();
  int fd = DialRaw(port);
  const std::string garbage = "this is not a GTRK hello!";
  ASSERT_EQ(static_cast<ssize_t>(garbage.size()),
            ::send(fd, garbage.data(), garbage.size(), 0));
  // Server must close without acking; no resynchronization attempts.
  EXPECT_EQ(0u, DrainUntilClose(fd));
  ::close(fd);

  // CountDecodeError runs strictly before the reader closes the socket, so
  // observing EOF above means the counter is already bumped.
  EXPECT_GT(transport.stats().decode_errors.load(), before);
  transport.Shutdown();
}

TEST(TcpMalformedFrameTest, OversizedFrameLengthCountsAndDropsConnection) {
  rpc::TcpTransport transport;
  ASSERT_TRUE(transport.RegisterEndpoint(2, [](rpc::Message&&) {}).ok());
  const uint16_t port = transport.PortOf(2);
  ASSERT_NE(0, port);

  const uint64_t before = transport.stats().decode_errors.load();
  int fd = DialRaw(port);
  std::string wire;
  PutFixed32(&wire, 0x4754524b);  // valid hello
  PutFixed32(&wire, 1);
  PutFixed32(&wire, 2);
  PutFixed32(&wire, 0xffffffffu);  // frame_len far beyond kMaxFrameBody
  ASSERT_EQ(static_cast<ssize_t>(wire.size()),
            ::send(fd, wire.data(), wire.size(), 0));
  // The 4-byte hello ack arrives, then the connection must drop.
  EXPECT_EQ(4u, DrainUntilClose(fd));
  ::close(fd);

  // CountDecodeError runs strictly before the reader closes the socket, so
  // observing EOF above means the counter is already bumped.
  EXPECT_GT(transport.stats().decode_errors.load(), before);
  transport.Shutdown();
}

TEST(TcpMalformedFrameTest, TruncatedHeaderFrameCountsAndDropsConnection) {
  rpc::TcpTransport transport;
  ASSERT_TRUE(transport.RegisterEndpoint(3, [](rpc::Message&&) {}).ok());
  const uint16_t port = transport.PortOf(3);
  ASSERT_NE(0, port);

  const uint64_t before = transport.stats().decode_errors.load();
  int fd = DialRaw(port);
  std::string wire;
  PutFixed32(&wire, 0x4754524b);  // valid hello
  PutFixed32(&wire, 1);
  PutFixed32(&wire, 3);
  PutFixed32(&wire, 2);  // frame_len below kMinFrameBody: header can't fit
  wire += "xx";
  ASSERT_EQ(static_cast<ssize_t>(wire.size()),
            ::send(fd, wire.data(), wire.size(), 0));
  EXPECT_EQ(4u, DrainUntilClose(fd));
  ::close(fd);

  // CountDecodeError runs strictly before the reader closes the socket, so
  // observing EOF above means the counter is already bumped.
  EXPECT_GT(transport.stats().decode_errors.load(), before);
  transport.Shutdown();
}

}  // namespace
}  // namespace gt
