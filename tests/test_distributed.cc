// Distributed-deployment tests: live updates and point queries through the
// client RPC API, the distributed catalog (authority + replicas), and a
// full multi-server cluster assembled over the real TCP transport with
// per-server catalogs — the same wiring the graphtrek_server daemon uses.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/engine/backend_server.h"
#include "src/engine/client.h"
#include "src/engine/cluster.h"
#include "src/engine/remote_catalog.h"
#include "src/rpc/tcp_transport.h"
#include "tests/racing_harness.h"
#include "tests/test_util.h"

namespace gt::engine {
namespace {

using graph::Catalog;
using graph::PropValue;
using graph::VertexId;
using lang::FilterOp;
using lang::GTravel;

// --- live updates + point queries on the in-process cluster -------------------

class LiveUpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_servers = 3;
    auto cluster = Cluster::Create(cfg);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(*cluster);
    client_ = cluster_->NewClient();
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<GraphTrekClient> client_;
};

TEST_F(LiveUpdateTest, PutThenGetVertexRoundTrip) {
  ASSERT_TRUE(client_
                  ->PutVertex(42, "User",
                              {{"name", PropValue("sam")}, {"uid", PropValue(int64_t{1001})}})
                  .ok());
  auto rec = client_->GetVertex(42);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->found, 1);
  EXPECT_EQ(rec->label, "User");
  ASSERT_EQ(rec->props.size(), 2u);
  EXPECT_EQ(rec->props[0].first, "name");
  EXPECT_EQ(rec->props[0].second.as_string(), "sam");
  EXPECT_EQ(rec->props[1].second.as_int(), 1001);
}

TEST_F(LiveUpdateTest, GetMissingVertexReportsNotFound) {
  auto rec = client_->GetVertex(9999);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->found, 0);
}

TEST_F(LiveUpdateTest, DeleteVertexRemovesIt) {
  ASSERT_TRUE(client_->PutVertex(7, "File").ok());
  ASSERT_TRUE(client_->DeleteVertex(7).ok());
  auto rec = client_->GetVertex(7);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->found, 0);
}

TEST_F(LiveUpdateTest, MisroutedRequestsForwardToOwner) {
  // An unrouted client sends everything to server 0; requests for vertices
  // owned elsewhere must be forwarded transparently.
  GraphTrekClient unrouted(cluster_->transport(), rpc::kClientIdBase + 777,
                           /*num_servers=*/0);
  for (VertexId vid = 100; vid < 120; vid++) {
    ASSERT_TRUE(unrouted.PutVertex(vid, "File", {{"sz", PropValue(int64_t(vid))}}).ok())
        << vid;
  }
  for (VertexId vid = 100; vid < 120; vid++) {
    auto rec = unrouted.GetVertex(vid);
    ASSERT_TRUE(rec.ok()) << vid;
    EXPECT_EQ(rec->found, 1) << vid;
    EXPECT_EQ(rec->props[0].second.as_int(), static_cast<int64_t>(vid));
  }
}

TEST_F(LiveUpdateTest, LiveIngestedGraphIsTraversable) {
  // Build a small user->job->file graph purely through the live-update API,
  // then traverse it: the paper's "ingest production information in real
  // time" requirement end-to-end.
  ASSERT_TRUE(client_->PutVertex(1, "User", {{"name", PropValue("sam")}}).ok());
  for (VertexId job = 10; job < 13; job++) {
    ASSERT_TRUE(client_->PutVertex(job, "Job").ok());
    ASSERT_TRUE(client_->PutEdge(1, "run", job, {{"ts", PropValue(int64_t(job))}}).ok());
    ASSERT_TRUE(client_->PutVertex(job + 100, "File").ok());
    ASSERT_TRUE(client_->PutEdge(job, "write", job + 100).ok());
  }

  auto plan = GTravel(cluster_->catalog()).v({1}).e("run").e("write").Build();
  ASSERT_TRUE(plan.ok());
  for (EngineMode mode :
       {EngineMode::kSync, EngineMode::kAsyncPlain, EngineMode::kGraphTrek}) {
    auto result = cluster_->Run(*plan, mode);
    ASSERT_TRUE(result.ok()) << EngineModeName(mode);
    EXPECT_EQ(result->vids, (std::vector<VertexId>{110, 111, 112})) << EngineModeName(mode);
  }
}

TEST_F(LiveUpdateTest, UpdatesVisibleToSubsequentTraversals) {
  ASSERT_TRUE(client_->PutVertex(1, "User").ok());
  ASSERT_TRUE(client_->PutVertex(2, "Job").ok());
  ASSERT_TRUE(client_->PutEdge(1, "run", 2).ok());

  auto plan = GTravel(cluster_->catalog()).v({1}).e("run").Build();
  ASSERT_TRUE(plan.ok());
  auto before = cluster_->Run(*plan, EngineMode::kGraphTrek);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->vids.size(), 1u);

  // Live update between traversals.
  ASSERT_TRUE(client_->PutVertex(3, "Job").ok());
  ASSERT_TRUE(client_->PutEdge(1, "run", 3).ok());
  auto after = cluster_->Run(*plan, EngineMode::kGraphTrek);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->vids, (std::vector<VertexId>{2, 3}));
}

TEST_F(LiveUpdateTest, PropertyOverwriteKeepsNewest) {
  ASSERT_TRUE(client_->PutVertex(5, "File", {{"size", PropValue(int64_t{100})}}).ok());
  ASSERT_TRUE(client_->PutVertex(5, "File", {{"size", PropValue(int64_t{200})}}).ok());
  auto rec = client_->GetVertex(5);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->props[0].second.as_int(), 200);
}

// --- distributed catalog --------------------------------------------------------

TEST_F(LiveUpdateTest, CatalogPullAndInternThroughAuthority) {
  // Seed some names via mutations.
  ASSERT_TRUE(client_->PutVertex(1, "User", {{"name", PropValue("x")}}).ok());

  rpc::Mailbox mailbox(cluster_->transport(), rpc::kClientIdBase + 900);
  RemoteCatalog replica(&mailbox, /*authority=*/0);
  ASSERT_TRUE(replica.Pull().ok());
  EXPECT_NE(replica.Lookup("User"), Catalog::kInvalidId);
  EXPECT_EQ(replica.Lookup("User"), cluster_->catalog()->Lookup("User"));
  EXPECT_EQ(replica.Lookup("name"), cluster_->catalog()->Lookup("name"));

  // Interning a brand-new name resolves through the authority and both
  // sides agree on the id.
  const auto id = replica.Intern("brand-new-label");
  EXPECT_NE(id, Catalog::kInvalidId);
  EXPECT_EQ(id, cluster_->catalog()->Lookup("brand-new-label"));
  // Second intern is a local cache hit with the same id.
  EXPECT_EQ(replica.Intern("brand-new-label"), id);
}

// --- randomized mutation/traversal equivalence -------------------------------------

class MutationOracleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationOracleSweep, LiveMutationsMatchOracleTraversals) {
  // Apply a random mutation stream through the live-update RPCs while
  // mirroring it into an in-memory oracle; every few batches, all engines
  // must agree with the reference evaluator on a random traversal.
  ClusterConfig cfg;
  cfg.num_servers = 3;
  auto cluster = Cluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  Catalog* catalog = (*cluster)->catalog();
  auto client = (*cluster)->NewClient();

  graph::RefGraph oracle;
  Rng rng(GetParam());
  const uint32_t kVertices = 60;
  const char* kLabels[] = {"TypeA", "TypeB"};
  const char* kEdges[] = {"link0", "link1"};

  for (int batch = 0; batch < 4; batch++) {
    for (int i = 0; i < 40; i++) {
      if (rng.Bernoulli(0.4)) {
        const VertexId vid = rng.Uniform(kVertices);
        const char* label = kLabels[rng.Uniform(2)];
        const auto tag = static_cast<int64_t>(rng.Uniform(100));
        ASSERT_TRUE(client->PutVertex(vid, label, {{"tag", PropValue(tag)}}).ok());
        graph::VertexRecord rec;
        rec.id = vid;
        rec.label = catalog->Intern(label);
        rec.props.Set(catalog->Intern("tag"), PropValue(tag));
        oracle.AddVertex(std::move(rec));  // overwrites in the map
      } else {
        const VertexId src = rng.Uniform(kVertices);
        const VertexId dst = rng.Uniform(kVertices);
        const char* label = kEdges[rng.Uniform(2)];
        // The ingest path rejects edges with a missing (local) endpoint, so
        // a dangling src doubles as a rejection regression check; edges
        // with a not-yet-inserted dst are skipped because the dst shard
        // decides between reject (local) and accept-unverified (remote).
        if (oracle.FindVertex(src) == nullptr) {
          EXPECT_FALSE(client->PutEdge(src, label, dst).ok());
          continue;
        }
        if (oracle.FindVertex(dst) == nullptr) continue;
        // Skip duplicate (src,label,dst) edges: the store overwrites them
        // but the oracle would record parallels.
        const auto lid = catalog->Intern(label);
        bool dup = false;
        for (const auto& [d, p] : oracle.Edges(src, lid)) {
          if (d == dst) dup = true;
        }
        if (dup) continue;
        ASSERT_TRUE(client->PutEdge(src, label, dst).ok());
        graph::EdgeRecord rec;
        rec.src = src;
        rec.label = lid;
        rec.dst = dst;
        oracle.AddEdge(std::move(rec));
      }
    }

    // Random traversal over the current state.
    GTravel travel(catalog);
    travel.v({rng.Uniform(kVertices), rng.Uniform(kVertices)});
    const uint32_t hops = 1 + rng.Uniform(3);
    for (uint32_t h = 0; h < hops; h++) travel.e(kEdges[rng.Uniform(2)]);
    auto plan = travel.Build();
    ASSERT_TRUE(plan.ok());
    const auto expected = lang::EvaluatePlanOnRefGraph(*plan, oracle, *catalog);
    for (EngineMode mode :
         {EngineMode::kSync, EngineMode::kAsyncPlain, EngineMode::kGraphTrek}) {
      auto result = (*cluster)->Run(*plan, mode);
      ASSERT_TRUE(result.ok()) << EngineModeName(mode);
      EXPECT_EQ(result->vids, expected) << EngineModeName(mode) << " batch " << batch;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationOracleSweep, ::testing::Values(11, 22, 33, 44));

// --- full cluster over the TCP transport (daemon wiring) --------------------------

class TcpClusterTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kServers = 3;
  static constexpr rpc::EndpointId kCatalogEndpointBase = 5000;

  void SetUp() override {
    // Default TcpConfig: every endpoint binds an ephemeral port, so fixtures
    // running concurrently under `ctest -j` can never collide on a bind.
    transport_ = std::make_unique<rpc::TcpTransport>();
    partitioner_ = std::make_unique<graph::HashPartitioner>(kServers);

    for (uint32_t i = 0; i < kServers; i++) {
      auto store = graph::GraphStore::Open(dir_.sub("s" + std::to_string(i)),
                                           graph::GraphStoreOptions{});
      ASSERT_TRUE(store.ok());
      stores_.push_back(std::move(*store));
    }

    // Server 0 first (it is the catalog authority the others pull from).
    for (uint32_t i = 0; i < kServers; i++) {
      graph::Catalog* catalog = &authority_catalog_;
      if (i != 0) {
        catalog_mailboxes_.push_back(std::make_unique<rpc::Mailbox>(
            transport_.get(), kCatalogEndpointBase + i));
        remote_catalogs_.push_back(std::make_unique<RemoteCatalog>(
            catalog_mailboxes_.back().get(), /*authority=*/0));
        catalog = remote_catalogs_.back().get();
      }
      ServerConfig scfg;
      scfg.id = i;
      scfg.num_servers = kServers;
      scfg.retain_snapshots_for_test = retain_snapshots_;
      servers_.push_back(std::make_unique<BackendServer>(
          scfg, stores_[i].get(), partitioner_.get(), catalog, transport_.get()));
      ASSERT_TRUE(servers_.back()->Start().ok());
    }
  }

  void TearDown() override {
    for (auto& s : servers_) s->Stop();
    transport_->Shutdown();
  }

  // Derived fixtures flip this in their constructor (before SetUp builds
  // the servers) to keep each travel's pinned snapshot for DumpAtTravelPin.
  bool retain_snapshots_ = false;

  gt::testing::ScopedTempDir dir_;
  std::unique_ptr<rpc::TcpTransport> transport_;
  std::unique_ptr<graph::HashPartitioner> partitioner_;
  graph::Catalog authority_catalog_;
  std::vector<std::unique_ptr<rpc::Mailbox>> catalog_mailboxes_;
  std::vector<std::unique_ptr<RemoteCatalog>> remote_catalogs_;
  std::vector<std::unique_ptr<graph::GraphStore>> stores_;
  std::vector<std::unique_ptr<BackendServer>> servers_;
};

TEST_F(TcpClusterTest, EndToEndOverRealSockets) {
  GraphTrekClient client(transport_.get(), 6500, kServers);

  // Ingest a chain through the live-update API (names intern through the
  // authority even when the owning server holds only a replica catalog).
  for (VertexId v = 0; v < 12; v++) {
    ASSERT_TRUE(client.PutVertex(v, "Node", {{"i", PropValue(int64_t(v))}}).ok()) << v;
    if (v > 0) {
      ASSERT_TRUE(client.PutEdge(v - 1, "next", v).ok()) << v;
    }
  }

  // Point query across the wire.
  auto rec = client.GetVertex(5);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->found, 1);
  EXPECT_EQ(rec->label, "Node");

  // Traversal: client builds the plan against a catalog replica.
  RemoteCatalog client_catalog(client.mailbox(), /*authority=*/0);
  ASSERT_TRUE(client_catalog.Pull().ok());
  GTravel travel(&client_catalog);
  travel.v({0});
  for (int i = 0; i < 4; i++) travel.e("next");
  auto plan = travel.Build();
  ASSERT_TRUE(plan.ok());

  for (EngineMode mode :
       {EngineMode::kSync, EngineMode::kAsyncPlain, EngineMode::kGraphTrek}) {
    RunOptions opts;
    opts.mode = mode;
    opts.coordinator = 1;  // exercise a non-authority coordinator
    auto result = client.Run(*plan, opts);
    ASSERT_TRUE(result.ok()) << EngineModeName(mode) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->vids, std::vector<VertexId>{4}) << EngineModeName(mode);
  }
}

// Mutate-while-traversing over real sockets: the same differential leg as
// the in-process cluster runs (racing_harness.h), proving the pin protocol
// (kPinTravel broadcast + lazy first-touch pin) holds over TCP framing too.
class TcpSnapshotRacingTest : public TcpClusterTest {
 protected:
  TcpSnapshotRacingTest() { retain_snapshots_ = true; }
};

TEST_F(TcpSnapshotRacingTest, MutationsRacingTravelsMatchPinnedOracle) {
  GraphTrekClient mutator(transport_.get(), 6502, kServers);
  GraphTrekClient traveler(transport_.get(), 6503, kServers);

  gt::testing::RacingEnv env;
  env.mutator = &mutator;
  env.traveler = &traveler;
  env.catalog = &authority_catalog_;
  env.dump_at_pin = [&](TravelId travel) -> Result<graph::RefGraph> {
    graph::RefGraph g;
    for (uint32_t i = 0; i < kServers; i++) {
      auto snap = servers_[i]->TravelSnapshotForTest(travel);
      GT_RETURN_IF_ERROR(stores_[i]->ScanAllVertices(
          [&](const graph::VertexRecord& rec) {
            g.AddVertex(rec);
            return true;
          },
          snap.get()));
      GT_RETURN_IF_ERROR(stores_[i]->ScanEverythingEdges(
          [&](const graph::EdgeRecord& rec) {
            g.AddEdge(rec);
            return true;
          },
          snap.get()));
    }
    return g;
  };
  env.has_residue = [&](TravelId travel) {
    for (auto& server : servers_) {
      if (server->HasTravelResidue(travel)) return true;
    }
    return false;
  };
  gt::testing::RunMutateRacingLeg(env, /*seed=*/1, /*travels=*/6);

  for (auto& server : servers_) server->DropRetainedSnapshotsForTest();
  for (auto& store : stores_) {
    EXPECT_EQ(store->db()->NumLiveSnapshots(), 0u);
  }
}

TEST_F(TcpClusterTest, ReplicaCatalogsAgreeAfterMutations) {
  GraphTrekClient client(transport_.get(), 6501, kServers);
  ASSERT_TRUE(client.PutVertex(1, "Alpha").ok());
  ASSERT_TRUE(client.PutVertex(2, "Beta").ok());
  ASSERT_TRUE(client.PutEdge(1, "links", 2).ok());

  // All names must resolve to the authority's ids from any replica.
  for (auto& replica : remote_catalogs_) {
    for (const char* name : {"Alpha", "Beta", "links"}) {
      EXPECT_EQ(replica->Intern(name), authority_catalog_.Lookup(name)) << name;
    }
  }
}

}  // namespace
}  // namespace gt::engine
