// Unit tests for the engine building blocks: the traversal-affiliate cache,
// the scheduling/merging request queue, protocol payload codecs, visit
// statistics and the straggler injector.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/clock.h"
#include "src/engine/request_queue.h"
#include "src/engine/straggler.h"
#include "src/engine/travel_cache.h"
#include "src/engine/types.h"
#include "src/engine/visit_stats.h"

namespace gt::engine {
namespace {

// --- TravelCache ----------------------------------------------------------------

TEST(TravelCacheTest, FirstArrivalIsMissAndBecomesOwner) {
  TravelCache cache(100);
  auto r = cache.LookupOrInsertPending(1, 0, 42);
  EXPECT_EQ(r.state, TravelCache::State::kMiss);
  r = cache.LookupOrInsertPending(1, 0, 42);
  EXPECT_EQ(r.state, TravelCache::State::kPending);
}

TEST(TravelCacheTest, KeyIsTravelStepVertexTriple) {
  TravelCache cache(100);
  cache.LookupOrInsertPending(1, 0, 42);
  // Different travel, step or vertex: all distinct entries.
  EXPECT_EQ(cache.LookupOrInsertPending(2, 0, 42).state, TravelCache::State::kMiss);
  EXPECT_EQ(cache.LookupOrInsertPending(1, 1, 42).state, TravelCache::State::kMiss);
  EXPECT_EQ(cache.LookupOrInsertPending(1, 0, 43).state, TravelCache::State::kMiss);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(TravelCacheTest, ResolveFiresWaitersWithReachValue) {
  TravelCache cache(100);
  cache.LookupOrInsertPending(1, 2, 7);
  std::vector<bool> fired;
  cache.AddWaiter(1, 2, 7, [&](bool reach) { fired.push_back(reach); });
  cache.AddWaiter(1, 2, 7, [&](bool reach) { fired.push_back(reach); });
  auto waiters = cache.Resolve(1, 2, 7, true);
  for (auto& w : waiters) w(true);
  EXPECT_EQ(fired, (std::vector<bool>{true, true}));
  // Subsequent lookups see the resolved value.
  auto r = cache.LookupOrInsertPending(1, 2, 7);
  EXPECT_EQ(r.state, TravelCache::State::kResolved);
  EXPECT_TRUE(r.reach);
}

TEST(TravelCacheTest, EvictionPrefersSmallestStep) {
  TravelCache cache(4);
  // Fill with resolved entries at steps 3, 1, 2, 0.
  for (uint32_t step : {3u, 1u, 2u, 0u}) {
    cache.LookupOrInsertPending(1, step, step);
    cache.Resolve(1, step, step, false);
  }
  EXPECT_EQ(cache.size(), 4u);
  // Next insert evicts the smallest step id (0), per the paper's policy.
  cache.LookupOrInsertPending(1, 9, 99);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.LookupOrInsertPending(1, 0, 0).state, TravelCache::State::kMiss);
  // Step 3 survived.
  EXPECT_EQ(cache.LookupOrInsertPending(1, 3, 3).state, TravelCache::State::kResolved);
}

TEST(TravelCacheTest, PendingEntriesAreNotEvicted) {
  TravelCache cache(2);
  cache.LookupOrInsertPending(1, 0, 1);  // pending, pinned
  cache.LookupOrInsertPending(1, 0, 2);  // pending, pinned
  cache.LookupOrInsertPending(1, 0, 3);  // exceeds capacity, nothing evictable
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.LookupOrInsertPending(1, 0, 1).state, TravelCache::State::kPending);
}

TEST(TravelCacheTest, EraseTravelDropsOnlyThatTravel) {
  TravelCache cache(100);
  cache.LookupOrInsertPending(1, 0, 1);
  cache.Resolve(1, 0, 1, true);
  cache.LookupOrInsertPending(2, 0, 1);
  cache.Resolve(2, 0, 1, false);
  cache.EraseTravel(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.LookupOrInsertPending(1, 0, 1).state, TravelCache::State::kMiss);
  EXPECT_EQ(cache.LookupOrInsertPending(2, 0, 1).state, TravelCache::State::kResolved);
}

// --- RequestQueue ---------------------------------------------------------------

VertexTask Task(TravelId travel, uint32_t step, graph::VertexId vid) {
  return VertexTask{travel, step, vid, 0, true, false};
}

TEST(RequestQueueTest, FifoTasksPopInArrivalOrder) {
  RequestQueue q;
  q.Push(Task(1, 5, 10), /*priority=*/false, /*mergeable=*/false);
  q.Push(Task(1, 1, 11), false, false);
  q.Push(Task(1, 3, 12), false, false);
  std::vector<VertexTask> batch;
  std::vector<graph::VertexId> order;
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(q.PopBatch(&batch));
    ASSERT_EQ(batch.size(), 1u);
    order.push_back(batch[0].vid);
  }
  EXPECT_EQ(order, (std::vector<graph::VertexId>{10, 11, 12}));
}

TEST(RequestQueueTest, PriorityTasksPopSmallestStepFirst) {
  // The paper's Fig. 6 schedule: requests reorder by step id.
  RequestQueue q;
  q.Push(Task(1, 1, 100), true, false);
  q.Push(Task(1, 1, 101), true, false);
  q.Push(Task(1, 2, 102), true, false);
  q.Push(Task(1, 0, 103), true, false);
  q.Push(Task(1, 2, 104), true, false);
  std::vector<VertexTask> batch;
  std::vector<uint32_t> steps;
  while (q.size() > 0) {
    ASSERT_TRUE(q.PopBatch(&batch));
    for (auto& t : batch) steps.push_back(t.step);
  }
  EXPECT_EQ(steps, (std::vector<uint32_t>{0, 1, 1, 2, 2}));
}

TEST(RequestQueueTest, MergingExtractsAllTasksForSameVertex) {
  // The paper's Fig. 6 merge: steps 1 and 2 of v0 combine into one access.
  RequestQueue q;
  q.Push(Task(1, 1, 0), true, true);
  q.Push(Task(1, 1, 1), true, true);
  q.Push(Task(1, 2, 0), true, true);
  q.Push(Task(1, 2, 1), true, true);
  q.Push(Task(1, 0, 2), true, true);

  std::vector<VertexTask> batch;
  ASSERT_TRUE(q.PopBatch(&batch));  // step 0, v2 first (priority)
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].vid, 2u);

  ASSERT_TRUE(q.PopBatch(&batch));  // v0: steps 1 and 2 merged
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].vid, 0u);
  EXPECT_EQ(batch[1].vid, 0u);

  ASSERT_TRUE(q.PopBatch(&batch));  // v1: steps 1 and 2 merged
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].vid, 1u);
}

TEST(RequestQueueTest, MergingIsScopedToTravel) {
  RequestQueue q;
  q.Push(Task(1, 0, 7), true, true);
  q.Push(Task(2, 0, 7), true, true);  // same vertex, different travel
  std::vector<VertexTask> batch;
  ASSERT_TRUE(q.PopBatch(&batch));
  EXPECT_EQ(batch.size(), 1u);
  ASSERT_TRUE(q.PopBatch(&batch));
  EXPECT_EQ(batch.size(), 1u);
}

TEST(RequestQueueTest, NonMergeableTasksNeverMerge) {
  RequestQueue q;
  q.Push(Task(1, 0, 7), false, false);
  q.Push(Task(1, 1, 7), false, false);
  std::vector<VertexTask> batch;
  ASSERT_TRUE(q.PopBatch(&batch));
  EXPECT_EQ(batch.size(), 1u);
}

TEST(RequestQueueTest, ShutdownWakesBlockedWorkers) {
  RequestQueue q;
  std::thread worker([&] {
    std::vector<VertexTask> batch;
    EXPECT_FALSE(q.PopBatch(&batch));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Shutdown();
  worker.join();
}

TEST(RequestQueueTest, HighWatermarkTracksPeak) {
  RequestQueue q;
  for (int i = 0; i < 10; i++) q.Push(Task(1, 0, i), true, true);
  std::vector<VertexTask> batch;
  while (q.size() > 0) q.PopBatch(&batch);
  EXPECT_EQ(q.high_watermark(), 10u);
}

// --- protocol payload codecs ---------------------------------------------------------

TEST(PayloadTest, TraverseRoundTrip) {
  TraversePayload p;
  p.travel_id = 99;
  p.step = 3;
  p.exec_id = MakeExecId(2, 17);
  p.parent_exec = MakeExecId(1, 4);
  p.parent_server = 1;
  p.coordinator = 0;
  p.mode = static_cast<uint8_t>(EngineMode::kGraphTrek);
  p.scan_start = 1;
  p.plan = "plan-bytes";
  p.entries = {{5, {1, 2}}, {9, {}}};

  // The decoded plan is a view into the encoded buffer: keep it alive.
  const std::string encoded = p.Encode();
  auto decoded = TraversePayload::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->travel_id, 99u);
  EXPECT_EQ(decoded->step, 3u);
  EXPECT_EQ(decoded->exec_id, p.exec_id);
  EXPECT_EQ(decoded->parent_exec, p.parent_exec);
  EXPECT_EQ(decoded->scan_start, 1);
  EXPECT_EQ(decoded->plan, "plan-bytes");
  EXPECT_EQ(decoded->entries, p.entries);
}

TEST(PayloadTest, AnswerRoundTrip) {
  AnswerPayload p;
  p.travel_id = 7;
  p.exec_id = MakeExecId(3, 9);
  p.parent_exec = MakeExecId(0, 1);
  p.reached_parents = {10, 20, 30};
  p.result_vids = {100};
  auto decoded = AnswerPayload::Decode(p.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->reached_parents, p.reached_parents);
  EXPECT_EQ(decoded->result_vids, p.result_vids);
}

TEST(PayloadTest, ExecEventRoundTrip) {
  ExecEventPayload p;
  p.travel_id = 5;
  p.step = 2;
  p.exec_ids = {MakeExecId(0, 1), MakeExecId(1, 2)};
  auto decoded = ExecEventPayload::Decode(p.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->exec_ids, p.exec_ids);
}

TEST(PayloadTest, SyncStepRoundTrip) {
  SyncStepPayload p;
  p.travel_id = 11;
  p.step = 4;
  p.phase = 1;
  p.scan_start = 1;
  p.plan = "plan";
  p.batches_sent = {0, 2, 1};
  p.batches_expected = 7;
  p.result_vids = {42, 43};
  auto decoded = SyncStepPayload::Decode(p.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->phase, 1);
  EXPECT_EQ(decoded->batches_sent, p.batches_sent);
  EXPECT_EQ(decoded->batches_expected, 7u);
  EXPECT_EQ(decoded->result_vids, p.result_vids);
}

TEST(PayloadTest, ProgressRoundTrip) {
  ProgressPayload p;
  p.travel_id = 3;
  p.unfinished_per_step = {0, 5, 2};
  p.total_created = 100;
  p.total_terminated = 93;
  auto decoded = ProgressPayload::Decode(p.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->unfinished_per_step, p.unfinished_per_step);
  EXPECT_EQ(decoded->total_created, 100u);
}

TEST(PayloadTest, TraceBatchRoundTrip) {
  TraceBatchPayload p;
  p.travel_id = 77;
  p.items = {TraceItem{MakeExecId(1, 2), 3, 1}, TraceItem{MakeExecId(0, 9), 2, 0}};
  auto decoded = TraceBatchPayload::Decode(p.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->travel_id, 77u);
  EXPECT_EQ(decoded->items, p.items);
}

TEST(PayloadTest, TraceBatchRejectsTruncation) {
  TraceBatchPayload p;
  p.travel_id = 1;
  p.items = {TraceItem{5, 1, 1}};
  const std::string bytes = p.Encode();
  EXPECT_FALSE(TraceBatchPayload::Decode(std::string_view(bytes).substr(0, bytes.size() - 1))
                   .ok());
}

TEST(PayloadTest, CorruptPayloadsRejected) {
  EXPECT_FALSE(TraversePayload::Decode("x").ok());
  EXPECT_FALSE(AnswerPayload::Decode("").ok());
  EXPECT_FALSE(SyncStepPayload::Decode("zz").ok());
}

TEST(ExecIdTest, EncodesServerAndSequence) {
  const ExecId id = MakeExecId(25, 123456);
  EXPECT_EQ(ExecServer(id), 25u);
  EXPECT_NE(MakeExecId(1, 5), MakeExecId(2, 5));
  EXPECT_NE(MakeExecId(1, 5), MakeExecId(1, 6));
}

// --- VisitStats -----------------------------------------------------------------------

TEST(VisitStatsTest, SnapshotAndReset) {
  VisitStats stats;
  stats.received.fetch_add(10);
  stats.redundant.fetch_add(6);
  stats.combined.fetch_add(1);
  stats.real_io.fetch_add(3);
  auto snap = stats.Read();
  EXPECT_EQ(snap.received, 10u);
  EXPECT_EQ(snap.redundant + snap.combined + snap.real_io, 10u);
  stats.Reset();
  EXPECT_EQ(stats.Read().received, 0u);
}

// --- StragglerInjector -------------------------------------------------------------------

TEST(StragglerTest, RuleMatchesServerAndStep) {
  StragglerInjector injector;
  injector.AddRule(StragglerRule{.server_id = 1, .step = 3, .delay_us = 1, .max_hits = 0});

  tls_current_step = 3;
  injector.OnVertexAccess(1, 100);  // matches
  injector.OnVertexAccess(2, 100);  // wrong server
  tls_current_step = 2;
  injector.OnVertexAccess(1, 100);  // wrong step
  tls_current_step = -1;
  EXPECT_EQ(injector.total_injected_delays(), 1u);
}

TEST(StragglerTest, AnyStepRuleAndMaxHits) {
  StragglerInjector injector;
  injector.AddRule(StragglerRule{.server_id = 0, .step = -1, .delay_us = 1, .max_hits = 2});
  tls_current_step = 0;
  for (int i = 0; i < 5; i++) injector.OnVertexAccess(0, i);
  tls_current_step = -1;
  EXPECT_EQ(injector.total_injected_delays(), 2u);
}

TEST(StragglerTest, DelayIsActuallyInjected) {
  DeviceModel device;
  StragglerInjector injector(&device);
  injector.AddRule(StragglerRule{.server_id = 0, .step = -1, .delay_us = 5000, .max_hits = 1});
  tls_current_step = 1;
  Stopwatch watch;
  injector.OnVertexAccess(0, 1);
  tls_current_step = -1;
  EXPECT_GE(watch.ElapsedMicros(), 4000u);
  EXPECT_EQ(device.injected_us(), 5000u);
}

TEST(StragglerTest, ClearRulesStopsInjection) {
  StragglerInjector injector;
  injector.AddRule(StragglerRule{.server_id = 0, .step = -1, .delay_us = 1, .max_hits = 0});
  injector.ClearRules();
  tls_current_step = 0;
  injector.OnVertexAccess(0, 1);
  tls_current_step = -1;
  EXPECT_EQ(injector.total_injected_delays(), 0u);
}

}  // namespace
}  // namespace gt::engine
